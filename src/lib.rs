//! Umbrella crate for the taskprof suite: re-exports the public surface of
//! every crate in the workspace so examples and integration tests can use a
//! single dependency.
//!
//! The suite reproduces "Profiling of OpenMP Tasks with Score-P"
//! (Lorenz et al., ICPP 2012). See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the per-table/figure reproduction record.

pub use bots;
pub use cube;
pub use pomp;
pub use taskprof;
pub use taskprof_session as session;
pub use taskprof_trace as trace;
pub use taskrt;
