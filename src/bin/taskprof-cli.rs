//! `taskprof-cli` — command-line front end for the suite.
//!
//! ```text
//! taskprof-cli run <app> [--threads N] [--scale test|small|medium]
//!                        [--cutoff] [--depth-param]
//!                        [--render] [--csv] [--diagnose] [--trace]
//!                        [--save FILE]
//! taskprof-cli telemetry <app> [--threads N] [--scale test|small|medium]
//!                              [--cutoff] [--interval-ms N]
//!                              [--format dashboard|prometheus|jsonl]
//! taskprof-cli explore [--seeds N] [--threads N]
//!                      [--workload fib|flat|mixed|all] [--dfs BUDGET]
//! taskprof-cli diff <a.profile> <b.profile>
//! taskprof-cli list
//! ```
//!
//! `run` executes one BOTS code under the profiler (and optionally the
//! tracer) and reports; `telemetry` runs a code with live telemetry
//! enabled, sampling the lock-free gauges while it executes; `explore`
//! runs the deterministic schedule explorer (`simsched`) over seeded
//! simulated schedules and fails on any profile-invariant violation;
//! `diff` compares two saved profiles; `list` shows the available codes.
//!
//! `explore --seeds` defaults to the `TASKPROF_EXPLORE_SEEDS`
//! environment variable (or 64), which is how CI scales the sweep.

use bots::{run_app, AppId, RunOpts, Scale, Variant, ALL_APPS};
use cube::{
    diagnose, diff_profiles, format_ns, read_profile, render_loads, render_profile,
    render_telemetry, thread_loads, to_csv, to_dot, write_profile, AggProfile, DiagnoseConfig,
    RenderOpts,
};
use taskprof_session::MeasurementSession;
use taskprof_trace::{analyze, TraceMonitor};

fn usage() -> ! {
    eprintln!(
        "usage:\n  taskprof-cli run <app> [--threads N] [--scale test|small|medium] \
         [--cutoff] [--depth-param] [--render] [--csv] [--dot] [--diagnose] [--imbalance] [--trace] [--save FILE]\n  \
         taskprof-cli telemetry <app> [--threads N] [--scale test|small|medium] [--cutoff] \
         [--interval-ms N] [--format dashboard|prometheus|jsonl]\n  \
         taskprof-cli explore [--seeds N] [--threads N] [--workload fib|flat|mixed|all] [--dfs BUDGET]\n  \
         taskprof-cli diff <a.profile> <b.profile>\n  taskprof-cli list"
    );
    std::process::exit(2);
}

fn app_by_name(name: &str) -> Option<AppId> {
    ALL_APPS.into_iter().find(|a| a.name() == name)
}

fn cmd_list() {
    println!("available BOTS codes:");
    for app in ALL_APPS {
        println!(
            "  {:<10} task construct: {:<20} cut-off version: {}",
            app.name(),
            app.task_region_name(),
            if app.has_cutoff() { "yes" } else { "no" }
        );
    }
}

#[allow(clippy::too_many_lines)]
fn cmd_run(args: &[String]) {
    let Some(app) = args.first().and_then(|n| app_by_name(n)) else {
        eprintln!("unknown app; try 'taskprof-cli list'");
        std::process::exit(2);
    };
    let mut opts = RunOpts::new(2);
    let (mut render, mut csv, mut diag, mut trace_on) = (false, false, false, false);
    let mut imbalance = false;
    let mut dot = false;
    let mut save: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                opts.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--scale" => {
                opts.scale = match it.next().map(String::as_str) {
                    Some("test") => Scale::Test,
                    Some("small") => Scale::Small,
                    Some("medium") => Scale::Medium,
                    _ => usage(),
                }
            }
            "--cutoff" => opts.variant = Variant::Cutoff,
            "--depth-param" => opts.depth_param = true,
            "--render" => render = true,
            "--csv" => csv = true,
            "--dot" => dot = true,
            "--diagnose" => diag = true,
            "--imbalance" => imbalance = true,
            "--trace" => trace_on = true,
            "--save" => save = Some(it.next().cloned().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    if !(render || csv || dot || diag || trace_on || imbalance || save.is_some()) {
        render = true;
        diag = true;
    }

    let session = MeasurementSession::builder("taskprof-cli")
        .threads(opts.threads)
        .build()
        .expect("default session configuration is valid");
    let tracer = TraceMonitor::new();
    let out = if trace_on {
        run_app(app, &(&tracer, session.monitor()), &opts)
    } else {
        run_app(app, session.monitor(), &opts)
    };
    println!(
        "# {} scale={:?} threads={} variant={:?}: kernel {:?}, checksum {}, verified {}",
        app.name(),
        opts.scale,
        opts.threads,
        opts.variant,
        out.kernel,
        out.checksum,
        out.verified
    );
    let profile = session.finish().profile;
    let agg = AggProfile::from_profile(&profile);

    if render {
        println!("{}", render_profile(&agg, &RenderOpts::default()));
    }
    if csv {
        print!("{}", to_csv(&agg));
    }
    if dot {
        print!("{}", to_dot(&agg));
    }
    if imbalance {
        println!("per-thread load:");
        print!("{}", render_loads(&thread_loads(&profile)));
        println!();
    }
    if diag {
        let findings = diagnose(&profile, &DiagnoseConfig::default());
        if findings.is_empty() {
            println!("diagnosis: no task performance issues detected");
        } else {
            println!("diagnosis ({} findings):", findings.len());
            for f in findings {
                println!("  [{:>4.0}%] {:?}: {}", f.severity * 100.0, f.kind, f.message);
            }
        }
    }
    if trace_on {
        let trace = tracer.take_trace();
        let a = analyze(&trace);
        println!("\ntrace analysis ({} events):", trace.len());
        println!(
            "  task execution {}   creation {}   sched-point non-exec {}",
            format_ns(a.total_task_exec_ns),
            format_ns(a.total_creation_ns),
            format_ns(a.total_sched_nonexec_ns)
        );
        println!(
            "  task switches {}   management/work ratio {:.3}",
            a.switches, a.management_to_work_ratio
        );
        for b in &a.by_kind {
            println!(
                "  {:<9} intervals {:>6}  dwell {:>10}  exec {:>10}  pre-switch {:>10}",
                b.kind.label(),
                b.intervals,
                format_ns(b.dwell_ns),
                format_ns(b.task_exec_ns),
                format_ns(b.pre_switch_ns)
            );
        }
    }
    if let Some(path) = save {
        if let Err(e) = std::fs::write(&path, write_profile(&profile)) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("profile saved to {path}");
    }
}

fn cmd_telemetry(args: &[String]) {
    let Some(app) = args.first().and_then(|n| app_by_name(n)) else {
        eprintln!("unknown app; try 'taskprof-cli list'");
        std::process::exit(2);
    };
    let mut opts = RunOpts::new(2);
    let mut interval_ms: u64 = 50;
    #[derive(PartialEq)]
    enum Format {
        Dashboard,
        Prometheus,
        Jsonl,
    }
    let mut format = Format::Dashboard;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                opts.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--scale" => {
                opts.scale = match it.next().map(String::as_str) {
                    Some("test") => Scale::Test,
                    Some("small") => Scale::Small,
                    Some("medium") => Scale::Medium,
                    _ => usage(),
                }
            }
            "--cutoff" => opts.variant = Variant::Cutoff,
            "--interval-ms" => {
                interval_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--format" => {
                format = match it.next().map(String::as_str) {
                    Some("dashboard") => Format::Dashboard,
                    Some("prometheus") => Format::Prometheus,
                    Some("jsonl") => Format::Jsonl,
                    _ => usage(),
                }
            }
            _ => usage(),
        }
    }

    let session = MeasurementSession::builder("taskprof-cli-telemetry")
        .threads(opts.threads)
        .telemetry()
        .build()
        .expect("default session configuration is valid");
    let telemetry = session
        .telemetry()
        .expect("telemetry was enabled on the builder");
    let sampler = telemetry.start_sampler(std::time::Duration::from_millis(interval_ms.max(1)));
    let out = run_app(app, session.monitor(), &opts);
    let series = sampler.stop();
    let elapsed = telemetry.elapsed_ns();
    eprintln!(
        "# {} scale={:?} threads={} kernel {:?} verified {} ({} samples at {interval_ms}ms)",
        app.name(),
        opts.scale,
        opts.threads,
        out.kernel,
        out.verified,
        series.len()
    );
    let report = session.finish();
    let final_snapshot = report
        .telemetry
        .expect("telemetry-enabled session reports a final snapshot");
    match format {
        Format::Dashboard => {
            print!("{}", render_telemetry(&final_snapshot, Some(elapsed)));
        }
        Format::Prometheus => {
            print!("{}", taskprof_telemetry::to_prometheus(&final_snapshot));
        }
        Format::Jsonl => {
            for point in &series {
                println!(
                    "{}",
                    taskprof_telemetry::to_jsonl_line(point.elapsed_ns, &point.snapshot)
                );
            }
            println!("{}", taskprof_telemetry::to_jsonl_line(elapsed, &final_snapshot));
        }
    }
}

fn cmd_explore(args: &[String]) {
    let mut seeds: u64 = std::env::var("TASKPROF_EXPLORE_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let mut threads: usize = 2;
    let mut which = String::from("all");
    let mut dfs_budget: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => {
                seeds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--workload" => which = it.next().cloned().unwrap_or_else(|| usage()),
            "--dfs" => {
                dfs_budget = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            _ => usage(),
        }
    }
    let workloads: Vec<simsched::TreeWorkload> = match which.as_str() {
        "fib" => vec![simsched::workloads::fib_like(3)],
        "flat" => vec![simsched::workloads::flat(6)],
        "mixed" => vec![simsched::workloads::mixed()],
        "all" => vec![
            simsched::workloads::fib_like(3),
            simsched::workloads::flat(6),
            simsched::workloads::mixed(),
        ],
        _ => usage(),
    };
    let mut failed = false;
    for w in &workloads {
        let report = simsched::explore_seeds(w, threads, 0..seeds);
        println!(
            "# {:<12} threads={threads} seeds={seeds}: {} runs, {} distinct schedules, {} violations",
            w.name(),
            report.runs,
            report.distinct_schedules,
            report.violations.len()
        );
        for v in &report.violations {
            println!("  violation: {v}");
            failed = true;
        }
        if let Some(budget) = dfs_budget {
            let (dfs, exhausted) = simsched::explore_dfs(w, threads, budget);
            println!(
                "# {:<12} dfs budget={budget}: {} schedules explored ({}), {} violations",
                w.name(),
                dfs.runs,
                if exhausted { "exhaustive" } else { "truncated" },
                dfs.violations.len()
            );
            for v in &dfs.violations {
                println!("  violation: {v}");
                failed = true;
            }
        }
    }
    if failed {
        eprintln!("schedule exploration found invariant violations");
        std::process::exit(1);
    }
    println!("all explored schedules satisfy the profile invariants");
}

fn cmd_diff(args: &[String]) {
    let [a_path, b_path] = args else { usage() };
    let load = |p: &String| {
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("cannot read {p}: {e}");
            std::process::exit(1);
        });
        read_profile(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {p}: {e}");
            std::process::exit(1);
        })
    };
    let a = AggProfile::from_profile(&load(a_path));
    let b = AggProfile::from_profile(&load(b_path));
    println!("{:>12} {:>12} {:>8}  path", "A incl", "B incl", "ratio");
    for row in diff_profiles(&a, &b).into_iter().take(25) {
        println!(
            "{:>12} {:>12} {:>8}  {}",
            format_ns(row.a_incl_ns),
            format_ns(row.b_incl_ns),
            row.ratio()
                .map(|r| format!("{r:.2}x"))
                .unwrap_or_else(|| "new".into()),
            row.path
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("telemetry") => cmd_telemetry(&args[1..]),
        Some("explore") => cmd_explore(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("list") => cmd_list(),
        _ => usage(),
    }
}
