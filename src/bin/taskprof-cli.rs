//! `taskprof-cli` — command-line front end for the suite.
//!
//! ```text
//! taskprof-cli run <app> [--threads N] [--scale test|small|medium]
//!                        [--cutoff] [--depth-param]
//!                        [--render] [--csv] [--diagnose] [--trace]
//!                        [--save FILE]
//! taskprof-cli telemetry <app> [--threads N] [--scale test|small|medium]
//!                              [--cutoff] [--interval-ms N]
//!                              [--format dashboard|prometheus|jsonl]
//! taskprof-cli explore [--seeds N] [--threads N]
//!                      [--workload fib|flat|mixed|all] [--dfs BUDGET]
//! taskprof-cli diff <a.profile> <b.profile>
//! taskprof-cli list
//! taskprof-cli serve --dir DIR [--addr HOST:PORT] [--max-conns N]
//!                    [--port-file FILE] [--proto json|bin|auto]
//!                    [--shards N] [--auth SECRET]
//!                    [--keep-last N] [--retain-since NS]
//!                    [--telemetry-jsonl FILE] [--telemetry-interval-ms N]
//! taskprof-cli ingest --addr HOST:PORT (--file F --bench NAME | --app fib|nqueens
//!                     [--seed S] [--runs K]) [--threads N]
//!                     [--spool DIR] [--deadline-ms N] [--proto json|bin|auto]
//!                     [--auth SECRET]
//! taskprof-cli drain --addr HOST:PORT --spool DIR [--deadline-ms N]
//!                    [--proto json|bin|auto] [--auth SECRET]
//! taskprof-cli query top|stats|regress|trend --addr HOST:PORT --bench NAME
//!                   [--threads N] [--n N] [--file F] [--threshold T]
//!                   [--last N] [--since-ns T] [--buckets N]
//!                   [--prometheus] [--proto json|bin|auto] [--auth SECRET]
//! taskprof-cli watch --addr HOST:PORT [--interval-ms N] [--frames N]
//!                    [--format dashboard|jsonl] [--proto json|bin|auto]
//!                    [--auth SECRET]
//! taskprof-cli replicate --from HOST:PORT --to HOST:PORT [--batch N]
//!                        [--proto json|bin|auto] [--auth SECRET]
//! taskprof-cli critpath (--app fib|nqueens | --workload fib|flat|mixed|div)
//!                       [--seed S] [--threads N]
//! taskprof-cli whatif --region NAME --speedup K
//!                     (--app fib|nqueens | --workload fib|flat|mixed|div)
//!                     [--seed S] [--threads N] [--validate]
//! ```
//!
//! `run` executes one BOTS code under the profiler (and optionally the
//! tracer) and reports; `telemetry` runs a code with live telemetry
//! enabled, sampling the lock-free gauges while it executes; `explore`
//! runs the deterministic schedule explorer (`simsched`) over seeded
//! simulated schedules and fails on any profile-invariant violation;
//! `diff` compares two saved profiles; `list` shows the available codes.
//!
//! Causal analysis: `critpath` runs a deterministic seeded source with
//! task create/join edge recording enabled and prints the work/span
//! report — total work, critical-path length, parallelism, per-region
//! rows, and detrimental-pattern warnings. `whatif` predicts the
//! program makespan with one region `--speedup K`× faster by re-solving
//! the recorded DAG with scaled weights; with `--workload` sources,
//! `--validate` re-runs the *actually sped-up* graph under the same seed
//! and exits 1 unless the measured makespan equals the prediction
//! exactly.
//!
//! The profile-repository commands: `serve` runs the `profserve` daemon
//! over a `profstore` directory (`--addr 127.0.0.1:0` binds an ephemeral
//! port, `--port-file` writes the bound port for scripting); `ingest`
//! uploads saved profiles or deterministic seeded runs of the simulated
//! BOTS codes; `query` prints the server's response line verbatim —
//! `regress` additionally exits 3 when the candidate regressed, so CI can
//! gate on the exit code.
//!
//! All repository commands take `--proto json|bin|auto` (default `auto`):
//! `serve` restricts which wire protocols the daemon accepts, while the
//! client commands pick the protocol they speak — `auto` attempts the
//! compact TPF1 binary framing and falls back to JSON lines when the
//! server refuses the handshake.
//!
//! Observability: every repository query takes a run *window* — `--last
//! N` restricts the aggregate to the N most recent runs, `--since-ns T`
//! to runs stamped at or after `T` (combine both to intersect); `query
//! trend` slices the windowed runs into `--buckets` per-window aggregates
//! for sparkline dashboards. `query stats --prometheus` (no `--bench`)
//! prints the daemon's full scrape document, including its per-verb
//! request-latency histograms. `watch` attaches a live subscription and
//! renders pushed telemetry snapshots and ingest notifications —
//! `--format jsonl` emits the raw event lines for scripts, `--frames N`
//! exits after N telemetry snapshots. `serve --telemetry-jsonl FILE`
//! appends the daemon's request-latency histograms to FILE as JSONL
//! records (one per `--telemetry-interval-ms`), the same sink format as
//! `telemetry --format jsonl`.
//!
//! Resilience: `ingest --spool DIR` degrades gracefully when the daemon
//! is unreachable — instead of failing, profiles land in `DIR` as
//! CRC-framed spool files (`--deadline-ms` bounds how long delivery may
//! try first). `drain` re-delivers a spool directory to a (recovered)
//! daemon, deleting each frame only after the server acks it, and exits
//! 1 while frames remain spooled so scripts can retry.
//!
//! Sharding & replication: `serve --shards N` opens the directory as N
//! routed sub-stores (runs land by benchmark, queries fan in across
//! shards); an existing sharded directory is detected and reopened with
//! its on-disk count. `serve --keep-last N` / `--retain-since NS` set a
//! retention policy the daemon enforces on its compaction cadence,
//! rewriting segments to reclaim disk. `serve --auth SECRET` requires
//! every connection to present the shared secret in `HELLO`;
//! the client commands pass the same secret with `--auth`. `replicate`
//! pumps every run a follower daemon is missing out of a leader —
//! resumable from the follower's own cursor, exactly-once under retries.
//!
//! `explore --seeds` defaults to the `TASKPROF_EXPLORE_SEEDS`
//! environment variable (or 64), which is how CI scales the sweep.

use bots::{run_app, AppId, RunOpts, Scale, Variant, ALL_APPS};
use cube::{
    diagnose, diff_profiles, format_ns, read_profile, render_loads, render_profile,
    render_telemetry, thread_loads, to_csv, to_dot, write_profile, write_profile_to, AggProfile,
    DiagnoseConfig, RenderOpts,
};
use std::sync::Arc;
use taskprof_session::MeasurementSession;
use taskprof_trace::{analyze, TraceMonitor};
use taskrt::Team;

fn usage() -> ! {
    eprintln!(
        "usage:\n  taskprof-cli run <app> [--threads N] [--scale test|small|medium] \
         [--cutoff] [--depth-param] [--render] [--csv] [--dot] [--diagnose] [--imbalance] [--trace] [--save FILE]\n  \
         taskprof-cli telemetry <app> [--threads N] [--scale test|small|medium] [--cutoff] \
         [--interval-ms N] [--format dashboard|prometheus|jsonl]\n  \
         taskprof-cli explore [--seeds N] [--threads N] [--workload fib|flat|mixed|all] [--dfs BUDGET]\n  \
         taskprof-cli diff <a.profile> <b.profile>\n  taskprof-cli list\n  \
         taskprof-cli serve --dir DIR [--addr HOST:PORT] [--max-conns N] [--port-file FILE] [--proto json|bin|auto] [--shards N] [--auth SECRET] [--keep-last N] [--retain-since NS] [--telemetry-jsonl FILE] [--telemetry-interval-ms N]\n  \
         taskprof-cli ingest --addr HOST:PORT (--file F --bench NAME | --app fib|nqueens [--seed S] [--runs K]) [--threads N] [--spool DIR] [--deadline-ms N] [--proto json|bin|auto] [--auth SECRET]\n  \
         taskprof-cli drain --addr HOST:PORT --spool DIR [--deadline-ms N] [--proto json|bin|auto] [--auth SECRET]\n  \
         taskprof-cli query top|stats|regress|trend --addr HOST:PORT --bench NAME [--threads N] [--n N] [--file F] [--threshold T] [--last N] [--since-ns T] [--buckets N] [--prometheus] [--proto json|bin|auto] [--auth SECRET]\n  \
         taskprof-cli watch --addr HOST:PORT [--interval-ms N] [--frames N] [--format dashboard|jsonl] [--proto json|bin|auto] [--auth SECRET]\n  \
         taskprof-cli replicate --from HOST:PORT --to HOST:PORT [--batch N] [--proto json|bin|auto] [--auth SECRET]\n  \
         taskprof-cli critpath (--app fib|nqueens | --workload fib|flat|mixed|div) [--seed S] [--threads N]\n  \
         taskprof-cli whatif --region NAME --speedup K (--app fib|nqueens | --workload fib|flat|mixed|div) [--seed S] [--threads N] [--validate]"
    );
    std::process::exit(2);
}

fn app_by_name(name: &str) -> Option<AppId> {
    ALL_APPS.into_iter().find(|a| a.name() == name)
}

fn cmd_list() {
    println!("available BOTS codes:");
    for app in ALL_APPS {
        println!(
            "  {:<10} task construct: {:<20} cut-off version: {}",
            app.name(),
            app.task_region_name(),
            if app.has_cutoff() { "yes" } else { "no" }
        );
    }
}

#[allow(clippy::too_many_lines)]
fn cmd_run(args: &[String]) {
    let Some(app) = args.first().and_then(|n| app_by_name(n)) else {
        eprintln!("unknown app; try 'taskprof-cli list'");
        std::process::exit(2);
    };
    let mut opts = RunOpts::new(2);
    let (mut render, mut csv, mut diag, mut trace_on) = (false, false, false, false);
    let mut imbalance = false;
    let mut dot = false;
    let mut save: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                opts.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--scale" => {
                opts.scale = match it.next().map(String::as_str) {
                    Some("test") => Scale::Test,
                    Some("small") => Scale::Small,
                    Some("medium") => Scale::Medium,
                    _ => usage(),
                }
            }
            "--cutoff" => opts.variant = Variant::Cutoff,
            "--depth-param" => opts.depth_param = true,
            "--render" => render = true,
            "--csv" => csv = true,
            "--dot" => dot = true,
            "--diagnose" => diag = true,
            "--imbalance" => imbalance = true,
            "--trace" => trace_on = true,
            "--save" => save = Some(it.next().cloned().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    if !(render || csv || dot || diag || trace_on || imbalance || save.is_some()) {
        render = true;
        diag = true;
    }

    let session = MeasurementSession::builder("taskprof-cli")
        .threads(opts.threads)
        .build()
        .expect("default session configuration is valid");
    let tracer = TraceMonitor::new();
    let out = if trace_on {
        run_app(app, &(&tracer, session.monitor()), &opts)
    } else {
        run_app(app, session.monitor(), &opts)
    };
    println!(
        "# {} scale={:?} threads={} variant={:?}: kernel {:?}, checksum {}, verified {}",
        app.name(),
        opts.scale,
        opts.threads,
        opts.variant,
        out.kernel,
        out.checksum,
        out.verified
    );
    let profile = session.finish().profile;
    let agg = AggProfile::from_profile(&profile);

    if render {
        println!("{}", render_profile(&agg, &RenderOpts::default()));
    }
    if csv {
        print!("{}", to_csv(&agg));
    }
    if dot {
        print!("{}", to_dot(&agg));
    }
    if imbalance {
        println!("per-thread load:");
        print!("{}", render_loads(&thread_loads(&profile)));
        println!();
    }
    if diag {
        let findings = diagnose(&profile, &DiagnoseConfig::default());
        if findings.is_empty() {
            println!("diagnosis: no task performance issues detected");
        } else {
            println!("diagnosis ({} findings):", findings.len());
            for f in findings {
                println!(
                    "  [{:>4.0}%] {:?}: {}",
                    f.severity * 100.0,
                    f.kind,
                    f.message
                );
            }
        }
    }
    if trace_on {
        let trace = tracer.take_trace();
        let a = analyze(&trace);
        println!("\ntrace analysis ({} events):", trace.len());
        println!(
            "  task execution {}   creation {}   sched-point non-exec {}",
            format_ns(a.total_task_exec_ns),
            format_ns(a.total_creation_ns),
            format_ns(a.total_sched_nonexec_ns)
        );
        println!(
            "  task switches {}   management/work ratio {:.3}",
            a.switches, a.management_to_work_ratio
        );
        for b in &a.by_kind {
            println!(
                "  {:<9} intervals {:>6}  dwell {:>10}  exec {:>10}  pre-switch {:>10}",
                b.kind.label(),
                b.intervals,
                format_ns(b.dwell_ns),
                format_ns(b.task_exec_ns),
                format_ns(b.pre_switch_ns)
            );
        }
    }
    if let Some(path) = save {
        if let Err(e) = write_profile_to(std::path::Path::new(&path), &profile) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("profile saved to {path}");
    }
}

fn cmd_telemetry(args: &[String]) {
    let Some(app) = args.first().and_then(|n| app_by_name(n)) else {
        eprintln!("unknown app; try 'taskprof-cli list'");
        std::process::exit(2);
    };
    let mut opts = RunOpts::new(2);
    let mut interval_ms: u64 = 50;
    #[derive(PartialEq)]
    enum Format {
        Dashboard,
        Prometheus,
        Jsonl,
    }
    let mut format = Format::Dashboard;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                opts.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--scale" => {
                opts.scale = match it.next().map(String::as_str) {
                    Some("test") => Scale::Test,
                    Some("small") => Scale::Small,
                    Some("medium") => Scale::Medium,
                    _ => usage(),
                }
            }
            "--cutoff" => opts.variant = Variant::Cutoff,
            "--interval-ms" => {
                interval_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--format" => {
                format = match it.next().map(String::as_str) {
                    Some("dashboard") => Format::Dashboard,
                    Some("prometheus") => Format::Prometheus,
                    Some("jsonl") => Format::Jsonl,
                    _ => usage(),
                }
            }
            _ => usage(),
        }
    }

    let session = MeasurementSession::builder("taskprof-cli-telemetry")
        .threads(opts.threads)
        .telemetry()
        .build()
        .expect("default session configuration is valid");
    let telemetry = session
        .telemetry()
        .expect("telemetry was enabled on the builder");
    let sampler = telemetry.start_sampler(std::time::Duration::from_millis(interval_ms.max(1)));
    let out = run_app(app, session.monitor(), &opts);
    let series = sampler.stop();
    let elapsed = telemetry.elapsed_ns();
    eprintln!(
        "# {} scale={:?} threads={} kernel {:?} verified {} ({} samples at {interval_ms}ms)",
        app.name(),
        opts.scale,
        opts.threads,
        out.kernel,
        out.verified,
        series.len()
    );
    let report = session.finish();
    let final_snapshot = report
        .telemetry
        .expect("telemetry-enabled session reports a final snapshot");
    match format {
        Format::Dashboard => {
            print!("{}", render_telemetry(&final_snapshot, Some(elapsed)));
        }
        Format::Prometheus => {
            print!("{}", taskprof_telemetry::to_prometheus(&final_snapshot));
        }
        Format::Jsonl => {
            for point in &series {
                println!(
                    "{}",
                    taskprof_telemetry::to_jsonl_line(point.elapsed_ns, &point.snapshot)
                );
            }
            println!(
                "{}",
                taskprof_telemetry::to_jsonl_line(elapsed, &final_snapshot)
            );
        }
    }
}

fn cmd_explore(args: &[String]) {
    let mut seeds: u64 = std::env::var("TASKPROF_EXPLORE_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let mut threads: usize = 2;
    let mut which = String::from("all");
    let mut dfs_budget: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => {
                seeds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--workload" => which = it.next().cloned().unwrap_or_else(|| usage()),
            "--dfs" => {
                dfs_budget = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            _ => usage(),
        }
    }
    let workloads: Vec<simsched::TreeWorkload> = match which.as_str() {
        "fib" => vec![simsched::workloads::fib_like(3)],
        "flat" => vec![simsched::workloads::flat(6)],
        "mixed" => vec![simsched::workloads::mixed()],
        "all" => vec![
            simsched::workloads::fib_like(3),
            simsched::workloads::flat(6),
            simsched::workloads::mixed(),
        ],
        _ => usage(),
    };
    let mut failed = false;
    for w in &workloads {
        let report = simsched::explore_seeds(w, threads, 0..seeds);
        println!(
            "# {:<12} threads={threads} seeds={seeds}: {} runs, {} distinct schedules, {} violations",
            w.name(),
            report.runs,
            report.distinct_schedules,
            report.violations.len()
        );
        for v in &report.violations {
            println!("  violation: {v}");
            failed = true;
        }
        if let Some(budget) = dfs_budget {
            let (dfs, exhausted) = simsched::explore_dfs(w, threads, budget);
            println!(
                "# {:<12} dfs budget={budget}: {} schedules explored ({}), {} violations",
                w.name(),
                dfs.runs,
                if exhausted { "exhaustive" } else { "truncated" },
                dfs.violations.len()
            );
            for v in &dfs.violations {
                println!("  violation: {v}");
                failed = true;
            }
        }
    }
    if failed {
        eprintln!("schedule exploration found invariant violations");
        std::process::exit(1);
    }
    println!("all explored schedules satisfy the profile invariants");
}

fn cmd_diff(args: &[String]) {
    let [a_path, b_path] = args else { usage() };
    let load = |p: &String| {
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("cannot read {p}: {e}");
            std::process::exit(1);
        });
        read_profile(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {p}: {e}");
            std::process::exit(1);
        })
    };
    let a = AggProfile::from_profile(&load(a_path));
    let b = AggProfile::from_profile(&load(b_path));
    println!("{:>12} {:>12} {:>8}  path", "A incl", "B incl", "ratio");
    for row in diff_profiles(&a, &b).into_iter().take(25) {
        println!(
            "{:>12} {:>12} {:>8}  {}",
            format_ns(row.a_incl_ns),
            format_ns(row.b_incl_ns),
            row.ratio()
                .map(|r| format!("{r:.2}x"))
                .unwrap_or_else(|| "new".into()),
            row.path
        );
    }
}

/// Parse a `--proto` value, dying with usage on anything unknown.
fn parse_proto(value: Option<&String>) -> profserve::WireProtocol {
    let Some(v) = value else { usage() };
    v.parse().unwrap_or_else(|e: String| {
        eprintln!("{e}");
        usage()
    })
}

fn cmd_serve(args: &[String]) {
    let mut dir: Option<String> = None;
    let mut addr = String::from("127.0.0.1:7979");
    let mut max_conns: usize = 64;
    let mut port_file: Option<String> = None;
    let mut proto = profserve::WireProtocol::Auto;
    let mut shards: Option<u32> = None;
    let mut auth: Option<String> = None;
    let mut keep_last: Option<u64> = None;
    let mut retain_since: Option<u64> = None;
    let mut telemetry_jsonl: Option<String> = None;
    let mut telemetry_interval_ms: u64 = 1_000;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dir" => dir = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--addr" => addr = it.next().cloned().unwrap_or_else(|| usage()),
            "--max-conns" => {
                max_conns = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--port-file" => port_file = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--proto" => proto = parse_proto(it.next()),
            "--shards" => {
                shards = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--auth" => auth = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--keep-last" => {
                keep_last = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--retain-since" => {
                retain_since = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--telemetry-jsonl" => {
                telemetry_jsonl = Some(it.next().cloned().unwrap_or_else(|| usage()))
            }
            "--telemetry-interval-ms" => {
                telemetry_interval_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    let Some(dir) = dir else { usage() };
    let dir_path = std::path::Path::new(&dir);
    // A directory that is already sharded reopens with its on-disk
    // count; --shards N > 1 shards a fresh directory. A mismatch
    // between the flag and an existing SHARDS file is refused by the
    // store (no silent re-routing of existing runs).
    let on_disk_shards: Option<u32> = std::fs::read_to_string(dir_path.join("SHARDS"))
        .ok()
        .and_then(|s| s.trim().parse().ok());
    let shard_count = shards.or(on_disk_shards).unwrap_or(1);
    let repo: profstore::Repo = if shard_count > 1 {
        profstore::ShardedStore::open(dir_path, shard_count)
            .unwrap_or_else(|e| {
                eprintln!("cannot open sharded store {dir}: {e}");
                std::process::exit(1);
            })
            .into()
    } else {
        profstore::ProfileStore::open(dir_path)
            .unwrap_or_else(|e| {
                eprintln!("cannot open store {dir}: {e}");
                std::process::exit(1);
            })
            .into()
    };
    let stats = repo.stats();
    let retention = if keep_last.is_some() || retain_since.is_some() {
        Some(profstore::RetentionPolicy {
            keep_last,
            min_timestamp_ns: retain_since,
        })
    } else {
        None
    };
    let config = profserve::ServeConfig {
        max_connections: max_conns,
        protocols: proto,
        auth_secret: auth,
        retention,
        ..profserve::ServeConfig::default()
    };
    let server = profserve::Server::bind(&addr, repo, config).unwrap_or_else(|e| {
        eprintln!("cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    let bound = server.local_addr().expect("bound address");
    if let Some(pf) = port_file {
        // Written atomically so a polling script never reads a half
        // written port number.
        let tmp = format!("{pf}.tmp-{}", std::process::id());
        if std::fs::write(&tmp, format!("{}\n", bound.port()))
            .and_then(|()| std::fs::rename(&tmp, &pf))
            .is_err()
        {
            eprintln!("cannot write port file {pf}");
            std::process::exit(1);
        }
    }
    // Daemon-side JSONL telemetry: a sampler thread appends the
    // request-latency histograms to the configured sink at a fixed
    // cadence, in the same format family as `telemetry --format jsonl`.
    if let Some(path) = telemetry_jsonl {
        let handle = server.handle().expect("server handle");
        let every = std::time::Duration::from_millis(telemetry_interval_ms.max(50));
        std::thread::spawn(move || {
            use std::io::Write as _;
            let mut file = match std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot open telemetry sink {path}: {e}");
                    return;
                }
            };
            while !handle.stopped() {
                std::thread::sleep(every);
                let t_ns = std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(0);
                if writeln!(file, "{}", handle.latency_jsonl_line(t_ns)).is_err() {
                    return;
                }
            }
        });
    }
    eprintln!(
        "# profserve listening on {bound} (protocols {proto}), store {dir} ({} runs in {} segments, {} shard(s))",
        stats.runs, stats.segments, shard_count
    );
    if let Err(e) = server.run() {
        eprintln!("server error: {e}");
        std::process::exit(1);
    }
}

/// One deterministic seeded run of a simulated BOTS code, profiled under
/// the seeded `simsched` scheduler and its virtual clocks: the same
/// (app, seed, threads) always yields a byte-identical profile.
fn deterministic_profile(app: &str, seed: u64, threads: usize) -> taskprof::Profile {
    let sched = Arc::new(simsched::SimScheduler::new(seed));
    let clock = sched.clock().clone();
    let team = Team::new(threads).with_policy(sched);
    let monitor = taskprof::ProfMonitor::builder()
        .clock(clock)
        .build()
        .expect("profiler config is valid");
    let opts = RunOpts::new(threads);
    match app {
        "fib" => {
            bots::fib::run_with_team(&monitor, &team, &opts);
        }
        "nqueens" => {
            bots::nqueens::run_with_team(&monitor, &team, &opts);
        }
        _ => {
            eprintln!("--app must be fib or nqueens (simulated deterministic codes)");
            std::process::exit(2);
        }
    }
    monitor.take_profile().expect("region finished")
}

/// How a `critpath`/`whatif` invocation obtains its task DAG: either a
/// deterministic seeded run of a simulated BOTS code (`--app`) or a
/// synthetic `simsched` workload (`--workload`).
struct DagSource {
    app: Option<String>,
    workload: Option<String>,
    seed: u64,
    threads: usize,
}

impl DagSource {
    fn parse(a: &str, it: &mut std::slice::Iter<'_, String>, src: &mut DagSource) -> bool {
        match a {
            "--app" => src.app = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--workload" => src.workload = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--seed" => {
                src.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--threads" => {
                src.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            _ => return false,
        }
        true
    }

    fn workload_by_name(name: &str) -> simsched::TreeWorkload {
        match name {
            "fib" => simsched::workloads::fib_like(3),
            "flat" => simsched::workloads::flat(6),
            "mixed" => simsched::workloads::mixed(),
            "div" => simsched::workloads::divisible(3),
            _ => usage(),
        }
    }

    /// Run the selected source and assemble its critical-path DAG.
    fn build_dag(&self) -> critpath::TaskDag {
        match (&self.app, &self.workload) {
            (Some(app), None) => deterministic_dag(app, self.seed, self.threads),
            (None, Some(w)) => {
                let workload = Self::workload_by_name(w);
                let cfg = simsched::SimConfig::seeded(self.threads, self.seed);
                let run = simsched::run_workload(&workload, &cfg);
                simsched::whatif::analyze(&run, &workload)
                    .unwrap_or_else(|e| die_dag(workload.name(), &e))
            }
            _ => {
                eprintln!("exactly one of --app fib|nqueens or --workload fib|flat|mixed|div is required");
                std::process::exit(2);
            }
        }
    }
}

fn die_dag(what: &str, e: &critpath::DagError) -> ! {
    eprintln!("cannot assemble task DAG for {what}: {e}");
    std::process::exit(1);
}

/// Like [`deterministic_profile`], but with task create/join edge
/// recording enabled; returns the assembled critical-path DAG instead of
/// the call-path profile.
fn deterministic_dag(app: &str, seed: u64, threads: usize) -> critpath::TaskDag {
    let sched = Arc::new(simsched::SimScheduler::new(seed));
    let clock = sched.clock().clone();
    let team = Team::new(threads).with_policy(sched);
    let monitor = taskprof::ProfMonitor::builder()
        .clock(clock)
        .record_task_edges()
        .build()
        .expect("profiler config is valid");
    let opts = RunOpts::new(threads);
    let par = match app {
        "fib" => {
            bots::fib::run_with_team(&monitor, &team, &opts);
            bots::fib::regions().par.region
        }
        "nqueens" => {
            bots::nqueens::run_with_team(&monitor, &team, &opts);
            bots::nqueens::regions().par.region
        }
        _ => {
            eprintln!("--app must be fib or nqueens (simulated deterministic codes)");
            std::process::exit(2);
        }
    };
    let streams = monitor.take_edge_streams().expect("run finished");
    let dopts = critpath::DagOptions {
        undeferred_spawn_cost: Some(simsched::DEFAULT_SPAWN_COST_NS),
    };
    critpath::TaskDag::from_streams(&streams, par, &dopts).unwrap_or_else(|e| die_dag(app, &e))
}

/// Resolve a region by name regardless of kind — region names are unique
/// per kind in the registry, and what-if targets are usually task or
/// user-function regions, so try every kind in a fixed order.
fn resolve_region(name: &str) -> Option<pomp::RegionId> {
    use pomp::RegionKind as K;
    [
        K::Task,
        K::Function,
        K::TaskCreate,
        K::Single,
        K::Parallel,
        K::Taskwait,
        K::Workshare,
        K::Critical,
        K::ImplicitBarrier,
        K::ExplicitBarrier,
    ]
    .into_iter()
    .find_map(|k| pomp::registry().lookup(name, k))
}

fn cmd_critpath(args: &[String]) {
    let mut src = DagSource {
        app: None,
        workload: None,
        seed: 42,
        threads: 2,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if !DagSource::parse(a, &mut it, &mut src) {
            usage();
        }
    }
    let dag = src.build_dag();
    print!("{}", cube::render_critpath(&dag.report()));
}

fn cmd_whatif(args: &[String]) {
    let mut src = DagSource {
        app: None,
        workload: None,
        seed: 42,
        threads: 2,
    };
    let mut region_name: Option<String> = None;
    let mut speedup: Option<u64> = None;
    let mut validate = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--region" => region_name = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--speedup" => {
                speedup = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            other => {
                if !DagSource::parse(other, &mut it, &mut src) {
                    if other == "--validate" {
                        validate = true;
                    } else {
                        usage();
                    }
                }
            }
        }
    }
    let region_name = region_name.unwrap_or_else(|| usage());
    let speedup = speedup.unwrap_or_else(|| usage());
    if speedup == 0 {
        eprintln!("--speedup must be at least 1");
        std::process::exit(2);
    }
    let dag = src.build_dag();
    let region = resolve_region(&region_name).unwrap_or_else(|| {
        eprintln!("unknown region {region_name:?}; run `taskprof-cli critpath` with the same source to list region names");
        std::process::exit(2);
    });
    if dag.region_work_ns(region) == 0 {
        eprintln!(
            "region {region_name:?} has no recorded work in this run; the prediction would be vacuous"
        );
        std::process::exit(2);
    }
    let prediction = dag.what_if(region, speedup);
    print!("{}", cube::render_whatif(&prediction, &region_name));
    if !validate {
        return;
    }
    let Some(wname) = src.workload.as_deref() else {
        eprintln!("--validate requires --workload (BOTS app bodies cannot be rebuilt with scaled work)");
        std::process::exit(2);
    };
    let workload = DagSource::workload_by_name(wname);
    let cfg = simsched::SimConfig::seeded(src.threads, src.seed);
    match simsched::validate_whatif(&workload, &cfg, region, speedup) {
        None => {
            eprintln!(
                "cannot validate: some work in {region_name:?} is not divisible by {speedup} \
                 (the sped-up graph is not representable in integer virtual time)"
            );
            std::process::exit(1);
        }
        Some(v) => {
            println!(
                "validation: replayed makespan {}  choice trace {}",
                format_ns(v.replayed_makespan_ns),
                if v.traces_match { "matched" } else { "DIVERGED" }
            );
            if v.exact() {
                println!("replay reproduced the prediction exactly");
            } else {
                eprintln!(
                    "what-if validation FAILED: predicted {} but replay measured {}",
                    format_ns(v.predicted_makespan_ns),
                    format_ns(v.replayed_makespan_ns)
                );
                std::process::exit(1);
            }
        }
    }
}

fn connect_or_die(
    addr: &str,
    proto: profserve::WireProtocol,
    auth: Option<&str>,
) -> profserve::Client {
    profserve::Client::connect_proto_auth(addr, proto, profserve::ClientTimeouts::unbounded(), auth)
        .unwrap_or_else(|e| {
            eprintln!("cannot connect to {addr}: {e}");
            std::process::exit(1);
        })
}

/// Translate a delivery policy into per-phase client timeouts (never
/// zero: `set_read_timeout` rejects a zero duration).
fn policy_timeouts(policy: &taskprof_session::ExportPolicy) -> profserve::ClientTimeouts {
    let floor = std::time::Duration::from_millis(1);
    profserve::ClientTimeouts {
        connect: Some(policy.connect_timeout.min(policy.deadline).max(floor)),
        read: Some(policy.io_timeout.min(policy.deadline).max(floor)),
        write: Some(policy.io_timeout.min(policy.deadline).max(floor)),
    }
}

fn delivery_policy(
    deadline_ms: Option<u64>,
    spool: Option<&String>,
    proto: profserve::WireProtocol,
    auth: Option<String>,
) -> taskprof_session::ExportPolicy {
    let mut policy = taskprof_session::ExportPolicy::default();
    if let Some(ms) = deadline_ms {
        policy.deadline = std::time::Duration::from_millis(ms.max(1));
    }
    policy.spool_dir = spool.map(std::path::PathBuf::from);
    policy.wire_protocol = proto;
    policy.auth = auth;
    policy
}

#[allow(clippy::too_many_lines)]
fn cmd_ingest(args: &[String]) {
    let mut addr: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut bench: Option<String> = None;
    let mut app: Option<String> = None;
    let mut threads: usize = 2;
    let mut seed: u64 = 42;
    let mut runs: u64 = 1;
    let mut spool: Option<String> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut proto = profserve::WireProtocol::Auto;
    let mut auth: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--file" => files.push(it.next().cloned().unwrap_or_else(|| usage())),
            "--bench" => bench = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--app" => app = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--runs" => {
                runs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--spool" => spool = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--deadline-ms" => {
                deadline_ms = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--proto" => proto = parse_proto(it.next()),
            "--auth" => auth = Some(it.next().cloned().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    let Some(addr) = addr else { usage() };
    let policy = delivery_policy(deadline_ms, spool.as_ref(), proto, auth);

    // Collect (bench, timestamp, profile) upfront so a dead daemon can
    // still spool every one of them.
    let mut items: Vec<(String, Option<u64>, taskprof::Profile)> = Vec::new();
    if let Some(app) = app {
        // Deterministic seeded runs: timestamps derive from the seed so
        // identical sweeps produce byte-identical stored indexes.
        for k in 0..runs {
            let run_seed = seed + k;
            let profile = deterministic_profile(&app, run_seed, threads);
            let bench_name = bench.clone().unwrap_or_else(|| app.clone());
            items.push((bench_name, Some(run_seed * 1_000), profile));
        }
    } else if !files.is_empty() {
        let Some(bench) = bench else {
            eprintln!("--file requires --bench NAME");
            std::process::exit(2);
        };
        for f in &files {
            let text = std::fs::read_to_string(f).unwrap_or_else(|e| {
                eprintln!("cannot read {f}: {e}");
                std::process::exit(1);
            });
            let profile = read_profile(&text).unwrap_or_else(|e| {
                eprintln!("cannot parse {f}: {e}");
                std::process::exit(1);
            });
            items.push((bench.clone(), None, profile));
        }
    } else {
        usage();
    }

    // Degrade the whole batch to the spool when the daemon is down.
    let spool_item = |bench: &str, ts: Option<u64>, profile: &taskprof::Profile| {
        let dir = policy.spool_dir.as_deref().expect("spool configured");
        let ts = ts.unwrap_or_else(|| {
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0)
        });
        match taskprof_session::spool_profile(dir, bench, threads as u32, ts, profile) {
            Ok(path) => println!("daemon unreachable; spooled {bench} to {}", path.display()),
            Err(e) => {
                eprintln!("cannot spool {bench}: {e}");
                std::process::exit(1);
            }
        }
    };

    let mut client = match profserve::Client::connect_proto_auth(
        &addr,
        proto,
        policy_timeouts(&policy),
        policy.auth.as_deref(),
    ) {
        Ok(c) => Some(c),
        Err(e) if policy.spool_dir.is_some() => {
            eprintln!("cannot connect to {addr}: {e}");
            None
        }
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    for (bench_name, ts, profile) in &items {
        match client.as_mut() {
            Some(c) => {
                let record =
                    profserve::Record::from_profile(bench_name, threads as u32, *ts, profile);
                match c.ingest_record(&record) {
                    Ok(receipt) => println!(
                        "ingested {bench_name} as run {} ({} bytes, segment {})",
                        receipt.run_id(),
                        receipt.bytes,
                        receipt.segment
                    ),
                    Err(profserve::ClientError::Io(e)) if policy.spool_dir.is_some() => {
                        eprintln!("ingest transport failed: {e}");
                        client = None;
                        spool_item(bench_name, *ts, profile);
                    }
                    Err(e) => {
                        eprintln!("ingest of {bench_name} failed: {e}");
                        std::process::exit(1);
                    }
                }
            }
            None => spool_item(bench_name, *ts, profile),
        }
    }
    // Drain-on-success: a reachable daemon also gets anything spooled
    // by earlier, less lucky invocations.
    if client.is_some() {
        if let Some(dir) = policy.spool_dir.as_deref() {
            if dir.is_dir() {
                let report = taskprof_session::drain_spool(dir, &addr, &policy);
                if report.delivered > 0 || report.quarantined > 0 {
                    println!(
                        "drained {} spooled frame(s), {} quarantined, {} remaining",
                        report.delivered, report.quarantined, report.remaining
                    );
                }
            }
        }
    }
}

fn cmd_drain(args: &[String]) {
    let mut addr: Option<String> = None;
    let mut spool: Option<String> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut proto = profserve::WireProtocol::Auto;
    let mut auth: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--spool" => spool = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--deadline-ms" => {
                deadline_ms = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--proto" => proto = parse_proto(it.next()),
            "--auth" => auth = Some(it.next().cloned().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    let (Some(addr), Some(spool)) = (addr, spool) else {
        usage()
    };
    let policy = delivery_policy(deadline_ms, None, proto, auth);
    let report = taskprof_session::drain_spool(std::path::Path::new(&spool), &addr, &policy);
    println!(
        "drained {} frame(s), {} quarantined (.bad), {} remaining",
        report.delivered, report.quarantined, report.remaining
    );
    if report.remaining > 0 {
        std::process::exit(1);
    }
}

#[allow(clippy::too_many_lines)]
fn cmd_query(args: &[String]) {
    let Some(what) = args.first().map(String::as_str) else {
        usage()
    };
    let mut addr: Option<String> = None;
    let mut bench: Option<String> = None;
    let mut threads: usize = 2;
    let mut n: usize = 10;
    let mut file: Option<String> = None;
    let mut app: Option<String> = None;
    let mut seed: u64 = 42;
    let mut threshold: Option<f64> = None;
    let mut proto = profserve::WireProtocol::Auto;
    let mut last: Option<u64> = None;
    let mut since_ns: Option<u64> = None;
    let mut buckets: u32 = 8;
    let mut prometheus = false;
    let mut auth: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--proto" => proto = parse_proto(it.next()),
            "--auth" => auth = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--addr" => addr = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--bench" => bench = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--n" => {
                n = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--file" => file = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--app" => app = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--threshold" => {
                threshold = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--last" => {
                last = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--since-ns" => {
                since_ns = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--buckets" => {
                buckets = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--prometheus" => prometheus = true,
            _ => usage(),
        }
    }
    let Some(addr) = addr else { usage() };
    let window = profstore::RunWindow { last, since_ns };
    let mut client = connect_or_die(&addr, proto, auth.as_deref());
    let die = |e: profserve::ClientError| -> ! {
        eprintln!("query failed: {e}");
        std::process::exit(1);
    };
    // Typed reports are printed as the canonical JSON response line, so
    // scripted consumers see identical output on both wire protocols.
    match what {
        "top" => {
            let Some(bench) = bench else { usage() };
            let report = client
                .query_top_window(&bench, threads as u32, n, window)
                .unwrap_or_else(|e| die(e));
            println!("{}", profserve::Response::Top(report).to_json_line());
        }
        "stats" => {
            if let Some(bench) = bench {
                let report = client
                    .query_stats_window(&bench, threads as u32, window)
                    .unwrap_or_else(|e| die(e));
                println!("{}", profserve::Response::Stats(report).to_json_line());
            } else if prometheus {
                // Scrape document: the verbatim text, not a JSON line.
                let text = client.server_stats_prometheus().unwrap_or_else(|e| die(e));
                print!("{text}");
            } else {
                // Without --bench, report server health.
                let report = client.server_stats().unwrap_or_else(|e| die(e));
                println!(
                    "{}",
                    profserve::Response::ServerStats(report).to_json_line()
                );
            }
        }
        "trend" => {
            let Some(bench) = bench else { usage() };
            let report = client
                .query_trend(&bench, threads as u32, buckets, window)
                .unwrap_or_else(|e| die(e));
            println!("{}", profserve::Response::Trend(report).to_json_line());
        }
        "regress" => {
            let Some(bench) = bench else { usage() };
            let text = if let Some(f) = file {
                std::fs::read_to_string(&f).unwrap_or_else(|e| {
                    eprintln!("cannot read {f}: {e}");
                    std::process::exit(1);
                })
            } else if let Some(app) = app {
                write_profile(&deterministic_profile(&app, seed, threads))
            } else {
                eprintln!("regress needs --file F or --app fib|nqueens");
                std::process::exit(2);
            };
            let report = client
                .query_regress_window(
                    &bench,
                    threads as u32,
                    profserve::ProfilePayload::Text(text),
                    threshold,
                    None,
                    None,
                    window,
                )
                .unwrap_or_else(|e| die(e));
            let regressed = report.regressed;
            println!("{}", profserve::Response::Regress(report).to_json_line());
            if regressed {
                std::process::exit(3);
            }
        }
        _ => usage(),
    }
}

/// `watch`: attach a live subscription and render pushed events.
fn cmd_watch(args: &[String]) {
    let mut addr: Option<String> = None;
    let mut interval_ms: Option<u64> = None;
    let mut frames: Option<u64> = None;
    let mut jsonl = false;
    let mut proto = profserve::WireProtocol::Auto;
    let mut auth: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--interval-ms" => {
                interval_ms = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--frames" => {
                frames = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--format" => {
                jsonl = match it.next().map(String::as_str) {
                    Some("dashboard") => false,
                    Some("jsonl") => true,
                    _ => usage(),
                }
            }
            "--proto" => proto = parse_proto(it.next()),
            "--auth" => auth = Some(it.next().cloned().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    let Some(addr) = addr else { usage() };
    let client = connect_or_die(&addr, proto, auth.as_deref());
    let (mut sub, granted_ms) = client.subscribe(interval_ms).unwrap_or_else(|e| {
        eprintln!("cannot subscribe: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "# watching {addr} over {} (telemetry every {granted_ms}ms{})",
        sub.protocol(),
        frames
            .map(|f| format!(", exiting after {f} frames"))
            .unwrap_or_default()
    );
    let mut seen_frames: u64 = 0;
    loop {
        let event = match sub.next_event() {
            Ok(event) => event,
            Err(e) => {
                eprintln!("subscription ended: {e}");
                std::process::exit(1);
            }
        };
        if jsonl {
            // Raw event lines for scripts, identical on both protocols.
            println!(
                "{}",
                profserve::Response::Event(event.clone()).to_json_line()
            );
        } else {
            match &event {
                profserve::Notification::Telemetry { t_ns, stats } => {
                    print!("{}", cube::render_fleet(&fleet_stats(*t_ns, stats)));
                }
                profserve::Notification::Ingest {
                    first_run_id,
                    count,
                    bytes,
                    benchmark,
                    threads,
                } => {
                    println!(
                        "ingest: {count} run(s) of {benchmark}@{threads} from run id {first_run_id} ({bytes} bytes)"
                    );
                }
                profserve::Notification::Lagged { dropped } => {
                    println!("lagged: {dropped} event(s) dropped (subscriber fell behind)");
                }
            }
        }
        if let profserve::Notification::Telemetry { .. } = event {
            seen_frames += 1;
            if frames.is_some_and(|f| seen_frames >= f) {
                return;
            }
        }
    }
}

/// `replicate`: pump every run the follower is missing from the leader,
/// resuming from the follower's own cursor.
fn cmd_replicate(args: &[String]) {
    let mut from: Option<String> = None;
    let mut to: Option<String> = None;
    let mut config = profserve::ReplicaConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--from" => from = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--to" => to = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--batch" => {
                config.batch = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--proto" => config.proto = parse_proto(it.next()),
            "--auth" => config.auth = Some(it.next().cloned().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    let (Some(from), Some(to)) = (from, to) else {
        usage()
    };
    match profserve::replicate(&from, &to, &config) {
        Ok(report) => println!(
            "replicated {from} -> {to}: {} frame(s) applied, {} already present, \
             cursor {} -> {} over {} page(s)",
            report.frames_applied,
            report.frames_skipped,
            report.start_cursor,
            report.end_cursor,
            report.pages
        ),
        Err(e) => {
            eprintln!("replication failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Adapt a daemon `STATS` report to the plain-field dashboard struct.
fn fleet_stats(t_ns: u64, s: &profserve::ServerStatsReport) -> cube::FleetStats {
    cube::FleetStats {
        t_ns,
        uptime_secs: s.uptime_secs,
        read_only: s.read_only,
        connections: s.service.connections,
        ingests: s.service.ingests,
        ingest_bytes: s.service.ingest_bytes,
        queries: s.service.queries,
        errors: s.service.errors,
        subscriptions: s.service.subscriptions,
        sub_events: s.service.sub_events,
        sub_lagged: s.service.sub_lagged,
        store_runs: s.store.runs,
        store_segments: s.store.segments,
        store_bytes: s.store.bytes,
        latency: s
            .latency
            .iter()
            .map(|l| cube::FleetLatencyRow {
                verb: l.verb.clone(),
                proto: l.proto.clone(),
                count: l.count,
                p50_ns: l.p50_ns,
                p99_ns: l.p99_ns,
                max_ns: l.max_ns,
            })
            .collect(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("telemetry") => cmd_telemetry(&args[1..]),
        Some("explore") => cmd_explore(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("list") => cmd_list(),
        Some("serve") => cmd_serve(&args[1..]),
        Some("ingest") => cmd_ingest(&args[1..]),
        Some("drain") => cmd_drain(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("watch") => cmd_watch(&args[1..]),
        Some("replicate") => cmd_replicate(&args[1..]),
        Some("critpath") => cmd_critpath(&args[1..]),
        Some("whatif") => cmd_whatif(&args[1..]),
        _ => usage(),
    }
}
