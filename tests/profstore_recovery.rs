//! Crash-safety of the profile repository's segment log: a write torn
//! mid-record (the moral equivalent of `kill -9` during `INGEST`) must
//! cost at most the in-flight record — every previously acknowledged run
//! survives, byte-exact, and the store keeps accepting ingests.

use pomp::{registry, RegionKind, TaskIdAllocator};
use profstore::{ProfileStore, StoreConfig, StoreError};
use std::path::PathBuf;
use taskprof::{AssignPolicy, Event, Profile, TeamReplayer};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "profstore-recovery-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn deterministic_profile(tag: &str, task_ns: u64) -> Profile {
    let reg = registry();
    let par = reg.register(&format!("rec-{tag}-par"), RegionKind::Parallel, "t", 0);
    let task = reg.register(&format!("rec-{tag}-task"), RegionKind::Task, "t", 0);
    let ids = TaskIdAllocator::new();
    let mut team = TeamReplayer::new(2, par, AssignPolicy::Executing);
    let id = ids.alloc();
    team.apply(0, Event::TaskBegin { region: task, id })
        .advance(task_ns)
        .apply(0, Event::TaskEnd { region: task, id });
    team.finish()
}

fn last_segment(dir: &std::path::Path) -> PathBuf {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read store dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().map(|x| x == "log").unwrap_or(false))
        .collect();
    segments.sort();
    segments.pop().expect("at least one segment")
}

#[test]
fn torn_tail_record_is_truncated_and_earlier_runs_survive() {
    let dir = temp_dir("torn-tail");
    let ingested: Vec<(u64, Profile)> = {
        let mut store = ProfileStore::open(&dir).expect("open");
        (0..5u64)
            .map(|k| {
                let p = deterministic_profile("a", 100 + k * 10);
                let receipt = store
                    .ingest("recovery-bench", 2, 1_000 + k, &p)
                    .expect("ingest");
                (receipt.run_id, p)
            })
            .collect()
    };

    // Tear the final frame: chop a few bytes off the end of the active
    // segment, as a crash mid-write would.
    let seg = last_segment(&dir);
    let len = std::fs::metadata(&seg).expect("metadata").len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&seg)
        .expect("open segment");
    file.set_len(len - 3).expect("truncate");
    drop(file);

    let store = ProfileStore::open(&dir).expect("recovering open succeeds");
    assert!(
        store.stats().recovered_tail_bytes > 0,
        "recovery must report the dropped tail"
    );
    // Exactly the in-flight (last) record is gone.
    assert_eq!(store.stats().runs, ingested.len() as u64 - 1);
    for (run_id, original) in &ingested[..ingested.len() - 1] {
        let (meta, loaded) = store.load(*run_id).expect("survivor loads");
        assert_eq!(meta.run_id, *run_id);
        assert_eq!(meta.benchmark, "recovery-bench");
        assert_eq!(
            cube::write_profile(&loaded),
            cube::write_profile(original),
            "run {run_id} must round-trip byte-exact through recovery"
        );
    }
    let lost = ingested.last().expect("had runs").0;
    assert!(matches!(store.load(lost), Err(StoreError::NotFound(_))));
}

#[test]
fn recovered_store_keeps_ingesting_and_reuses_no_run_id() {
    let dir = temp_dir("reingest");
    {
        let mut store = ProfileStore::open(&dir).expect("open");
        for k in 0..3u64 {
            store
                .ingest("reingest-bench", 2, k, &deterministic_profile("b", 50 + k))
                .expect("ingest");
        }
    }
    let seg = last_segment(&dir);
    let len = std::fs::metadata(&seg).expect("metadata").len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&seg)
        .expect("open segment")
        .set_len(len - 1)
        .expect("truncate");

    let mut store = ProfileStore::open(&dir).expect("recovering open");
    let before = store.stats().runs;
    let receipt = store
        .ingest("reingest-bench", 2, 99, &deterministic_profile("b", 500))
        .expect("post-recovery ingest");
    assert_eq!(store.stats().runs, before + 1);
    // The truncated run's id is never recycled: ids stay unique for the
    // lifetime of the directory, so external references cannot alias.
    assert!(receipt.run_id > 3, "run id {} was recycled", receipt.run_id);

    // And a clean reopen sees everything the recovered store wrote.
    drop(store);
    let store = ProfileStore::open(&dir).expect("clean reopen");
    assert_eq!(store.stats().recovered_tail_bytes, 0);
    assert_eq!(store.stats().runs, before + 1);
}

#[test]
fn zero_length_final_segment_recovers_with_a_fresh_header() {
    let dir = temp_dir("zero-final");
    {
        // Tiny segments force rotation so earlier runs live in closed
        // segments that must survive untouched.
        let mut store = ProfileStore::open_with(
            &dir,
            StoreConfig {
                segment_max_bytes: 1,
                sync_writes: false,
            },
        )
        .expect("open");
        for k in 0..3u64 {
            store
                .ingest("zero-bench", 2, k, &deterministic_profile("z", 40 + k))
                .expect("ingest");
        }
    }
    // Simulate a crash between segment creation and the magic write
    // during rotation: the final segment exists but is empty.
    let seg = last_segment(&dir);
    std::fs::OpenOptions::new()
        .write(true)
        .open(&seg)
        .expect("open segment")
        .set_len(0)
        .expect("truncate to zero");

    let mut store = ProfileStore::open(&dir).expect("recovering open");
    assert_eq!(store.stats().runs, 2, "closed-segment runs survive");
    let receipt = store
        .ingest("zero-bench", 2, 99, &deterministic_profile("z", 400))
        .expect("post-recovery ingest");

    // The recovered segment got its header back: records appended after
    // recovery survive the next open instead of being discarded behind a
    // missing magic.
    drop(store);
    let store = ProfileStore::open(&dir).expect("clean reopen");
    assert_eq!(store.stats().recovered_tail_bytes, 0);
    assert_eq!(store.stats().runs, 3);
    store.load(receipt.run_id).expect("post-recovery run loads");
}

#[test]
fn corruption_in_a_closed_segment_is_an_error_not_a_silent_drop() {
    let dir = temp_dir("closed-corrupt");
    {
        // Tiny segments force rotation, producing closed segments.
        let mut store = ProfileStore::open_with(
            &dir,
            StoreConfig {
                segment_max_bytes: 1,
                sync_writes: false,
            },
        )
        .expect("open");
        for k in 0..3u64 {
            store
                .ingest("closed-bench", 2, k, &deterministic_profile("c", 70 + k))
                .expect("ingest");
        }
    }
    let mut segments: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("read dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().map(|x| x == "log").unwrap_or(false))
        .collect();
    segments.sort();
    assert!(segments.len() >= 2, "rotation should have closed a segment");
    let closed = &segments[0];
    let len = std::fs::metadata(closed).expect("metadata").len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(closed)
        .expect("open closed segment")
        .set_len(len - 2)
        .expect("truncate");

    // A torn tail is only legal in the *last* segment; damage anywhere
    // else means lost acknowledged data and must refuse to open quietly.
    match ProfileStore::open_with(
        &dir,
        StoreConfig {
            segment_max_bytes: 1,
            sync_writes: false,
        },
    ) {
        Err(StoreError::Corrupt { .. }) => {}
        other => panic!("expected Corrupt, got {other:?}"),
    }
}
