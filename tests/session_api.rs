//! End-to-end coverage of the `MeasurementSession` front door: builder
//! validation, the static monitor-stack combinators, and shard hand-off
//! at region end.

use bots::{run_app, AppId, RunOpts, Scale, Variant};
use cube::AggProfile;
use pomp::RegionKind;
use taskprof::{ConfigError, ProfMonitor};
use taskprof_session::MeasurementSession;
use taskrt::{taskwait_region, SingleConstruct, TaskConstruct};

#[test]
fn session_profiles_a_custom_parallel_region() {
    let single = SingleConstruct::new("sapi!single");
    let task = TaskConstruct::new("sapi_task");
    let tw = taskwait_region("sapi!taskwait");

    let session = MeasurementSession::builder("sapi")
        .threads(4)
        .build()
        .expect("default configuration is valid");
    let outcome = session.run(|ctx| {
        ctx.single(&single, |ctx| {
            for _ in 0..16 {
                ctx.task(&task, |_| {
                    std::hint::black_box((0..1000u64).sum::<u64>());
                });
            }
            ctx.taskwait(tw);
        });
    });
    assert!(outcome.is_ok());

    let report = session.finish();
    assert!(report.is_clean());
    assert_eq!(report.profile.num_threads(), 4);
    let agg = AggProfile::from_profile(&report.profile);
    let stats = cube::task_stats(&agg);
    assert_eq!(stats[0].instances, 16);
}

#[test]
fn session_runs_accumulate_across_regions() {
    let single = SingleConstruct::new("sapi-multi!single");
    let task = TaskConstruct::new("sapi_multi_task");

    let session = MeasurementSession::builder("sapi-multi")
        .threads(2)
        .build()
        .expect("default configuration is valid");
    for _ in 0..3 {
        session.run(|ctx| {
            ctx.single(&single, |ctx| {
                ctx.task(&task, |_| std::hint::black_box(()));
            });
        });
    }
    let profile = session.finish().profile;
    // 3 regions x 2 threads, merged sorted by tid (0,0,0,1,1,1).
    assert_eq!(profile.threads.len(), 6);
    let tids: Vec<usize> = profile.threads.iter().map(|t| t.tid).collect();
    let mut sorted = tids.clone();
    sorted.sort_unstable();
    assert_eq!(tids, sorted, "shards must merge in thread order");
    let agg = AggProfile::from_profile(&profile);
    assert_eq!(cube::task_stats(&agg)[0].instances, 3);
}

#[test]
fn combinators_stack_statically_and_report() {
    let session = MeasurementSession::builder("sapi-stack")
        .threads(2)
        .build()
        .expect("default configuration is valid")
        .counted()
        .validated();
    let opts = RunOpts::new(2).scale(Scale::Test).variant(Variant::Cutoff);
    let out = run_app(AppId::Fib, session.monitor(), &opts);
    assert!(out.verified);

    let report = session.finish();
    assert!(report.is_clean(), "runtime must emit a well-formed stream");
    assert_eq!(report.profile.num_threads(), 2);
    let (enters, _, begins, ends, _, _, threads) = report.counts().snapshot();
    assert!(enters > 0, "counting layer must have observed events");
    assert!(begins > 0 && begins == ends);
    assert_eq!(threads, 2);
}

#[test]
fn filtered_session_drops_regions_before_the_profiler() {
    let session = MeasurementSession::builder("sapi-filter")
        .threads(2)
        .build()
        .expect("default configuration is valid")
        .filtered(|r: pomp::RegionId| pomp::registry().kind(r) != RegionKind::Taskwait);
    let opts = RunOpts::new(2).scale(Scale::Test).variant(Variant::NoCutoff);
    let out = run_app(AppId::Fib, session.monitor(), &opts);
    assert!(out.verified, "filtering must not affect program results");

    let agg = AggProfile::from_profile(&session.finish().profile);
    assert!(
        cube::region_excl_by_kind(&agg, RegionKind::Taskwait) == 0,
        "taskwait regions must be filtered out of the profile"
    );
}

#[test]
fn builder_rejects_invalid_limits_up_front() {
    let err = MeasurementSession::builder("sapi-bad")
        .max_depth(0)
        .build()
        .unwrap_err();
    match err {
        ConfigError::InvalidValue { setting, value, .. } => {
            assert_eq!(setting, "max_depth");
            assert_eq!(value, 0);
        }
        other => panic!("expected InvalidValue, got {other:?}"),
    }
    assert!(std::error::Error::source(&err).is_none());
    assert!(err.to_string().contains("max_depth"));
}

#[test]
fn take_profile_mid_region_is_rejected_with_live_counts() {
    let monitor = ProfMonitor::new();
    let single = SingleConstruct::new("sapi-live!single");
    let session = MeasurementSession::from_parts(
        taskrt::Team::new(2),
        taskrt::ParallelConstruct::new("sapi-live"),
        monitor,
    );
    session.run(|ctx| {
        ctx.single(&single, |_| {
            let err = session
                .profiler()
                .take_profile()
                .expect_err("mid-region take_profile must fail");
            assert!(err.live_threads > 0 || err.live_regions > 0);
        });
    });
    // After the region, the same call succeeds.
    assert_eq!(
        session
            .profiler()
            .take_profile()
            .expect("no region in flight")
            .num_threads(),
        2
    );
}

#[test]
fn builder_configured_monitor_measures() {
    use pomp::VirtualClock;
    use taskprof::AssignPolicy;

    let clock = VirtualClock::new();
    let monitor = ProfMonitor::builder()
        .clock(clock.clone())
        .policy(AssignPolicy::Executing)
        .max_depth(16)
        .max_live_trees(1024)
        .build()
        .expect("valid configuration");

    let single = SingleConstruct::new("sapi-dep!single");
    let task = TaskConstruct::new("sapi_dep_task");
    let par = taskrt::ParallelConstruct::new("sapi-dep");
    taskrt::Team::new(2).parallel(&monitor, &par, |ctx| {
        ctx.single(&single, |ctx| {
            ctx.task(&task, |_| {
                clock.advance(50);
            });
        });
    });
    let profile = monitor.take_profile().expect("no region in flight");
    assert_eq!(profile.num_threads(), 2);
}
