//! Step-by-step walkthrough of the paper's Figs. 6–11: the state of the
//! profiling system while two instances of task construct A execute
//! inside the implicit barrier, the second starting at the first's
//! taskwait.
//!
//! Each assertion block corresponds to one figure.

use pomp::{RegionId, TaskIdAllocator, TaskRef};
use taskprof::{AssignPolicy, Event, NodeKind, Replayer};

const PAR: RegionId = RegionId(9200);
const TASK_A: RegionId = RegionId(9201);
const CREATE_A: RegionId = RegionId(9202);
const BARRIER: RegionId = RegionId(9203);
const TW: RegionId = RegionId(9204);

#[test]
fn figs_6_to_11_state_walkthrough() {
    let ids = TaskIdAllocator::new();
    let (i1, i2) = (ids.alloc(), ids.alloc());
    let mut r = Replayer::new(PAR, AssignPolicy::Executing);

    // Fig. 6: before tasks are created — the instance table is empty and
    // the current task is the implicit task.
    assert_eq!(r.profile().current_task(), TaskRef::Implicit);
    assert_eq!(r.profile().live_instance_trees(), 0);

    // Fig. 7: the application creates instances of task region A, then
    // enters the barrier. Creation shows up as a node; no instance data
    // exists yet (trees are created at *execution start*, Section V-B).
    r.run([
        Event::Advance(2),
        Event::CreateBegin { create: CREATE_A, task_region: TASK_A, id: i1 },
        Event::Advance(1),
        Event::CreateEnd { create: CREATE_A, id: i1 },
        Event::CreateBegin { create: CREATE_A, task_region: TASK_A, id: i2 },
        Event::Advance(1),
        Event::CreateEnd { create: CREATE_A, id: i2 },
        Event::Enter(BARRIER),
    ]);
    assert_eq!(r.profile().live_instance_trees(), 0);
    assert_eq!(r.profile().current_task(), TaskRef::Implicit);

    // Fig. 8: inside the barrier, execution of instance 1 starts: the
    // instance table gains an entry, the current task pointer moves to
    // it, and a stub node appears under the barrier.
    r.run([Event::Advance(1), Event::TaskBegin { region: TASK_A, id: i1 }]);
    assert_eq!(r.profile().live_instance_trees(), 1);
    assert_eq!(r.profile().current_task(), TaskRef::Explicit(i1));

    // Fig. 9: instance 1 enters a taskwait and is suspended; instance 2
    // starts. Both instances are now active simultaneously — the memory
    // high-water mark the paper's Table II measures.
    r.run([
        Event::Advance(5),
        Event::Enter(TW),
        Event::Advance(1),
        Event::TaskBegin { region: TASK_A, id: i2 },
    ]);
    assert_eq!(r.profile().live_instance_trees(), 2);
    assert_eq!(r.profile().current_task(), TaskRef::Explicit(i2));

    // Fig. 10: instance 2 completes without entering any other region; it
    // is merged into the thread's profile before instance 1 continues.
    r.run([Event::Advance(7), Event::TaskEnd { region: TASK_A, id: i2 }]);
    assert_eq!(r.profile().live_instance_trees(), 1);
    assert_eq!(r.profile().current_task(), TaskRef::Implicit);
    r.run([Event::Switch(TaskRef::Explicit(i1))]);
    assert_eq!(r.profile().current_task(), TaskRef::Explicit(i1));

    // Fig. 11: instance 1 completes; its tree merges with instance 2's
    // into the single aggregate tree for construct A.
    r.run([
        Event::Advance(1),
        Event::Exit(TW),
        Event::Advance(2),
        Event::TaskEnd { region: TASK_A, id: i1 },
        Event::Advance(3),
        Event::Exit(BARRIER),
    ]);
    assert_eq!(r.profile().live_instance_trees(), 0);
    assert_eq!(r.profile().max_live_trees(), 2);

    let snap = r.finish(0);
    // One aggregate tree for construct A with both instances' statistics.
    assert_eq!(snap.task_trees.len(), 1);
    let a = &snap.task_trees[0];
    assert_eq!(a.kind, NodeKind::Region(TASK_A));
    assert_eq!(a.stats.samples, 2);
    // i2 = 7; i1 = 5 + 1 + 1 + 2 = 9 (suspension excluded).
    assert_eq!(a.stats.min_ns, 7);
    assert_eq!(a.stats.max_ns, 9);
    assert_eq!(a.stats.sum_ns, 16);
    // Taskwait inside the task tree: 1 (before suspension) + 1 (after
    // resume) = 2.
    let tw = a.child(NodeKind::Region(TW)).unwrap();
    assert_eq!(tw.stats.sum_ns, 2);
    // Main tree: create node visited twice; barrier holds the stub with
    // 3 fragments and 16 ns of task execution.
    let create = snap.main.child(NodeKind::Region(CREATE_A)).unwrap();
    assert_eq!(create.stats.visits, 2);
    assert_eq!(create.stats.sum_ns, 2);
    let barrier = snap.main.child(NodeKind::Region(BARRIER)).unwrap();
    let stub = barrier.child(NodeKind::Stub(TASK_A)).unwrap();
    assert_eq!(stub.stats.visits, 3);
    assert_eq!(stub.stats.sum_ns, 16);
    // Barrier exclusive = inclusive − stub = idle/management.
    assert_eq!(barrier.exclusive_ns(), barrier.stats.sum_ns as i64 - 16);
}
