//! Fig. 5: the stub-node view — 113 s of task execution inside the
//! barrier vs. 103 s of remaining (management/idle) time, and the task
//! tree's own creation split (51.5 s exclusive, 25.8 s creating).

use pomp::{RegionId, TaskIdAllocator};
use taskprof::{replay, AssignPolicy, Event, NodeKind};

const PAR: RegionId = RegionId(9400);
const TASK0: RegionId = RegionId(9401);
const CREATE: RegionId = RegionId(9402);
const BARRIER: RegionId = RegionId(9403);

const S: u64 = 1_000_000_000;

#[test]
fn fig5_stub_splits_barrier_and_task_tree_shows_creation() {
    let ids = TaskIdAllocator::new();
    let mut events = vec![Event::Enter(BARRIER)];
    // Instances totalling 113 s inside the barrier; while running they
    // spend 25.8 s creating child tasks (which we model as created but
    // executed within the same totals).
    // 4 instances: exclusive work 51.5s + taskwaited child time folded
    // into the instances for a total of 113 s.
    let spec: [(u64, u64); 4] = [
        // (total instance time, of which creating) in tenths of seconds
        (300, 70),
        (300, 70),
        (300, 70),
        (230, 48),
    ];
    for (total, creating) in spec {
        let id = ids.alloc();
        let nested = ids.alloc();
        let rest = total - creating;
        events.extend([
            Event::TaskBegin { region: TASK0, id },
            Event::Advance(rest / 2 * S / 10),
            Event::CreateBegin { create: CREATE, task_region: TASK0, id: nested },
            Event::Advance(creating * S / 10),
            Event::CreateEnd { create: CREATE, id: nested },
            Event::Advance((rest - rest / 2) * S / 10),
            Event::TaskEnd { region: TASK0, id },
        ]);
    }
    events.push(Event::Advance(103 * S)); // not executing a task
    events.push(Event::Exit(BARRIER));
    let snap = replay(PAR, AssignPolicy::Executing, events);

    let barrier = snap.main.child(NodeKind::Region(BARRIER)).unwrap();
    let stub = barrier.child(NodeKind::Stub(TASK0)).unwrap();
    // "113s of task execution happened inside the barrier."
    assert_eq!(stub.stats.sum_ns, 113 * S);
    // "103s time is still spent inside the barrier not executing a task."
    assert_eq!(barrier.exclusive_ns(), (103 * S) as i64);

    // "The task region had 51.5s exclusive execution time and 25.8s were
    // spent creating new tasks."
    let task = &snap.task_trees[0];
    assert_eq!(task.stats.sum_ns, 113 * S);
    let create = task.child(NodeKind::Region(CREATE)).unwrap();
    assert_eq!(create.stats.sum_ns, 258 * S / 10);
    assert_eq!(task.exclusive_ns(), (113 * S - 258 * S / 10) as i64);
}
