//! Golden-profile snapshot tests: canonical event streams and
//! deterministically simulated benchmark runs must serialize to exactly
//! the checked-in cube text under `tests/golden/`.
//!
//! Run with `BLESS=1 cargo test --test golden_profiles` to regenerate the
//! goldens after an intentional format or algorithm change; the diff of
//! the golden files then documents the change in review.

use pomp::{RegionId, RegionKind, TaskIdAllocator};
use std::path::PathBuf;
use std::sync::Arc;
use taskprof::{replay, AssignPolicy, Event, Profile, ProfMonitor};
use taskrt::Team;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden {}; run with BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "golden '{name}' differs; regenerate with BLESS=1 if the change is intentional"
    );
}

fn reg(name: &str, kind: RegionKind) -> RegionId {
    pomp::registry().register(name, kind, file!(), line!())
}

/// The Fig. 5 stream (stub-node view): 113 s of task execution inside
/// the barrier, 103 s management/idle, task tree split into 51.5 s
/// exclusive + 25.8 s creating. Mirrors `tests/fig5_stub.rs` with
/// registered (named) regions so the profile serializes.
#[test]
fn golden_fig5_stub_stream() {
    let par = reg("golden-fig5!parallel", RegionKind::Parallel);
    let task = reg("golden-fig5!task", RegionKind::Task);
    let create = reg("golden-fig5!create", RegionKind::TaskCreate);
    let barrier = reg("golden-fig5!ibarrier", RegionKind::ImplicitBarrier);
    const S: u64 = 1_000_000_000;

    let ids = TaskIdAllocator::new();
    let mut events = vec![Event::Enter(barrier)];
    let spec: [(u64, u64); 4] = [(300, 70), (300, 70), (300, 70), (230, 48)];
    for (total, creating) in spec {
        let id = ids.alloc();
        let nested = ids.alloc();
        let rest = total - creating;
        events.extend([
            Event::TaskBegin { region: task, id },
            Event::Advance(rest / 2 * S / 10),
            Event::CreateBegin {
                create,
                task_region: task,
                id: nested,
            },
            Event::Advance(creating * S / 10),
            Event::CreateEnd { create, id: nested },
            Event::Advance((rest - rest / 2) * S / 10),
            Event::TaskEnd { region: task, id },
        ]);
    }
    events.push(Event::Advance(103 * S));
    events.push(Event::Exit(barrier));
    let snap = replay(par, AssignPolicy::Executing, events);
    let profile = Profile {
        threads: vec![snap],
    };
    check_golden("fig5_stub", &cube::write_profile(&profile));
}

/// The Figs. 6–11 walkthrough stream: two instances of construct A, the
/// second starting at the first's taskwait. Mirrors
/// `tests/algorithm_walkthrough.rs` with registered regions.
#[test]
fn golden_figs6_11_walkthrough_stream() {
    let par = reg("golden-walk!parallel", RegionKind::Parallel);
    let task_a = reg("golden-walk!taskA", RegionKind::Task);
    let create_a = reg("golden-walk!createA", RegionKind::TaskCreate);
    let barrier = reg("golden-walk!ibarrier", RegionKind::ImplicitBarrier);
    let tw = reg("golden-walk!taskwait", RegionKind::Taskwait);

    let ids = TaskIdAllocator::new();
    let (i1, i2) = (ids.alloc(), ids.alloc());
    let events = [
        Event::Advance(2),
        Event::CreateBegin {
            create: create_a,
            task_region: task_a,
            id: i1,
        },
        Event::Advance(1),
        Event::CreateEnd { create: create_a, id: i1 },
        Event::CreateBegin {
            create: create_a,
            task_region: task_a,
            id: i2,
        },
        Event::Advance(1),
        Event::CreateEnd { create: create_a, id: i2 },
        Event::Enter(barrier),
        Event::Advance(1),
        Event::TaskBegin { region: task_a, id: i1 },
        Event::Advance(5),
        Event::Enter(tw),
        Event::Advance(1),
        Event::TaskBegin { region: task_a, id: i2 },
        Event::Advance(7),
        Event::TaskEnd { region: task_a, id: i2 },
        Event::Switch(pomp::TaskRef::Explicit(i1)),
        Event::Advance(1),
        Event::Exit(tw),
        Event::Advance(2),
        Event::TaskEnd { region: task_a, id: i1 },
        Event::Advance(3),
        Event::Exit(barrier),
    ];
    let snap = replay(par, AssignPolicy::Executing, events);
    let profile = Profile {
        threads: vec![snap],
    };
    check_golden("figs6_11_walkthrough", &cube::write_profile(&profile));
}

/// Run a BOTS code deterministically: seeded simulated schedule, virtual
/// per-thread clocks (time advances only at task-creation scheduling
/// points), two simulated threads.
fn simulated_bots_profile(
    run: impl Fn(&ProfMonitor<simsched::SimClock>, &Team) -> bots::Outcome,
    seed: u64,
) -> (Profile, bots::Outcome) {
    let sched = Arc::new(simsched::SimScheduler::new(seed));
    let clock = sched.clock().clone();
    let team = Team::new(2).with_policy(sched);
    let monitor = ProfMonitor::builder()
        .clock(clock)
        .build()
        .expect("profiler config is valid");
    let out = run(&monitor, &team);
    let profile = monitor.take_profile().expect("region finished");
    (profile, out)
}

#[test]
fn golden_fib_tiny_fixed_seed() {
    let opts = bots::RunOpts::new(2).scale(bots::Scale::Test);
    let (profile, out) = simulated_bots_profile(
        |monitor, team| bots::fib::run_with_team(monitor, team, &opts),
        42,
    );
    assert!(out.verified, "simulated fib computed a wrong checksum");
    check_golden("fib_test_seed42", &cube::write_profile(&profile));
}

#[test]
fn golden_nqueens_tiny_fixed_seed() {
    let opts = bots::RunOpts::new(2).scale(bots::Scale::Test);
    let (profile, out) = simulated_bots_profile(
        |monitor, team| bots::nqueens::run_with_team(monitor, team, &opts),
        42,
    );
    assert!(out.verified, "simulated nqueens found a wrong solution count");
    check_golden("nqueens_test_seed42", &cube::write_profile(&profile));
}

/// Like `simulated_bots_profile`, but with task create/join edge
/// recording enabled: returns the critical-path report rendered by cube,
/// the snapshot surface of the causal-profiling subsystem.
fn simulated_bots_critpath(
    run: impl Fn(&ProfMonitor<simsched::SimClock>, &Team) -> bots::Outcome,
    parallel_region: RegionId,
    seed: u64,
) -> String {
    let sched = Arc::new(simsched::SimScheduler::new(seed));
    let clock = sched.clock().clone();
    let team = Team::new(2).with_policy(sched);
    let monitor = ProfMonitor::builder()
        .clock(clock)
        .record_task_edges()
        .build()
        .expect("profiler config is valid");
    let out = run(&monitor, &team);
    assert!(out.verified, "simulated run produced a wrong answer");
    let streams = monitor.take_edge_streams().expect("region finished");
    let opts = critpath::DagOptions {
        undeferred_spawn_cost: Some(simsched::DEFAULT_SPAWN_COST_NS),
    };
    let dag = critpath::TaskDag::from_streams(&streams, parallel_region, &opts)
        .expect("recorded edge streams assemble into a DAG");
    cube::render_critpath(&dag.report())
}

#[test]
fn golden_fib_critpath_fixed_seed() {
    let opts = bots::RunOpts::new(2).scale(bots::Scale::Test);
    let rendered = simulated_bots_critpath(
        |monitor, team| bots::fib::run_with_team(monitor, team, &opts),
        bots::fib::regions().par.region,
        42,
    );
    check_golden("critpath_fib_test_seed42", &rendered);
}

#[test]
fn golden_nqueens_critpath_fixed_seed() {
    let opts = bots::RunOpts::new(2).scale(bots::Scale::Test);
    let rendered = simulated_bots_critpath(
        |monitor, team| bots::nqueens::run_with_team(monitor, team, &opts),
        bots::nqueens::regions().par.region,
        42,
    );
    check_golden("critpath_nqueens_test_seed42", &rendered);
}
