//! Fuzzing the fault-tolerance layer: *no* input — corrupted store files
//! or arbitrarily ill-formed event streams — may panic the measurement
//! system.
//!
//! The strict profiler assumes a well-formed stream (and asserts on it);
//! [`pomp::ValidatingMonitor`] is the shield in front of it. The central
//! property here: an arbitrary hook sequence, driven through the
//! validator into the real profiler, always completes and yields a
//! finalized profile.

use pomp::{Monitor, TaskId, TaskRef, ThreadHooks, ValidatingMonitor};
use proptest::prelude::*;
use taskprof::ProfMonitor;

/// One raw hook call, decodable from three small integers.
#[derive(Debug, Clone, Copy)]
struct RawOp {
    op: u8,
    region: u8,
    task: u8,
}

fn arb_op() -> impl Strategy<Value = RawOp> {
    (0u8..11, 0u8..3, 1u8..6).prop_map(|(op, region, task)| RawOp { op, region, task })
}

fn fixture_regions() -> [pomp::RegionId; 3] {
    let reg = pomp::registry();
    [
        reg.register("pv-r0", pomp::RegionKind::User, "t", 0),
        reg.register("pv-r1", pomp::RegionKind::Taskwait, "t", 0),
        reg.register("pv-task", pomp::RegionKind::Task, "t", 0),
    ]
}

fn apply(th: &impl ThreadHooks, regions: &[pomp::RegionId; 3], o: RawOp) {
    let r = regions[(o.region % 3) as usize];
    let task_region = regions[2];
    let id = TaskId::from_raw(u64::from(o.task)).expect("task ids are >= 1");
    let param = pomp::ParamId(u32::from(o.region));
    match o.op {
        0 => th.enter(r),
        1 => th.exit(r),
        2 => th.task_create_begin(r, task_region, id),
        3 => th.task_create_end(r, id),
        4 => th.task_begin(task_region, id),
        5 => th.task_end(task_region, id),
        6 => th.task_abort(task_region, id),
        7 => th.task_switch(TaskRef::Implicit),
        8 => th.task_switch(TaskRef::Explicit(id)),
        9 => th.parameter_begin(param, i64::from(o.task)),
        _ => th.parameter_end(param),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any hook sequence — however ill-formed — passes through the
    /// validator into the strict profiler without panicking, and the
    /// profile finalizes (no live instances leak past thread_end).
    #[test]
    fn validated_arbitrary_streams_never_panic_the_profiler(
        ops in prop::collection::vec(arb_op(), 0..60),
    ) {
        let regions = fixture_regions();
        let v = ValidatingMonitor::new(ProfMonitor::new());
        let th = v.thread_begin(0, 1, regions[0]);
        for o in ops {
            apply(&th, &regions, o);
        }
        v.thread_end(0, th);
        let p = v.inner().take_profile().expect("no region in flight");
        prop_assert_eq!(p.threads.len(), 1);
        // Finalized: the implicit root's time is accounted and no
        // negative exclusive time appears anywhere.
        let mut ok = true;
        p.threads[0].main.walk(&mut |_, n| {
            if n.exclusive_ns() < 0 {
                ok = false;
            }
        });
        prop_assert!(ok, "negative exclusive time in healed profile");
    }

    /// The validator itself never panics on arbitrary streams, and every
    /// diagnostic it reports renders (Display is total).
    #[test]
    fn validator_diagnostics_always_render(
        ops in prop::collection::vec(arb_op(), 0..60),
    ) {
        let regions = fixture_regions();
        let v = ValidatingMonitor::new(pomp::NullMonitor);
        let th = v.thread_begin(0, 1, regions[0]);
        for o in ops {
            apply(&th, &regions, o);
        }
        v.thread_end(0, th);
        for d in v.take_diagnostics() {
            prop_assert!(!d.to_string().is_empty());
        }
    }

    /// A validated stream is idempotent: feeding the repaired stream
    /// through a second validator yields zero new diagnostics.
    #[test]
    fn repaired_streams_validate_clean(
        ops in prop::collection::vec(arb_op(), 0..60),
    ) {
        let regions = fixture_regions();
        let inner = ValidatingMonitor::new(pomp::NullMonitor);
        let v = ValidatingMonitor::new(&inner);
        let th = v.thread_begin(0, 1, regions[0]);
        for o in ops {
            apply(&th, &regions, o);
        }
        v.thread_end(0, th);
        prop_assert!(
            inner.is_clean(),
            "second pass found defects: {:?}",
            inner.take_diagnostics()
        );
    }

    /// Point-corrupted profile files parse or fail with position context —
    /// they never panic, and reported positions lie within the input.
    #[test]
    fn corrupted_profile_files_fail_with_position(
        seed in any::<u64>(),
        flips in 1usize..6,
    ) {
        let text = sample_profile_text();
        let corrupted = corrupt(&text, seed, flips);
        match cube::read_profile(&corrupted) {
            Ok(_) => {}
            Err(e) => {
                prop_assert!(e.line <= corrupted.lines().count() + 1, "{e}");
                let shown = e.to_string();
                prop_assert!(shown.contains("line"), "{shown}");
            }
        }
    }

    /// Same for trace files.
    #[test]
    fn corrupted_trace_files_fail_with_position(
        seed in any::<u64>(),
        flips in 1usize..6,
    ) {
        let text = sample_trace_text();
        let corrupted = corrupt(&text, seed, flips);
        match taskprof_trace::read_trace(&corrupted) {
            Ok(_) => {}
            Err(e) => {
                prop_assert!(e.line <= corrupted.lines().count() + 1, "{e}");
                prop_assert!(e.to_string().contains("line"));
            }
        }
    }
}

/// Deterministically substitute `flips` bytes of `text` (printable ASCII
/// replacements, so the result stays valid UTF-8).
fn corrupt(text: &str, seed: u64, flips: usize) -> String {
    let mut bytes = text.as_bytes().to_vec();
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state
    };
    for _ in 0..flips {
        if bytes.is_empty() {
            break;
        }
        let pos = (next() % bytes.len() as u64) as usize;
        bytes[pos] = 0x21 + (next() % 0x5e) as u8;
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

fn sample_profile_text() -> String {
    use taskprof::{AssignPolicy, Event, TeamReplayer};
    let reg = pomp::registry();
    let par = reg.register("pv-file-par", pomp::RegionKind::Parallel, "t", 0);
    let task = reg.register("pv-file-task", pomp::RegionKind::Task, "t", 0);
    let ids = pomp::TaskIdAllocator::new();
    let id = ids.alloc();
    let mut team = TeamReplayer::new(1, par, AssignPolicy::Executing);
    team.apply(0, Event::TaskBegin { region: task, id })
        .advance(7)
        .apply(0, Event::TaskEnd { region: task, id })
        .advance(3);
    cube::write_profile(&team.finish())
}

fn sample_trace_text() -> String {
    use taskprof_trace::{EventKind, Trace, TraceEvent};
    let reg = pomp::registry();
    let task = reg.register("pv-file-tr-task", pomp::RegionKind::Task, "t", 0);
    let ids = pomp::TaskIdAllocator::new();
    let id = ids.alloc();
    let ev = |t, kind| TraceEvent { t, tid: 0, kind };
    taskprof_trace::write_trace(&Trace {
        events: vec![
            ev(0, EventKind::TaskBegin(task, id)),
            ev(5, EventKind::TaskEnd(task, id)),
        ],
        nthreads: 1,
    })
}
