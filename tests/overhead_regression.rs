//! Overhead regression guard: the full session stack (counting +
//! validation + sharded profiler) must stay within a generous fixed
//! multiple of an uninstrumented run.
//!
//! The bound is deliberately loose — CI machines are noisy and debug
//! builds uninlined — but it catches the failure mode that matters: an
//! accidental lock or allocation on the per-event fast path turns the
//! multiplier into hundreds, not tens.
//!
//! Because these are wall-clock measurements, a violated bound only
//! *fails* the test when `TASKPROF_BENCH_STRICT` is set (dedicated
//! perf-CI); by default it is reported as a warning so a loaded share
//! machine cannot fail an otherwise-deterministic test suite.

use bots::{run_app, AppId, RunOpts, Scale, Variant};
use pomp::NullMonitor;
use std::time::Duration;
use taskprof_session::MeasurementSession;

/// Ratio ceiling: per-event work is bounded (clock read + arena bump +
/// counter increments), so even unoptimized builds stay well below this.
const MAX_OVERHEAD_RATIO: f64 = 25.0;
const REPS: usize = 3;

fn min_time(mut run: impl FnMut() -> Duration) -> Duration {
    (0..REPS).map(|_| run()).min().expect("REPS >= 1")
}

/// Enforce a timing bound: hard assert under `TASKPROF_BENCH_STRICT`,
/// stderr warning otherwise.
fn enforce_bound(ok: bool, message: String) {
    if ok {
        return;
    }
    if std::env::var_os("TASKPROF_BENCH_STRICT").is_some() {
        panic!("{message}");
    }
    eprintln!("warning (set TASKPROF_BENCH_STRICT=1 to fail on this): {message}");
}

#[test]
fn full_session_stack_overhead_is_bounded() {
    let threads = 2;
    let opts = RunOpts::new(threads)
        .scale(Scale::Small)
        .variant(Variant::Cutoff);

    let base = min_time(|| {
        let out = run_app(AppId::Fib, &NullMonitor, &opts);
        assert!(out.verified);
        out.kernel
    });

    let instrumented = min_time(|| {
        let session = MeasurementSession::builder("overhead-guard")
            .threads(threads)
            .build()
            .expect("default session configuration is valid")
            .counted()
            .validated();
        let out = run_app(AppId::Fib, session.monitor(), &opts);
        assert!(out.verified);
        let report = session.finish();
        assert!(report.is_clean());
        assert_eq!(report.profile.num_threads(), threads);
        out.kernel
    });

    // Guard against degenerate timer resolution on tiny baselines.
    let base = base.max(Duration::from_micros(50));
    let ratio = instrumented.as_secs_f64() / base.as_secs_f64();
    enforce_bound(
        ratio < MAX_OVERHEAD_RATIO,
        format!(
            "full measurement stack is {ratio:.1}x the uninstrumented run \
             (base {base:?}, instrumented {instrumented:?}); the per-event \
             fast path has likely regressed (lock or allocation in a hook?)"
        ),
    );
}

/// Telemetry's contract is a ~free event path: relaxed stores on the
/// thread's own cache line, no lock, no allocation. This guard compares
/// telemetry-on vs telemetry-off *per-event cost* over a long in-process
/// event stream (direct hook calls, so runtime scheduling noise is out of
/// the picture). The release-mode numbers live in `BENCH_overhead.json`
/// (`per_event.telemetry_*`); this debug-build bound is looser but still
/// catches a lock or syscall sneaking onto the telemetry path.
#[test]
fn telemetry_per_event_overhead_is_bounded() {
    use pomp::{Monitor, RegionId, TaskIdAllocator, ThreadHooks};
    use taskprof::ProfMonitor;

    const EVENTS_PER_REP: u64 = 60_000;
    // 5% is the release-mode target; allow debug-build jitter on top.
    const MAX_TELEMETRY_RATIO: f64 = 1.35;

    fn drive(telemetry: bool) -> Duration {
        let builder = ProfMonitor::builder();
        let builder = if telemetry { builder.telemetry() } else { builder };
        let monitor = builder.build().expect("valid configuration");
        let par = RegionId(9100);
        let work = RegionId(9101);
        let task = RegionId(9102);
        let ids = TaskIdAllocator::new();
        monitor.parallel_fork(par, 1);
        let th = monitor.thread_begin(0, 1, par);
        let start = std::time::Instant::now();
        for _ in 0..EVENTS_PER_REP / 6 {
            let id = ids.alloc();
            th.enter(work);
            th.task_create_begin(work, task, id);
            th.task_create_end(work, id);
            th.task_begin(task, id);
            th.task_end(task, id);
            th.exit(work);
        }
        let elapsed = start.elapsed();
        monitor.thread_end(0, th);
        monitor.parallel_join(par);
        let profile = monitor.take_profile().expect("region closed");
        assert_eq!(profile.num_threads(), 1);
        elapsed
    }

    // Warm up allocators and branch predictors once per mode, then take
    // the min of interleaved reps so machine noise hits both modes alike.
    drive(false);
    drive(true);
    let off = min_time(|| drive(false));
    let on = min_time(|| drive(true));

    let off = off.max(Duration::from_micros(200));
    let ratio = on.as_secs_f64() / off.as_secs_f64();
    enforce_bound(
        ratio < MAX_TELEMETRY_RATIO,
        format!(
            "telemetry-on event path is {ratio:.2}x telemetry-off \
             (off {off:?}, on {on:?}); the telemetry tail must stay a few \
             relaxed stores — no lock, no allocation, no syscall"
        ),
    );
}
