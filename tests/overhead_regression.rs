//! Overhead regression guard: the full session stack (counting +
//! validation + sharded profiler) must stay within a generous fixed
//! multiple of an uninstrumented run.
//!
//! The bound is deliberately loose — CI machines are noisy and debug
//! builds uninlined — but it catches the failure mode that matters: an
//! accidental lock or allocation on the per-event fast path turns the
//! multiplier into hundreds, not tens.

use bots::{run_app, AppId, RunOpts, Scale, Variant};
use pomp::NullMonitor;
use std::time::Duration;
use taskprof_session::MeasurementSession;

/// Ratio ceiling: per-event work is bounded (clock read + arena bump +
/// counter increments), so even unoptimized builds stay well below this.
const MAX_OVERHEAD_RATIO: f64 = 25.0;
const REPS: usize = 3;

fn min_time(mut run: impl FnMut() -> Duration) -> Duration {
    (0..REPS).map(|_| run()).min().expect("REPS >= 1")
}

#[test]
fn full_session_stack_overhead_is_bounded() {
    let threads = 2;
    let opts = RunOpts::new(threads)
        .scale(Scale::Small)
        .variant(Variant::Cutoff);

    let base = min_time(|| {
        let out = run_app(AppId::Fib, &NullMonitor, &opts);
        assert!(out.verified);
        out.kernel
    });

    let instrumented = min_time(|| {
        let session = MeasurementSession::builder("overhead-guard")
            .threads(threads)
            .build()
            .expect("default session configuration is valid")
            .counted()
            .validated();
        let out = run_app(AppId::Fib, session.monitor(), &opts);
        assert!(out.verified);
        let report = session.finish();
        assert!(report.is_clean());
        assert_eq!(report.profile.num_threads(), threads);
        out.kernel
    });

    // Guard against degenerate timer resolution on tiny baselines.
    let base = base.max(Duration::from_micros(50));
    let ratio = instrumented.as_secs_f64() / base.as_secs_f64();
    assert!(
        ratio < MAX_OVERHEAD_RATIO,
        "full measurement stack is {ratio:.1}x the uninstrumented run \
         (base {base:?}, instrumented {instrumented:?}); the per-event \
         fast path has likely regressed (lock or allocation in a hook?)"
    );
}
