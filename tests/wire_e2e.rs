//! Mixed-protocol end-to-end: line-delimited JSON clients and TPF1
//! binary clients hammer the same daemon concurrently — including the
//! batched binary ingest path — and no run is lost or duplicated. Also
//! pins the protocol-restriction modes: a `json`-only server refuses the
//! binary preamble, a `bin`-only server refuses JSON lines.

use profserve::{
    Client, ClientError, ClientTimeouts, ErrorKind, Record, ServeConfig, Server, WireProtocol,
};
use profstore::ProfileStore;
use std::collections::HashSet;
use std::path::PathBuf;
use taskprof_session::MeasurementSession;
use taskrt::TaskConstruct;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "wire-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spawn_server(
    dir: &std::path::Path,
    config: ServeConfig,
) -> (
    profserve::ServerHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let store = ProfileStore::open(dir).expect("open store");
    Server::spawn("127.0.0.1:0", store, config).expect("spawn server")
}

/// One deterministic seeded measurement, as text-store-format bytes.
fn profile_text(seed: u64) -> String {
    let task = TaskConstruct::new("wire_e2e_task");
    let tw = taskrt::taskwait_region("wire-e2e!tw");
    let session = MeasurementSession::builder("wire-e2e")
        .threads(2)
        .deterministic(seed)
        .build()
        .expect("valid session");
    session
        .run(|ctx| {
            for _ in 0..3 {
                ctx.task(&task, |_| {});
            }
            ctx.taskwait(tw);
        })
        .unwrap();
    cube::write_profile(&session.finish().profile)
}

#[test]
fn mixed_protocol_clients_lose_and_duplicate_nothing() {
    const CLIENTS: usize = 6;
    const RUNS_PER_CLIENT: usize = 6;
    const BATCH: usize = 3;

    let dir = temp_dir("mixed");
    let (handle, join) = spawn_server(
        &dir,
        ServeConfig {
            max_connections: CLIENTS + 4,
            ..ServeConfig::default()
        },
    );
    let addr = handle.addr().to_string();

    // Even workers speak JSON, odd workers speak TPF1; binary workers
    // upload half their runs through one batched ingest so the bulk path
    // contends with per-record traffic on the same store.
    let workers: Vec<_> = (0..CLIENTS)
        .map(|w| {
            let addr = addr.clone();
            std::thread::spawn(move || -> Vec<u64> {
                let proto = if w % 2 == 0 {
                    WireProtocol::Json
                } else {
                    WireProtocol::Binary
                };
                let mut client = Client::connect_proto(&addr, proto, ClientTimeouts::unbounded())
                    .expect("connect");
                assert_eq!(client.protocol(), proto);
                let records: Vec<Record> = (0..RUNS_PER_CLIENT)
                    .map(|k| {
                        let seed = (w * RUNS_PER_CLIENT + k) as u64;
                        Record::from_text("wire-bench", 2, Some(seed), profile_text(seed))
                    })
                    .collect();
                let mut ids = Vec::new();
                if proto == WireProtocol::Binary {
                    let receipt = client.ingest_batch(&records[..BATCH]).expect("batch");
                    assert_eq!(receipt.count, BATCH as u64);
                    ids.extend(receipt.first_run_id..receipt.first_run_id + BATCH as u64);
                    for record in &records[BATCH..] {
                        ids.push(client.ingest_record(record).expect("ingest").run_id());
                    }
                } else {
                    for record in &records {
                        ids.push(client.ingest_record(record).expect("ingest").run_id());
                    }
                }
                // Reads interleave with the other workers' writes.
                let top = client.query_top("wire-bench", 2, 5).expect("query");
                assert!(top.runs >= 1);
                ids
            })
        })
        .collect();

    let mut all_ids = Vec::new();
    for worker in workers {
        all_ids.extend(worker.join().expect("worker panicked"));
    }
    let expected = CLIENTS * RUNS_PER_CLIENT;
    assert_eq!(all_ids.len(), expected);
    let unique: HashSet<u64> = all_ids.iter().copied().collect();
    assert_eq!(unique.len(), expected, "duplicated run ids: {all_ids:?}");

    // Both protocols served requests, and every acknowledged run landed.
    let mut client = Client::connect(&addr).expect("connect");
    let stats = client.query_stats("wire-bench", 2).expect("stats");
    assert_eq!(stats.runs, expected as u64);
    let health = client.server_stats().expect("server stats");
    assert!(health.service.json_requests > 0, "no JSON traffic seen");
    assert!(health.service.bin_requests > 0, "no binary traffic seen");
    assert_eq!(health.service.ingest_batches, CLIENTS as u64 / 2);
    assert_eq!(health.service.panics, 0);

    handle.stop();
    drop(client);
    join.join().expect("join").expect("run");
    drop(handle);

    let store = ProfileStore::open(&dir).expect("reopen");
    assert_eq!(store.stats().runs, expected as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restricted_servers_refuse_the_other_protocol() {
    // A json-only server: binary handshakes are refused, Auto clients
    // fall back to JSON and work.
    let dir = temp_dir("json-only");
    let (handle, join) = spawn_server(
        &dir,
        ServeConfig {
            protocols: WireProtocol::Json,
            ..ServeConfig::default()
        },
    );
    let addr = handle.addr().to_string();
    let err = match Client::connect_proto(&addr, WireProtocol::Binary, ClientTimeouts::unbounded())
    {
        Ok(_) => panic!("binary must be refused by a json-only server"),
        Err(e) => e,
    };
    assert!(
        matches!(err, ClientError::Server { kind: ErrorKind::BadRequest, .. }),
        "unexpected refusal: {err:?}"
    );
    let mut auto = Client::connect(&addr).expect("auto falls back");
    assert_eq!(auto.protocol(), WireProtocol::Json);
    auto.ingest_record(&Record::from_text("fallback", 2, Some(1), profile_text(1)))
        .expect("ingest over fallback");
    handle.stop();
    drop(auto);
    join.join().expect("join").expect("run");
    drop(handle);
    let _ = std::fs::remove_dir_all(&dir);

    // A bin-only server: JSON clients get a typed bad_request and the
    // connection closes; binary clients work.
    let dir = temp_dir("bin-only");
    let (handle, join) = spawn_server(
        &dir,
        ServeConfig {
            protocols: WireProtocol::Binary,
            ..ServeConfig::default()
        },
    );
    let addr = handle.addr().to_string();
    let mut json = Client::connect_proto(&addr, WireProtocol::Json, ClientTimeouts::unbounded())
        .expect("tcp connect succeeds");
    let err = json
        .ingest_record(&Record::from_text("refused", 2, Some(1), profile_text(1)))
        .expect_err("json must be refused");
    assert!(
        matches!(err, ClientError::Server { kind: ErrorKind::BadRequest, .. }),
        "unexpected refusal: {err:?}"
    );
    let mut bin = Client::connect_proto(&addr, WireProtocol::Binary, ClientTimeouts::unbounded())
        .expect("binary connects");
    bin.ingest_record(&Record::from_text("allowed", 2, Some(1), profile_text(1)))
        .expect("ingest over binary");
    handle.stop();
    drop(bin);
    join.join().expect("join").expect("run");
    drop(handle);
    let _ = std::fs::remove_dir_all(&dir);
}
