//! Schedule exploration at integration scale: the deterministic
//! simulator (`simsched`) runs real `taskrt` task graphs — including
//! graphs drawn from the runtime property-test shape generator — across
//! hundreds of seeded schedules, checking the paper's profile invariants
//! after every run and that same-seed runs are byte-reproducible.
//!
//! `TASKPROF_EXPLORE_SEEDS` scales the per-workload sweep (CI smoke uses
//! a small value; the default here is the acceptance bar).

use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;
use simsched::workloads::{fib_like, flat, mixed};
use simsched::{explore_dfs, explore_seeds, run_workload, SimConfig};
use test_util::shape::{shape_strategy, tree_workload};

fn seeds_per_workload(default: u64) -> u64 {
    std::env::var("TASKPROF_EXPLORE_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[test]
fn built_in_workloads_survive_a_seed_sweep() {
    let per = seeds_per_workload(64);
    for (threads, w) in [
        (2, fib_like(3)),
        (3, flat(6)),
        (2, mixed()),
        (4, fib_like(2)),
    ] {
        let report = explore_seeds(&w, threads, 0..per);
        assert_eq!(report.runs, per as usize);
        assert!(
            report.is_clean(),
            "{} x{threads}: {} violations, first: {}",
            w.name(),
            report.violations.len(),
            report.violations[0]
        );
        assert!(
            report.distinct_schedules > 1 || per <= 1,
            "{} x{threads}: seed sweep produced a single schedule",
            w.name()
        );
    }
}

#[test]
fn generated_shapes_survive_a_seed_sweep() {
    // Draw task-graph shapes from the same generator the runtime property
    // tests use, with a fixed generator seed so the corpus is stable.
    let mut rng = TestRng::from_seed(0x5EED_5EED_5EED_5EED);
    let strategy = shape_strategy();
    let per = seeds_per_workload(32);
    let mut total_runs = 0usize;
    for _ in 0..8 {
        let shape = strategy.generate(&mut rng);
        let w = tree_workload(&shape);
        let report = explore_seeds(&w, 2, 0..per);
        total_runs += report.runs;
        assert!(
            report.is_clean(),
            "shape {shape:?}: {} violations, first: {}",
            report.violations.len(),
            report.violations[0]
        );
    }
    assert_eq!(total_runs, 8 * per as usize);
}

#[test]
fn same_seed_exports_byte_identical_cubes() {
    for seed in [0u64, 7, 0xDEAD_BEEF] {
        let a = run_workload(&mixed(), &SimConfig::seeded(2, seed));
        let b = run_workload(&mixed(), &SimConfig::seeded(2, seed));
        let (text_a, text_b) = (
            cube::write_profile(&a.profile),
            cube::write_profile(&b.profile),
        );
        assert_eq!(
            text_a, text_b,
            "seed {seed}: two identically-seeded runs exported different cubes"
        );
        assert_eq!(a.trace, b.trace, "seed {seed}: schedules diverged");
    }
}

#[test]
fn different_seeds_change_the_schedule_not_the_fingerprint() {
    let a = run_workload(&flat(5), &SimConfig::seeded(2, 1));
    let b = run_workload(&flat(5), &SimConfig::seeded(2, 2));
    assert_eq!(
        simsched::fingerprint(&a.profile),
        simsched::fingerprint(&b.profile),
        "schedule-invariant fingerprint must not depend on the seed"
    );
}

#[test]
fn live_profile_matches_offline_replay() {
    for seed in 0..16 {
        let run = run_workload(&fib_like(3), &SimConfig::seeded(2, seed));
        let diffs = simsched::check_differential(&run);
        assert!(
            diffs.is_empty(),
            "seed {seed}: live profiler and replayed event stream disagree: {}",
            diffs[0]
        );
    }
}

#[test]
fn dfs_smoke_on_a_small_graph() {
    let (report, _exhausted) = explore_dfs(&flat(2), 2, 300);
    assert!(report.runs > 0);
    assert!(
        report.is_clean(),
        "dfs: {} violations, first: {}",
        report.violations.len(),
        report.violations[0]
    );
}
