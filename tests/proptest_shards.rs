//! Properties of the sharded repository: routing is a total, stable
//! function of the run's identity; the k-way fan-in answers queries
//! byte-identically to a single store holding the same runs; and the
//! retention sweep never removes a run at or above the cutoff.

use pomp::{registry, RegionKind, TaskIdAllocator};
use profstore::{ProfileStore, RetentionPolicy, RunWindow, ShardedStore, StoreConfig};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use taskprof::{AssignPolicy, Event, Profile, TeamReplayer};

/// A unique scratch directory per proptest case (cases run concurrently
/// within one process and leftovers from failed cases must not alias).
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "taskprof-proptest-shards-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A tiny one-task profile with a distinctive duration.
fn small_profile(task_ns: u64) -> Profile {
    let reg = registry();
    let par = reg.register("pshard-par", RegionKind::Parallel, "t", 0);
    let task = reg.register("pshard-task", RegionKind::Task, "t", 0);
    let ids = TaskIdAllocator::new();
    let mut team = TeamReplayer::new(1, par, AssignPolicy::Executing);
    let id = ids.alloc();
    team.apply(0, Event::TaskBegin { region: task, id })
        .advance(task_ns)
        .apply(0, Event::TaskEnd { region: task, id });
    team.finish()
}

/// Pool index 0 is the empty benchmark name (routed by run-id hash);
/// the rest are named groups (routed by name hash).
fn bench_name(pool: usize) -> String {
    if pool == 0 {
        String::new()
    } else {
        format!("pp-bench-{pool}")
    }
}

/// An ingest sequence: (benchmark pool, timestamp, task duration).
fn arb_runs() -> impl Strategy<Value = Vec<(usize, u64, u64)>> {
    prop::collection::vec((0usize..5, 0u64..1000, 1u64..500), 1..25)
}

/// Tiny segments so rotation — and therefore real GC segment rewrites —
/// happen even for small generated workloads.
fn tiny_segments() -> StoreConfig {
    StoreConfig {
        segment_max_bytes: 400,
        sync_writes: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Routing is a pure total function: always in range and identical
    /// on every call — which is exactly what "stable across reopen"
    /// reduces to, since a reopen re-runs the same function on the same
    /// recorded identity and shard count.
    #[test]
    fn routing_is_total_and_stable(
        bench in ".{0,24}",
        run_id in any::<u64>(),
        shards in 1usize..16,
    ) {
        let k = ShardedStore::route(&bench, run_id, shards);
        prop_assert!(k < shards);
        for _ in 0..3 {
            prop_assert_eq!(k, ShardedStore::route(&bench, run_id, shards));
        }
        // A named benchmark routes independently of the run id.
        if !bench.is_empty() {
            prop_assert_eq!(k, ShardedStore::route(&bench, run_id.wrapping_add(1), shards));
        }
        // The empty name falls back to the id hash and stays in range.
        prop_assert!(ShardedStore::route("", run_id, shards) < shards);
    }

    /// Every acked run survives a reopen in a shard the router still
    /// selects: load-by-id finds it and the metadata round-trips.
    #[test]
    fn reopen_finds_every_run_where_routing_put_it(
        runs in arb_runs(),
        shards in 1u32..6,
    ) {
        let dir = scratch_dir("reopen");
        let mut acked = Vec::new();
        {
            let store = ShardedStore::open_with(&dir, shards, tiny_segments()).expect("open");
            for &(pool, ts, dur) in &runs {
                let r = store
                    .ingest(&bench_name(pool), 2, ts, &small_profile(dur))
                    .expect("ingest");
                acked.push((r.run_id, pool, ts));
            }
        }
        let store = ShardedStore::open_with(&dir, shards, tiny_segments()).expect("reopen");
        prop_assert_eq!(store.len(), runs.len());
        for &(id, pool, ts) in &acked {
            let (meta, _) = store.load(id).expect("acked run present after reopen");
            prop_assert_eq!(&meta.benchmark, &bench_name(pool));
            prop_assert_eq!(meta.timestamp_ns, ts);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Sharding is invisible to queries: for the same ingest sequence, a
    /// sharded store and a single store produce byte-identical
    /// aggregates and trends for every group, windowed or not.
    #[test]
    fn fan_in_equals_single_store_fold(
        runs in arb_runs(),
        shards in 2u32..6,
        last in (any::<bool>(), 1u64..30).prop_map(|(some, v)| some.then_some(v)),
        since_ns in (any::<bool>(), 0u64..1000).prop_map(|(some, v)| some.then_some(v)),
    ) {
        let sharded_dir = scratch_dir("fanin");
        let single_dir = scratch_dir("fanin-single");
        let sharded =
            ShardedStore::open_with(&sharded_dir, shards, tiny_segments()).expect("open sharded");
        let mut single =
            ProfileStore::open_with(&single_dir, tiny_segments()).expect("open single");
        for &(pool, ts, dur) in &runs {
            // Both stores assign sequential global ids from 1, so the
            // same ingest order gives the same run identities.
            let p = small_profile(dur);
            let a = sharded.ingest(&bench_name(pool), 2, ts, &p).expect("sharded ingest");
            let b = single.ingest(&bench_name(pool), 2, ts, &p).expect("single ingest");
            prop_assert_eq!(a.run_id, b.run_id);
        }
        let window = RunWindow { last, since_ns };
        for pool in 0..5 {
            let bench = bench_name(pool);
            let a = sharded.aggregate_window(&bench, 2, &window).expect("sharded agg");
            let b = single.aggregate_window(&bench, 2, &window).expect("single agg");
            prop_assert_eq!(
                format!("{a:?}"), format!("{b:?}"),
                "aggregate diverges for {:?} window {:?}", bench, window
            );
            let ta = sharded.trend(&bench, 2, &window, 3).expect("sharded trend");
            let tb = single.trend(&bench, 2, &window, 3).expect("single trend");
            prop_assert_eq!(
                format!("{ta:?}"), format!("{tb:?}"),
                "trend diverges for {:?} window {:?}", bench, window
            );
        }
        drop(sharded);
        drop(single);
        let _ = std::fs::remove_dir_all(&sharded_dir);
        let _ = std::fs::remove_dir_all(&single_dir);
    }

    /// The timestamp-cutoff sweep drops exactly the runs below the
    /// cutoff: never one at or above it, and the report's arithmetic
    /// accounts for every ingested run.
    #[test]
    fn gc_never_removes_a_run_at_or_above_the_cutoff(
        runs in arb_runs(),
        shards in 1u32..6,
        cutoff in 0u64..1200,
    ) {
        let dir = scratch_dir("gc");
        let store = ShardedStore::open_with(&dir, shards, tiny_segments()).expect("open");
        let mut acked = Vec::new();
        for &(pool, ts, dur) in &runs {
            let r = store
                .ingest(&bench_name(pool), 2, ts, &small_profile(dur))
                .expect("ingest");
            acked.push((r.run_id, ts));
        }
        let report = store
            .gc(&RetentionPolicy {
                keep_last: None,
                min_timestamp_ns: Some(cutoff),
            })
            .expect("gc");
        let survivors: Vec<&(u64, u64)> = acked.iter().filter(|&&(_, ts)| ts >= cutoff).collect();
        prop_assert_eq!(
            store.len() + report.dropped_runs as usize,
            runs.len(),
            "sweep dropped and kept counts must cover every run"
        );
        prop_assert_eq!(store.len(), survivors.len());
        for &&(id, ts) in &survivors {
            prop_assert!(
                store.load(id).is_ok(),
                "run {} (ts {}) at/above cutoff {} was removed", id, ts, cutoff
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The keep-last sweep always retains the newest `keep` runs of
    /// every (benchmark, threads) group, across all shards.
    #[test]
    fn gc_keep_last_retains_the_newest_runs_of_every_group(
        runs in arb_runs(),
        shards in 1u32..6,
        keep in 1u64..8,
    ) {
        let dir = scratch_dir("keep");
        let store = ShardedStore::open_with(&dir, shards, tiny_segments()).expect("open");
        let mut acked: Vec<(u64, usize)> = Vec::new();
        for &(pool, ts, dur) in &runs {
            let r = store
                .ingest(&bench_name(pool), 2, ts, &small_profile(dur))
                .expect("ingest");
            acked.push((r.run_id, pool));
        }
        store
            .gc(&RetentionPolicy {
                keep_last: Some(keep),
                min_timestamp_ns: None,
            })
            .expect("gc");
        for pool in 0..5 {
            let ids: Vec<u64> = acked
                .iter()
                .filter(|&&(_, p)| p == pool)
                .map(|&(id, _)| id)
                .collect();
            for &id in ids.iter().rev().take(keep as usize) {
                prop_assert!(
                    store.load(id).is_ok(),
                    "run {} is among the newest {} of its group but was removed", id, keep
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
