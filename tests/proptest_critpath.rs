//! Property-based invariants of the critical-path analysis.
//!
//! Random task trees run under random seeded simulated schedules; the
//! assembled DAG must satisfy the work/span ordering laws regardless of
//! shape or schedule: span ≤ makespan ≤ work (so parallelism ≥ 1), the
//! per-region work decomposition sums to the total, and what-if
//! predictions are monotone nonincreasing in the speedup factor while
//! never beating the scaled logical span.

use proptest::prelude::*;
use simsched::{run_workload, whatif, SimConfig, Step, TreeWorkload};

/// A uniform tree: every internal node does `inner` work then spawns
/// `fanout` children and taskwaits; leaves do `leaf` work. The name is
/// fixed so repeated cases reuse the same registry entries.
fn tree(depth: usize, fanout: usize, inner: u64, leaf: u64) -> TreeWorkload {
    fn node(depth: usize, fanout: usize, inner: u64, leaf: u64) -> Vec<Step> {
        if depth == 0 {
            return vec![Step::Work(leaf)];
        }
        let mut steps = vec![Step::Work(inner)];
        for _ in 0..fanout {
            steps.push(Step::Task(node(depth - 1, fanout, inner, leaf)));
        }
        steps.push(Step::Taskwait);
        steps
    }
    TreeWorkload::new(
        "prop-critpath",
        vec![],
        vec![
            Step::Task(node(depth, fanout, inner, leaf)),
            Step::Taskwait,
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn work_span_ordering_holds_on_random_trees(
        depth in 0usize..3,
        fanout in 1usize..4,
        inner in 1u64..400,
        leaf in 1u64..400,
        seed in 0u64..1000,
        threads in 2usize..4,
    ) {
        let w = tree(depth, fanout, inner, leaf);
        let run = run_workload(&w, &SimConfig::seeded(threads, seed));
        let dag = whatif::analyze(&run, &w).expect("simulated streams form a DAG");

        // The ordering laws: no schedule beats the logical span, and no
        // path through the run exceeds the total work.
        prop_assert!(dag.span_ns() <= dag.makespan_ns());
        prop_assert!(dag.makespan_ns() <= dag.work_ns());
        prop_assert!(dag.parallelism() >= 1.0);

        // Region decomposition is exact: per-region work sums to total.
        let region_sum: u64 = dag.work_by_region().iter().map(|(_, ns)| ns).sum();
        prop_assert_eq!(region_sum, dag.work_ns());
        let thread_sum: u64 = dag.work_by_thread().iter().sum();
        prop_assert_eq!(thread_sum, dag.work_ns());
    }

    #[test]
    fn what_if_is_monotone_and_span_bounded(
        depth in 0usize..3,
        fanout in 1usize..4,
        inner in 1u64..400,
        leaf in 1u64..400,
        seed in 0u64..1000,
    ) {
        let w = tree(depth, fanout, inner, leaf);
        let run = run_workload(&w, &SimConfig::seeded(2, seed));
        let dag = whatif::analyze(&run, &w).expect("simulated streams form a DAG");

        // K = 1 is the identity hypothesis.
        let unit = dag.what_if(w.task_region(), 1);
        prop_assert_eq!(unit.predicted_makespan_ns, dag.makespan_ns());

        let mut last = u64::MAX;
        for k in [2u64, 3, 4, 8, 16] {
            let p = dag.what_if(w.task_region(), k);
            prop_assert_eq!(p.baseline_makespan_ns, dag.makespan_ns());
            // Faster region, never a slower program...
            prop_assert!(p.predicted_makespan_ns <= dag.makespan_ns());
            // ...monotone in K...
            prop_assert!(p.predicted_makespan_ns <= last);
            // ...and never below the scaled graph's own logical span.
            prop_assert!(p.predicted_makespan_ns >= p.predicted_span_ns);
            last = p.predicted_makespan_ns;
        }

        // Speeding up a region with no recorded work changes nothing.
        let noop = dag.what_if(w.user_region(), 8);
        prop_assert_eq!(noop.predicted_makespan_ns, dag.makespan_ns());
        prop_assert_eq!(noop.predicted_span_ns, dag.span_ns());
    }
}
