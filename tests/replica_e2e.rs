//! End-to-end replication: auth refusal as a typed error, a follower
//! cold-starting into a live leader, and a mid-stream partition that
//! resumes from the acked cursor without re-applying a single frame.

use profserve::{
    replicate, Client, ClientError, ClientTimeouts, ErrorKind, Record, ReplicaConfig, Response,
    ServeConfig, Server, ServerHandle, WireProtocol,
};
use profstore::ProfileStore;
use std::path::PathBuf;
use taskprof_session::MeasurementSession;
use taskrt::TaskConstruct;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "replica-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spawn_server(
    dir: &std::path::Path,
    config: ServeConfig,
) -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let store = ProfileStore::open(dir).expect("open store");
    Server::spawn("127.0.0.1:0", store, config).expect("spawn server")
}

/// One deterministic seeded measurement as the text store format.
fn deterministic_profile_text(seed: u64) -> String {
    let task = TaskConstruct::new("replica_task");
    let tw = taskrt::taskwait_region("replica!tw");
    let session = MeasurementSession::builder("replica-e2e")
        .threads(2)
        .deterministic(seed)
        .build()
        .expect("valid session");
    session
        .run(|ctx| {
            for _ in 0..3 {
                ctx.task(&task, |_| {});
            }
            ctx.taskwait(tw);
        })
        .unwrap();
    cube::write_profile(&session.finish().profile)
}

fn ingest_seeds(client: &mut Client, bench: &str, seeds: std::ops::Range<u64>) {
    for seed in seeds {
        let text = deterministic_profile_text(seed);
        client
            .ingest_record(&Record::from_text(bench, 2, Some(seed * 1_000), &text))
            .expect("ingest");
    }
}

/// The canonical query lines both daemons must answer identically with.
fn query_lines(addr: &str, bench: &str) -> Vec<String> {
    let mut client = Client::connect_with(addr, ClientTimeouts::default()).expect("connect");
    vec![
        Response::Top(client.query_top(bench, 2, 10).expect("top")).to_json_line(),
        Response::Stats(client.query_stats(bench, 2).expect("stats")).to_json_line(),
    ]
}

#[test]
fn wrong_or_missing_secret_is_a_typed_unauthorized_error() {
    let dir = temp_dir("auth");
    let config = ServeConfig {
        auth_secret: Some("s3cret".to_string()),
        ..ServeConfig::default()
    };
    let (handle, join) = spawn_server(&dir, config);
    let addr = handle.addr().to_string();

    // A wrong secret is refused inside the binary handshake.
    match Client::connect_proto_auth(
        &addr,
        WireProtocol::Binary,
        ClientTimeouts::default(),
        Some("wrong"),
    ) {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, ErrorKind::Unauthorized),
        Err(other) => panic!("expected unauthorized, got {other}"),
        Ok(_) => panic!("wrong secret must not connect"),
    }

    // No secret at all: the connection opens (HELLO is always allowed)
    // but the first real request is refused, on both protocols.
    for proto in [WireProtocol::Binary, WireProtocol::Json] {
        let mut open =
            Client::connect_proto(&addr, proto, ClientTimeouts::default()).expect("connect");
        match open.server_stats() {
            Err(ClientError::Server { kind, message }) => {
                assert_eq!(kind, ErrorKind::Unauthorized, "{proto:?}");
                assert!(message.contains("HELLO"), "{message}");
            }
            other => panic!("{proto:?}: expected unauthorized, got {other:?}"),
        }
    }

    // The right secret authorizes the whole connection, on both
    // protocols (JSON authenticates with an explicit HELLO line).
    for proto in [WireProtocol::Binary, WireProtocol::Json] {
        let mut ok =
            Client::connect_proto_auth(&addr, proto, ClientTimeouts::default(), Some("s3cret"))
                .expect("authed connect");
        ok.server_stats().expect("authed request");
    }

    handle.stop();
    join.join().expect("join").expect("run");
    drop(handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cold_follower_catches_up_during_live_ingest() {
    let leader_dir = temp_dir("live-leader");
    let follower_dir = temp_dir("live-follower");
    let (leader, leader_join) = spawn_server(&leader_dir, ServeConfig::default());
    let (follower, follower_join) = spawn_server(&follower_dir, ServeConfig::default());
    let leader_addr = leader.addr().to_string();
    let follower_addr = follower.addr().to_string();

    let mut ingester =
        Client::connect_with(&leader_addr, ClientTimeouts::default()).expect("connect");
    ingest_seeds(&mut ingester, "live", 0..12);

    // First pump: the cold follower pulls everything the leader has
    // while the ingester keeps writing *between* pages.
    let config = ReplicaConfig {
        batch: 4,
        ..ReplicaConfig::default()
    };
    let report = replicate(&leader_addr, &follower_addr, &config).expect("replicate");
    assert_eq!(report.start_cursor, 0);
    assert_eq!(report.frames_applied, 12);
    assert_eq!(report.frames_skipped, 0);
    assert_eq!(report.end_cursor, 12);

    // Live ingest after the first pump: the next pump ships only the
    // delta (resumed from the follower's cursor, not from zero).
    ingest_seeds(&mut ingester, "live", 12..20);
    let report = replicate(&leader_addr, &follower_addr, &config).expect("re-replicate");
    assert_eq!(report.start_cursor, 12);
    assert_eq!(report.frames_applied, 8);
    assert_eq!(report.frames_skipped, 0, "re-pump must not re-apply");
    assert_eq!(report.end_cursor, 20);

    // Caught up: leader and follower answer every query byte-identically.
    assert_eq!(
        query_lines(&leader_addr, "live"),
        query_lines(&follower_addr, "live")
    );

    leader.stop();
    follower.stop();
    drop(ingester);
    leader_join.join().expect("join").expect("run");
    follower_join.join().expect("join").expect("run");
    drop((leader, follower));
    let _ = std::fs::remove_dir_all(&leader_dir);
    let _ = std::fs::remove_dir_all(&follower_dir);
}

#[test]
fn partition_mid_stream_resumes_from_the_acked_cursor() {
    let leader_dir = temp_dir("part-leader");
    let follower_dir = temp_dir("part-follower");
    let (leader, leader_join) = spawn_server(&leader_dir, ServeConfig::default());
    let (follower, follower_join) = spawn_server(&follower_dir, ServeConfig::default());
    let leader_addr = leader.addr().to_string();
    let follower_addr = follower.addr().to_string();

    let mut ingester =
        Client::connect_with(&leader_addr, ClientTimeouts::default()).expect("connect");
    ingest_seeds(&mut ingester, "part", 0..10);

    // Hand-pump exactly one page, then "partition": drop both
    // connections with the stream incomplete. The only durable state is
    // what the follower acked.
    let mut src = Client::connect_with(&leader_addr, ClientTimeouts::default()).expect("connect");
    let mut dst = Client::connect_with(&follower_addr, ClientTimeouts::default()).expect("connect");
    let page = src.export_frames(0, 4).expect("export");
    assert_eq!(page.frames.len(), 4);
    assert!(!page.done);
    let ack = dst.apply_frames(&page.frames).expect("apply");
    assert_eq!((ack.applied, ack.skipped, ack.watermark), (4, 0, 4));
    drop((src, dst)); // the partition

    // A retry after the partition re-ships the acked page: exactly-once
    // means every re-shipped frame is skipped, never duplicated.
    let mut src = Client::connect_with(&leader_addr, ClientTimeouts::default()).expect("connect");
    let mut dst = Client::connect_with(&follower_addr, ClientTimeouts::default()).expect("connect");
    let replay = src.export_frames(0, 4).expect("export");
    let ack = dst.apply_frames(&replay.frames).expect("re-apply");
    assert_eq!(
        (ack.applied, ack.skipped),
        (0, 4),
        "retry must skip, not duplicate"
    );
    drop((src, dst));

    // The full pump resumes from the follower's own cursor (4): it
    // never re-reads the applied prefix, and ships exactly the rest.
    let config = ReplicaConfig {
        batch: 4,
        ..ReplicaConfig::default()
    };
    let report = replicate(&leader_addr, &follower_addr, &config).expect("resume");
    assert_eq!(report.start_cursor, 4);
    assert_eq!(report.frames_applied, 6);
    assert_eq!(
        report.frames_skipped, 0,
        "resume must not re-apply the acked prefix"
    );
    assert_eq!(report.end_cursor, 10);

    assert_eq!(
        query_lines(&leader_addr, "part"),
        query_lines(&follower_addr, "part")
    );

    leader.stop();
    follower.stop();
    drop(ingester);
    leader_join.join().expect("join").expect("run");
    follower_join.join().expect("join").expect("run");
    drop((leader, follower));
    let _ = std::fs::remove_dir_all(&leader_dir);
    let _ = std::fs::remove_dir_all(&follower_dir);
}
