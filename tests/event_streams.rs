//! Exact-number replays of the paper's event-stream figures
//! (Figs. 1, 2, 4) — the DESIGN.md per-experiment index entries for those
//! figures.

use pomp::{RegionId, TaskIdAllocator, TaskRef};
use taskprof::{replay, AssignPolicy, Event, NodeKind};

const PAR: RegionId = RegionId(9100);
const FOO: RegionId = RegionId(9101);
const BAR: RegionId = RegionId(9102);
const TASK: RegionId = RegionId(9103);
const TW: RegionId = RegionId(9104);
const BARRIER: RegionId = RegionId(9105);

#[test]
fn fig1_sequential_nesting() {
    // main { foo(); bar(); } with foo 20ns, bar 10ns, gaps 5ns each.
    let snap = replay(
        PAR,
        AssignPolicy::Executing,
        [
            Event::Advance(5),
            Event::Enter(FOO),
            Event::Advance(20),
            Event::Exit(FOO),
            Event::Advance(5),
            Event::Enter(BAR),
            Event::Advance(10),
            Event::Exit(BAR),
            Event::Advance(5),
        ],
    );
    assert_eq!(snap.main.stats.sum_ns, 45);
    assert_eq!(snap.main.exclusive_ns(), 15);
    assert_eq!(snap.main.child(NodeKind::Region(FOO)).unwrap().stats.sum_ns, 20);
    assert_eq!(snap.main.child(NodeKind::Region(BAR)).unwrap().stats.sum_ns, 10);
    assert!(snap.task_trees.is_empty());
    assert_eq!(snap.max_live_trees, 0);
}

#[test]
fn fig2_exits_of_interleaved_foo_calls_are_not_confused() {
    // Two instances both inside foo() when suspended: without instance
    // tracking the two exits of foo are ambiguous; with it, each instance
    // keeps its own call path.
    let ids = TaskIdAllocator::new();
    let (t1, t2) = (ids.alloc(), ids.alloc());
    let snap = replay(
        PAR,
        AssignPolicy::Executing,
        [
            Event::Enter(BARRIER),
            Event::TaskBegin { region: TASK, id: t1 },
            Event::Advance(4),
            Event::Enter(FOO),
            Event::Advance(6),
            Event::Enter(TW),
            Event::Advance(1),
            // t1 suspends inside foo; t2 starts and also enters foo.
            Event::TaskBegin { region: TASK, id: t2 },
            Event::Advance(3),
            Event::Enter(FOO),
            Event::Advance(8),
            Event::Enter(TW),
            Event::Advance(1),
            // t2 suspends inside foo too; t1 resumes and finishes its foo.
            Event::Switch(TaskRef::Explicit(t1)),
            Event::Advance(2),
            Event::Exit(TW),
            Event::Advance(1),
            Event::Exit(FOO), // t1's foo closes
            Event::Advance(1),
            Event::TaskEnd { region: TASK, id: t1 },
            // t2 resumes and closes its own foo.
            Event::Switch(TaskRef::Explicit(t2)),
            Event::Advance(5),
            Event::Exit(TW),
            Event::Exit(FOO), // t2's foo closes
            Event::TaskEnd { region: TASK, id: t2 },
            Event::Exit(BARRIER),
        ],
    );
    let task = &snap.task_trees[0];
    assert_eq!(task.stats.samples, 2);
    // t1 ran 4+6+1 (to suspension) + 2+1+1 (after resume) = 15.
    // t2 ran 3+8+1 (to suspension) + 5 (after resume) = 17.
    assert_eq!(task.stats.min_ns, 15);
    assert_eq!(task.stats.max_ns, 17);
    let foo = task.child(NodeKind::Region(FOO)).unwrap();
    // t1's foo: entered at 4, suspended 11..23, exited 26 → 7 + 3 = 10.
    // t2's foo: entered at 14, suspended 23..27, exited 32 → 9 + 5 = 14.
    assert_eq!(foo.stats.sum_ns, 24);
    assert_eq!(foo.stats.min_ns, 10);
    assert_eq!(foo.stats.max_ns, 14);
    assert_eq!(foo.stats.visits, 2);
}

#[test]
fn fig4_resumed_task_keeps_single_statistics_location() {
    // A task suspended at a taskwait and resumed later must contribute
    // *one* instance to the statistics (not one per fragment), with
    // indivisible metrics (visits) attributed once.
    let ids = TaskIdAllocator::new();
    let (t1, t2) = (ids.alloc(), ids.alloc());
    let snap = replay(
        PAR,
        AssignPolicy::Executing,
        [
            Event::Enter(BARRIER),
            Event::TaskBegin { region: TASK, id: t1 },
            Event::Advance(10),
            Event::Enter(TW),
            Event::Advance(2),
            Event::TaskBegin { region: TASK, id: t2 },
            Event::Advance(7),
            Event::TaskEnd { region: TASK, id: t2 },
            Event::Switch(TaskRef::Explicit(t1)),
            Event::Advance(1),
            Event::Exit(TW),
            Event::Advance(4),
            Event::TaskEnd { region: TASK, id: t1 },
            Event::Exit(BARRIER),
        ],
    );
    let task = &snap.task_trees[0];
    // Two instances total, even though t1 executed as two fragments.
    assert_eq!(task.stats.visits, 2);
    assert_eq!(task.stats.samples, 2);
    // t1 = 10 + 2 + 1 + 4 = 17 (7 ns suspension excluded); t2 = 7.
    assert_eq!(task.stats.max_ns, 17);
    assert_eq!(task.stats.min_ns, 7);
    // The fragments are visible where they belong: in the stub visits.
    let barrier = snap.main.child(NodeKind::Region(BARRIER)).unwrap();
    let stub = barrier.child(NodeKind::Stub(TASK)).unwrap();
    assert_eq!(stub.stats.visits, 3, "t1 fragment, t2, t1 fragment");
    assert_eq!(stub.stats.sum_ns, 24);
}

#[test]
fn call_tree_structure_is_schedule_independent() {
    // Section IV-B3: recording tasks independently (no parent/child links
    // between explicit tasks) keeps the tree identical regardless of the
    // runtime's scheduling choices. Execute the same two instances in two
    // different orders and compare the aggregate trees.
    let run = |order_swapped: bool| {
        let ids = TaskIdAllocator::new();
        let (a, b) = (ids.alloc(), ids.alloc());
        let (first, second) = if order_swapped { (b, a) } else { (a, b) };
        replay(
            PAR,
            AssignPolicy::Executing,
            [
                Event::Enter(BARRIER),
                Event::TaskBegin { region: TASK, id: first },
                Event::Advance(10),
                Event::Enter(FOO),
                Event::Advance(5),
                Event::Exit(FOO),
                Event::TaskEnd { region: TASK, id: first },
                Event::TaskBegin { region: TASK, id: second },
                Event::Advance(10),
                Event::Enter(FOO),
                Event::Advance(5),
                Event::Exit(FOO),
                Event::TaskEnd { region: TASK, id: second },
                Event::Exit(BARRIER),
            ],
        )
    };
    let x = run(false);
    let y = run(true);
    assert_eq!(x.task_trees, y.task_trees);
    assert_eq!(x.main, y.main);
}
