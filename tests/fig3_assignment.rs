//! Fig. 3 / Section IV-B2: the node-assignment decision. The creating-
//! node policy produces negative exclusive times and over-attributes the
//! barrier; the executing-node policy keeps all metrics meaningful.

use pomp::{RegionId, TaskIdAllocator};
use taskprof::{replay, AssignPolicy, Event, NodeKind, ThreadSnapshot};

const PAR: RegionId = RegionId(9300);
const TASK: RegionId = RegionId(9301);
const CREATE: RegionId = RegionId(9302);
const BARRIER: RegionId = RegionId(9303);

fn scenario(policy: AssignPolicy) -> ThreadSnapshot {
    let ids = TaskIdAllocator::new();
    let t1 = ids.alloc();
    replay(
        PAR,
        policy,
        [
            Event::Advance(2), // parallel region start
            Event::CreateBegin { create: CREATE, task_region: TASK, id: t1 },
            Event::Advance(2), // creation takes 2
            Event::CreateEnd { create: CREATE, id: t1 },
            Event::Enter(BARRIER),
            Event::TaskBegin { region: TASK, id: t1 },
            Event::Advance(5), // the actual work
            Event::TaskEnd { region: TASK, id: t1 },
            Event::Advance(2), // residual wait
            Event::Exit(BARRIER),
        ],
    )
}

#[test]
fn creating_node_policy_breaks_exclusive_times() {
    let snap = scenario(AssignPolicy::Creating);
    let create = snap.main.child(NodeKind::Region(CREATE)).unwrap();
    // The task tree hangs under the creation node...
    let task = create.child(NodeKind::Region(TASK)).unwrap();
    assert_eq!(task.stats.sum_ns, 5);
    // ...making the creation node's exclusive time negative (paper: "a
    // task creation time of -5, which does not make sense").
    assert!(create.exclusive_ns() < 0, "got {}", create.exclusive_ns());
    // And the barrier's exclusive time includes the task's work (paper:
    // "the time attributed to the barrier is too large").
    let barrier = snap.main.child(NodeKind::Region(BARRIER)).unwrap();
    assert_eq!(barrier.exclusive_ns(), 7);
    assert!(snap.task_trees.is_empty());
}

#[test]
fn executing_node_policy_keeps_metrics_meaningful() {
    let snap = scenario(AssignPolicy::Executing);
    let create = snap.main.child(NodeKind::Region(CREATE)).unwrap();
    assert_eq!(create.exclusive_ns(), 2);
    assert!(create.children.is_empty());
    let barrier = snap.main.child(NodeKind::Region(BARRIER)).unwrap();
    // Barrier exclusive = 7 − 5 = 2: the task's execution is useful work,
    // not barrier time.
    assert_eq!(barrier.exclusive_ns(), 2);
    let stub = barrier.child(NodeKind::Stub(TASK)).unwrap();
    assert_eq!(stub.stats.sum_ns, 5);
    assert_eq!(snap.task_trees[0].stats.sum_ns, 5);
    // Nothing anywhere is negative.
    let mut all_nonneg = true;
    snap.main.walk(&mut |_, n| all_nonneg &= n.exclusive_ns() >= 0);
    assert!(all_nonneg);
}
