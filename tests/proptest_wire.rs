//! Robustness of the TPF1 wire codec: arbitrary and corrupted bytes must
//! never panic the decoder, truncated frames must wait for more data
//! instead of yielding garbage, single-bit corruption must never pass the
//! frame check undetected, and encode→decode must round-trip every
//! request shape.

use profserve::wire::{decode_request, decode_response, encode_request, frame, try_frame};
use profserve::{ProfilePayload, Record, Request};
use profstore::RunWindow;
use proptest::prelude::*;

/// Decoder-side payload cap used by every property: large enough that no
/// generated frame ever trips it, so `FrameTooLarge` only appears when
/// corruption inflates the length header.
const MAX_PAYLOAD: usize = 1 << 20;

fn arb_payload() -> impl Strategy<Value = ProfilePayload> {
    prop_oneof![
        ".{0,80}".prop_map(ProfilePayload::Text),
        prop::collection::vec(any::<u8>(), 0..120).prop_map(ProfilePayload::Record),
    ]
}

/// `Option<u64>` out of primitives (the vendored proptest has no
/// `prop::option`).
fn arb_opt_u64() -> impl Strategy<Value = Option<u64>> {
    (any::<bool>(), any::<u64>()).prop_map(|(some, v)| some.then_some(v))
}

fn arb_window() -> impl Strategy<Value = RunWindow> {
    (arb_opt_u64(), arb_opt_u64()).prop_map(|(last, since_ns)| RunWindow { last, since_ns })
}

fn arb_record() -> impl Strategy<Value = Record> {
    ("[a-z_]{1,12}", 1u32..8, arb_opt_u64(), arb_payload()).prop_map(
        |(benchmark, threads, timestamp_ns, profile)| Record {
            benchmark,
            threads,
            timestamp_ns,
            profile,
        },
    )
}

/// Optional `HELLO` auth secret (arbitrary short strings, including
/// empty — the codec must not care what the secret looks like).
fn arb_auth() -> impl Strategy<Value = Option<String>> {
    (any::<bool>(), ".{0,24}").prop_map(|(some, s)| some.then_some(s))
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (any::<u32>(), any::<u64>(), arb_auth()).prop_map(|(version, features, auth)| {
            Request::Hello {
                version,
                features,
                auth,
            }
        }),
        arb_record().prop_map(Request::Ingest),
        prop::collection::vec(arb_record(), 0..4).prop_map(Request::IngestBatch),
        ("[a-z]{1,12}", 1u32..8, 0usize..50, arb_window()).prop_map(
            |(benchmark, threads, n, window)| Request::QueryTop {
                benchmark,
                threads,
                n,
                window,
            }
        ),
        ("[a-z]{1,12}", 1u32..8, arb_window()).prop_map(|(benchmark, threads, window)| {
            Request::QueryStats {
                benchmark,
                threads,
                window,
            }
        }),
        (
            ("[a-z]{1,12}", 1u32..8, arb_payload()),
            (
                (any::<bool>(), 0.0f64..10.0).prop_map(|(some, v)| some.then_some(v)),
                arb_opt_u64(),
                arb_opt_u64(),
                arb_window(),
            ),
        )
            .prop_map(
                |((benchmark, threads, profile), (threshold, min_runs, min_delta_ns, window))| {
                    Request::QueryRegress {
                        benchmark,
                        threads,
                        profile,
                        threshold,
                        min_runs,
                        min_delta_ns,
                        window,
                    }
                },
            ),
        ("[a-z]{1,12}", 1u32..8, 1u32..16, arb_window()).prop_map(
            |(benchmark, threads, buckets, window)| Request::QueryTrend {
                benchmark,
                threads,
                buckets,
                window,
            }
        ),
        Just(Request::Stats),
        Just(Request::StatsPrometheus),
        arb_opt_u64().prop_map(|interval_ms| Request::Subscribe { interval_ms }),
        (any::<u64>(), any::<u64>()).prop_map(|(after, max)| Request::Export { after, max }),
        prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..4)
            .prop_map(|frames| Request::Apply { frames }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frame_parser_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        let _ = try_frame(&bytes, MAX_PAYLOAD);
    }

    #[test]
    fn payload_decoders_never_panic_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }

    #[test]
    fn requests_round_trip_through_frame_and_codec(req in arb_request()) {
        let framed = frame(&encode_request(&req));
        let (payload, consumed) = try_frame(&framed, MAX_PAYLOAD)
            .expect("valid frame")
            .expect("complete frame");
        prop_assert_eq!(consumed, framed.len());
        prop_assert_eq!(decode_request(&payload).expect("valid payload"), req);
    }

    #[test]
    fn truncated_frames_wait_for_more_data(req in arb_request(), cut in 0.0f64..1.0) {
        // Any strict prefix of a valid frame is an incomplete read, never
        // a decoded frame and never an error: the reactor must keep the
        // connection open and wait for the remaining bytes.
        let framed = frame(&encode_request(&req));
        let keep = ((framed.len() as f64 * cut) as usize).min(framed.len() - 1);
        prop_assert!(matches!(try_frame(&framed[..keep], MAX_PAYLOAD), Ok(None)));
    }

    #[test]
    fn bit_flips_never_pass_undetected(
        req in arb_request(),
        pos in any::<usize>(),
        bit in 0u8..8,
    ) {
        let framed = frame(&encode_request(&req));
        let original = try_frame(&framed, MAX_PAYLOAD)
            .expect("valid frame")
            .expect("complete frame")
            .0;
        let mut corrupt = framed.clone();
        let idx = pos % corrupt.len();
        corrupt[idx] ^= 1 << bit;
        // A flipped length header may legitimately look like an
        // incomplete frame (Ok(None)) or an oversized one (Err); a
        // flipped payload or checksum must fail the CRC. What must never
        // happen is the original payload coming back as if intact.
        if let Ok(Some((payload, _))) = try_frame(&corrupt, MAX_PAYLOAD) {
            prop_assert!(payload != original, "bit flip at byte {} went undetected", idx);
        }
    }

    #[test]
    fn truncated_payloads_never_decode_to_the_original(req in arb_request(), cut in 0.0f64..1.0) {
        let payload = encode_request(&req);
        // One deliberate exception: the HELLO auth extension is a trailing
        // optional field, and the decoder accepts a pre-auth HELLO that
        // ends after `features` as auth: None. Dropping exactly the
        // presence byte of an auth-less HELLO therefore round-trips.
        let compat_hello = matches!(&req, Request::Hello { auth: None, .. });
        if payload.len() > 1 {
            let keep = ((payload.len() as f64 * cut) as usize).min(payload.len() - 1);
            if !(compat_hello && keep == payload.len() - 1) {
                if let Ok(decoded) = decode_request(&payload[..keep]) {
                    prop_assert_ne!(decoded, req);
                }
            }
        }
    }
}
