//! Property-based tests of the BOTS kernels themselves, run through the
//! real task runtime on arbitrary inputs.

use bots::fft::{dft_naive, fft, Complex};
use bots::nqueens::serial_count;
use bots::sort::sort_slice;
use pomp::{CountingMonitor, NullMonitor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_sort_sorts_anything(
        mut data in prop::collection::vec(any::<u32>(), 0..5000),
        threads in 1usize..4,
    ) {
        let mut expect = data.clone();
        expect.sort_unstable();
        sort_slice(&NullMonitor, threads, &mut data);
        prop_assert_eq!(data, expect);
    }

    #[test]
    fn parallel_fft_matches_naive_dft(
        raw in prop::collection::vec((-1000i32..1000, -1000i32..1000), 1..5),
        exp in 4u32..9,
    ) {
        // Build a power-of-two input from the raw seed values (cycled).
        let n = 1usize << exp;
        let input: Vec<Complex> = (0..n)
            .map(|i| {
                let (re, im) = raw[i % raw.len()];
                Complex::new(re as f64 / 100.0, im as f64 / 100.0)
            })
            .collect();
        let got = fft(&NullMonitor, 2, &input);
        let want = dft_naive(&input);
        for (a, b) in got.iter().zip(&want) {
            prop_assert!(
                (a.re - b.re).abs() < 1e-6 && (a.im - b.im).abs() < 1e-6,
                "{a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn fft_is_linear(
        seed in any::<u64>(),
        exp in 4u32..8,
        scale in 1i32..50,
    ) {
        // FFT(c·x) = c·FFT(x): checks the combine stage's arithmetic.
        let n = 1usize << exp;
        let x = bots::fft::gen_input(n, seed);
        let c = scale as f64;
        let scaled: Vec<Complex> = x.iter().map(|v| Complex::new(v.re * c, v.im * c)).collect();
        let fx = fft(&NullMonitor, 2, &x);
        let fsx = fft(&NullMonitor, 2, &scaled);
        for (a, b) in fx.iter().zip(&fsx) {
            prop_assert!((a.re * c - b.re).abs() < 1e-6);
            prop_assert!((a.im * c - b.im).abs() < 1e-6);
        }
    }

    #[test]
    fn nqueens_counts_match_bitmask_reference(n in 1usize..8) {
        // Independent bitmask backtracking implementation.
        fn bitmask(n: usize, cols: u32, diag1: u32, diag2: u32) -> u64 {
            let full = (1u32 << n) - 1;
            if cols == full {
                return 1;
            }
            let mut free = full & !(cols | diag1 | diag2);
            let mut total = 0;
            while free != 0 {
                let bit = free & free.wrapping_neg();
                free -= bit;
                total += bitmask(n, cols | bit, (diag1 | bit) << 1, (diag2 | bit) >> 1);
            }
            total
        }
        let mut board = vec![0u8; n];
        prop_assert_eq!(serial_count(n, &mut board, 0), bitmask(n, 0, 0, 0));
    }
}

#[test]
fn counting_monitor_sees_every_sort_task() {
    // Cross-check the cheapest monitor against ground truth: begins must
    // equal ends, and creations must equal begins (every deferred task
    // ran exactly once).
    let m = CountingMonitor::new();
    let mut data: Vec<u32> = (0..20_000u32).rev().collect();
    sort_slice(&m, 2, &mut data);
    assert!(data.windows(2).all(|w| w[0] <= w[1]));
    let (_enters, creations, begins, ends, _switches, _params, threads) = m.counts().snapshot();
    assert_eq!(begins, ends);
    assert_eq!(creations, begins);
    assert!(begins > 0, "the sort must actually create tasks");
    assert_eq!(threads, 2);
}
