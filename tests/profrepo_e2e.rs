//! End-to-end coverage of the profile repository: concurrent clients
//! hammering one daemon without losing or duplicating runs, and the
//! determinism contract — two identical seeded sweeps produce
//! byte-identical query responses.

use profserve::{Client, ProfilePayload, Record, Response, ServeConfig, Server, ServerHandle};
use profstore::ProfileStore;
use std::collections::HashSet;
use std::path::PathBuf;
use taskprof_session::MeasurementSession;
use taskrt::TaskConstruct;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "profrepo-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spawn_server(
    dir: &std::path::Path,
    max_connections: usize,
) -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let store = ProfileStore::open(dir).expect("open store");
    let config = ServeConfig {
        max_connections,
        ..ServeConfig::default()
    };
    Server::spawn("127.0.0.1:0", store, config).expect("spawn server")
}

/// One deterministic seeded measurement of a small task workload, as the
/// text store format. Same seed, same bytes.
fn deterministic_profile_text(seed: u64) -> String {
    let task = TaskConstruct::new("e2e_repo_task");
    let tw = taskrt::taskwait_region("e2e-repo!tw");
    let session = MeasurementSession::builder("e2e-repo")
        .threads(2)
        .deterministic(seed)
        .build()
        .expect("valid session");
    session
        .run(|ctx| {
            for _ in 0..3 {
                ctx.task(&task, |_| {});
            }
            ctx.taskwait(tw);
        })
        .unwrap();
    cube::write_profile(&session.finish().profile)
}

#[test]
fn concurrent_clients_lose_and_duplicate_nothing() {
    const CLIENTS: usize = 8;
    const RUNS_PER_CLIENT: usize = 5;

    let dir = temp_dir("stress");
    let (handle, join) = spawn_server(&dir, CLIENTS + 4);
    let addr = handle.addr().to_string();

    let workers: Vec<_> = (0..CLIENTS)
        .map(|w| {
            let addr = addr.clone();
            std::thread::spawn(move || -> Vec<u64> {
                let mut client = Client::connect(&addr).expect("connect");
                let mut ids = Vec::new();
                for k in 0..RUNS_PER_CLIENT {
                    let seed = (w * RUNS_PER_CLIENT + k) as u64;
                    let text = deterministic_profile_text(seed);
                    let receipt = client
                        .ingest_record(&Record::from_text("stress-bench", 2, Some(seed), &text))
                        .expect("ingest");
                    ids.push(receipt.run_id());
                    // Interleave queries with the ingests so reads and
                    // writes genuinely contend on the store lock.
                    let top = client.query_top("stress-bench", 2, 5).expect("query");
                    assert!(top.runs >= 1, "query saw an empty aggregate");
                }
                ids
            })
        })
        .collect();

    let mut all_ids = Vec::new();
    for worker in workers {
        all_ids.extend(worker.join().expect("worker panicked"));
    }
    let expected = CLIENTS * RUNS_PER_CLIENT;
    assert_eq!(all_ids.len(), expected);
    let unique: HashSet<u64> = all_ids.iter().copied().collect();
    assert_eq!(unique.len(), expected, "duplicated run ids: {all_ids:?}");

    // The server agrees: exactly one stored run per acknowledged ingest.
    let mut client = Client::connect(&addr).expect("connect");
    let stats = client.query_stats("stress-bench", 2).expect("stats");
    assert_eq!(stats.runs, expected as u64);
    let health = client.server_stats().expect("server stats");
    assert_eq!(health.service.ingests, expected as u64);
    assert_eq!(health.service.panics, 0);

    handle.stop();
    drop(client);
    join.join().expect("join").expect("run");
    // The handle keeps the server's store (and its directory lock)
    // alive; release it before reopening the log as a new writer.
    drop(handle);

    // And the segment log on disk survives a cold reopen with all runs.
    let store = ProfileStore::open(&dir).expect("reopen");
    assert_eq!(store.stats().runs, expected as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

/// One full sweep: fresh store, fresh server, 20 deterministic ingests,
/// then the three query kinds. Returns every response line.
fn sweep(tag: &str) -> Vec<String> {
    let dir = temp_dir(tag);
    let (handle, join) = spawn_server(&dir, 8);
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    for seed in 0..20u64 {
        let text = deterministic_profile_text(seed);
        client
            .ingest_record(&Record::from_text("sweep-bench", 2, Some(seed * 1_000), &text))
            .expect("ingest");
    }

    // Serialize each typed report to its canonical JSON response line so
    // "byte-identical" stays a meaningful cross-sweep assertion.
    let mut lines = Vec::new();
    lines.push(
        Response::Top(client.query_top("sweep-bench", 2, 10).expect("top")).to_json_line(),
    );
    lines.push(
        Response::Stats(client.query_stats("sweep-bench", 2).expect("stats")).to_json_line(),
    );
    // Candidate from a seed outside the baseline: deterministic, so the
    // verdict (and its serialized form) is identical across sweeps.
    let candidate = deterministic_profile_text(777);
    lines.push(
        Response::Regress(
            client
                .query_regress(
                    "sweep-bench",
                    2,
                    ProfilePayload::Text(candidate),
                    Some(0.25),
                    None,
                    None,
                )
                .expect("regress"),
        )
        .to_json_line(),
    );

    handle.stop();
    drop(client);
    join.join().expect("join").expect("run");
    let _ = std::fs::remove_dir_all(&dir);
    lines
}

#[test]
fn identical_seeded_sweeps_answer_byte_identically() {
    let first = sweep("sweep-a");
    let second = sweep("sweep-b");
    assert_eq!(
        first, second,
        "identical deterministic sweeps must produce byte-identical responses"
    );
    // Sanity: the sweep actually stored and aggregated 20 runs.
    assert!(first[0].contains("\"runs\":20"), "{}", first[0]);
    assert!(first[2].contains("\"regressed\""), "{}", first[2]);
}
