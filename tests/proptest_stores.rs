//! Robustness of the persistence parsers: arbitrary input must never
//! panic, and serialize→parse must round-trip for generated profiles.

use cube::{read_profile, write_profile};
use pomp::TaskIdAllocator;
use proptest::prelude::*;
use taskprof::{AssignPolicy, Event, Profile, TeamReplayer};
use taskprof_trace::{read_trace, write_trace, EventKind, Trace, TraceEvent};


/// Generate a valid random profile via replay.
fn arb_profile() -> impl Strategy<Value = Profile> {
    (1usize..4, prop::collection::vec((1u64..100, 0usize..3), 0..20)).prop_map(
        |(nthreads, tasks)| {
            // Register the fixture regions (ids 9700.. may not exist in the
            // global registry yet when this test runs first).
            let reg = pomp::registry();
            let par = reg.register("ps-par", pomp::RegionKind::Parallel, "t", 0);
            let task = reg.register("ps-task", pomp::RegionKind::Task, "t", 0);
            let bar = reg.register("ps-bar", pomp::RegionKind::ImplicitBarrier, "t", 0);
            let ids = TaskIdAllocator::new();
            let mut team = TeamReplayer::new(nthreads, par, AssignPolicy::Executing);
            for tid in 0..nthreads {
                team.apply(tid, Event::Enter(bar));
            }
            for (dur, tid_raw) in tasks {
                let tid = tid_raw % nthreads;
                let id = ids.alloc();
                team.apply(tid, Event::TaskBegin { region: task, id })
                    .advance(dur)
                    .apply(tid, Event::TaskEnd { region: task, id });
            }
            for tid in 0..nthreads {
                team.apply(tid, Event::Exit(bar));
            }
            team.finish()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn profile_parser_never_panics(input in ".{0,400}") {
        let _ = read_profile(&input);
    }

    #[test]
    fn trace_parser_never_panics(input in ".{0,400}") {
        let _ = read_trace(&input);
    }

    #[test]
    fn profile_parser_never_panics_on_mutated_valid_input(
        p in arb_profile(),
        cut in 0.0f64..1.0,
    ) {
        let text = write_profile(&p);
        let keep = (text.len() as f64 * cut) as usize;
        let _ = read_profile(&text[..keep.min(text.len())]);
    }

    #[test]
    fn generated_profiles_round_trip(p in arb_profile()) {
        let text = write_profile(&p);
        let q = read_profile(&text).expect("own output must parse");
        prop_assert_eq!(p.threads.len(), q.threads.len());
        for (a, b) in p.threads.iter().zip(&q.threads) {
            prop_assert_eq!(&a.main, &b.main);
            prop_assert_eq!(&a.task_trees, &b.task_trees);
        }
    }

    #[test]
    fn generated_traces_round_trip(
        n_events in 0usize..50,
        seed in any::<u64>(),
    ) {
        // Synthesize a structurally arbitrary (not necessarily
        // semantically valid) trace: store/load must still round-trip.
        let reg = pomp::registry();
        let task = reg.register("ps-tr-task", pomp::RegionKind::Task, "t", 0);
        let bar = reg.register("ps-tr-bar", pomp::RegionKind::ImplicitBarrier, "t", 0);
        let ids = TaskIdAllocator::new();
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        let events: Vec<TraceEvent> = (0..n_events)
            .map(|i| {
                let id = ids.alloc();
                let kind = match next() % 5 {
                    0 => EventKind::Enter(bar),
                    1 => EventKind::Exit(bar),
                    2 => EventKind::TaskBegin(task, id),
                    3 => EventKind::TaskEnd(task, id),
                    _ => EventKind::TaskSwitch(pomp::TaskRef::Explicit(id)),
                };
                TraceEvent { t: i as u64, tid: (next() % 4) as usize, kind }
            })
            .collect();
        let trace = Trace { events, nthreads: 4 };
        let text = write_trace(&trace);
        let back = read_trace(&text).expect("own output must parse");
        prop_assert_eq!(trace.len(), back.len());
        for (a, b) in trace.events.iter().zip(&back.events) {
            prop_assert_eq!(a.t, b.t);
            prop_assert_eq!(a.tid, b.tid);
            prop_assert_eq!(a.kind, b.kind);
        }
    }
}
