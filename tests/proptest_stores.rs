//! Robustness of the persistence parsers: arbitrary input must never
//! panic, and serialize→parse must round-trip for generated profiles.

use cube::{read_profile, write_profile};
use pomp::TaskIdAllocator;
use proptest::prelude::*;
use taskprof::{AssignPolicy, Event, Profile, TeamReplayer};
use taskprof_trace::{read_trace, write_trace, EventKind, Trace, TraceEvent};

use profstore::segment::{SegmentReader, SegmentWriter};
use profstore::{decode_record, encode_record, RealIo, RunMeta};
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch path per proptest case (cases run concurrently
/// within one process and leftovers from failed cases must not alias).
fn scratch_path(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "taskprof-proptest-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}


/// Generate a valid random profile via replay.
fn arb_profile() -> impl Strategy<Value = Profile> {
    (1usize..4, prop::collection::vec((1u64..100, 0usize..3), 0..20)).prop_map(
        |(nthreads, tasks)| {
            // Register the fixture regions (ids 9700.. may not exist in the
            // global registry yet when this test runs first).
            let reg = pomp::registry();
            let par = reg.register("ps-par", pomp::RegionKind::Parallel, "t", 0);
            let task = reg.register("ps-task", pomp::RegionKind::Task, "t", 0);
            let bar = reg.register("ps-bar", pomp::RegionKind::ImplicitBarrier, "t", 0);
            let ids = TaskIdAllocator::new();
            let mut team = TeamReplayer::new(nthreads, par, AssignPolicy::Executing);
            for tid in 0..nthreads {
                team.apply(tid, Event::Enter(bar));
            }
            for (dur, tid_raw) in tasks {
                let tid = tid_raw % nthreads;
                let id = ids.alloc();
                team.apply(tid, Event::TaskBegin { region: task, id })
                    .advance(dur)
                    .apply(tid, Event::TaskEnd { region: task, id });
            }
            for tid in 0..nthreads {
                team.apply(tid, Event::Exit(bar));
            }
            team.finish()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn profile_parser_never_panics(input in ".{0,400}") {
        let _ = read_profile(&input);
    }

    #[test]
    fn trace_parser_never_panics(input in ".{0,400}") {
        let _ = read_trace(&input);
    }

    #[test]
    fn profile_parser_never_panics_on_mutated_valid_input(
        p in arb_profile(),
        cut in 0.0f64..1.0,
    ) {
        let text = write_profile(&p);
        let keep = (text.len() as f64 * cut) as usize;
        let _ = read_profile(&text[..keep.min(text.len())]);
    }

    #[test]
    fn generated_profiles_round_trip(p in arb_profile()) {
        let text = write_profile(&p);
        let q = read_profile(&text).expect("own output must parse");
        prop_assert_eq!(p.threads.len(), q.threads.len());
        for (a, b) in p.threads.iter().zip(&q.threads) {
            prop_assert_eq!(&a.main, &b.main);
            prop_assert_eq!(&a.task_trees, &b.task_trees);
        }
    }

    #[test]
    fn generated_traces_round_trip(
        n_events in 0usize..50,
        seed in any::<u64>(),
    ) {
        // Synthesize a structurally arbitrary (not necessarily
        // semantically valid) trace: store/load must still round-trip.
        let reg = pomp::registry();
        let task = reg.register("ps-tr-task", pomp::RegionKind::Task, "t", 0);
        let bar = reg.register("ps-tr-bar", pomp::RegionKind::ImplicitBarrier, "t", 0);
        let ids = TaskIdAllocator::new();
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        let events: Vec<TraceEvent> = (0..n_events)
            .map(|i| {
                let id = ids.alloc();
                let kind = match next() % 5 {
                    0 => EventKind::Enter(bar),
                    1 => EventKind::Exit(bar),
                    2 => EventKind::TaskBegin(task, id),
                    3 => EventKind::TaskEnd(task, id),
                    _ => EventKind::TaskSwitch(pomp::TaskRef::Explicit(id)),
                };
                TraceEvent { t: i as u64, tid: (next() % 4) as usize, kind }
            })
            .collect();
        let trace = Trace { events, nthreads: 4 };
        let text = write_trace(&trace);
        let back = read_trace(&text).expect("own output must parse");
        prop_assert_eq!(trace.len(), back.len());
        for (a, b) in trace.events.iter().zip(&back.events) {
            prop_assert_eq!(a.t, b.t);
            prop_assert_eq!(a.tid, b.tid);
            prop_assert_eq!(a.kind, b.kind);
        }
    }

    /// Every proper prefix of an encoded record (LEB128 varints + length
    /// prefixed strings inside) must decode to a typed error — never a
    /// panic, never a bogus success.
    #[test]
    fn record_codec_truncation_is_always_a_typed_error(
        p in arb_profile(),
        cut in 0.0f64..1.0,
    ) {
        let meta = RunMeta {
            run_id: 7,
            benchmark: "proptest".to_string(),
            threads: p.threads.len() as u32,
            timestamp_ns: 1234,
        };
        let payload = encode_record(&meta, &p);
        let keep = ((payload.len() as f64 * cut) as usize).min(payload.len() - 1);
        prop_assert!(
            decode_record(&payload[..keep]).is_err(),
            "a {keep}-byte prefix of a {}-byte record decoded successfully",
            payload.len()
        );
    }

    /// A single flipped bit anywhere in a record payload must not panic
    /// the decoder (it may still decode when the flip lands in a
    /// non-load-bearing byte, e.g. a benchmark-name character — the CRC
    /// layer above the codec is what detects those).
    #[test]
    fn record_codec_bit_flip_never_panics(
        p in arb_profile(),
        pos in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let meta = RunMeta {
            run_id: 1,
            benchmark: "proptest-flip".to_string(),
            threads: p.threads.len() as u32,
            timestamp_ns: 1,
        };
        let mut payload = encode_record(&meta, &p);
        let at = ((payload.len() as f64 * pos) as usize).min(payload.len() - 1);
        payload[at] ^= 1 << bit;
        let _ = decode_record(&payload);
    }

    /// A single flipped bit in a CRC-framed segment is always detected:
    /// the scan stops with a tail defect instead of serving the damaged
    /// frame (a flip inside the magic voids the whole file).
    #[test]
    fn segment_bit_flip_is_always_detected_by_scan(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..60), 1..5),
        pos in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let path = scratch_path("flip");
        let io = RealIo;
        {
            let mut w = SegmentWriter::create(&io, &path, false).expect("create");
            for p in &payloads {
                w.append(p).expect("append");
            }
        }
        let mut bytes = std::fs::read(&path).expect("read");
        let at = ((bytes.len() as f64 * pos) as usize).min(bytes.len() - 1);
        bytes[at] ^= 1 << bit;
        std::fs::write(&path, &bytes).expect("rewrite");

        let scan = SegmentReader::scan(&io, &path).expect("scan is total");
        prop_assert!(
            scan.tail_defect.is_some(),
            "flipped bit {bit} at byte {at} went undetected \
             ({} of {} records scanned clean)",
            scan.records.len(),
            payloads.len()
        );
        prop_assert!(scan.records.len() < payloads.len() || scan.valid_len == 0);
        let _ = std::fs::remove_file(&path);
    }

    /// Truncating a segment at any byte never panics the scan, never
    /// yields more records than were written, and never claims valid
    /// bytes past the truncation point.
    #[test]
    fn segment_truncation_never_panics_scan(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..60), 1..5),
        cut in 0.0f64..1.0,
    ) {
        let path = scratch_path("trunc");
        let io = RealIo;
        {
            let mut w = SegmentWriter::create(&io, &path, false).expect("create");
            for p in &payloads {
                w.append(p).expect("append");
            }
        }
        let bytes = std::fs::read(&path).expect("read");
        let keep = ((bytes.len() as f64 * cut) as usize).min(bytes.len() - 1);
        std::fs::write(&path, &bytes[..keep]).expect("rewrite");

        let scan = SegmentReader::scan(&io, &path).expect("scan is total");
        prop_assert!(scan.records.len() < payloads.len());
        prop_assert!(scan.valid_len <= keep as u64);
        prop_assert!(scan.tail_defect.is_some() || scan.valid_len == keep as u64);
        let _ = std::fs::remove_file(&path);
    }
}
