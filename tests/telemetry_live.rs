//! Live telemetry under real concurrency: the lock-free gauges must agree
//! with the post-mortem profile, stay readable mid-measurement from
//! foreign threads, and round-trip through both exporters.

use bots::{run_app, AppId, RunOpts, Scale};
use pomp::{EventClass, Monitor};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use taskprof_session::MeasurementSession;
use taskprof_telemetry::{parse_jsonl_line, parse_prometheus, TelemetryConfig};
use taskrt::{taskwait_region, SingleConstruct, TaskConstruct, TaskCtx};

/// Spawn a `breadth`-ary task tree of the given depth, taskwaiting at
/// every level so outer tasks suspend while inner ones run (driving the
/// live-instance-tree count up).
fn spawn_tree<'e, M: Monitor>(
    ctx: &TaskCtx<'_, 'e, M>,
    task: &'e TaskConstruct,
    tw: pomp::RegionId,
    depth: usize,
    breadth: usize,
) {
    if depth == 0 {
        return;
    }
    for _ in 0..breadth {
        ctx.task(task, move |ctx| {
            std::hint::black_box((0..200u64).sum::<u64>());
            spawn_tree(ctx, task, tw, depth - 1, breadth);
            ctx.taskwait(tw);
        });
    }
    ctx.taskwait(tw);
}

#[test]
fn final_gauges_agree_with_session_report() {
    let single = SingleConstruct::new("tl-agree!single");
    let task = TaskConstruct::new("tl_agree_task");
    let tw = taskwait_region("tl-agree!taskwait");
    let session = MeasurementSession::builder("tl-agree")
        .threads(4)
        .telemetry()
        .build()
        .expect("telemetry configuration is valid");
    session
        .run(|ctx| {
            ctx.single(&single, |ctx| spawn_tree(ctx, &task, tw, 4, 3));
        })
        .unwrap();
    let report = session.finish();
    assert!(report.is_clean());
    let t = report.telemetry.as_ref().expect("telemetry enabled");

    // 3 + 9 + 27 + 81 tasks, every one created, begun, and completed.
    let expected = 3 + 9 + 27 + 81;
    assert_eq!(t.tasks_created, expected);
    assert_eq!(t.tasks_completed, expected);
    assert_eq!(t.tasks_aborted, 0);
    assert_eq!(t.tasks_in_flight(), 0);
    assert_eq!(t.events[EventClass::TaskBegin.index()], expected);
    assert_eq!(t.events[EventClass::TaskEnd.index()], expected);

    // The live-tree gauge drained and its high-water mark is exactly the
    // profile's per-thread max (paper Table II): telemetry publishes the
    // profiler's own count, so they cannot drift.
    assert_eq!(t.live_trees, 0);
    assert_eq!(t.live_trees_hwm, report.profile.max_live_trees() as u64);
    assert_eq!(t.tasks_shed, report.profile.shed_instances());
    assert_eq!(t.tasks_shed, 0, "no cap configured, nothing shed");

    // Session quiesced: every boundary gauge drained.
    assert_eq!(t.threads_active, 0);
    assert_eq!(t.handoff_depth, 0, "take_profile drained the hand-off stack");
    assert_eq!(t.arenas_recycled + t.arenas_allocated, 4);

    // Fragments: at least one per executed task (suspensions add more),
    // and the stub-time gauge observed real execution.
    assert!(t.fragments >= expected, "fragments {} < tasks {expected}", t.fragments);
    assert!(t.stub_time_ns > 0);
}

#[test]
fn shed_count_matches_profile_under_live_tree_cap() {
    let single = SingleConstruct::new("tl-shed!single");
    let task = TaskConstruct::new("tl_shed_task");
    let tw = taskwait_region("tl-shed!taskwait");
    let session = MeasurementSession::builder("tl-shed")
        .threads(2)
        .max_live_trees(1)
        .telemetry()
        .build()
        .expect("telemetry configuration is valid");
    session
        .run(|ctx| {
            // Nested taskwaits suspend outer instances, so the second
            // live tree on a thread trips the cap of 1.
            ctx.single(&single, |ctx| spawn_tree(ctx, &task, tw, 5, 2));
        })
        .unwrap();
    let report = session.finish();
    let t = report.telemetry.as_ref().expect("telemetry enabled");
    assert!(
        report.profile.shed_instances() > 0,
        "workload must actually trip the live-tree cap"
    );
    assert_eq!(t.tasks_shed, report.profile.shed_instances());
    assert_eq!(t.live_trees_hwm, report.profile.max_live_trees() as u64);
    // Shed instances still execute and complete.
    assert_eq!(t.tasks_created, t.tasks_completed);
}

#[test]
fn polling_mid_run_is_safe_and_monotone() {
    let session = MeasurementSession::builder("tl-poll")
        .threads(4)
        .telemetry_config(TelemetryConfig { sample_every: 16 })
        .build()
        .expect("telemetry configuration is valid");
    let telemetry = session.telemetry().expect("telemetry enabled");
    let done = AtomicBool::new(false);

    let series = std::thread::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let telemetry = telemetry.clone();
                let done = &done;
                s.spawn(move || {
                    let mut series = Vec::new();
                    while !done.load(Ordering::Acquire) {
                        series.push(telemetry.snapshot());
                        std::thread::yield_now();
                    }
                    series
                })
            })
            .collect();
        let out = run_app(
            AppId::Nqueens,
            session.monitor(),
            &RunOpts::new(4).scale(Scale::Test),
        );
        assert!(out.verified);
        done.store(true, Ordering::Release);
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("poller thread"))
            .collect::<Vec<_>>()
    });

    assert!(!series.is_empty(), "pollers observed the run");
    for snap in &series {
        // Mid-run reads are internally sane: no underflows, bounded team.
        assert!(snap.threads_active <= 4);
        assert!(snap.tasks_completed <= snap.tasks_created);
    }
    let report = session.finish();
    let final_t = report.telemetry.expect("telemetry enabled");
    for snap in &series {
        // Counters are monotone: nothing a poller saw can exceed the end
        // state.
        assert!(snap.tasks_created <= final_t.tasks_created);
        assert!(snap.total_events() <= final_t.total_events());
        assert!(snap.live_trees_hwm <= final_t.live_trees_hwm);
    }
    assert_eq!(final_t.live_trees_hwm, report.profile.max_live_trees() as u64);
}

#[test]
fn background_sampler_tracks_a_session() {
    let single = SingleConstruct::new("tl-sampler!single");
    let task = TaskConstruct::new("tl_sampler_task");
    let session = MeasurementSession::builder("tl-sampler")
        .threads(2)
        .telemetry()
        .build()
        .expect("telemetry configuration is valid");
    let telemetry = session.telemetry().expect("telemetry enabled");
    let sampler = telemetry.start_sampler(Duration::from_millis(1));
    session
        .run(|ctx| {
            ctx.single(&single, |ctx| {
                for _ in 0..64 {
                    ctx.task(&task, |_| {
                        std::hint::black_box((0..20_000u64).sum::<u64>());
                    });
                }
            });
        })
        .unwrap();
    let series = sampler.stop();
    assert!(!series.is_empty());
    for w in series.windows(2) {
        assert!(w[1].elapsed_ns >= w[0].elapsed_ns, "timestamps monotone");
        assert!(
            w[1].snapshot.tasks_created >= w[0].snapshot.tasks_created,
            "counters monotone"
        );
    }
    assert_eq!(series.last().unwrap().snapshot.tasks_created, 64);
}

#[test]
fn session_exports_round_trip_mid_run_and_after() {
    let single = SingleConstruct::new("tl-export!single");
    let task = TaskConstruct::new("tl_export_task");
    let session = MeasurementSession::builder("tl-export")
        .threads(2)
        .telemetry()
        .build()
        .expect("telemetry configuration is valid");
    let telemetry = session.telemetry().expect("telemetry enabled");
    session
        .run(|ctx| {
            ctx.single(&single, |ctx| {
                for _ in 0..8 {
                    ctx.task(&task, |_| std::hint::black_box(()));
                }
                // Export *during* the region, from a measurement thread.
                let prom = telemetry.prometheus();
                assert!(!parse_prometheus(&prom).expect("mid-run export parses").is_empty());
            });
        })
        .unwrap();
    let snapshot = telemetry.snapshot();
    let prom = telemetry.prometheus();
    let samples = parse_prometheus(&prom).expect("Prometheus export parses");
    let created = samples
        .iter()
        .find(|p| p.name == "taskprof_tasks_created_total")
        .expect("counter present");
    assert_eq!(created.value as u64, snapshot.tasks_created);
    let by_class = samples
        .iter()
        .filter(|p| p.name == "taskprof_events_total")
        .map(|p| p.value as u64)
        .sum::<u64>();
    assert_eq!(by_class, snapshot.total_events());

    let line = telemetry.jsonl_line();
    let (_, parsed) = parse_jsonl_line(&line).expect("JSONL parses");
    assert_eq!(parsed, telemetry.snapshot());
    session.finish();
}
