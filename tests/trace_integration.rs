//! Tracer attached to real runtime workloads — consistency between the
//! trace, the profile, and the workload's ground truth.

use bots::{run_app, AppId, RunOpts, Scale};
use pomp::TaskRef;
use taskprof::ProfMonitor;
use taskprof_trace::{analyze, EventKind, TraceMonitor};

#[test]
fn trace_is_balanced_and_counts_match_profile() {
    let profiler = ProfMonitor::new();
    let tracer = TraceMonitor::new();
    let opts = RunOpts::new(2).scale(Scale::Test);
    let out = run_app(AppId::Fib, &(&profiler, &tracer), &opts);
    assert!(out.verified);

    let profile = profiler.take_profile().expect("no region in flight");
    let trace = tracer.take_trace();
    assert_eq!(trace.nthreads, 2);

    // Per-thread: enters and exits balance, begins equal ends.
    for tid in 0..2 {
        let mut depth = 0i64;
        let (mut begins, mut ends) = (0u64, 0u64);
        for e in trace.thread(tid) {
            match e.kind {
                EventKind::Enter(_) => depth += 1,
                EventKind::Exit(_) => {
                    depth -= 1;
                    assert!(depth >= 0, "exit without enter on thread {tid}");
                }
                EventKind::TaskBegin(..) => begins += 1,
                EventKind::TaskEnd(..) => ends += 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0, "unbalanced regions on thread {tid}");
        assert_eq!(begins, ends, "task begin/end mismatch on thread {tid}");
    }

    // Trace-wide begins == profile-wide completed instances.
    let trace_begins = trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::TaskBegin(..)))
        .count() as u64;
    let profile_instances: u64 = profile
        .threads
        .iter()
        .flat_map(|t| &t.task_trees)
        .map(|t| t.stats.samples)
        .sum();
    assert_eq!(trace_begins, profile_instances);

    // Timestamps are monotone per thread.
    for tid in 0..2 {
        let mut last = 0;
        for e in trace.thread(tid) {
            assert!(e.t >= last);
            last = e.t;
        }
    }
}

#[test]
fn analysis_of_real_run_is_consistent() {
    let tracer = TraceMonitor::new();
    let opts = RunOpts::new(2).scale(Scale::Test);
    let out = run_app(AppId::Nqueens, &tracer, &opts);
    assert!(out.verified);
    let trace = tracer.take_trace();
    let a = analyze(&trace);

    // Every instance completed within the kernel.
    assert!(!a.instances.is_empty());
    for i in &a.instances {
        assert!(i.fragments >= 1);
        assert!(i.queue_ns.is_some(), "creation must precede execution");
    }
    // Switch count covers at least one per instance.
    assert!(a.switches >= a.instances.len() as u64);
    // Totals are bounded by wall time × threads.
    let wall = out.kernel.as_nanos() as u64 * 2;
    assert!(a.total_task_exec_ns <= wall);
    assert!(a.total_sched_nonexec_ns <= wall);
    // nqueens without cut-off is creation-heavy: the management/work
    // ratio must be clearly nonzero (the exact value is build- and
    // machine-dependent; paper-scale runs push it past 1).
    assert!(
        a.management_to_work_ratio > 0.02,
        "ratio {}",
        a.management_to_work_ratio
    );
    assert!(a.total_creation_ns > 0);
}

#[test]
fn switch_events_reference_known_tasks() {
    let tracer = TraceMonitor::new();
    let opts = RunOpts::new(1).scale(Scale::Test);
    run_app(AppId::Fib, &tracer, &opts);
    let trace = tracer.take_trace();
    let mut seen = std::collections::HashSet::new();
    for e in &trace.events {
        match e.kind {
            EventKind::TaskBegin(_, id) => {
                seen.insert(id);
            }
            EventKind::TaskSwitch(TaskRef::Explicit(id)) => {
                assert!(seen.contains(&id), "switch to never-begun task");
            }
            _ => {}
        }
    }
}

#[test]
fn text_dump_of_real_trace_renders_every_event() {
    let tracer = TraceMonitor::new();
    let opts = RunOpts::new(1).scale(Scale::Test);
    run_app(AppId::Alignment, &tracer, &opts);
    let trace = tracer.take_trace();
    let text = trace.to_text();
    assert_eq!(text.lines().count(), trace.len());
    assert!(text.contains("TASK_BEGIN   alignment_pair"));
    assert!(text.contains("ENTER        alignment!single"));
}
