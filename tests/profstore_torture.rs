//! Crash-at-every-point torture of the profile repository.
//!
//! The store's durability contract says an acknowledged ingest survives
//! any crash and is never duplicated. This test *proves* it by brute
//! force: a deterministic workload runs against a [`FaultIo`] that kills
//! the process (fails every later mutating file operation, tearing a
//! seeded prefix of the in-flight write) at mutating operation `k` — for
//! every `k` the workload has, across several seeds. After each simulated
//! crash the directory is reopened with the real filesystem and every
//! acked run must be present exactly once with its exact payload.
//!
//! Determinism: the fault plan is pure (seed, point) state, the workload
//! is fixed, so the bytes a crash leaves behind are byte-reproducible —
//! checked by replaying a subset of (seed, point) pairs into a second
//! directory and diffing the files. `TASKPROF_TORTURE_SEED` adds one
//! pinned seed to the sweep (the CI gate sets it).

use pomp::{registry, RegionKind, TaskIdAllocator};
use profstore::{
    is_enospc, FaultIo, FaultKind, FaultPlan, ProfileStore, RetentionPolicy, RunWindow,
    ShardedStore, StoreConfig, StoreError,
};
use std::collections::HashSet;
use std::path::PathBuf;
use taskprof::{AssignPolicy, Event, Profile, TeamReplayer};

const INGESTS: usize = 30;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "profstore-torture-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn torture_config() -> StoreConfig {
    StoreConfig {
        // Tiny segments force rotation mid-workload so segment creation
        // is among the crashed operations.
        segment_max_bytes: 600,
        // Sync per append: sync_data/sync_all become injection points too.
        sync_writes: true,
    }
}

/// One distinct tiny profile per ingest slot (distinct durations, so a
/// recovered payload can be matched to exactly one acked run).
fn workload_profiles() -> Vec<Profile> {
    let reg = registry();
    let par = reg.register("torture-par", RegionKind::Parallel, "t", 0);
    let task = reg.register("torture-task", RegionKind::Task, "t", 0);
    (0..INGESTS)
        .map(|i| {
            let ids = TaskIdAllocator::new();
            let mut team = TeamReplayer::new(1, par, AssignPolicy::Executing);
            let id = ids.alloc();
            team.apply(0, Event::TaskBegin { region: task, id })
                .advance(100 + i as u64)
                .apply(0, Event::TaskEnd { region: task, id });
            team.finish()
        })
        .collect()
}

/// Run the fixed workload against `io` in `dir`: open, then ingest until
/// the first failure. Returns the acked (run id, ingest slot) pairs —
/// the receipts a real client would hold when the process died.
fn run_workload(
    dir: &std::path::Path,
    io: std::sync::Arc<dyn profstore::StoreIo>,
    profiles: &[Profile],
) -> Vec<(u64, usize)> {
    let mut acked = Vec::new();
    let Ok(mut store) = ProfileStore::open_with_io(dir, torture_config(), io) else {
        return acked; // crashed during open: nothing was ever acked
    };
    for (i, p) in profiles.iter().enumerate() {
        match store.ingest("torture", 2, i as u64, p) {
            Ok(receipt) => acked.push((receipt.run_id, i)),
            Err(_) => break, // the crash point (or its aftermath)
        }
    }
    acked
}

/// Reopen `dir` for real and assert the durability contract against the
/// acked receipts; returns the recovered store for extra checks.
fn verify_recovery(
    dir: &std::path::Path,
    acked: &[(u64, usize)],
    profiles: &[Profile],
    ctx: &str,
) -> ProfileStore {
    let store = ProfileStore::open(dir).unwrap_or_else(|e| panic!("{ctx}: recovering open: {e}"));
    let ids: Vec<u64> = store.index().iter().map(|e| e.run_id).collect();
    let unique: HashSet<u64> = ids.iter().copied().collect();
    assert_eq!(ids.len(), unique.len(), "{ctx}: duplicate run ids: {ids:?}");
    for &(run_id, slot) in acked {
        let (meta, profile) = store
            .load(run_id)
            .unwrap_or_else(|e| panic!("{ctx}: acked run {run_id} lost: {e}"));
        assert_eq!(meta.timestamp_ns, slot as u64, "{ctx}: run {run_id} meta");
        assert_eq!(
            profile.threads[0].main, profiles[slot].threads[0].main,
            "{ctx}: run {run_id} payload"
        );
    }
    store
}

/// The crash-sweep seeds: the fixed trio plus the CI-pinned
/// `TASKPROF_TORTURE_SEED` when set.
fn torture_seeds() -> Vec<u64> {
    let mut seeds = vec![1u64, 7, 1234];
    if let Ok(s) = std::env::var("TASKPROF_TORTURE_SEED") {
        let pinned: u64 = s.parse().expect("TASKPROF_TORTURE_SEED must be a u64");
        if !seeds.contains(&pinned) {
            seeds.insert(0, pinned);
        }
    }
    seeds
}

/// Every file in `dir` with its bytes, sorted by name.
fn dir_bytes(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("read_dir")
        .filter_map(|e| e.ok())
        .map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            let bytes = std::fs::read(e.path()).expect("read file");
            (name, bytes)
        })
        .collect();
    out.sort();
    out
}

#[test]
fn crash_at_every_injection_point_loses_no_acked_run() {
    let profiles = workload_profiles();

    // Pass 1: count the workload's mutating operations with no faults.
    let dir = temp_dir("observe");
    let (io, handle) = FaultIo::with_plan(FaultPlan::observe());
    let acked = run_workload(&dir, io, &profiles);
    assert_eq!(acked.len(), INGESTS, "fault-free workload acks everything");
    let total_ops = handle.ops();
    assert!(
        total_ops >= 60,
        "workload too small to satisfy the 200-iteration floor: {total_ops} ops"
    );
    verify_recovery(&dir, &acked, &profiles, "observe");
    let _ = std::fs::remove_dir_all(&dir);

    // Pass 2: crash at every point, for every seed in the sweep.
    let seeds = torture_seeds();
    let mut iterations = 0u64;
    for &seed in &seeds {
        for point in 0..total_ops {
            iterations += 1;
            let ctx = format!("seed {seed} point {point}");
            let dir = temp_dir("crash");
            let (io, handle) = FaultIo::with_plan(FaultPlan::crash_at(seed, point));
            let acked = run_workload(&dir, io, &profiles);
            assert!(handle.crashed(), "{ctx}: the crash point must fire");
            assert!(acked.len() < INGESTS, "{ctx}: crash must cut the workload");

            // Byte-reproducibility: the same (seed, point) replayed into a
            // fresh directory leaves the identical post-crash bytes.
            if point % 5 == 0 {
                let dir2 = temp_dir("crash-replay");
                let (io2, _) = FaultIo::with_plan(FaultPlan::crash_at(seed, point));
                let acked2 = run_workload(&dir2, io2, &profiles);
                assert_eq!(acked, acked2, "{ctx}: replay acked differently");
                assert_eq!(
                    dir_bytes(&dir),
                    dir_bytes(&dir2),
                    "{ctx}: post-crash bytes not reproducible from the seed"
                );
                let _ = std::fs::remove_dir_all(&dir2);
            }

            let mut store = verify_recovery(&dir, &acked, &profiles, &ctx);
            // The recovered log accepts appends again with a fresh id.
            let max_acked = acked.iter().map(|&(id, _)| id).max().unwrap_or(0);
            let receipt = store
                .ingest("torture", 2, 999, &profiles[0])
                .unwrap_or_else(|e| panic!("{ctx}: post-recovery ingest: {e}"));
            assert!(
                receipt.run_id > max_acked,
                "{ctx}: recycled id {} (max acked {max_acked})",
                receipt.run_id
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    assert!(
        iterations >= 200,
        "acceptance floor: need >= 200 crash iterations, ran {iterations}"
    );
}

#[test]
fn transient_enospc_fails_the_ingest_but_corrupts_nothing() {
    let profiles = workload_profiles();
    let dir = temp_dir("enospc");
    // Ops (sync off): 0 create_new, 1 magic write, then one frame write
    // per ingest. Fail the write of the third ingest (op 4).
    let (io, _handle) = FaultIo::with_plan(FaultPlan::fail_at(42, 4, FaultKind::Enospc));
    let mut store = ProfileStore::open_with_io(&dir, StoreConfig::default(), io).expect("open");
    let a = store.ingest("torture", 2, 0, &profiles[0]).expect("ingest");
    let b = store.ingest("torture", 2, 1, &profiles[1]).expect("ingest");
    let err = store
        .ingest("torture", 2, 2, &profiles[2])
        .expect_err("injected enospc");
    match &err {
        StoreError::Io(e) => assert!(is_enospc(e), "{e}"),
        other => panic!("expected Io(ENOSPC), got {other:?}"),
    }
    // The disk "recovered": the very next ingest succeeds in place.
    let c = store.ingest("torture", 2, 3, &profiles[3]).expect("ingest");
    assert!(c.run_id > b.run_id);
    drop(store);
    // The append repair truncated the torn frame, so the reopen is clean:
    // no recovered tail, every acked run present.
    let store = ProfileStore::open(&dir).expect("reopen");
    assert_eq!(store.recovered_tail_bytes(), 0, "repair left a torn tail");
    assert_eq!(store.len(), 3);
    for receipt in [a, b, c] {
        store.load(receipt.run_id).expect("acked run present");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persistently_full_disk_never_loses_acked_runs() {
    let profiles = workload_profiles();
    let dir = temp_dir("armed");
    let (io, handle) = FaultIo::with_plan(FaultPlan::observe());
    let mut store = ProfileStore::open_with_io(&dir, StoreConfig::default(), io).expect("open");
    let mut acked = Vec::new();
    for (i, profile) in profiles.iter().enumerate().take(3) {
        let r = store
            .ingest("torture", 2, i as u64, profile)
            .expect("ingest");
        acked.push((r.run_id, i));
    }
    handle.arm(FaultKind::Eio);
    for (i, profile) in profiles.iter().enumerate().take(6).skip(3) {
        assert!(
            store.ingest("torture", 2, i as u64, profile).is_err(),
            "armed fault must fail ingest {i}"
        );
    }
    handle.disarm();
    let r = store
        .ingest("torture", 2, 6, &profiles[6])
        .expect("recovered ingest");
    acked.push((r.run_id, 6));
    drop(store);
    verify_recovery(&dir, &acked, &profiles, "armed");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Replicated sharded repository torture: the same crash-at-every-point
// discipline, but against a leader/follower pair — first crashing the
// leader mid-workload (EXPORT streaming interleaved with the retention
// sweep), then crashing the follower at every APPLY-side mutating op.
// ---------------------------------------------------------------------------

const SHARD_COUNT: u32 = 2;
/// Ingest slot after which the leader workload runs its retention sweep.
const GC_AT: usize = 20;
/// Retention cutoff (timestamps are ingest slots): slots below it are
/// GC-eligible, everything at or above must survive any sweep.
const GC_CUTOFF_NS: u64 = 10;

fn retention() -> RetentionPolicy {
    RetentionPolicy {
        keep_last: None,
        min_timestamp_ns: Some(GC_CUTOFF_NS),
    }
}

/// Config for the non-faulted side of a pair: same tiny segments (so
/// GC and rotation still happen), but buffered writes for speed.
fn replica_config() -> StoreConfig {
    StoreConfig {
        segment_max_bytes: 600,
        sync_writes: false,
    }
}

/// Open every shard directory directly and assert global run-id
/// uniqueness (the across-shard collision a routed apply must never
/// produce; missing shard dirs just mean the crash preceded them).
fn assert_unique_ids(dir: &std::path::Path, ctx: &str) {
    let mut ids = Vec::new();
    for k in 0..SHARD_COUNT {
        let shard_dir = dir.join(format!("shard-{k:03}"));
        if !shard_dir.exists() {
            continue;
        }
        let store = ProfileStore::open(&shard_dir)
            .unwrap_or_else(|e| panic!("{ctx}: shard {k} failed recovery: {e}"));
        ids.extend(store.index().iter().map(|e| e.run_id));
    }
    let unique: HashSet<u64> = ids.iter().copied().collect();
    assert_eq!(ids.len(), unique.len(), "{ctx}: duplicate run ids: {ids:?}");
}

/// Deterministic query answers (every group with its aggregate) — the
/// lines a replica pair must agree on byte-for-byte.
fn sharded_query_lines(store: &ShardedStore) -> Vec<String> {
    store
        .groups()
        .iter()
        .map(|((bench, threads), runs)| {
            let agg = store
                .aggregate_window(bench, *threads, &RunWindow::default())
                .unwrap_or_else(|e| panic!("aggregate {bench}/{threads}: {e}"));
            format!("{bench}/{threads}: {runs} runs, {agg:?}")
        })
        .collect()
}

/// Pump the replication stream leader → follower to completion, both
/// sides on the real filesystem.
fn resync(leader: &ShardedStore, follower: &ShardedStore, ctx: &str) {
    let mut cursor = follower.max_run_id();
    loop {
        let batch = leader
            .export_frames(cursor, 4)
            .unwrap_or_else(|e| panic!("{ctx}: export: {e}"));
        for frame in &batch.frames {
            follower
                .apply_frame(frame)
                .unwrap_or_else(|e| panic!("{ctx}: re-sync apply: {e}"));
        }
        cursor = batch.watermark;
        if batch.done {
            break;
        }
    }
}

/// The leader-side workload: ingest every profile into the sharded
/// leader through `io`, ship one replication page to the real-filesystem
/// follower every fourth ingest, and run the retention sweep once
/// mid-stream. Returns the acked (run id, slot) receipts and whether
/// the sweep was reached (acked receipts below the cutoff are
/// legitimately GC-eligible from that moment on).
fn run_replicated_workload(
    leader_dir: &std::path::Path,
    io: std::sync::Arc<dyn profstore::StoreIo>,
    profiles: &[Profile],
    follower: &ShardedStore,
) -> (Vec<(u64, usize)>, bool) {
    let mut acked = Vec::new();
    let mut gc_attempted = false;
    let Ok(leader) = ShardedStore::open_with_io(leader_dir, SHARD_COUNT, torture_config(), io)
    else {
        return (acked, gc_attempted); // crashed during open
    };
    let mut cursor = follower.max_run_id();
    for (i, p) in profiles.iter().enumerate() {
        match leader.ingest(&format!("torture-{}", i % 3), 2, i as u64, p) {
            Ok(receipt) => acked.push((receipt.run_id, i)),
            Err(_) => break,
        }
        if i == GC_AT {
            gc_attempted = true;
            if leader.gc(&retention()).is_err() {
                break;
            }
        }
        if i % 4 == 3 {
            // Exports are reads and survive the crash; stop shipping
            // only when the faulted leader can no longer serve one.
            let Ok(batch) = leader.export_frames(cursor, 4) else {
                break;
            };
            for frame in &batch.frames {
                follower.apply_frame(frame).expect("real-io follower apply");
            }
            cursor = batch.watermark;
        }
    }
    (acked, gc_attempted)
}

#[test]
fn leader_crash_during_replicated_gc_workload_loses_no_acked_run() {
    let profiles = workload_profiles();

    // Pass 1: count the leader's mutating operations with no faults.
    let leader_dir = temp_dir("repl-observe");
    let follower_dir = temp_dir("repl-observe-f");
    let follower = ShardedStore::open_with(&follower_dir, SHARD_COUNT, replica_config())
        .expect("observe follower");
    let (io, handle) = FaultIo::with_plan(FaultPlan::observe());
    let (acked, gc_attempted) = run_replicated_workload(&leader_dir, io, &profiles, &follower);
    assert_eq!(acked.len(), INGESTS, "fault-free workload acks everything");
    assert!(gc_attempted, "fault-free workload reaches the sweep");
    let total_ops = handle.ops();
    assert!(
        total_ops >= 67,
        "workload too small to satisfy the 200-iteration floor: {total_ops} ops"
    );
    drop(follower);
    let _ = std::fs::remove_dir_all(&leader_dir);
    let _ = std::fs::remove_dir_all(&follower_dir);

    // Pass 2: crash the leader at every point, for every seed.
    let seeds = torture_seeds();
    let mut iterations = 0u64;
    for &seed in &seeds {
        for point in 0..total_ops {
            iterations += 1;
            let ctx = format!("leader seed {seed} point {point}");
            let leader_dir = temp_dir("repl-crash");
            let follower_dir = temp_dir("repl-crash-f");
            let follower = ShardedStore::open_with(&follower_dir, SHARD_COUNT, replica_config())
                .unwrap_or_else(|e| panic!("{ctx}: follower open: {e}"));
            let (io, handle) = FaultIo::with_plan(FaultPlan::crash_at(seed, point));
            let (acked, gc_attempted) =
                run_replicated_workload(&leader_dir, io, &profiles, &follower);
            assert!(handle.crashed(), "{ctx}: the crash point must fire");
            assert!(acked.len() < INGESTS, "{ctx}: crash must cut the workload");

            // Durability: no duplicate id in any shard, and every acked
            // run the sweep could not have dropped is present with its
            // exact payload.
            assert_unique_ids(&leader_dir, &ctx);
            let leader = ShardedStore::open(&leader_dir, SHARD_COUNT)
                .unwrap_or_else(|e| panic!("{ctx}: recovering open: {e}"));
            for &(run_id, slot) in &acked {
                if gc_attempted && (slot as u64) < GC_CUTOFF_NS {
                    continue; // legitimately GC-eligible
                }
                let (meta, profile) = leader
                    .load(run_id)
                    .unwrap_or_else(|e| panic!("{ctx}: acked run {run_id} lost: {e}"));
                assert_eq!(meta.timestamp_ns, slot as u64, "{ctx}: run {run_id} meta");
                assert_eq!(
                    profile.threads[0].main, profiles[slot].threads[0].main,
                    "{ctx}: run {run_id} payload"
                );
            }

            // Recovery: finish the sweep on both sides, re-sync, and
            // the replicas must answer every query byte-identically.
            leader
                .gc(&retention())
                .unwrap_or_else(|e| panic!("{ctx}: leader gc: {e}"));
            resync(&leader, &follower, &ctx);
            follower
                .gc(&retention())
                .unwrap_or_else(|e| panic!("{ctx}: follower gc: {e}"));
            assert_eq!(leader.len(), follower.len(), "{ctx}: replica sizes diverge");
            assert_eq!(
                leader.max_run_id(),
                follower.max_run_id(),
                "{ctx}: cursors diverge"
            );
            assert_eq!(
                sharded_query_lines(&leader),
                sharded_query_lines(&follower),
                "{ctx}: replica answers diverge"
            );

            drop(leader);
            drop(follower);
            let _ = std::fs::remove_dir_all(&leader_dir);
            let _ = std::fs::remove_dir_all(&follower_dir);
        }
    }
    assert!(
        iterations >= 200,
        "acceptance floor: need >= 200 crash iterations, ran {iterations}"
    );
}

/// Pump pages into a (possibly faulted) follower until the stream
/// completes or the first apply fails; returns the acked applied ids.
fn pump_until_failure(leader: &ShardedStore, follower: &ShardedStore) -> Vec<u64> {
    let mut acked = Vec::new();
    let mut cursor = follower.max_run_id();
    'outer: loop {
        let batch = leader.export_frames(cursor, 4).expect("real-io export");
        for frame in &batch.frames {
            match follower.apply_frame(frame) {
                Ok(Some(receipt)) => acked.push(receipt.run_id),
                Ok(None) => {}
                Err(_) => break 'outer, // the crash point (or aftermath)
            }
        }
        cursor = batch.watermark;
        if batch.done {
            break;
        }
    }
    acked
}

#[test]
fn follower_crash_at_every_apply_point_loses_no_acked_frame() {
    let profiles = workload_profiles();

    // A fixed, real-filesystem leader shared by every iteration.
    let leader_dir = temp_dir("fapply-leader");
    let leader =
        ShardedStore::open_with(&leader_dir, SHARD_COUNT, replica_config()).expect("leader");
    let mut slot_of = std::collections::BTreeMap::new();
    for (i, p) in profiles.iter().enumerate() {
        let r = leader
            .ingest(&format!("torture-{}", i % 3), 2, i as u64, p)
            .expect("leader ingest");
        slot_of.insert(r.run_id, i);
    }

    // Pass 1: count the follower's mutating operations over a full pump.
    let follower_dir = temp_dir("fapply-observe");
    let (io, handle) = FaultIo::with_plan(FaultPlan::observe());
    {
        let follower = ShardedStore::open_with_io(&follower_dir, SHARD_COUNT, torture_config(), io)
            .expect("observe follower");
        let acked = pump_until_failure(&leader, &follower);
        assert_eq!(acked.len(), INGESTS, "fault-free pump applies everything");
    }
    let total_ops = handle.ops();
    assert!(
        total_ops >= 67,
        "pump too small to satisfy the 200-iteration floor: {total_ops} ops"
    );
    let _ = std::fs::remove_dir_all(&follower_dir);

    // Pass 2: crash the follower at every apply-side point, every seed.
    let seeds = torture_seeds();
    let mut iterations = 0u64;
    for &seed in &seeds {
        for point in 0..total_ops {
            iterations += 1;
            let ctx = format!("follower seed {seed} point {point}");
            let follower_dir = temp_dir("fapply-crash");
            let (io, handle) = FaultIo::with_plan(FaultPlan::crash_at(seed, point));
            let acked = match ShardedStore::open_with_io(
                &follower_dir,
                SHARD_COUNT,
                torture_config(),
                io,
            ) {
                Ok(follower) => pump_until_failure(&leader, &follower),
                Err(_) => Vec::new(), // crashed during open
            };
            assert!(handle.crashed(), "{ctx}: the crash point must fire");
            assert!(acked.len() < INGESTS, "{ctx}: crash must cut the pump");

            // Durability: unique ids, every acked frame present exactly.
            assert_unique_ids(&follower_dir, &ctx);
            let follower = ShardedStore::open(&follower_dir, SHARD_COUNT)
                .unwrap_or_else(|e| panic!("{ctx}: recovering open: {e}"));
            for &run_id in &acked {
                let slot = slot_of[&run_id];
                let (meta, profile) = follower
                    .load(run_id)
                    .unwrap_or_else(|e| panic!("{ctx}: acked frame {run_id} lost: {e}"));
                assert_eq!(meta.timestamp_ns, slot as u64, "{ctx}: frame {run_id} meta");
                assert_eq!(
                    profile.threads[0].main, profiles[slot].threads[0].main,
                    "{ctx}: frame {run_id} payload"
                );
            }

            // Re-sync from the recovered cursor: exactly-once, and the
            // replicas converge to byte-identical answers.
            resync(&leader, &follower, &ctx);
            assert_eq!(follower.len(), leader.len(), "{ctx}: replica sizes diverge");
            assert_eq!(
                follower.max_run_id(),
                leader.max_run_id(),
                "{ctx}: cursors diverge"
            );
            assert_eq!(
                sharded_query_lines(&leader),
                sharded_query_lines(&follower),
                "{ctx}: replica answers diverge"
            );
            drop(follower);
            let _ = std::fs::remove_dir_all(&follower_dir);
        }
    }
    assert!(
        iterations >= 200,
        "acceptance floor: need >= 200 crash iterations, ran {iterations}"
    );
    drop(leader);
    let _ = std::fs::remove_dir_all(&leader_dir);
}
