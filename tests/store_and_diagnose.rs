//! Profile persistence and automated diagnosis against real workloads.

use bots::{run_app, AppId, RunOpts, Scale, Variant};
use cube::{
    diagnose, diff_profiles, read_profile, write_profile, AggProfile, DiagnoseConfig, IssueKind,
};
use taskprof::ProfMonitor;

fn profile_of(app: AppId, opts: &RunOpts) -> taskprof::Profile {
    let monitor = ProfMonitor::new();
    let out = run_app(app, &monitor, opts);
    assert!(out.verified);
    monitor.take_profile().expect("no region in flight")
}

#[test]
fn real_profile_round_trips_through_text() {
    let p = profile_of(AppId::SparseLu, &RunOpts::new(2).scale(Scale::Test));
    let text = write_profile(&p);
    let q = read_profile(&text).expect("parse");
    assert_eq!(p.threads.len(), q.threads.len());
    for (a, b) in p.threads.iter().zip(&q.threads) {
        assert_eq!(a.main, b.main);
        assert_eq!(a.task_trees, b.task_trees);
        assert_eq!(a.max_live_trees, b.max_live_trees);
    }
    // Aggregations agree too.
    let pa = AggProfile::from_profile(&p);
    let qa = AggProfile::from_profile(&q);
    assert_eq!(pa.main, qa.main);
}

#[test]
fn self_diff_is_all_zero_deltas() {
    let p = profile_of(AppId::Fft, &RunOpts::new(2).scale(Scale::Test));
    let a = AggProfile::from_profile(&p);
    let rows = diff_profiles(&a, &a);
    assert!(!rows.is_empty());
    for r in rows {
        assert_eq!(r.delta_ns(), 0, "{}", r.path);
        assert_eq!(r.a_visits, r.b_visits);
    }
}

#[test]
fn diagnose_flags_fib_but_not_its_cutoff_as_badly() {
    let cfg = DiagnoseConfig::default();
    let bad = diagnose(
        &profile_of(AppId::Fib, &RunOpts::new(2).scale(Scale::Test)),
        &cfg,
    );
    assert!(
        bad.iter().any(|f| f.kind == IssueKind::TasksTooSmall),
        "fib without cut-off must be flagged: {bad:#?}"
    );
    // The cut-off slashes the instance count while each instance carries
    // more work (the mean-size effect needs release-build timings; the
    // count is deterministic).
    let instances = |app_opts: &RunOpts| {
        let p = profile_of(AppId::Fib, app_opts);
        let agg = AggProfile::from_profile(&p);
        cube::task_stats(&agg)[0].instances
    };
    let full = instances(&RunOpts::new(2).scale(Scale::Test));
    let cut = instances(&RunOpts::new(2).scale(Scale::Test).variant(Variant::Cutoff));
    assert!(
        cut * 3 < full,
        "cut-off must slash the instance count: {cut} vs {full}"
    );
}

#[test]
fn diagnose_detects_single_creator_codes() {
    // alignment and sparselu create all tasks from one thread.
    for app in [AppId::Alignment, AppId::SparseLu] {
        let p = profile_of(app, &RunOpts::new(4).scale(Scale::Test));
        let findings = diagnose(&p, &DiagnoseConfig::default());
        assert!(
            findings
                .iter()
                .any(|f| f.kind == IssueKind::CreationBottleneck),
            "{}: expected creation-bottleneck finding: {findings:#?}",
            app.name()
        );
    }
}

#[test]
fn saved_profiles_diff_across_thread_counts() {
    // The Section VI comparison methodology through the persistence layer.
    let p1 = profile_of(AppId::Nqueens, &RunOpts::new(1).scale(Scale::Test));
    let p4 = profile_of(AppId::Nqueens, &RunOpts::new(4).scale(Scale::Test));
    let t1 = write_profile(&p1);
    let t4 = write_profile(&p4);
    let a = AggProfile::from_profile(&read_profile(&t1).unwrap());
    let b = AggProfile::from_profile(&read_profile(&t4).unwrap());
    let rows = diff_profiles(&a, &b);
    // The 4-thread run has (a) more barrier visits and (b) the same task
    // instance count.
    let tasks = rows
        .iter()
        .find(|r| r.path == "<tasks>/nqueens")
        .expect("task tree row");
    assert_eq!(tasks.a_visits, tasks.b_visits, "same work, any schedule");
}
