//! Fault tolerance end to end: a panicking task body must neither take
//! down the measurement run nor poison the profile.
//!
//! The original Score-P tooling aborts the whole application when its
//! internal consistency checks fire; here a panic in one task instance is
//! contained at the task boundary (the runtime reports it via
//! [`taskrt::ParallelOutcome`]), the profiler closes the instance's open
//! frames, tags its tree as aborted, and still merges the time observed
//! up to the panic.

use std::sync::atomic::{AtomicUsize, Ordering};
use taskprof::ProfMonitor;
use taskrt::{taskwait_region, ParallelConstruct, TaskConstruct, Team};

#[test]
fn sibling_panic_is_isolated_and_profiled() {
    let par = ParallelConstruct::new("pi-sib-par");
    let task = TaskConstruct::new("pi-sib-task");
    let tw = taskwait_region("pi-sib-tw");
    let m = ProfMonitor::new();
    let ran = AtomicUsize::new(0);
    let ran = &ran;

    let outcome = Team::new(4).parallel(&m, &par, |ctx| {
        if ctx.tid() == 0 {
            for i in 0..16 {
                ctx.task(&task, move |_| {
                    if i == 5 {
                        panic!("task 5 exploded");
                    }
                    ran.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Must not deadlock even though one sibling never completes
            // normally.
            ctx.taskwait(tw);
        }
    });

    assert!(!outcome.is_ok());
    assert_eq!(outcome.failed_tasks(), 1, "exactly one instance failed");
    let msg = outcome.panic_message().expect("payload preserved");
    assert!(msg.contains("task 5 exploded"), "{msg}");
    assert_eq!(ran.load(Ordering::Relaxed), 15, "the 15 healthy siblings ran");

    // The profile still merged: 16 instances counted, one tagged aborted,
    // and the observed time of the aborted instance was kept.
    let p = m.take_profile().expect("no region in flight");
    let trees: Vec<&taskprof::SnapNode> =
        p.threads.iter().flat_map(|t| &t.task_trees).collect();
    assert!(!trees.is_empty(), "task trees survived the panic");
    let visits: u64 = trees.iter().map(|t| t.stats.visits).sum();
    let aborted: u64 = trees.iter().map(|t| t.stats.aborted).sum();
    assert_eq!(visits, 16, "every instance (incl. the failed one) counted");
    assert_eq!(aborted, 1, "the failed instance is tagged");
    assert_eq!(p.aborted_instances(), 1);
}

#[test]
fn panic_deep_in_recursive_task_chain_releases_all_ancestors() {
    // BOTS-style recursive decomposition (fib-like): each level spawns a
    // child and taskwaits on it; the leaf panics. Every ancestor taskwait
    // must still release, the outcome must report the single failure, and
    // the profiler must close every suspended ancestor instance.
    let par = ParallelConstruct::new("pi-rec-par");
    let task = TaskConstruct::new("pi-rec-task");
    let tw = taskwait_region("pi-rec-tw");
    let m = ProfMonitor::new();

    fn spawn<'w, 'env, M: pomp::Monitor>(
        ctx: &taskrt::TaskCtx<'w, 'env, M>,
        task: &'env TaskConstruct,
        tw: pomp::RegionId,
        depth: usize,
    ) {
        ctx.task(task, move |ctx| {
            if depth == 0 {
                panic!("leaf panicked at the bottom");
            }
            spawn(ctx, task, tw, depth - 1);
            ctx.taskwait(tw);
        });
    }

    let outcome = Team::new(2).parallel(&m, &par, |ctx| {
        if ctx.tid() == 0 {
            spawn(ctx, &task, tw, 12);
            ctx.taskwait(tw);
        }
    });

    assert_eq!(outcome.failed_tasks(), 1, "only the leaf itself failed");
    assert!(outcome
        .panic_message()
        .is_some_and(|s| s.contains("leaf panicked")));

    let p = m.take_profile().expect("no region in flight");
    assert_eq!(p.aborted_instances(), 1);
    // All 13 instances (12 ancestors + leaf) began and were closed: the
    // ancestors normally after their taskwait released, the leaf aborted.
    let visits: u64 = p
        .threads
        .iter()
        .flat_map(|t| &t.task_trees)
        .map(|t| t.stats.visits)
        .sum();
    assert_eq!(visits, 13);
    // No diagnostics: the runtime emitted a fully balanced stream, so the
    // profiler needed no self-healing at finish.
    assert!(p.diagnostics().is_empty(), "{:?}", p.diagnostics());
}

#[test]
fn panics_on_worker_threads_are_contained_too() {
    // Panicking instances stolen by other threads must not kill those
    // threads' measurement: every thread still produces a snapshot.
    let par = ParallelConstruct::new("pi-steal-par");
    let task = TaskConstruct::new("pi-steal-task");
    let m = ProfMonitor::new();

    let outcome = Team::new(4).parallel(&m, &par, |ctx| {
        if ctx.tid() == 0 {
            for i in 0..64 {
                ctx.task(&task, move |_| {
                    if i % 16 == 3 {
                        panic!("instance {i} failed");
                    }
                });
            }
        }
    });

    assert_eq!(outcome.failed_tasks(), 4);
    let p = m.take_profile().expect("no region in flight");
    assert_eq!(p.num_threads(), 4, "all threads reported a snapshot");
    assert_eq!(p.aborted_instances(), 4);
    let visits: u64 = p
        .threads
        .iter()
        .flat_map(|t| &t.task_trees)
        .map(|t| t.stats.visits)
        .sum();
    assert_eq!(visits, 64);
}

#[test]
fn clean_bots_run_under_validator_stays_clean() {
    // The full runtime drives a real BOTS code through the stream
    // validator wrapped around the profiler: a correct runtime must
    // produce zero diagnostics and an intact profile.
    use bots::{run_app, AppId, RunOpts, Scale};
    use pomp::ValidatingMonitor;

    let v = ValidatingMonitor::new(ProfMonitor::new());
    let out = run_app(AppId::Fib, &v, &RunOpts::new(2).scale(Scale::Test));
    assert!(out.verified);
    assert!(v.is_clean(), "diagnostics: {:?}", v.take_diagnostics());
    let p = v.inner().take_profile().expect("no region in flight");
    assert_eq!(p.num_threads(), 2);
    assert_eq!(p.aborted_instances(), 0);
    assert!(p.threads.iter().any(|t| !t.task_trees.is_empty()));
}
