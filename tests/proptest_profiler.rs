//! Property-based tests of the profiling algorithm.
//!
//! A generator produces arbitrary *well-formed* single-thread executions
//! (nested regions, task creation, task execution at scheduling points
//! with arbitrary suspension interleavings, parameter scopes), replays
//! them through the profiler under virtual time, and checks the
//! invariants the paper's algorithm promises.

use pomp::{RegionId, TaskIdAllocator};
use proptest::prelude::*;
use taskprof::{AssignPolicy, Event, NodeKind, Replayer, SnapNode, ThreadSnapshot};

const PAR: RegionId = RegionId(9000);
const BARRIER: RegionId = RegionId(9001);
const TASK_A: RegionId = RegionId(9002);
const TASK_B: RegionId = RegionId(9003);
const CREATE_A: RegionId = RegionId(9004);
const TW: RegionId = RegionId(9005);
const FOO: RegionId = RegionId(9006);
const BAR: RegionId = RegionId(9007);

/// A recursive plan for one task body.
#[derive(Clone, Debug)]
enum Body {
    /// Spend time.
    Work(u8),
    /// Enter a region, run the inner bodies, exit.
    Region(RegionId, Vec<Body>),
    /// Create + immediately execute a child task with the given body
    /// (models a scheduling point switching to a fresh task while this
    /// one is suspended).
    Child(RegionId, Vec<Body>),
    /// Parameter scope.
    Param(i64, Vec<Body>),
}

fn body_strategy(depth: u32) -> impl Strategy<Value = Body> {
    let leaf = prop_oneof![any::<u8>().prop_map(Body::Work)];
    leaf.prop_recursive(depth, 24, 4, |inner| {
        prop_oneof![
            (
                prop_oneof![Just(FOO), Just(BAR), Just(TW)],
                prop::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(r, b)| Body::Region(r, b)),
            (
                prop_oneof![Just(TASK_A), Just(TASK_B)],
                prop::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(r, b)| Body::Child(r, b)),
            (0i64..5, prop::collection::vec(inner, 0..2))
                .prop_map(|(v, b)| Body::Param(v, b)),
        ]
    })
}

/// Emit the event stream for a body executing as `region` instance.
fn emit(r: &mut Replayer, ids: &TaskIdAllocator, body: &[Body], max_live: &mut usize) {
    let depth_param = pomp::registry().register_param("pt-depth");
    for b in body {
        match b {
            Body::Work(units) => {
                r.apply(Event::Advance(*units as u64 + 1));
            }
            Body::Region(region, inner) => {
                r.apply(Event::Enter(*region));
                emit(r, ids, inner, max_live);
                r.apply(Event::Advance(1));
                r.apply(Event::Exit(*region));
            }
            Body::Child(region, inner) => {
                let id = ids.alloc();
                r.apply(Event::CreateBegin {
                    create: CREATE_A,
                    task_region: *region,
                    id,
                });
                r.apply(Event::Advance(1));
                r.apply(Event::CreateEnd { create: CREATE_A, id });
                // Execute it right away at this (creation) scheduling
                // point; the current task suspends meanwhile.
                let resumed = r.profile().current_task();
                r.apply(Event::TaskBegin { region: *region, id });
                *max_live = (*max_live).max(r.profile().live_instance_trees());
                emit(r, ids, inner, max_live);
                r.apply(Event::Advance(1));
                r.apply(Event::TaskEnd { region: *region, id });
                if let pomp::TaskRef::Explicit(_) = resumed {
                    r.apply(Event::Switch(resumed));
                }
            }
            Body::Param(v, inner) => {
                r.apply(Event::ParamBegin {
                    param: depth_param,
                    value: *v,
                });
                emit(r, ids, inner, max_live);
                r.apply(Event::Advance(1));
                r.apply(Event::ParamEnd { param: depth_param });
            }
        }
    }
}

struct Run {
    snap: ThreadSnapshot,
    total_time: u64,
    instances: u64,
    max_live: usize,
}

fn run_plan(plan: &[Body], policy: AssignPolicy) -> Run {
    let ids = TaskIdAllocator::new();
    let mut r = Replayer::new(PAR, policy);
    let mut max_live = 0usize;
    r.apply(Event::Enter(BARRIER));
    emit(&mut r, &ids, plan, &mut max_live);
    r.apply(Event::Advance(1));
    r.apply(Event::Exit(BARRIER));
    let total_time = r.now();
    let instances = ids.allocated();
    let snap = r.finish(0);
    Run {
        snap,
        total_time,
        instances,
        max_live,
    }
}

fn subtree_ok(n: &SnapNode, executing_policy: bool) -> Result<(), String> {
    // Inclusive >= sum of children (no negative exclusive) under the
    // executing policy.
    if executing_policy && n.exclusive_ns() < 0 {
        return Err(format!("negative exclusive at {:?}", n.kind));
    }
    // min <= max; samples <= visits; sampled stats consistent.
    if n.stats.samples > 0 {
        if n.stats.min_ns > n.stats.max_ns {
            return Err(format!("min > max at {:?}", n.kind));
        }
        if n.stats.max_ns > n.stats.sum_ns {
            return Err(format!("max > sum at {:?}", n.kind));
        }
    }
    if n.stats.samples > n.stats.visits {
        return Err(format!("samples > visits at {:?}", n.kind));
    }
    for c in &n.children {
        subtree_ok(c, executing_policy)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn executing_policy_invariants(plan in prop::collection::vec(body_strategy(4), 1..6)) {
        let run = run_plan(&plan, AssignPolicy::Executing);
        let snap = &run.snap;

        // 1. The root's inclusive time equals total virtual time.
        prop_assert_eq!(snap.main.stats.sum_ns, run.total_time);

        // 2. Structural sanity everywhere.
        subtree_ok(&snap.main, true).map_err(TestCaseError::fail)?;
        for t in &snap.task_trees {
            subtree_ok(t, true).map_err(TestCaseError::fail)?;
        }

        // 3. Every created instance completed and is accounted exactly
        //    once across the aggregate task trees.
        let completed: u64 = snap.task_trees.iter().map(|t| t.stats.samples).sum();
        prop_assert_eq!(completed, run.instances);

        // 4. Total task-tree time == total stub time (every executed
        //    fragment is mirrored in the implicit tree).
        let task_time: u64 = snap.task_trees.iter().map(|t| t.stats.sum_ns).sum();
        let mut stub_time = 0u64;
        snap.main.walk(&mut |_, n| {
            if matches!(n.kind, NodeKind::Stub(_)) {
                stub_time += n.stats.sum_ns;
            }
        });
        prop_assert_eq!(task_time, stub_time);

        // 5. Task time never exceeds wall time (suspension subtracted).
        prop_assert!(task_time <= run.total_time);

        // 6. The live-tree high-water mark matches what we observed while
        //    driving, and memory is bounded by it: after completion the
        //    arena kept no leaked instance nodes beyond the aggregates.
        prop_assert_eq!(snap.max_live_trees, run.max_live);
    }

    #[test]
    fn node_reuse_bounds_arena(plan in prop::collection::vec(body_strategy(3), 1..5)) {
        // Memory must be bounded by the *concurrent* shape, not the total
        // instance count (paper Section V-B): after the aggregate trees
        // have been fully built (pass 2), repeating the identical
        // workload allocates no further arena slots.
        let ids = TaskIdAllocator::new();
        let mut r = Replayer::new(PAR, AssignPolicy::Executing);
        let mut ml = 0usize;
        r.apply(Event::Enter(BARRIER));
        emit(&mut r, &ids, &plan, &mut ml);
        emit(&mut r, &ids, &plan, &mut ml);
        let cap_after_second = r.profile().arena_capacity();
        for _ in 0..3 {
            emit(&mut r, &ids, &plan, &mut ml);
        }
        let cap_after_fifth = r.profile().arena_capacity();
        r.apply(Event::Exit(BARRIER));
        let _ = r.finish(0);
        prop_assert_eq!(cap_after_second, cap_after_fifth);
    }

    #[test]
    fn policies_agree_on_wall_time(plan in prop::collection::vec(body_strategy(3), 1..5)) {
        let a = run_plan(&plan, AssignPolicy::Executing);
        let b = run_plan(&plan, AssignPolicy::Creating);
        prop_assert_eq!(a.snap.main.stats.sum_ns, b.snap.main.stats.sum_ns);
        // Creating policy hangs instances in the main tree: no aggregate
        // task trees.
        prop_assert!(b.snap.task_trees.is_empty());
    }

    #[test]
    fn merge_is_associative_for_thread_aggregation(
        plan in prop::collection::vec(body_strategy(3), 1..4),
    ) {
        // Aggregating [A, B, C] at once equals aggregating [A, [B, C]].
        let runs: Vec<ThreadSnapshot> = (0..3).map(|i| {
            let mut r = run_plan(&plan, AssignPolicy::Executing);
            r.snap.tid = i;
            r.snap
        }).collect();
        let all = cube::merge_nodes(&[&runs[0].main, &runs[1].main, &runs[2].main]);
        let bc = cube::merge_nodes(&[&runs[1].main, &runs[2].main]);
        let nested = cube::merge_nodes(&[&runs[0].main, &bc]);
        prop_assert_eq!(all, nested);
    }
}
