//! Property-based tests of the profiling algorithm.
//!
//! The plan generator and event emitter live in `test_util::body` (they
//! are shared with the golden-profile tests); this suite replays the
//! generated executions through the profiler under virtual time and
//! checks the invariants the paper's algorithm promises.

use pomp::TaskIdAllocator;
use proptest::prelude::*;
use taskprof::{AssignPolicy, Event, NodeKind, Replayer, ThreadSnapshot};
use test_util::body::{body_strategy, emit, subtree_ok, Body, BARRIER, PAR};

struct Run {
    snap: ThreadSnapshot,
    total_time: u64,
    instances: u64,
    max_live: usize,
}

fn run_plan(plan: &[Body], policy: AssignPolicy) -> Run {
    let ids = TaskIdAllocator::new();
    let mut r = Replayer::new(PAR, policy);
    let mut max_live = 0usize;
    r.apply(Event::Enter(BARRIER));
    emit(&mut r, &ids, plan, &mut max_live);
    r.apply(Event::Advance(1));
    r.apply(Event::Exit(BARRIER));
    let total_time = r.now();
    let instances = ids.allocated();
    let snap = r.finish(0);
    Run {
        snap,
        total_time,
        instances,
        max_live,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn executing_policy_invariants(plan in prop::collection::vec(body_strategy(4), 1..6)) {
        let run = run_plan(&plan, AssignPolicy::Executing);
        let snap = &run.snap;

        // 1. The root's inclusive time equals total virtual time.
        prop_assert_eq!(snap.main.stats.sum_ns, run.total_time);

        // 2. Structural sanity everywhere.
        subtree_ok(&snap.main, true).map_err(TestCaseError::fail)?;
        for t in &snap.task_trees {
            subtree_ok(t, true).map_err(TestCaseError::fail)?;
        }

        // 3. Every created instance completed and is accounted exactly
        //    once across the aggregate task trees.
        let completed: u64 = snap.task_trees.iter().map(|t| t.stats.samples).sum();
        prop_assert_eq!(completed, run.instances);

        // 4. Total task-tree time == total stub time (every executed
        //    fragment is mirrored in the implicit tree).
        let task_time: u64 = snap.task_trees.iter().map(|t| t.stats.sum_ns).sum();
        let mut stub_time = 0u64;
        snap.main.walk(&mut |_, n| {
            if matches!(n.kind, NodeKind::Stub(_)) {
                stub_time += n.stats.sum_ns;
            }
        });
        prop_assert_eq!(task_time, stub_time);

        // 5. Task time never exceeds wall time (suspension subtracted).
        prop_assert!(task_time <= run.total_time);

        // 6. The live-tree high-water mark matches what we observed while
        //    driving, and memory is bounded by it: after completion the
        //    arena kept no leaked instance nodes beyond the aggregates.
        prop_assert_eq!(snap.max_live_trees, run.max_live);
    }

    #[test]
    fn node_reuse_bounds_arena(plan in prop::collection::vec(body_strategy(3), 1..5)) {
        // Memory must be bounded by the *concurrent* shape, not the total
        // instance count (paper Section V-B): after the aggregate trees
        // have been fully built (pass 2), repeating the identical
        // workload allocates no further arena slots.
        let ids = TaskIdAllocator::new();
        let mut r = Replayer::new(PAR, AssignPolicy::Executing);
        let mut ml = 0usize;
        r.apply(Event::Enter(BARRIER));
        emit(&mut r, &ids, &plan, &mut ml);
        emit(&mut r, &ids, &plan, &mut ml);
        let cap_after_second = r.profile().arena_capacity();
        for _ in 0..3 {
            emit(&mut r, &ids, &plan, &mut ml);
        }
        let cap_after_fifth = r.profile().arena_capacity();
        r.apply(Event::Exit(BARRIER));
        let _ = r.finish(0);
        prop_assert_eq!(cap_after_second, cap_after_fifth);
    }

    #[test]
    fn policies_agree_on_wall_time(plan in prop::collection::vec(body_strategy(3), 1..5)) {
        let a = run_plan(&plan, AssignPolicy::Executing);
        let b = run_plan(&plan, AssignPolicy::Creating);
        prop_assert_eq!(a.snap.main.stats.sum_ns, b.snap.main.stats.sum_ns);
        // Creating policy hangs instances in the main tree: no aggregate
        // task trees.
        prop_assert!(b.snap.task_trees.is_empty());
    }

    #[test]
    fn merge_is_associative_for_thread_aggregation(
        plan in prop::collection::vec(body_strategy(3), 1..4),
    ) {
        // Aggregating [A, B, C] at once equals aggregating [A, [B, C]].
        let runs: Vec<ThreadSnapshot> = (0..3).map(|i| {
            let mut r = run_plan(&plan, AssignPolicy::Executing);
            r.snap.tid = i;
            r.snap
        }).collect();
        let all = cube::merge_nodes(&[&runs[0].main, &runs[1].main, &runs[2].main]);
        let bc = cube::merge_nodes(&[&runs[1].main, &runs[2].main]);
        let nested = cube::merge_nodes(&[&runs[0].main, &bc]);
        prop_assert_eq!(all, nested);
    }
}
