//! Cross-crate integration: the `taskrt` runtime driving the `taskprof`
//! profiler, checked through real BOTS workloads.
//!
//! The profiler's internal assertions (nesting, stub-frame discipline,
//! instance-table consistency) make these tests sharp: any hook-ordering
//! bug in the runtime panics rather than producing silently-wrong
//! profiles.

use bots::{run_app, AppId, RunOpts, Scale, Variant, ALL_APPS};
use pomp::{registry, RegionKind};
use taskprof::{NodeKind, ProfMonitor, Profile};

fn total_task_tree_visits(p: &Profile) -> u64 {
    p.threads
        .iter()
        .flat_map(|t| &t.task_trees)
        .map(|t| t.stats.visits)
        .sum()
}

fn profiled(app: AppId, threads: usize, variant: Variant) -> Profile {
    let monitor = ProfMonitor::new();
    let opts = RunOpts::new(threads).scale(Scale::Test).variant(variant);
    let out = run_app(app, &monitor, &opts);
    assert!(out.verified, "{} not verified under profiling", app.name());
    monitor.take_profile().expect("no region in flight")
}

#[test]
fn every_app_profiles_cleanly_on_one_thread() {
    for app in ALL_APPS {
        let p = profiled(app, 1, Variant::NoCutoff);
        assert_eq!(p.num_threads(), 1, "{}", app.name());
        assert!(
            total_task_tree_visits(&p) > 0,
            "{}: no completed task instances recorded",
            app.name()
        );
    }
}

#[test]
fn every_app_profiles_cleanly_on_four_threads() {
    for app in ALL_APPS {
        let p = profiled(app, 4, Variant::NoCutoff);
        assert_eq!(p.num_threads(), 4, "{}", app.name());
        assert!(total_task_tree_visits(&p) > 0, "{}", app.name());
    }
}

#[test]
fn cutoff_reduces_task_count() {
    for app in ALL_APPS.into_iter().filter(|a| a.has_cutoff()) {
        let full = total_task_tree_visits(&profiled(app, 2, Variant::NoCutoff));
        let cut = total_task_tree_visits(&profiled(app, 2, Variant::Cutoff));
        assert!(
            cut < full,
            "{}: cutoff did not reduce tasks ({cut} vs {full})",
            app.name()
        );
    }
}

#[test]
fn fib_task_count_matches_recursion_tree() {
    // fib(n) with tasks creates exactly 2 * (calls with n >= 2) tasks;
    // calls(n) satisfies c(n) = c(n-1) + c(n-2) + 1 with c(0)=c(1)=1.
    let n = bots::fib::input_n(Scale::Test);
    fn calls(n: u64) -> u64 {
        if n < 2 {
            1
        } else {
            1 + calls(n - 1) + calls(n - 2)
        }
    }
    let expected_tasks = calls(n) - 1; // every call except the root is a task
    let p = profiled(AppId::Fib, 2, Variant::NoCutoff);
    assert_eq!(total_task_tree_visits(&p), expected_tasks);
}

#[test]
fn profile_has_expected_region_structure() {
    let p = profiled(AppId::Fib, 2, Variant::NoCutoff);
    let reg = registry();
    // Each thread's main tree is rooted at the parallel region.
    for t in &p.threads {
        match t.main.kind {
            NodeKind::Region(r) => {
                assert_eq!(reg.kind(r), RegionKind::Parallel);
                assert_eq!(reg.name(r), "fib!parallel");
            }
            other => panic!("main root is {other:?}"),
        }
        // Inclusive time of the root covers all children.
        assert!(t.main.exclusive_ns() >= 0);
    }
    // Exactly one task construct: "fib".
    let task_region = reg.lookup("fib", RegionKind::Task).unwrap();
    let trees: Vec<_> = p
        .threads
        .iter()
        .filter_map(|t| t.task_tree(task_region))
        .collect();
    assert!(!trees.is_empty());
    // The fib task tree contains the taskwait and creation regions.
    let tw = reg.lookup("fib!taskwait", RegionKind::Taskwait).unwrap();
    let create = reg.lookup("fib!create", RegionKind::TaskCreate).unwrap();
    let some_tree = trees.iter().find(|t| !t.children.is_empty()).unwrap();
    assert!(some_tree.child(NodeKind::Region(tw)).is_some());
    assert!(some_tree.child(NodeKind::Region(create)).is_some());
}

#[test]
fn stub_nodes_partition_scheduling_point_time() {
    let p = profiled(AppId::SparseLu, 2, Variant::NoCutoff);
    // Somewhere in the main trees there must be stub nodes, and every
    // scheduling point's inclusive time must be >= its stubs' total
    // (exclusive remainder = management/idle, never negative under the
    // executing-node policy).
    let mut stub_seen = false;
    for t in &p.threads {
        t.main.walk(&mut |_, n| {
            let stub_time: u64 = n
                .children
                .iter()
                .filter(|c| matches!(c.kind, NodeKind::Stub(_)))
                .map(|c| c.stats.sum_ns)
                .sum();
            if stub_time > 0 {
                stub_seen = true;
                assert!(
                    n.stats.sum_ns >= stub_time,
                    "scheduling point shorter than its stub time"
                );
            }
        });
    }
    assert!(stub_seen, "no stub nodes recorded");
}

#[test]
fn max_live_trees_is_small_and_bounded_by_depth() {
    // Paper Table II: the maximum number of concurrently executing task
    // instances per thread is small (< 20 for every BOTS code).
    for app in ALL_APPS {
        let p = profiled(app, 4, Variant::NoCutoff);
        let m = p.max_live_trees();
        assert!(m >= 1, "{}", app.name());
        assert!(m <= 64, "{}: implausible live-tree count {m}", app.name());
    }
}

#[test]
fn task_time_excludes_suspension() {
    // For every thread: the sum of task-tree inclusive times (task-only
    // execution) must not exceed the thread's wall time, even though
    // tasks nest — suspension subtraction prevents double counting.
    let p = profiled(AppId::Fib, 1, Variant::NoCutoff);
    let t = &p.threads[0];
    let wall = t.main.stats.sum_ns;
    let tasks: u64 = t.task_trees.iter().map(|tt| tt.stats.sum_ns).sum();
    assert!(
        tasks <= wall,
        "task execution time {tasks} exceeds thread wall time {wall}"
    );
}

#[test]
fn profiles_collected_per_parallel_region() {
    // health runs one parallel region; two sequential profiled runs give
    // two drains.
    let monitor = ProfMonitor::new();
    let opts = RunOpts::new(2).scale(Scale::Test);
    run_app(AppId::Health, &monitor, &opts);
    let p1 = monitor.take_profile().expect("no region in flight");
    assert_eq!(p1.num_threads(), 2);
    run_app(AppId::Health, &monitor, &opts);
    let p2 = monitor.take_profile().expect("no region in flight");
    assert_eq!(p2.num_threads(), 2);
}
