//! Property-based tests of the tasking runtime: arbitrary task-tree
//! shapes must execute every task exactly once, respect taskwait
//! semantics, and produce profiler-consistent event streams.
//!
//! The shape generator and driver live in `test_util::shape` so the
//! deterministic schedule explorer (`simsched`) can reuse them as a
//! workload source.

use pomp::NullMonitor;
use proptest::prelude::*;
use taskprof::ProfMonitor;
use test_util::shape::{expected_tasks, run_shape, shape_strategy};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_task_executes_exactly_once(shape in shape_strategy(), threads in 1usize..5) {
        let got = run_shape(&NullMonitor, &shape, threads);
        prop_assert_eq!(got, expected_tasks(&shape));
    }

    #[test]
    fn profiled_run_counts_match(shape in shape_strategy(), threads in 1usize..4) {
        let monitor = ProfMonitor::new();
        let got = run_shape(&monitor, &shape, threads);
        let profile = monitor.take_profile().expect("no region in flight");
        prop_assert_eq!(profile.num_threads(), threads);
        let completed: u64 = profile
            .threads
            .iter()
            .flat_map(|t| &t.task_trees)
            .map(|t| t.stats.samples)
            .sum();
        prop_assert_eq!(completed, got, "profiler saw a different task count");
        // No thread profile may end with live instances (finish() would
        // have panicked) and wall times must cover task times.
        for t in &profile.threads {
            let wall = t.main.stats.sum_ns;
            let tasks: u64 = t.task_trees.iter().map(|tt| tt.stats.sum_ns).sum();
            prop_assert!(tasks <= wall, "task time {tasks} > wall {wall}");
        }
    }
}
