//! Property-based tests of the tasking runtime: arbitrary task-tree
//! shapes must execute every task exactly once, respect taskwait
//! semantics, and produce profiler-consistent event streams.

use pomp::{Monitor, NullMonitor};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use taskprof::ProfMonitor;
use taskrt::{taskwait_region, ParallelConstruct, TaskConstruct, TaskCtx, Team};

/// A randomly shaped task tree: each node spawns children and optionally
/// taskwaits between batches.
#[derive(Clone, Debug)]
struct Shape {
    /// Children per node, by depth (empty → leaf).
    fanout: Vec<u8>,
    /// Whether each level taskwaits after spawning.
    wait: Vec<bool>,
    /// Work units burned per task.
    work: u8,
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    (
        prop::collection::vec(0u8..4, 1..4),
        prop::collection::vec(any::<bool>(), 4),
        any::<u8>(),
    )
        .prop_map(|(fanout, wait, work)| Shape { fanout, wait, work })
}

fn expected_tasks(shape: &Shape) -> u64 {
    // Root (implicit) spawns fanout[0] tasks, each spawns fanout[1], ...
    let mut total = 0u64;
    let mut level_count = 1u64;
    for &f in &shape.fanout {
        level_count *= f as u64;
        total += level_count;
        if level_count == 0 {
            break;
        }
    }
    total
}

fn spawn_level<'e, M: Monitor>(
    ctx: &TaskCtx<'_, 'e, M>,
    shape: &'e Shape,
    depth: usize,
    task: &'e TaskConstruct,
    tw: pomp::RegionId,
    executed: &'e AtomicU64,
    work_sink: &'e AtomicU64,
) {
    if depth >= shape.fanout.len() {
        return;
    }
    for _ in 0..shape.fanout[depth] {
        ctx.task(task, move |ctx| {
            executed.fetch_add(1, Ordering::Relaxed);
            let mut acc = 0u64;
            for i in 0..shape.work as u64 * 16 {
                acc = acc.wrapping_mul(31).wrapping_add(i);
            }
            work_sink.fetch_add(acc, Ordering::Relaxed);
            spawn_level(ctx, shape, depth + 1, task, tw, executed, work_sink);
            if shape.wait.get(depth + 1).copied().unwrap_or(false) {
                ctx.taskwait(tw);
            }
        });
    }
    if shape.wait.first().copied().unwrap_or(true) && depth == 0 {
        ctx.taskwait(tw);
    }
}

fn run_shape<M: Monitor>(monitor: &M, shape: &Shape, threads: usize) -> u64 {
    let par = ParallelConstruct::new("pt-rt!parallel");
    let task = TaskConstruct::new("pt-rt-task");
    let tw = taskwait_region("pt-rt!tw");
    let executed = AtomicU64::new(0);
    let work_sink = AtomicU64::new(0);
    let (exec_ref, sink_ref, shape_ref, task_ref) = (&executed, &work_sink, shape, &task);
    Team::new(threads).parallel(monitor, &par, |ctx| {
        if ctx.tid() == 0 {
            spawn_level(ctx, shape_ref, 0, task_ref, tw, exec_ref, sink_ref);
        }
    });
    executed.load(Ordering::Relaxed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_task_executes_exactly_once(shape in shape_strategy(), threads in 1usize..5) {
        let got = run_shape(&NullMonitor, &shape, threads);
        prop_assert_eq!(got, expected_tasks(&shape));
    }

    #[test]
    fn profiled_run_counts_match(shape in shape_strategy(), threads in 1usize..4) {
        let monitor = ProfMonitor::new();
        let got = run_shape(&monitor, &shape, threads);
        let profile = monitor.take_profile().expect("no region in flight");
        prop_assert_eq!(profile.num_threads(), threads);
        let completed: u64 = profile
            .threads
            .iter()
            .flat_map(|t| &t.task_trees)
            .map(|t| t.stats.samples)
            .sum();
        prop_assert_eq!(completed, got, "profiler saw a different task count");
        // No thread profile may end with live instances (finish() would
        // have panicked) and wall times must cover task times.
        for t in &profile.threads {
            let wall = t.main.stats.sum_ns;
            let tasks: u64 = t.task_trees.iter().map(|tt| tt.stats.sum_ns).sum();
            prop_assert!(tasks <= wall, "task time {tasks} > wall {wall}");
        }
    }
}
