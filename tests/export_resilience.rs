//! End-to-end exercise of the resilient export pipeline (ISSUE 6
//! tentpole): a `finish()` against a dead daemon must return within its
//! deadline and degrade the profile to the spool instead of dropping
//! it; a later export against a live daemon must deliver the spooled
//! frame exactly once; corrupt spool frames must be quarantined, not
//! re-sent and not panicked over.

use std::path::PathBuf;
use std::time::{Duration, Instant};
use taskprof_session::{drain_spool, spool_profile, ExportPolicy, MeasurementSession};

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "taskprof-resilience-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spool_frames(dir: &std::path::Path) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut frames: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().map(|x| x == "frame").unwrap_or(false))
        .collect();
    frames.sort();
    frames
}

fn measured_profile(name: &str) -> taskprof::Profile {
    let session = MeasurementSession::builder(name)
        .threads(1)
        .build()
        .expect("build");
    session.run(|_| {}).unwrap();
    session.finish().profile
}

/// The whole tentpole contract in one flow: daemon down -> deadline
/// respected + profile spooled; daemon up -> next export drains the
/// spool; drain is exactly-once.
#[test]
fn daemon_down_spools_and_next_success_drains_exactly_once() {
    let spool = unique_dir("spool");
    let store_dir = unique_dir("store");

    // Phase 1: nothing listens on 127.0.0.1:1. finish() must come back
    // within (a generous multiple of) the 500 ms deadline, with the
    // profile durably spooled rather than dropped.
    let session = MeasurementSession::builder("resilience-e2e")
        .threads(1)
        .export_to("127.0.0.1:1")
        .export_deadline(Duration::from_millis(500))
        .export_spool(&spool)
        .build()
        .expect("build");
    session.run(|_| {}).unwrap();
    let start = Instant::now();
    let report = session.finish();
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "finish() blocked {elapsed:?} against a dead daemon"
    );
    let receipt = report
        .export
        .expect("export configured")
        .expect("spool fallback turns failure into a receipt");
    assert!(receipt.spooled, "expected spool degradation: {receipt:?}");
    assert_eq!(receipt.run_id, None);
    assert!(receipt.attempts >= 2, "refused connects should be retried");
    assert!(receipt.bytes > 0);
    let frame = receipt.spool_path.clone().expect("spool path");
    assert!(frame.is_file(), "spool frame must exist on disk");
    assert_eq!(spool_frames(&spool), vec![frame.clone()]);

    // Phase 2: bring a daemon up; the next successful export from the
    // same policy drains the spooled frame.
    let store = profstore::ProfileStore::open(&store_dir).expect("open store");
    let (handle, join) =
        profserve::Server::spawn("127.0.0.1:0", store, profserve::ServeConfig::default())
            .expect("spawn");
    let addr = handle.addr().to_string();

    let session = MeasurementSession::builder("resilience-e2e")
        .threads(1)
        .export_to(addr.as_str())
        .export_spool(&spool)
        .build()
        .expect("build");
    session.run(|_| {}).unwrap();
    let receipt = session
        .finish()
        .export
        .expect("export configured")
        .expect("live daemon accepts");
    assert!(!receipt.spooled);
    assert!(receipt.run_id.is_some());
    assert_eq!(receipt.drained, 1, "the spooled frame must ride along");
    assert!(spool_frames(&spool).is_empty(), "drained frame is deleted");

    // Phase 3: exactly-once — draining again delivers nothing, and the
    // store holds exactly the two profiles (one direct, one drained).
    let again = drain_spool(&spool, &addr, &ExportPolicy::default());
    assert_eq!(again.delivered, 0);
    assert_eq!(again.remaining, 0);

    handle.stop();
    join.join().expect("join").expect("run");
    drop(handle);
    let store = profstore::ProfileStore::open(&store_dir).expect("reopen");
    assert_eq!(store.stats().runs, 2, "one spooled + one direct, no dupes");

    let _ = std::fs::remove_dir_all(&spool);
    let _ = std::fs::remove_dir_all(&store_dir);
}

/// A corrupt frame (bit flip) is quarantined with a `.bad` suffix and
/// never blocks healthy frames behind it.
#[test]
fn corrupt_spool_frame_is_quarantined_not_delivered() {
    let spool = unique_dir("quarantine");
    let store_dir = unique_dir("quarantine-store");
    let profile = measured_profile("resilience-quarantine");

    let bad = spool_profile(&spool, "resilience-quarantine", 1, 100, &profile).expect("spool");
    let good = spool_profile(&spool, "resilience-quarantine", 1, 200, &profile).expect("spool");
    // Flip one payload bit in the first (oldest) frame.
    let mut bytes = std::fs::read(&bad).expect("read");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&bad, &bytes).expect("rewrite");

    let store = profstore::ProfileStore::open(&store_dir).expect("open store");
    let (handle, join) =
        profserve::Server::spawn("127.0.0.1:0", store, profserve::ServeConfig::default())
            .expect("spawn");
    let addr = handle.addr().to_string();

    let report = drain_spool(&spool, &addr, &ExportPolicy::default());
    assert_eq!(report.delivered, 1, "the healthy frame goes through");
    assert_eq!(report.quarantined, 1, "the flipped frame is quarantined");
    assert_eq!(report.remaining, 0);
    assert!(!bad.exists(), "corrupt frame is renamed away");
    assert!(!good.exists(), "delivered frame is deleted");
    assert!(
        bad.with_extension("frame.bad").exists(),
        "quarantined frame is kept for inspection"
    );

    handle.stop();
    join.join().expect("join").expect("run");
    drop(handle);
    let store = profstore::ProfileStore::open(&store_dir).expect("reopen");
    assert_eq!(store.stats().runs, 1);

    let _ = std::fs::remove_dir_all(&spool);
    let _ = std::fs::remove_dir_all(&store_dir);
}

/// With no spool configured the old contract holds: the failure is
/// reported, the measurement is unaffected, and `finish()` still
/// respects its deadline.
#[test]
fn no_spool_configured_reports_error_within_deadline() {
    let session = MeasurementSession::builder("resilience-nospool")
        .threads(1)
        .export_to("127.0.0.1:1")
        .export_deadline(Duration::from_millis(300))
        .build()
        .expect("build");
    session.run(|_| {}).unwrap();
    let start = Instant::now();
    let report = session.finish();
    assert!(start.elapsed() < Duration::from_secs(5));
    assert_eq!(report.profile.num_threads(), 1);
    assert!(matches!(
        report.export,
        Some(Err(taskprof_session::ExportError::Client(_)))
    ));
}
