//! Section V-B: memory requirements of the intermediate task-instance
//! trees. "The task instance tree is created when the task instance
//! starts execution … the memory is released when the task instance
//! completes. … released task-instance tree nodes are reused" — so
//! per-thread memory is bounded by the number of *concurrent* instances
//! and the per-instance tree size, not by the (much larger) total task
//! count.

use bots::{run_app, AppId, RunOpts, Scale};
use taskprof::ProfMonitor;

fn run(app: AppId, scale: Scale, threads: usize) -> taskprof::Profile {
    let m = ProfMonitor::new();
    let out = run_app(app, &m, &RunOpts::new(threads).scale(scale));
    assert!(out.verified);
    m.take_profile().expect("no region in flight")
}

#[test]
fn arena_grows_with_depth_not_task_count() {
    // fib Test (n=15) vs Small (n=20): 11× the tasks, +5 recursion depth.
    let small = run(AppId::Fib, Scale::Test, 1);
    let big = run(AppId::Fib, Scale::Small, 1);
    let tasks = |p: &taskprof::Profile| -> u64 {
        p.threads
            .iter()
            .flat_map(|t| &t.task_trees)
            .map(|t| t.stats.samples)
            .sum()
    };
    let arena = |p: &taskprof::Profile| -> usize {
        p.threads.iter().map(|t| t.arena_capacity).max().unwrap()
    };
    assert!(tasks(&big) > 10 * tasks(&small), "inputs should differ a lot");
    // Task count explodes; arena stays the same order of magnitude.
    assert!(
        arena(&big) < 4 * arena(&small),
        "arena {} vs {} — memory must not follow the task count",
        arena(&big),
        arena(&small)
    );
    // And in absolute terms a fib profile is tiny: the aggregate trees
    // plus (max-live × instance-tree-size) nodes.
    assert!(
        arena(&big) < 2_000,
        "fib arena should be a few hundred nodes, got {}",
        arena(&big)
    );
}

#[test]
fn arena_bound_tracks_live_trees_across_codes() {
    // For every code: arena capacity ≤ main-tree size + aggregate trees
    // + max_live × largest-instance-shape — a loose structural bound
    // that catches leaks of instance nodes.
    for app in bots::ALL_APPS {
        let p = run(app, Scale::Test, 2);
        for t in &p.threads {
            let persistent: usize =
                t.main.size() + t.task_trees.iter().map(|tt| tt.size()).sum::<usize>();
            let per_instance: usize = t
                .task_trees
                .iter()
                .map(|tt| tt.size())
                .max()
                .unwrap_or(1)
                .max(1);
            let bound = persistent + (t.max_live_trees + 2) * per_instance * 2;
            assert!(
                t.arena_capacity <= bound,
                "{}: thread {} arena {} exceeds structural bound {} \
                 (persistent {persistent}, max_live {}, per_instance {per_instance})",
                app.name(),
                t.tid,
                t.arena_capacity,
                bound,
                t.max_live_trees,
            );
        }
    }
}

#[test]
fn snapshot_trees_are_self_consistent() {
    // Global sanity over every code: visits ≥ samples, min ≤ max, stub
    // times mirror task trees exactly on every thread (single-threaded
    // run so no cross-thread stealing blurs the picture).
    for app in bots::ALL_APPS {
        let p = run(app, Scale::Test, 1);
        let t = &p.threads[0];
        let mut stub_total = 0u64;
        t.main.walk(&mut |_, n| {
            assert!(n.stats.samples <= n.stats.visits);
            if n.stats.samples > 0 {
                assert!(n.stats.min_ns <= n.stats.max_ns);
            }
            if let taskprof::NodeKind::Stub(_) = n.kind {
                stub_total += n.stats.sum_ns;
            }
        });
        let task_total: u64 = t.task_trees.iter().map(|tt| tt.stats.sum_ns).sum();
        assert_eq!(
            stub_total,
            task_total,
            "{}: stub time must equal task-tree time on a single thread",
            app.name()
        );
    }
}

#[test]
fn depth_limit_caps_profile_size_on_deep_recursion() {
    // Paper Section IV-B3: without countermeasures "the size of the
    // profile may explode or the tree depth limits might kick in".
    // Drive deep-recursing fib through a depth-limited profiler and
    // compare profile sizes.
    use bots::{run_app, AppId, RunOpts, Scale};
    use taskprof::ProfMonitor;

    let unlimited = ProfMonitor::new();
    let out = run_app(AppId::Fib, &unlimited, &RunOpts::new(1).scale(Scale::Test));
    assert!(out.verified);
    let p_unlimited = unlimited.take_profile().expect("no region in flight");

    let limited = ProfMonitor::builder()
        .max_depth(2)
        .build()
        .expect("valid depth limit");
    let out = run_app(AppId::Fib, &limited, &RunOpts::new(1).scale(Scale::Test));
    assert!(out.verified, "depth limit must not affect program results");
    let p_limited = limited.take_profile().expect("no region in flight");

    let size = |p: &taskprof::Profile| -> usize {
        p.threads
            .iter()
            .map(|t| t.main.size() + t.task_trees.iter().map(|tt| tt.size()).sum::<usize>())
            .sum()
    };
    // fib's per-task trees are shallow (create/taskwait under the root),
    // but the implicit tree under the single contains the full recursion
    // via inline child execution at taskwaits; the limited profile must
    // not be larger, and must contain truncated markers if anything was
    // deeper than the limit.
    assert!(size(&p_limited) <= size(&p_unlimited));
    let mut truncated_seen = false;
    for t in &p_limited.threads {
        for tree in t.task_trees.iter().chain(std::iter::once(&t.main)) {
            tree.walk(&mut |_, n| {
                if n.kind == taskprof::NodeKind::Truncated {
                    truncated_seen = true;
                }
            });
        }
    }
    assert!(truncated_seen, "limit 2 must truncate something in fib");
    // Totals are preserved: wall time identical structure-independent.
    let wall = |p: &taskprof::Profile| p.threads[0].main.stats.sum_ns;
    assert!(wall(&p_limited) > 0 && wall(&p_unlimited) > 0);
}
