//! Score-P-style runtime filtering end-to-end: a filtered profiler on a
//! real workload drops the selected regions but keeps the task statistics
//! intact.

use bots::{run_app, AppId, RunOpts, Scale};
use pomp::{registry, FilteredMonitor, RegionId, RegionKind};
use taskprof::{NodeKind, ProfMonitor};

#[test]
fn filtering_taskwaits_removes_them_but_keeps_task_stats() {
    // Unfiltered reference.
    let full = ProfMonitor::new();
    let out = run_app(AppId::Fib, &full, &RunOpts::new(2).scale(Scale::Test));
    assert!(out.verified);
    let full_profile = full.take_profile().expect("no region in flight");

    // Filter out every taskwait region (fib's most frequent event after
    // creation — the paper's Section V-A culprit for fib's overhead).
    let reg = registry();
    let filtered = FilteredMonitor::new(ProfMonitor::new(), move |r: RegionId| {
        registry().kind(r) != RegionKind::Taskwait
    });
    let out = run_app(AppId::Fib, &filtered, &RunOpts::new(2).scale(Scale::Test));
    assert!(out.verified);
    let filtered_profile = filtered.inner().take_profile().expect("no region in flight");

    let tw = reg.lookup("fib!taskwait", RegionKind::Taskwait).unwrap();
    let count_tw = |p: &taskprof::Profile| -> u64 {
        let mut v = 0;
        for t in &p.threads {
            for tree in t.task_trees.iter().chain(std::iter::once(&t.main)) {
                tree.walk(&mut |_, n| {
                    if n.kind == NodeKind::Region(tw) {
                        v += n.stats.visits;
                    }
                });
            }
        }
        v
    };
    assert!(count_tw(&full_profile) > 0, "reference must contain taskwaits");
    assert_eq!(count_tw(&filtered_profile), 0, "filter must remove them");

    // Task statistics survive filtering identically (same instance count).
    let instances = |p: &taskprof::Profile| -> u64 {
        p.threads
            .iter()
            .flat_map(|t| &t.task_trees)
            .map(|t| t.stats.samples)
            .sum()
    };
    assert_eq!(instances(&full_profile), instances(&filtered_profile));
}

#[test]
fn filtering_user_regions_by_name() {
    // Filter one specific construct of the mixed sparselu phases.
    let drop_name = "sparselu_fwd!create";
    let filtered = FilteredMonitor::new(ProfMonitor::new(), move |r: RegionId| {
        registry().name(r) != drop_name
    });
    let out = run_app(AppId::SparseLu, &filtered, &RunOpts::new(2).scale(Scale::Test));
    assert!(out.verified);
    let p = filtered.inner().take_profile().expect("no region in flight");
    let reg = registry();
    let dropped = reg.lookup(drop_name, RegionKind::TaskCreate).unwrap();
    for t in &p.threads {
        for tree in t.task_trees.iter().chain(std::iter::once(&t.main)) {
            tree.walk(&mut |_, n| {
                assert_ne!(n.kind, NodeKind::Region(dropped), "filtered region leaked");
            });
        }
    }
    // But the fwd tasks themselves were still profiled.
    let fwd = reg.lookup("sparselu_fwd", RegionKind::Task).unwrap();
    let have_fwd = p
        .threads
        .iter()
        .any(|t| t.task_tree(fwd).is_some_and(|tree| tree.stats.samples > 0));
    assert!(have_fwd);
}
