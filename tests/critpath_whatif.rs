//! Replay-checked what-if exactness (the headline claim of the causal
//! profiling subsystem).
//!
//! The `critpath` engine predicts the makespan of a run with one region
//! K× faster by re-solving the recorded task DAG with scaled weights.
//! Because the `simsched` scheduler's decisions are purely structural
//! (clock values never feed back into scheduling), running the *same*
//! graph with the region's work actually divided by K under the same
//! seed must take the identical schedule — so the prediction is not an
//! estimate, it is checkable to the nanosecond. This suite asserts that
//! exactness across workload shapes, seeds, target regions, and speedup
//! factors, plus the model's ordering invariants.

use simsched::{validate_whatif, workloads, SimConfig, Step, TreeWorkload};

/// Flat single-producer workload with every work amount a multiple of
/// 60: the single winner spawns six leaves of graded sizes, plus work in
/// the prologue every implicit task runs.
fn divisible_flat() -> TreeWorkload {
    let mut body: Vec<Step> = (1..=6).map(|i| Step::leaf(60 * i)).collect();
    body.push(Step::Taskwait);
    body.push(Step::Work(120));
    TreeWorkload::new("critpath-flat-div", vec![Step::Work(60)], body)
}

fn check_exact(workload: &TreeWorkload, region: pomp::RegionId, seeds: &[u64]) {
    for &seed in seeds {
        for threads in [2, 3] {
            let cfg = SimConfig::seeded(threads, seed);
            let mut last_prediction = u64::MAX;
            for k in [2, 3, 5] {
                let v = validate_whatif(workload, &cfg, region, k)
                    .expect("all work amounts are multiples of 60");
                assert!(
                    v.traces_match,
                    "{} seed={seed} threads={threads} K={k}: scaling changed the schedule",
                    workload.name()
                );
                assert_eq!(
                    v.predicted_makespan_ns,
                    v.replayed_makespan_ns,
                    "{} seed={seed} threads={threads} K={k}: prediction diverged from replay",
                    workload.name()
                );
                assert!(v.exact());
                assert!(
                    v.predicted_makespan_ns <= v.baseline_makespan_ns,
                    "speeding a region up must never slow the program down"
                );
                assert!(
                    v.predicted_span_ns <= v.predicted_makespan_ns,
                    "no schedule beats the logical span"
                );
                assert!(
                    v.predicted_makespan_ns <= last_prediction,
                    "prediction must be monotone nonincreasing in K"
                );
                last_prediction = v.predicted_makespan_ns;
            }
        }
    }
}

#[test]
fn fib_tree_prediction_is_exact_for_task_region() {
    let w = workloads::divisible(3);
    check_exact(&w, w.task_region(), &[7, 11, 42]);
}

#[test]
fn flat_producer_prediction_is_exact_for_single_region() {
    // Work directly in the single body (outside any task) attributes to
    // the single construct's region — a different scaling target than
    // the task region, on the producer's own critical path.
    let w = divisible_flat();
    check_exact(&w, w.single_region(), &[1, 13]);
}

#[test]
fn flat_producer_prediction_is_exact_for_parallel_region() {
    // Prologue work runs in every implicit task and attributes to the
    // parallel region itself.
    let w = divisible_flat();
    check_exact(&w, w.parallel_region(), &[2, 23]);
}

#[test]
fn flat_producer_prediction_is_exact() {
    let w = divisible_flat();
    check_exact(&w, w.task_region(), &[3, 19, 42]);
}

#[test]
fn unit_speedup_predicts_the_baseline_itself() {
    let w = workloads::divisible(3);
    let cfg = SimConfig::seeded(2, 42);
    let v = validate_whatif(&w, &cfg, w.task_region(), 1).expect("K=1 divides everything");
    assert_eq!(v.predicted_makespan_ns, v.baseline_makespan_ns);
    assert!(v.exact());
}

#[test]
fn indivisible_work_refuses_validation() {
    // fib_like uses work amounts 10/5/2; K=7 divides none of them.
    let w = workloads::fib_like(2);
    let cfg = SimConfig::seeded(2, 5);
    assert!(validate_whatif(&w, &cfg, w.task_region(), 7).is_none());
}
