//! Stress: every construct the runtime offers, mixed in one profiled
//! parallel region, across repetitions — shaking out interactions between
//! tasks, taskwaits, singles, worksharing loops, and barriers under the
//! profiler's strict nesting assertions.

use pomp::CountingMonitor;
use std::sync::atomic::{AtomicU64, Ordering};
use taskprof::{NodeKind, ProfMonitor};
use taskrt::{
    barrier_region, taskwait_region, ForConstruct, ParallelConstruct, SingleConstruct,
    TaskConstruct, Team,
};

struct Fixture {
    par: ParallelConstruct,
    single: SingleConstruct,
    task: TaskConstruct,
    nested: TaskConstruct,
    floop: ForConstruct,
    tw: pomp::RegionId,
    bar: pomp::RegionId,
}

fn fixture() -> Fixture {
    Fixture {
        par: ParallelConstruct::new("mix!parallel"),
        single: SingleConstruct::new("mix!single"),
        task: TaskConstruct::new("mix_task"),
        nested: TaskConstruct::new("mix_nested"),
        floop: ForConstruct::new("mix!for"),
        tw: taskwait_region("mix!taskwait"),
        bar: barrier_region("mix!barrier"),
    }
}

fn run_mixed<M: pomp::Monitor>(monitor: &M, threads: usize, rounds: usize) -> u64 {
    let f = fixture();
    let acc = AtomicU64::new(0);
    let (fx, acc_ref) = (&f, &acc);
    Team::new(threads).parallel(monitor, &f.par, |ctx| {
        for round in 0..rounds {
            // Phase 1: worksharing.
            ctx.for_dynamic(&fx.floop, 0..64, 4, |i| {
                acc_ref.fetch_add(i as u64, Ordering::Relaxed);
            });
            // Phase 2: single creator spawns nested task trees.
            ctx.single(&fx.single, |ctx| {
                for _ in 0..8 {
                    ctx.task(&fx.task, move |ctx| {
                        for _ in 0..4 {
                            ctx.task(&fx.nested, move |_| {
                                acc_ref.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                        ctx.taskwait(fx.tw);
                        acc_ref.fetch_add(100, Ordering::Relaxed);
                    });
                }
            });
            // Phase 3: everyone spawns, explicit barrier joins.
            ctx.task(&fx.task, move |_| {
                acc_ref.fetch_add(1000, Ordering::Relaxed);
            });
            ctx.barrier(fx.bar);
            // Phase 4: static worksharing.
            ctx.for_static(&fx.floop, 0..threads * 3, 1, |_| {
                acc_ref.fetch_add(7, Ordering::Relaxed);
            });
            let _ = round;
        }
    });
    acc.load(Ordering::Relaxed)
}

fn expected(threads: usize, rounds: usize) -> u64 {
    let per_round = (0..64u64).sum::<u64>()            // for_dynamic
        + 8 * (4 + 100)                                 // nested tasks + parents
        + threads as u64 * 1000                         // per-thread tasks
        + threads as u64 * 3 * 7; // for_static
    per_round * rounds as u64
}

#[test]
fn mixed_constructs_compute_correctly_uninstrumented() {
    for threads in [1, 2, 4] {
        let got = run_mixed(&pomp::NullMonitor, threads, 3);
        assert_eq!(got, expected(threads, 3), "threads = {threads}");
    }
}

#[test]
fn mixed_constructs_profile_cleanly() {
    for threads in [1, 3] {
        let monitor = ProfMonitor::new();
        let got = run_mixed(&monitor, threads, 2);
        assert_eq!(got, expected(threads, 2));
        let profile = monitor.take_profile().expect("no region in flight");
        assert_eq!(profile.num_threads(), threads);
        // Both task constructs appear as aggregate trees somewhere.
        let reg = pomp::registry();
        let task = reg.lookup("mix_task", pomp::RegionKind::Task).unwrap();
        let nested = reg.lookup("mix_nested", pomp::RegionKind::Task).unwrap();
        let count = |r| -> u64 {
            profile
                .threads
                .iter()
                .filter_map(|t| t.task_tree(r))
                .map(|t| t.stats.samples)
                .sum()
        };
        assert_eq!(count(task), (8 + threads as u64) * 2);
        assert_eq!(count(nested), 32 * 2);
        // The workshare region shows up in the main trees.
        let ws = reg
            .lookup("mix!for", pomp::RegionKind::Workshare)
            .unwrap();
        let ws_visits: u64 = profile
            .threads
            .iter()
            .map(|t| {
                let mut v = 0;
                t.main.walk(&mut |_, n| {
                    if n.kind == NodeKind::Region(ws) {
                        v += n.stats.visits;
                    }
                });
                v
            })
            .sum();
        // Each thread enters the for region twice per round.
        assert_eq!(ws_visits, threads as u64 * 2 * 2);
    }
}

#[test]
fn counting_monitor_agrees_with_ground_truth() {
    let m = CountingMonitor::new();
    let threads = 2;
    let rounds = 2;
    run_mixed(&m, threads, rounds);
    let (_e, creations, begins, ends, _s, _p, th) = m.counts().snapshot();
    assert_eq!(th, threads as u64);
    assert_eq!(begins, ends);
    // Deferred tasks per round: 8 parents + 32 nested + `threads` phase-3.
    assert_eq!(creations, ((8 + 32 + threads) * rounds) as u64);
    assert_eq!(begins, creations);
}

#[test]
fn repeated_profiled_regions_are_independent() {
    let monitor = ProfMonitor::new();
    for _ in 0..3 {
        run_mixed(&monitor, 2, 1);
        let p = monitor.take_profile().expect("no region in flight");
        assert_eq!(p.num_threads(), 2);
        for t in &p.threads {
            assert!(t.main.stats.sum_ns > 0);
        }
    }
}
