//! End-to-end coverage of the fleet-observability surface: live
//! `SUBSCRIBE` push streams over both wire protocols, slow-consumer
//! shedding (a stalled subscriber must never block ingest), and
//! windowed `QUERY regress` gating against recent history.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use pomp::{registry, RegionKind, TaskIdAllocator};
use profserve::{
    Client, ClientTimeouts, Notification, ProfilePayload, Record, ServeConfig, Server,
    WireProtocol,
};
use profstore::{ProfileStore, RunWindow};
use taskprof::{AssignPolicy, Event, Profile, TeamReplayer};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "subscribe-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spawn_server(
    dir: &std::path::Path,
    config: ServeConfig,
) -> (profserve::ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let store = ProfileStore::open(dir).expect("open store");
    Server::spawn("127.0.0.1:0", store, config).expect("spawn server")
}

/// A replayed single-task profile whose total time is `task_ns` — lets
/// the regression tests fabricate runs of a known speed.
fn profile(tag: &str, task_ns: u64) -> Profile {
    let reg = registry();
    let par = reg.register(&format!("{tag}-par"), RegionKind::Parallel, "t", 0);
    let task = reg.register(&format!("{tag}-task"), RegionKind::Task, "t", 0);
    let ids = TaskIdAllocator::new();
    let mut team = TeamReplayer::new(1, par, AssignPolicy::Executing);
    let id = ids.alloc();
    team.apply(0, Event::TaskBegin { region: task, id })
        .advance(task_ns)
        .apply(0, Event::TaskEnd { region: task, id });
    team.finish()
}

fn profile_text(tag: &str, task_ns: u64) -> String {
    cube::write_profile(&profile(tag, task_ns))
}

fn bounded_timeouts() -> ClientTimeouts {
    ClientTimeouts {
        connect: Some(Duration::from_secs(5)),
        read: Some(Duration::from_secs(10)),
        write: Some(Duration::from_secs(5)),
    }
}

/// Poll `f` against a fresh server-stats read until it holds or the
/// deadline passes; returns the last observed snapshot either way.
fn wait_for_stats(
    control: &mut Client,
    deadline: Duration,
    f: impl Fn(&profserve::ServerStatsReport) -> bool,
) -> profserve::ServerStatsReport {
    let start = Instant::now();
    loop {
        let stats = control.server_stats().expect("server stats");
        if f(&stats) || start.elapsed() > deadline {
            return stats;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Both a JSON and a TPF1 binary subscriber attached to the same daemon
/// each observe periodic telemetry snapshots and the ingest notification
/// for a run uploaded by a third client.
#[test]
fn mixed_protocol_subscribers_see_snapshots_and_ingests() {
    let dir = temp_dir("mixed");
    let config = ServeConfig {
        subscribe_interval: Duration::from_millis(60),
        ..ServeConfig::default()
    };
    let (handle, join) = spawn_server(&dir, config);
    let addr = handle.addr().to_string();

    let subscribers: Vec<_> = [WireProtocol::Json, WireProtocol::Binary]
        .into_iter()
        .map(|proto| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let client =
                    Client::connect_proto(&addr, proto, bounded_timeouts()).expect("connect");
                let (mut sub, granted) = client.subscribe(Some(60)).expect("subscribe");
                // The daemon clamps the push period to its reactor tick.
                assert!((50..=60).contains(&granted), "granted {granted}ms");
                let mut telemetry = 0u32;
                let mut ingest = None;
                for _ in 0..200 {
                    match sub.next_event().expect("next event") {
                        Notification::Telemetry { t_ns, stats } => {
                            assert!(t_ns > 0);
                            assert!(stats.service.subscriptions >= 1);
                            telemetry += 1;
                        }
                        event @ Notification::Ingest { .. } => ingest = Some(event),
                        Notification::Lagged { .. } => panic!("healthy subscriber lagged"),
                    }
                    if telemetry >= 2 && ingest.is_some() {
                        break;
                    }
                }
                assert!(telemetry >= 2, "{proto:?}: saw {telemetry} snapshots");
                match ingest.expect("no ingest notification observed") {
                    Notification::Ingest {
                        count,
                        benchmark,
                        threads,
                        bytes,
                        ..
                    } => {
                        assert_eq!(benchmark, "sub-bench");
                        assert_eq!(threads, 2);
                        assert_eq!(count, 1);
                        assert!(bytes > 0);
                    }
                    other => panic!("expected ingest, got {other:?}"),
                }
            })
        })
        .collect();

    // Hold the upload until both subscribers are attached so the
    // fan-out provably reaches them.
    let mut control = Client::connect(&addr).expect("connect control");
    let stats = wait_for_stats(&mut control, Duration::from_secs(5), |s| {
        s.service.subscriptions >= 2
    });
    assert!(stats.service.subscriptions >= 2, "{stats:?}");

    control
        .ingest_record(&Record::from_text(
            "sub-bench",
            2,
            Some(1),
            profile_text("sub", 1_000),
        ))
        .expect("ingest");

    for sub in subscribers {
        sub.join().expect("subscriber thread");
    }

    let stats = control.server_stats().expect("server stats");
    assert_eq!(stats.service.subscriptions, 2);
    assert!(stats.service.sub_events >= 6, "{:?}", stats.service);
    assert_eq!(stats.service.sub_lagged, 0);

    handle.stop();
    drop(control);
    join.join().expect("join").expect("run");
    drop(handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A subscriber that stops reading gets its events shed once its
/// bounded queue fills — ingest keeps flowing — and receives a typed
/// `lagged` notice when it recovers.
#[test]
fn stalled_subscriber_is_shed_and_told_about_it() {
    let dir = temp_dir("stall");
    let config = ServeConfig {
        subscribe_interval: Duration::from_millis(50),
        subscriber_queue_bytes: 1024,
        write_timeout: Some(Duration::from_secs(60)),
        ..ServeConfig::default()
    };
    let (handle, join) = spawn_server(&dir, config);
    let addr = handle.addr().to_string();

    let client = Client::connect_proto(&addr, WireProtocol::Json, bounded_timeouts())
        .expect("connect subscriber");
    let (mut sub, _) = client.subscribe(Some(50)).expect("subscribe");
    // Stall: stop reading. Pushes now pile into the socket buffers and
    // then the daemon-side queue, which is capped at 1 KiB.

    // A long benchmark name fattens each ingest notification so the
    // buffers between daemon and stalled reader fill quickly.
    let bench = format!("stall-bench-{}", "x".repeat(400));
    let text = profile_text("stall", 1_000);
    let mut control = Client::connect(&addr).expect("connect control");
    let mut sent = 0u64;
    let deadline = Instant::now() + Duration::from_secs(30);
    let stats = loop {
        for _ in 0..200 {
            control
                .ingest_record(&Record::from_text(&bench, 2, Some(sent), &text))
                .expect("ingest must not block on a stalled subscriber");
            sent += 1;
        }
        let stats = control.server_stats().expect("server stats");
        if stats.service.sub_lagged >= 1 || Instant::now() > deadline {
            break stats;
        }
    };
    assert!(
        stats.service.sub_lagged >= 1,
        "no shedding after {sent} ingests: {:?}",
        stats.service
    );
    assert_eq!(stats.service.ingests, sent, "ingest path degraded");

    // Recovery: drain the backlog; the first push after the gap is the
    // typed lagged notice.
    let mut lagged = None;
    for _ in 0..20_000 {
        match sub.next_event().expect("next event") {
            Notification::Lagged { dropped } => {
                lagged = Some(dropped);
                break;
            }
            _ => continue,
        }
    }
    let dropped = lagged.expect("no lagged notice after recovery");
    assert!(dropped >= 1, "lagged notice with dropped={dropped}");

    handle.stop();
    drop(sub);
    drop(control);
    join.join().expect("join").expect("run");
    drop(handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Windowed `QUERY regress` gates against recent history: a regression
/// relative to an aged-out (faster) baseline stops flagging once the
/// window excludes it, and a genuinely fresh regression still flags.
#[test]
fn windowed_regress_gates_on_recent_baseline() {
    let dir = temp_dir("window");
    let (handle, join) = spawn_server(&dir, ServeConfig::default());
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    // History: 8 fast runs, then 4 slow runs — the slow regime is the
    // accepted new normal.
    for ts in 1..=8u64 {
        client
            .ingest_record(&Record::from_text(
                "win-bench",
                2,
                Some(ts),
                profile_text("win", 1_000),
            ))
            .expect("ingest fast");
    }
    for ts in 9..=12u64 {
        client
            .ingest_record(&Record::from_text(
                "win-bench",
                2,
                Some(ts),
                profile_text("win", 10_000),
            ))
            .expect("ingest slow");
    }

    let candidate_normal = profile_text("win", 10_500);
    let candidate_bad = profile_text("win", 20_000);

    // Against the all-time mean (inflated by the aged-out fast runs) a
    // run at today's normal speed looks like a regression...
    let full = client
        .query_regress(
            "win-bench",
            2,
            ProfilePayload::Text(candidate_normal.clone()),
            None,
            None,
            None,
        )
        .expect("full-store regress");
    assert_eq!(full.baseline_runs, 12);
    assert!(full.regressed, "{full:?}");

    // ...but the recent-window baseline accepts it.
    let last4 = RunWindow {
        last: Some(4),
        since_ns: None,
    };
    let windowed = client
        .query_regress_window(
            "win-bench",
            2,
            ProfilePayload::Text(candidate_normal.clone()),
            None,
            None,
            None,
            last4,
        )
        .expect("windowed regress");
    assert_eq!(windowed.baseline_runs, 4);
    assert!(!windowed.regressed, "{windowed:?}");

    // A timestamp window selecting the same tail agrees.
    let since = RunWindow {
        last: None,
        since_ns: Some(9),
    };
    let since_report = client
        .query_regress_window(
            "win-bench",
            2,
            ProfilePayload::Text(candidate_normal),
            None,
            None,
            None,
            since,
        )
        .expect("since regress");
    assert_eq!(since_report.baseline_runs, 4);
    assert!(!since_report.regressed, "{since_report:?}");

    // A genuinely fresh regression still flags inside the window.
    let fresh = client
        .query_regress_window(
            "win-bench",
            2,
            ProfilePayload::Text(candidate_bad),
            None,
            None,
            None,
            last4,
        )
        .expect("fresh regress");
    assert_eq!(fresh.baseline_runs, 4);
    assert!(fresh.regressed, "{fresh:?}");

    handle.stop();
    drop(client);
    join.join().expect("join").expect("run");
    drop(handle);
    let _ = std::fs::remove_dir_all(&dir);
}
