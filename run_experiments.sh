#!/bin/bash
# Regenerate every table and figure of the paper (see DESIGN.md section 4).
# Results land in results/<name>.txt. Knobs: BENCH_SCALE, BENCH_THREADS, BENCH_REPS.
set -u
cd "$(dirname "$0")"
export BENCH_SCALE=${BENCH_SCALE:-small}
export BENCH_THREADS=${BENCH_THREADS:-1,2,4,8}
export BENCH_REPS=${BENCH_REPS:-2}
cargo build --release -p bench --bins 2>/dev/null
for exp in fig13 fig14 fig15 table1 table2 table3 table4 fig5_render ablation_assignment ablation_taskwait nqueens_case_study calibration; do
  echo "=== running $exp ==="
  ./target/release/$exp > results/$exp.txt 2>&1 && echo "    ok" || echo "    FAILED"
done
echo ALL_EXPERIMENTS_DONE
