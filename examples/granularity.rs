//! Task-granularity sweep: the core trade-off the paper's metrics exist
//! to expose.
//!
//! ```text
//! cargo run --release --example granularity
//! ```
//!
//! Runs the same total amount of work split into ever more, ever smaller
//! tasks, and reports — from the *profile*, the way a Score-P user would —
//! mean task size, total creation cost, scheduling-point time, and the
//! kernel wall time. Small tasks make the management share explode
//! (paper Section III: "if the tasks are too small, the task management
//! overhead may become larger than the gain").

use cube::{format_ns, region_excl_by_kind, task_stats, AggProfile};
use pomp::RegionKind;
use std::time::Instant;
use taskprof_session::MeasurementSession;
use taskrt::{SingleConstruct, TaskConstruct};

fn busy_work(units: u64) -> u64 {
    let mut acc = 0u64;
    for i in 0..units {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    std::hint::black_box(acc)
}

fn main() {
    let single = SingleConstruct::new("granularity!single");
    let task = TaskConstruct::new("granularity_chunk");
    let total_work: u64 = 1 << 24; // constant total, varying split
    let threads = 4;

    println!("constant total work, split into N tasks ({threads} threads):\n");
    println!(
        "{:>8}  {:>10}  {:>10}  {:>10}  {:>12}  {:>10}",
        "tasks", "mean size", "create", "sched pts", "kernel", "mgmt share"
    );
    for exp in [4u32, 6, 8, 10, 12, 14, 16] {
        let ntasks = 1u64 << exp;
        let per_task = total_work / ntasks;
        let session = MeasurementSession::builder("granularity")
            .threads(threads)
            .build()
            .expect("default session configuration is valid");
        let start = Instant::now();
        session.run(|ctx| {
            ctx.single(&single, |ctx| {
                for _ in 0..ntasks {
                    ctx.task(&task, move |_| {
                        busy_work(per_task);
                    });
                }
            });
        });
        let kernel = start.elapsed();
        let prof = AggProfile::from_profile(&session.finish().profile);
        let stats = &task_stats(&prof)[0];
        let create_ns = region_excl_by_kind(&prof, RegionKind::TaskCreate).max(0) as u64;
        let sched_ns = (region_excl_by_kind(&prof, RegionKind::ImplicitBarrier)
            + region_excl_by_kind(&prof, RegionKind::Taskwait))
        .max(0) as u64;
        let useful: u64 = stats.sum_ns;
        let mgmt = create_ns + sched_ns;
        println!(
            "{:>8}  {:>10}  {:>10}  {:>10}  {:>12?}  {:>9.1}%",
            ntasks,
            format_ns(stats.mean_ns as u64),
            format_ns(create_ns),
            format_ns(sched_ns),
            kernel,
            100.0 * mgmt as f64 / (mgmt + useful).max(1) as f64,
        );
    }
    println!();
    println!("expected shape: as tasks shrink, creation + scheduling-point time grow");
    println!("until they dominate — the profile pinpoints the crossover.");
}
