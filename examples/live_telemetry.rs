//! Live telemetry: watch a measurement session from the outside while it
//! runs, then export the counters for a monitoring stack.
//!
//! ```text
//! cargo run --release --example live_telemetry
//! ```
//!
//! A watcher thread polls the session's lock-free gauges (task lifecycle,
//! live instance trees, perturbation estimate) while `nqueens` executes;
//! afterwards the final counters are printed as a dashboard, as
//! Prometheus text exposition (what a `/metrics` endpoint would serve),
//! and as one JSON line. The example asserts the exports parse back, so
//! it doubles as the CI smoke test for the telemetry pipeline.

use bots::{run_app, AppId, RunOpts, Scale};
use cube::render_telemetry;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use taskprof_session::MeasurementSession;
use taskprof_telemetry::{parse_jsonl_line, parse_prometheus};

fn main() {
    let threads = 4;
    let session = MeasurementSession::builder("live-telemetry")
        .threads(threads)
        .telemetry()
        .build()
        .expect("default session configuration is valid");
    let telemetry = session
        .telemetry()
        .expect("telemetry was enabled on the builder");

    // --- Poll the gauges from a watcher thread while the kernel runs. ---
    let done = AtomicBool::new(false);
    let out = std::thread::scope(|s| {
        let watcher_telemetry = telemetry.clone();
        let done = &done;
        let watcher = s.spawn(move || {
            let mut polls = 0u32;
            let mut peak_in_flight = 0u64;
            while !done.load(Ordering::Acquire) {
                let snap = watcher_telemetry.snapshot();
                peak_in_flight = peak_in_flight.max(snap.tasks_in_flight());
                polls += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
            (polls, peak_in_flight)
        });
        let out = run_app(
            AppId::Nqueens,
            session.monitor(),
            &RunOpts::new(threads).scale(Scale::Small),
        );
        done.store(true, Ordering::Release);
        let (polls, peak) = watcher.join().expect("watcher thread");
        println!("watcher: {polls} polls during the run, peak tasks in flight {peak}");
        out
    });
    assert!(out.verified, "nqueens must verify");

    // --- Final counters: human dashboard. ---
    let elapsed = telemetry.elapsed_ns();
    let snapshot = telemetry.snapshot();
    print!("{}", render_telemetry(&snapshot, Some(elapsed)));

    // --- Prometheus text exposition, as a /metrics endpoint would serve. ---
    let prom = telemetry.prometheus();
    let samples = parse_prometheus(&prom).expect("own Prometheus output parses");
    assert!(!samples.is_empty(), "Prometheus export must not be empty");
    let created = samples
        .iter()
        .find(|p| p.name == "taskprof_tasks_created_total")
        .expect("task counter exported");
    assert!(created.value > 0.0, "nqueens creates tasks");
    println!(
        "\nPrometheus export: {} samples, {} bytes (e.g. taskprof_tasks_created_total {})",
        samples.len(),
        prom.len(),
        created.value
    );

    // --- JSONL time-series line, as a log shipper would collect. ---
    let line = telemetry.jsonl_line();
    let (t_ns, parsed) = parse_jsonl_line(&line).expect("own JSONL output parses");
    assert_eq!(parsed.tasks_created, snapshot.tasks_created);
    println!("JSONL point at t={t_ns}ns: {} bytes", line.len());

    // --- The live gauges agree with the post-mortem report. ---
    let report = session.finish();
    let final_telemetry = report.telemetry.expect("telemetry-enabled session");
    assert_eq!(
        final_telemetry.live_trees_hwm,
        report.profile.max_live_trees() as u64,
        "telemetry high-water mark matches the profile's Table II bound"
    );
    assert_eq!(final_telemetry.live_trees, 0, "all trees retired at finish");
    println!(
        "final check: telemetry HWM {} == profile max_live_trees {}",
        final_telemetry.live_trees_hwm,
        report.profile.max_live_trees()
    );
    println!("LIVE_TELEMETRY_OK");
}
