//! Trace-based management/waiting analysis — the paper's Section VII
//! future work, running against a real workload.
//!
//! ```text
//! cargo run --release --example trace_analysis
//! ```
//!
//! Attaches the profiler *and* the tracer to the same run (the pair
//! monitor), then answers the question the profile alone cannot: of the
//! time threads spend inside scheduling points, how much passes before
//! the first task switch (management), how much executes tasks, and how
//! much is residual waiting? Also reports creation-to-start queue
//! latencies per task construct.

use bots::{run_app, AppId, RunOpts, Scale};
use cube::{format_ns, AggProfile};
use std::collections::HashMap;
use taskprof_session::MeasurementSession;
use taskprof_trace::{analyze, TraceMonitor};

fn main() {
    let tracer = TraceMonitor::new();
    let session = MeasurementSession::builder("trace-analysis")
        .threads(4)
        .build()
        .expect("default session configuration is valid")
        .observed_by(&tracer);
    let opts = RunOpts::new(4).scale(Scale::Small);
    let out = run_app(AppId::SparseLu, session.monitor(), &opts);
    assert!(out.verified);
    println!("sparselu, 4 threads, kernel {:?}\n", out.kernel);

    // What the profile can say: barrier/taskwait time minus stub time.
    let agg = AggProfile::from_profile(&session.finish().profile);
    let sched_excl = cube::region_excl_by_kind(&agg, pomp::RegionKind::ImplicitBarrier)
        + cube::region_excl_by_kind(&agg, pomp::RegionKind::Taskwait);
    println!(
        "profile view : {} of scheduling-point time is NOT task execution",
        format_ns(sched_excl.max(0) as u64)
    );
    println!("               ...but it cannot tell management from waiting.\n");

    // What the trace adds.
    let trace = tracer.take_trace();
    let a = analyze(&trace);
    println!("trace view   ({} events):", trace.len());
    for b in &a.by_kind {
        let waiting = b.dwell_ns.saturating_sub(b.task_exec_ns + b.pre_switch_ns);
        println!(
            "  {:<9} dwell {:>10}  = exec {:>10} + pre-switch (mgmt) {:>10} + waiting {:>10}",
            b.kind.label(),
            format_ns(b.dwell_ns),
            format_ns(b.task_exec_ns),
            format_ns(b.pre_switch_ns),
            format_ns(waiting),
        );
    }
    println!(
        "\n  management/work ratio: {:.3}   task switches: {}",
        a.management_to_work_ratio, a.switches
    );

    // Queue latency per construct.
    let mut by_region: HashMap<&str, (u64, u64)> = HashMap::new();
    let reg = pomp::registry();
    let names: HashMap<pomp::RegionId, String> = a
        .instances
        .iter()
        .map(|i| (i.region, reg.name(i.region)))
        .collect();
    for i in &a.instances {
        if let Some(q) = i.queue_ns {
            let e = by_region.entry(names[&i.region].as_str()).or_insert((0, 0));
            e.0 += q;
            e.1 += 1;
        }
    }
    println!("\n  creation-to-start queue latency (mean):");
    let mut rows: Vec<_> = by_region.into_iter().collect();
    rows.sort();
    for (name, (sum, n)) in rows {
        println!("    {:<16} {:>10}  ({n} instances)", name, format_ns(sum / n.max(1)));
    }
}
