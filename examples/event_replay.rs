//! Replay the paper's event-stream figures deterministically.
//!
//! ```text
//! cargo run --example event_replay
//! ```
//!
//! The paper explains its algorithm with hand-drawn event streams
//! (Figs. 1, 2, 4) and a CUBE screenshot (Fig. 5). This example feeds the
//! same streams through the profiler under virtual time and renders the
//! resulting profiles, numbers and all — no threads, no runtime, fully
//! reproducible.

#![allow(clippy::disallowed_names)] // `foo` is the paper's own function name

use cube::{render_profile, AggProfile, RenderOpts};
use pomp::{registry, RegionKind, TaskIdAllocator, TaskRef};
use taskprof::{replay, AssignPolicy, Event, Profile};

fn reg(name: &str, kind: RegionKind) -> pomp::RegionId {
    registry().register(name, kind, file!(), line!())
}

fn show(title: &str, snap: taskprof::ThreadSnapshot) {
    println!("--- {title} ---");
    let p = AggProfile::from_profile(&Profile { threads: vec![snap] });
    println!("{}", render_profile(&p, &RenderOpts::default()));
}

/// Fig. 1: a plain nested stream — tasks change nothing for task-free
/// code.
fn fig1() {
    let main_r = reg("main", RegionKind::Parallel);
    let foo = reg("foo", RegionKind::Function);
    let bar = reg("bar", RegionKind::Function);
    let snap = replay(
        main_r,
        AssignPolicy::Executing,
        [
            Event::Advance(5),
            Event::Enter(foo),
            Event::Advance(20),
            Event::Exit(foo),
            Event::Advance(5),
            Event::Enter(bar),
            Event::Advance(10),
            Event::Exit(bar),
            Event::Advance(5),
        ],
    );
    show("Fig. 1 — nested enter/exit events translate directly", snap);
}

/// Fig. 2 + Fig. 4: two instances of one task construct interleave inside
/// `foo()`, suspending at a taskwait; instance tracking untangles the
/// exits that are indistinguishable by region alone.
fn fig2_and_4() {
    let par = reg("main", RegionKind::Parallel);
    let barrier = reg("main!ibarrier", RegionKind::ImplicitBarrier);
    let task = reg("task", RegionKind::Task);
    let foo = reg("foo", RegionKind::Function);
    let tw = reg("task!taskwait", RegionKind::Taskwait);
    let ids = TaskIdAllocator::new();
    let (t1, t2) = (ids.alloc(), ids.alloc());
    let snap = replay(
        par,
        AssignPolicy::Executing,
        [
            Event::Enter(barrier),
            Event::TaskBegin { region: task, id: t1 },
            Event::Advance(10),
            Event::Enter(foo), // task1 enters foo
            Event::Advance(10),
            Event::Enter(tw), // suspension point inside foo
            Event::Advance(2),
            Event::TaskBegin { region: task, id: t2 }, // task1 suspended
            Event::Advance(5),
            Event::Enter(foo), // task2 enters foo too
            Event::Advance(15),
            Event::Exit(foo), // belongs to task2's foo
            Event::Advance(5),
            Event::TaskEnd { region: task, id: t2 },
            Event::Switch(TaskRef::Explicit(t1)), // task1 resumes
            Event::Advance(3),
            Event::Exit(tw),
            Event::Advance(5),
            Event::Exit(foo), // belongs to task1's foo
            Event::Advance(2),
            Event::TaskEnd { region: task, id: t1 },
            Event::Exit(barrier),
        ],
    );
    show(
        "Figs. 2 & 4 — interleaved fragments, correctly attributed per instance",
        snap,
    );
    println!("note: 'task' has 2 instances with different inclusive times (suspension");
    println!("subtracted); the barrier's stub counts 3 executed fragments.\n");
}

/// Fig. 5: the stub-node split, with the screenshot's headline numbers
/// (113 s task execution inside the barrier, 103 s remaining).
fn fig5() {
    let par = reg("parallel", RegionKind::Parallel);
    let barrier = reg("parallel!ibarrier", RegionKind::ImplicitBarrier);
    let task0 = reg("task0", RegionKind::Task);
    let create = reg("task0!create", RegionKind::TaskCreate);
    let ids = TaskIdAllocator::new();
    let s = 1_000_000_000u64; // 1 second in ns
    let first = ids.alloc();
    let mut events = vec![
        Event::Advance(2 * s),
        Event::CreateBegin { create, task_region: task0, id: first },
        Event::Advance(s / 2),
        Event::CreateEnd { create, id: first },
        Event::Enter(barrier),
        Event::TaskBegin { region: task0, id: first },
        Event::Advance(30 * s - 7 * s),
        Event::TaskEnd { region: task0, id: first },
    ];
    // Three more instances executing inside the barrier (113 s of task
    // work in total), each spending part of its time creating new tasks.
    for (dur, create_dur) in [(30u64, 7u64), (30, 7), (30, 8)] {
        let id = ids.alloc();
        let nested = ids.alloc();
        events.extend([
            Event::TaskBegin { region: task0, id },
            Event::Advance((dur - create_dur) * s / 2),
            Event::CreateBegin { create, task_region: task0, id: nested },
            Event::Advance(create_dur * s),
            Event::CreateEnd { create, id: nested },
            Event::Advance((dur - create_dur) * s / 2),
            Event::TaskEnd { region: task0, id },
        ]);
    }
    events.push(Event::Advance(103 * s)); // management / idle remainder
    events.push(Event::Exit(barrier));
    let snap = replay(par, AssignPolicy::Executing, events);
    show("Fig. 5 — stub node splits barrier time into task work vs. idle", snap);
    println!("matches the screenshot: 113 s of task execution inside the barrier,");
    println!("103 s left as the barrier's exclusive time; the task tree shows the");
    println!("tasks' own creation time.\n");
}

fn main() {
    fig1();
    fig2_and_4();
    fig5();
}
