//! Panic recovery: one task in a fan-out fails, the measurement run
//! survives and reports it.
//!
//! ```text
//! cargo run --release --example panic_recovery
//! ```
//!
//! Demonstrates the fault-tolerance stack end to end: the runtime
//! contains the panic at the task boundary (`ParallelOutcome`), the
//! profiler tags the aborted instance but keeps its observed time, and
//! the renderer surfaces the aborted count alongside the ordinary
//! statistics. With `ValidatingMonitor` in front, a clean run also
//! demonstrates zero stream diagnostics.
//!
//! (The panic backtrace on stderr is the standard panic hook firing
//! before the runtime contains the unwind — exactly what a real
//! application would log.)

use cube::{render_profile, AggProfile, RenderOpts};
use std::sync::atomic::{AtomicU64, Ordering};
use taskprof_session::MeasurementSession;
use taskrt::{taskwait_region, SingleConstruct, TaskConstruct};

fn busy_work(units: u64) -> u64 {
    let mut acc = 0u64;
    for i in 0..units * 1000 {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    std::hint::black_box(acc)
}

fn main() {
    let single = SingleConstruct::new("recovery!single");
    let work = TaskConstruct::new("work");
    let tw = taskwait_region("recovery!taskwait");

    // The validator sits between runtime and profiler; on this correct
    // runtime it stays silent, but it would shield the profiler from a
    // buggy instrumentation layer. `.validated()` stacks it statically —
    // no dynamic dispatch on the event path.
    let session = MeasurementSession::builder("recovery")
        .threads(4)
        .build()
        .expect("default session configuration is valid")
        .validated();
    let done = AtomicU64::new(0);
    let done = &done;

    let outcome = session.run(|ctx| {
        ctx.single(&single, |ctx| {
            for i in 0..32u64 {
                ctx.task(&work, move |_| {
                    busy_work(20 + i);
                    // One instance hits a bug...
                    assert!(i != 13, "task {i} tripped an internal assertion");
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
            ctx.taskwait(tw); // ...yet this never deadlocks.
        });
    });

    // 1. The runtime reports the failure without losing the region.
    println!("parallel region completed: ok = {}", outcome.is_ok());
    println!("failed task instances:     {}", outcome.failed_tasks());
    if let Some(msg) = outcome.panic_message() {
        println!("first panic:               {msg}");
    }
    println!(
        "healthy siblings finished: {}/31\n",
        done.load(Ordering::Relaxed)
    );

    // 2. The profile still exists; the aborted instance is tagged, its
    //    time up to the panic retained ("aborted 1" on the task tree).
    let report = session.finish();
    let agg = AggProfile::from_profile(&report.profile);
    println!("{}", render_profile(&agg, &RenderOpts::default()));

    // 3. The stream validator saw a perfectly formed event stream: the
    //    runtime converts the panic into a legal task_abort event.
    println!("stream diagnostics: {}", report.diagnostics.len());
    for d in &report.diagnostics {
        println!("  {d}");
    }

    assert!(!outcome.is_ok() && outcome.failed_tasks() == 1);
    assert_eq!(report.profile.aborted_instances(), 1);
    assert!(report.is_clean());
}
