//! The paper's Section VI analysis workflow as a library user would run
//! it: profile `nqueens`, diagnose the granularity problem, verify the
//! fix.
//!
//! ```text
//! cargo run --release --example nqueens_analysis
//! ```

use bots::{nqueens, run_app, AppId, RunOpts, Scale, Variant};
use cube::{format_ns, param_table, region_excl_by_name, task_stats, AggProfile};
use pomp::{registry, NullMonitor, RegionKind};
use taskprof::NodeKind;
use taskprof_session::MeasurementSession;

fn main() {
    let threads = 4;
    let scale = Scale::Small;

    // --- 1. Something is wrong: the task version doesn't get faster. ---
    println!("1) uninstrumented kernel times (no cut-off):");
    for t in [1, threads] {
        let out = run_app(
            AppId::Nqueens,
            &NullMonitor,
            &RunOpts::new(t).scale(scale),
        );
        println!("   {t} threads: {:?}", out.kernel);
    }

    // --- 2. Profile it. ---
    let session = MeasurementSession::builder("nqueens-analysis")
        .threads(threads)
        .build()
        .expect("default session configuration is valid");
    let out = run_app(
        AppId::Nqueens,
        session.monitor(),
        &RunOpts::new(threads).scale(scale).with_depth_param(),
    );
    assert!(out.verified);
    let prof = AggProfile::from_profile(&session.finish().profile);

    let stats = &task_stats(&prof)[0];
    println!("\n2) the profile says:");
    println!("   task instances        : {}", stats.instances);
    println!("   mean inclusive time   : {}", format_ns(stats.mean_ns as u64));
    let create = region_excl_by_name(&prof, "nqueens!create") as f64;
    let task_excl = region_excl_by_name(&prof, "nqueens") as f64;
    println!(
        "   mean exclusive work   : {}",
        format_ns((task_excl / stats.instances as f64) as u64)
    );
    println!(
        "   mean creation cost    : {}  <-- creating a task costs more than it does!",
        format_ns((create / stats.instances as f64) as u64)
    );

    // --- 3. Where are the too-small tasks? The depth parameter knows. ---
    let task_region = registry().lookup("nqueens", RegionKind::Task).unwrap();
    let tree = prof
        .task_trees
        .iter()
        .find(|t| t.kind == NodeKind::Region(task_region))
        .unwrap();
    println!("\n3) per-recursion-level statistics (paper Table IV):");
    println!("   level   mean       sum          tasks");
    for (level, s) in param_table(tree, nqueens::depth_param()) {
        println!(
            "   {:>5}   {:>8}   {:>10}   {:>8}",
            level,
            format_ns(s.mean_ns() as u64),
            format_ns(s.sum_ns),
            s.samples
        );
    }
    println!("   -> shallow levels: few, large tasks. deep levels: millions of tiny ones.");

    // --- 4. The fix: stop creating tasks below level 3. ---
    println!("\n4) with the cut-off at level {}:", nqueens::CUTOFF_ROW);
    for t in [1, threads] {
        let out = run_app(
            AppId::Nqueens,
            &NullMonitor,
            &RunOpts::new(t).scale(scale).variant(Variant::Cutoff),
        );
        println!("   {t} threads: {:?}", out.kernel);
    }
    println!("   (paper: 187 s -> 11.5 s at 4 threads)");
}
