//! Untied-task migration through the profiler (paper Section IV-D).
//!
//! ```text
//! cargo run --example untied_migration
//! ```
//!
//! The 2012 OpenMP runtimes provided no hooks for untied-task switches,
//! so the paper's tool forces every task tied — but Section IV-D1 argues
//! the algorithm itself handles migration: "if a task migrates, the
//! pointer to the task-specific data migrates together with the task".
//! This example plays the hypothetical event stream of a migrating task
//! through a two-thread replay and shows that the statistics follow the
//! task while each thread's stub records its own fragment.

use cube::{render_profile, AggProfile, RenderOpts};
use pomp::{registry, RegionKind, TaskIdAllocator, TaskRef};
use taskprof::{AssignPolicy, Event, TeamReplayer};

fn main() {
    let reg = registry();
    let par = reg.register("untied!parallel", RegionKind::Parallel, file!(), line!());
    let barrier = reg.register("untied!ibarrier", RegionKind::ImplicitBarrier, file!(), line!());
    let task = reg.register("untied_task", RegionKind::Task, file!(), line!());
    let phase1 = reg.register("phase1", RegionKind::Function, file!(), line!());
    let phase2 = reg.register("phase2", RegionKind::Function, file!(), line!());
    let ids = TaskIdAllocator::new();
    let id = ids.alloc();
    let us = 1_000u64;

    let mut team = TeamReplayer::new(2, par, AssignPolicy::Executing);
    team.apply(0, Event::Enter(barrier))
        .apply(1, Event::Enter(barrier))
        // Thread 0 runs the first 300 µs of the task (phase1)...
        .apply(0, Event::TaskBegin { region: task, id })
        .apply(0, Event::Enter(phase1))
        .advance(300 * us)
        .apply(0, Event::Exit(phase1))
        .apply(0, Event::Enter(phase2))
        .advance(50 * us)
        // ...and the untied task is interrupted mid-phase2.
        .apply(0, Event::Switch(TaskRef::Implicit));
    println!(
        "before migration: thread 0 holds {} live instance tree(s)",
        team.thread(0).live_instance_trees()
    );
    team.migrate(id, 0, 1);
    println!(
        "after migration : thread 0 holds {}, thread 1 holds {}",
        team.thread(0).live_instance_trees(),
        team.thread(1).live_instance_trees()
    );
    // Thread 1 resumes inside phase2 and completes the task.
    team.advance(10 * us)
        .apply(1, Event::Switch(TaskRef::Explicit(id)))
        .advance(150 * us)
        .apply(1, Event::Exit(phase2))
        .apply(1, Event::TaskEnd { region: task, id })
        .apply(0, Event::Exit(barrier))
        .apply(1, Event::Exit(barrier));

    let profile = team.finish();
    let agg = AggProfile::from_profile(&profile);
    println!("\n{}", render_profile(&agg, &RenderOpts::default()));
    println!("what to notice:");
    println!(" * the task tree reports ONE instance of 500 µs — phase1 300 µs on thread 0,");
    println!("   phase2 50 µs + 150 µs across the migration, with the 10 µs gap excluded;");
    println!(" * each thread's barrier stub holds only its own fragment (350 µs / 150 µs),");
    println!("   so per-thread imbalance data stays truthful.");
}
