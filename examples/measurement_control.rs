//! Controlling measurement cost and profile size: region filtering and
//! the call-path depth limit — Score-P's standard knobs, applied to the
//! pathological deep-recursion case.
//!
//! ```text
//! cargo run --release --example measurement_control
//! ```

use bots::{run_app, AppId, RunOpts, Scale};
use cube::AggProfile;
use pomp::{registry, RegionId, RegionKind};
use taskprof::{calibrate, NodeKind};
use taskprof_session::MeasurementSession;

fn profile_size(p: &taskprof::Profile) -> usize {
    p.threads
        .iter()
        .map(|t| t.main.size() + t.task_trees.iter().map(|tt| tt.size()).sum::<usize>())
        .sum()
}

fn main() {
    let opts = RunOpts::new(2).scale(Scale::Small);

    // 0. What does an event cost here? (Score-P prints this, too.)
    let c = calibrate();
    println!(
        "per-event costs: clock {:.0} ns, enter/exit {:.0} ns, task cycle {:.0} ns\n",
        c.clock_read_ns, c.enter_exit_ns, c.task_cycle_ns
    );

    // 1. Full measurement.
    let full = MeasurementSession::builder("mc!full")
        .threads(opts.threads)
        .build()
        .expect("default session configuration is valid");
    let out = run_app(AppId::Fib, full.monitor(), &opts);
    let p_full = full.finish().profile;
    println!(
        "full measurement      : kernel {:?}, profile nodes {}",
        out.kernel,
        profile_size(&p_full)
    );

    // 2. Runtime filtering: drop fib's taskwait events (its highest-
    //    frequency region after creation) with the session's `filtered`
    //    combinator.
    let filtered = MeasurementSession::builder("mc!filtered")
        .threads(opts.threads)
        .build()
        .expect("default session configuration is valid")
        .filtered(|r: RegionId| registry().kind(r) != RegionKind::Taskwait);
    let out = run_app(AppId::Fib, filtered.monitor(), &opts);
    let p_filtered = filtered.finish().profile;
    println!(
        "filtered (no taskwait): kernel {:?}, profile nodes {}",
        out.kernel,
        profile_size(&p_filtered)
    );

    // The task statistics of interest survive filtering.
    for (name, p) in [("full", &p_full), ("filtered", &p_filtered)] {
        let agg = AggProfile::from_profile(p);
        let stats = &cube::task_stats(&agg)[0];
        println!(
            "  {name:<9} fib instances {} mean {:.2} µs",
            stats.instances,
            stats.mean_ns / 1e3
        );
    }

    // 3. Depth limit. Note: fib does NOT need it — the paper's design
    //    records every task instance as an independent tree, so dynamic
    //    task nesting never deepens any single call path (Section IV-B3's
    //    whole point). What explodes call paths is deep *serial* recursion
    //    inside one task, which is what we demo here.
    println!("\ndeep serial recursion inside one task, with and without a depth limit:");
    let single = taskrt::SingleConstruct::new("mc!single");
    let level = pomp::region!("mc_level", RegionKind::Function);
    fn deep<M: pomp::Monitor>(ctx: &taskrt::TaskCtx<'_, '_, M>, r: RegionId, depth: u32) {
        if depth == 0 {
            std::hint::black_box(());
            return;
        }
        ctx.region(r, |ctx| deep(ctx, r, depth - 1));
    }
    for (name, depth_limit) in [("unlimited", None), ("depth ≤ 8", Some(8))] {
        let mut builder = MeasurementSession::builder("mc!parallel").threads(1);
        if let Some(d) = depth_limit {
            builder = builder.max_depth(d);
        }
        let session = builder.build().expect("configured before any region");
        session.run(|ctx| {
            ctx.single(&single, |ctx| deep(ctx, level, 500));
        });
        let p = session.finish().profile;
        let mut truncated = 0u64;
        p.threads[0].main.walk(&mut |_, n| {
            if n.kind == NodeKind::Truncated {
                truncated += n.stats.visits;
            }
        });
        println!(
            "  {name:<10} profile nodes {:>4}, collapsed enters {truncated}",
            profile_size(&p)
        );
    }
}
