//! Compare profiles of runs with different thread counts — the paper's
//! Section VI methodology ("comparison of profiles of instrumented runs
//! with different numbers of threads shows...").
//!
//! ```text
//! cargo run --release --example profile_diff
//! ```

use bots::{run_app, AppId, RunOpts, Scale};
use cube::{diff_profiles, format_ns, AggProfile};
use taskprof_session::MeasurementSession;

fn profile_at(threads: usize) -> AggProfile {
    let session = MeasurementSession::builder("profile-diff")
        .threads(threads)
        .build()
        .expect("default session configuration is valid");
    let out = run_app(
        AppId::Nqueens,
        session.monitor(),
        &RunOpts::new(threads).scale(Scale::Small),
    );
    assert!(out.verified);
    AggProfile::from_profile(&session.finish().profile)
}

fn main() {
    let a = profile_at(1);
    let b = profile_at(4);
    println!("nqueens (no cut-off): 1-thread profile vs 4-thread profile");
    println!("biggest inclusive-time changes (B = 4 threads, A = 1 thread):\n");
    println!(
        "{:>12} {:>12} {:>8}  path",
        "A incl", "B incl", "ratio"
    );
    for row in diff_profiles(&a, &b).into_iter().take(12) {
        println!(
            "{:>12} {:>12} {:>8}  {}",
            format_ns(row.a_incl_ns),
            format_ns(row.b_incl_ns),
            row.ratio()
                .map(|r| format!("{r:.2}x"))
                .unwrap_or_else(|| "new".into()),
            row.path
        );
    }
    println!();
    println!("the paper's reading: the task region's own time varies little, while");
    println!("creation / taskwait / barrier paths blow up with threads -> the runtime's");
    println!("task management, not the useful work, is what scales badly.");
}
