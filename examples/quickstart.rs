//! Quickstart: profile a small task-parallel program and print its
//! call-path profile.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Demonstrates the full stack through the one front door: a
//! [`MeasurementSession`] assembles the `taskrt` tied-task runtime and the
//! sharded `taskprof` profiler; `cube` renders the resulting profile.

use cube::{render_profile, AggProfile, RenderOpts};
use std::sync::atomic::{AtomicU64, Ordering};
use taskprof_session::MeasurementSession;
use taskrt::{taskwait_region, SingleConstruct, TaskConstruct};

fn busy_work(units: u64) -> u64 {
    // Deterministic spin so tasks have measurable, size-controlled bodies.
    let mut acc = 0u64;
    for i in 0..units * 1000 {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    std::hint::black_box(acc)
}

fn main() {
    // 1. Register the constructs (what OPARI2 generates from pragmas).
    //    The session registers its own parallel construct under the name
    //    it is built with.
    let single = SingleConstruct::new("quickstart!single");
    let chunk = TaskConstruct::new("chunk");
    let reduce = TaskConstruct::new("reduce");
    let tw = taskwait_region("quickstart!taskwait");

    // 2. Build a measurement session and run a parallel region with tasks.
    let session = MeasurementSession::builder("quickstart")
        .threads(4)
        .build()
        .expect("default session configuration is valid");
    let total = AtomicU64::new(0);
    session.run(|ctx| {
        ctx.single(&single, |ctx| {
            // Fan out 32 "chunk" tasks ...
            for i in 0..32u64 {
                let total = &total;
                ctx.task(&chunk, move |ctx| {
                    let v = busy_work(50 + i);
                    // ... each spawning a nested "reduce" task.
                    ctx.task(&reduce, move |_| {
                        total.fetch_add(v % 1000, Ordering::Relaxed);
                    });
                    ctx.taskwait(tw);
                });
            }
        });
    });

    // 3. Aggregate and render (the paper's Fig. 5 view).
    let profile = AggProfile::from_profile(&session.finish().profile);
    println!("{}", render_profile(&profile, &RenderOpts::default()));
    println!("checksum: {}", total.load(Ordering::Relaxed));
    println!();
    println!("How to read this:");
    println!(" * the main tree shows each scheduling point (single barrier, implicit");
    println!("   barrier) with a 'stub' child = time spent executing tasks there;");
    println!(" * the task trees beside it aggregate all instances of each construct,");
    println!("   with min/mean/max instance times for granularity analysis.");
}
