//! Quickstart: profile a small task-parallel program and print its
//! call-path profile.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Demonstrates the full stack: the `taskrt` tied-task runtime, the
//! `taskprof` profiler attached through the `pomp` hook interface, and the
//! `cube` profile renderer.

use cube::{render_profile, AggProfile, RenderOpts};
use std::sync::atomic::{AtomicU64, Ordering};
use taskprof::ProfMonitor;
use taskrt::{taskwait_region, ParallelConstruct, SingleConstruct, TaskConstruct, Team};

fn busy_work(units: u64) -> u64 {
    // Deterministic spin so tasks have measurable, size-controlled bodies.
    let mut acc = 0u64;
    for i in 0..units * 1000 {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    std::hint::black_box(acc)
}

fn main() {
    // 1. Register the constructs (what OPARI2 generates from pragmas).
    let par = ParallelConstruct::new("quickstart");
    let single = SingleConstruct::new("quickstart!single");
    let chunk = TaskConstruct::new("chunk");
    let reduce = TaskConstruct::new("reduce");
    let tw = taskwait_region("quickstart!taskwait");

    // 2. Attach a profiler and run a parallel region with tasks.
    let monitor = ProfMonitor::new();
    let total = AtomicU64::new(0);
    Team::new(4).parallel(&monitor, &par, |ctx| {
        ctx.single(&single, |ctx| {
            // Fan out 32 "chunk" tasks ...
            for i in 0..32u64 {
                let total = &total;
                ctx.task(&chunk, move |ctx| {
                    let v = busy_work(50 + i);
                    // ... each spawning a nested "reduce" task.
                    ctx.task(&reduce, move |_| {
                        total.fetch_add(v % 1000, Ordering::Relaxed);
                    });
                    ctx.taskwait(tw);
                });
            }
        });
    });

    // 3. Aggregate and render (the paper's Fig. 5 view).
    let profile = AggProfile::from_profile(&monitor.take_profile());
    println!("{}", render_profile(&profile, &RenderOpts::default()));
    println!("checksum: {}", total.load(Ordering::Relaxed));
    println!();
    println!("How to read this:");
    println!(" * the main tree shows each scheduling point (single barrier, implicit");
    println!("   barrier) with a 'stub' child = time spent executing tasks there;");
    println!(" * the task trees beside it aggregate all instances of each construct,");
    println!("   with min/mean/max instance times for granularity analysis.");
}
