//! Offline stand-in for the `crossbeam-deque` crate.
//!
//! Implements the `Worker` / `Stealer` / `Injector` API the task runtime
//! uses, backed by mutex-protected `VecDeque`s instead of lock-free
//! Chase-Lev deques. Correctness (LIFO owner pops, FIFO steals from the
//! opposite end, batch transfer from the injector) is preserved; the
//! lock-free performance characteristics are not, which is acceptable for
//! an offline build where the alternative is not compiling at all.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Result of a steal attempt.
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// One item was stolen.
    Success(T),
    /// A race was lost; retrying may succeed. (The locked implementation
    /// never produces this, but callers match on it.)
    Retry,
}

impl<T> Steal<T> {
    /// Whether the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// The stolen item, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }
}

#[derive(Debug)]
struct Queue<T>(Mutex<VecDeque<T>>);

impl<T> Queue<T> {
    fn new() -> Self {
        Self(Mutex::new(VecDeque::new()))
    }

    fn guard(&self) -> MutexGuard<'_, VecDeque<T>> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The owning end of a work-stealing deque.
#[derive(Debug)]
pub struct Worker<T> {
    q: Arc<Queue<T>>,
    lifo: bool,
}

impl<T> Worker<T> {
    /// New deque whose owner pops most-recently-pushed first.
    pub fn new_lifo() -> Self {
        Self {
            q: Arc::new(Queue::new()),
            lifo: true,
        }
    }

    /// New deque whose owner pops in push order.
    pub fn new_fifo() -> Self {
        Self {
            q: Arc::new(Queue::new()),
            lifo: false,
        }
    }

    /// Push onto the owner's end.
    pub fn push(&self, task: T) {
        self.q.guard().push_back(task);
    }

    /// Pop from the owner's end.
    pub fn pop(&self) -> Option<T> {
        let mut q = self.q.guard();
        if self.lifo {
            q.pop_back()
        } else {
            q.pop_front()
        }
    }

    /// A handle other threads can steal through.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer { q: self.q.clone() }
    }

    /// Whether the deque is currently empty.
    pub fn is_empty(&self) -> bool {
        self.q.guard().is_empty()
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.q.guard().len()
    }
}

/// Stealing handle of a [`Worker`] deque; steals oldest-first.
#[derive(Debug)]
pub struct Stealer<T> {
    q: Arc<Queue<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Self { q: self.q.clone() }
    }
}

impl<T> Stealer<T> {
    /// Steal one item from the cold end of the deque.
    pub fn steal(&self) -> Steal<T> {
        match self.q.guard().pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Whether the deque is currently empty.
    pub fn is_empty(&self) -> bool {
        self.q.guard().is_empty()
    }
}

/// A FIFO queue shared by a whole thread team.
#[derive(Debug)]
pub struct Injector<T> {
    q: Queue<T>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// Empty injector.
    pub fn new() -> Self {
        Self { q: Queue::new() }
    }

    /// Enqueue an item.
    pub fn push(&self, task: T) {
        self.q.guard().push_back(task);
    }

    /// Steal one item.
    pub fn steal(&self) -> Steal<T> {
        match self.q.guard().pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Steal a batch into `dest`, returning one additional item directly.
    /// Lock order is always injector → worker, so the two mutexes cannot
    /// deadlock against each other.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut q = self.q.guard();
        let Some(first) = q.pop_front() else {
            return Steal::Empty;
        };
        let batch = (q.len() / 2).min(16);
        if batch > 0 {
            let mut d = dest.q.guard();
            for _ in 0..batch {
                match q.pop_front() {
                    Some(t) => d.push_back(t),
                    None => break,
                }
            }
        }
        Steal::Success(first)
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.q.guard().is_empty()
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.q.guard().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_owner_fifo_stealer() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert!(matches!(s.steal(), Steal::Success(1)));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert!(s.steal().is_empty());
    }

    #[test]
    fn injector_batch_transfer() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_lifo();
        let got = inj.steal_batch_and_pop(&w).success();
        assert_eq!(got, Some(0));
        // A batch moved over; total items are conserved.
        let mut seen = vec![0];
        while let Some(t) = w.pop() {
            seen.push(t);
        }
        while let Steal::Success(t) = inj.steal() {
            seen.push(t);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }
}
