//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small API slice it actually uses, implemented on `std::sync`
//! primitives. Semantics match `parking_lot` where they matter to callers:
//! no lock poisoning (a panic while holding a guard does not wedge later
//! users) and guard types deref to the protected data.

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion lock that ignores poisoning.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard of [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is acquired. Unlike `std`, a poisoned lock is
    /// recovered transparently (parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire the lock if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock that ignores poisoning.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII guard of [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII guard of [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consume the lock and return the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_survives_panic_while_held() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::panic::catch_unwind(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        });
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
