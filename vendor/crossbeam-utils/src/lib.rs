//! Offline stand-in for the `crossbeam-utils` crate.
//!
//! Only the [`Backoff`] helper is provided — the single item the
//! workspace imports. Behaviour mirrors the original: exponential
//! spinning that escalates to yielding the thread.

use std::cell::Cell;

const SPIN_LIMIT: u32 = 6;
const YIELD_LIMIT: u32 = 10;

/// Exponential backoff for spin loops.
#[derive(Debug, Default)]
pub struct Backoff {
    step: Cell<u32>,
}

impl Backoff {
    /// Fresh backoff state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Restart the backoff schedule (progress was made).
    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Busy-spin briefly.
    pub fn spin(&self) {
        for _ in 0..1u32 << self.step.get().min(SPIN_LIMIT) {
            std::hint::spin_loop();
        }
        if self.step.get() <= SPIN_LIMIT {
            self.step.set(self.step.get() + 1);
        }
    }

    /// Spin, escalating to yielding the OS thread once spinning has not
    /// helped for a while.
    pub fn snooze(&self) {
        if self.step.get() <= SPIN_LIMIT {
            for _ in 0..1u32 << self.step.get() {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if self.step.get() <= YIELD_LIMIT {
            self.step.set(self.step.get() + 1);
        }
    }

    /// Whether blocking (parking) would now be preferable to spinning.
    pub fn is_completed(&self) -> bool {
        self.step.get() > YIELD_LIMIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_escalates_and_resets() {
        let b = Backoff::new();
        for _ in 0..32 {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }
}
