//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the API the bench harness uses: `Criterion`
//! with builder-style configuration, `bench_function`, benchmark groups,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros.
//! Instead of criterion's statistical analysis it runs each routine for
//! the configured measurement window and prints the mean iteration time —
//! enough to compare runs by eye in an environment without registry
//! access.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 100,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Samples per benchmark (builder style).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measurement window per benchmark (builder style).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up window per benchmark (builder style).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark routine and report its mean iteration time.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.warm_up_time,
            measure: self.measurement_time,
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        b.report(id.as_ref());
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.as_ref().to_string(),
            sample_size: None,
            measurement_time: None,
            warm_up_time: None,
        }
    }

    /// No-op hook for API parity.
    pub fn final_summary(&mut self) {}
}

/// A named set of benchmarks sharing configuration overrides.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
    warm_up_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Override samples per benchmark within this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Override the measurement window within this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Override the warm-up window within this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = Some(d);
        self
    }

    /// Run one benchmark routine within the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.warm_up_time.unwrap_or(self.criterion.warm_up_time),
            measure: self
                .measurement_time
                .unwrap_or(self.criterion.measurement_time),
            samples: self.sample_size.unwrap_or(self.criterion.sample_size),
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.as_ref()));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Timer handed to each benchmark routine.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, first warming up, then iterating until the
    /// measurement window (bounded by the sample count) is exhausted.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        let deadline = start + self.measure;
        let mut iters = 0u64;
        // At least `samples` iterations even if the window is tiny.
        while iters < self.samples as u64 || Instant::now() < deadline {
            std::hint::black_box(routine());
            iters += 1;
            if iters >= self.samples as u64 && Instant::now() >= deadline {
                break;
            }
        }
        self.total = start.elapsed();
        self.iters = iters;
    }

    fn report(&self, id: &str) {
        if self.iters == 0 {
            println!("{id:<48} (no measurement)");
        } else {
            let mean = self.total.as_nanos() as f64 / self.iters as f64;
            println!("{id:<48} mean {mean:>12.1} ns/iter ({} iters)", self.iters);
        }
    }
}

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        c.bench_function("tiny", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        tiny(&mut c);
        let mut g = c.benchmark_group("g");
        g.sample_size(5).measurement_time(Duration::from_millis(5));
        g.bench_function(format!("inner-{}", 1), |b| b.iter(|| 2 * 2));
        g.finish();
    }
}
