//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: fmt::Debug + Sized {
    /// Produce one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mix of unit-interval values, scaled magnitudes, and specials.
        match rng.below(8) {
            0 => 0.0,
            1 => -rng.unit_f64() * 1e6,
            2 => rng.unit_f64() * 1e6,
            _ => rng.unit_f64(),
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        match rng.below(8) {
            0 => char::from_u32(rng.next_u64() as u32 % 0x11_0000).unwrap_or('\u{fffd}'),
            _ => (0x20 + rng.below(0x5f) as u8) as char,
        }
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Any<T> {}

impl<T> fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("any")
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
