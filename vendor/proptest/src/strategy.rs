//! The [`Strategy`] trait and the core combinators.

use crate::test_runner::TestRng;
use std::fmt;
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// directly produces a value from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    /// Type-erase this strategy behind a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }

    /// Build a recursive strategy: `self` is the leaf case and `recurse`
    /// wraps an inner strategy into a branch case. `depth` bounds the
    /// nesting; the size-tuning parameters of the real crate are accepted
    /// but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(current).boxed();
            // Branch twice as likely as bottoming out early, like the
            // real crate's default weighting.
            current = Union::new(vec![leaf.clone(), branch.clone(), branch]).boxed();
        }
        current
    }
}

/// Strategy of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// Strategy producing one fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A type-erased, cheaply cloneable strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(self.0.clone())
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice between several strategies of one value type (the
/// expansion of `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Self {
            options: self.options.clone(),
        }
    }
}

impl<T> fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

impl<T> Union<T> {
    /// Union over a non-empty list of options.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let lo = self.start as i128;
                let span = (self.end as i128 - lo) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo + off as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let lo = *self.start() as i128;
                let span = (*self.end() as i128 - lo) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo + off as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

/// String strategy from a regex-like pattern.
///
/// Supported shapes: `.` (any non-newline char), `[a-z0-9_]`-style
/// classes, each optionally followed by `{m,n}`, `{m,}`, `{n}`, `*` or
/// `+`. Anything else is emitted literally — enough for the patterns the
/// workspace tests use, without a regex engine.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let (class, rest) = match pattern.as_bytes() {
        [b'.', ..] => (CharClass::Any, &pattern[1..]),
        [b'[', ..] => match pattern[1..].find(']') {
            Some(end) => (
                CharClass::Set(&pattern[1..1 + end]),
                &pattern[end + 2..],
            ),
            None => return pattern.to_string(),
        },
        _ => return pattern.to_string(),
    };
    let (min, max) = match parse_quantifier(rest) {
        Some(bounds) => bounds,
        None => return pattern.to_string(),
    };
    let len = min + rng.below((max - min + 1) as u64) as usize;
    (0..len).map(|_| class.sample(rng)).collect()
}

enum CharClass<'a> {
    Any,
    Set(&'a str),
}

impl CharClass<'_> {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            CharClass::Any => {
                // Mostly printable ASCII, with occasional tabs and
                // multi-byte characters to stress parsers; never '\n'
                // (regex `.` excludes it).
                match rng.below(20) {
                    0 => ['\t', '\u{7f}', 'é', 'λ', '中', '🦀'][rng.below(6) as usize],
                    _ => (0x20 + rng.below(0x5f) as u8) as char,
                }
            }
            CharClass::Set(spec) => {
                let mut choices: Vec<char> = Vec::new();
                let chars: Vec<char> = spec.chars().collect();
                let mut i = 0;
                while i < chars.len() {
                    if i + 2 < chars.len() && chars[i + 1] == '-' {
                        let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                        for c in lo..=hi {
                            if let Some(c) = char::from_u32(c) {
                                choices.push(c);
                            }
                        }
                        i += 3;
                    } else {
                        choices.push(chars[i]);
                        i += 1;
                    }
                }
                if choices.is_empty() {
                    'x'
                } else {
                    choices[rng.below(choices.len() as u64) as usize]
                }
            }
        }
    }
}

fn parse_quantifier(rest: &str) -> Option<(usize, usize)> {
    match rest {
        "" => Some((1, 1)),
        "*" => Some((0, 32)),
        "+" => Some((1, 32)),
        _ => {
            let inner = rest.strip_prefix('{')?.strip_suffix('}')?;
            match inner.split_once(',') {
                Some((lo, "")) => {
                    let lo: usize = lo.trim().parse().ok()?;
                    Some((lo, lo + 32))
                }
                Some((lo, hi)) => {
                    let lo: usize = lo.trim().parse().ok()?;
                    let hi: usize = hi.trim().parse().ok()?;
                    (lo <= hi).then_some((lo, hi))
                }
                None => {
                    let n: usize = inner.trim().parse().ok()?;
                    Some((n, n))
                }
            }
        }
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
