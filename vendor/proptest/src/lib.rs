//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! a small but faithful subset of proptest's API: the `proptest!` macro,
//! `Strategy` with `prop_map` / `prop_recursive` / `boxed`, `prop_oneof!`,
//! `Just`, `any::<T>()`, integer/float range strategies, a `.{m,n}`-style
//! string strategy, `prop::collection::vec`, and the `prop_assert*`
//! macros. Test cases are generated from a freshly seeded deterministic
//! PRNG each run; failures report the failing input (and the seed) but are
//! **not shrunk** — acceptable for an offline gate whose job is to catch
//! violations at all.
//!
//! Failure persistence mirrors the real crate: the `proptest!` macro
//! records its `file!()` in the config, persisted `cc` seeds from the
//! sibling `.proptest-regressions` file are replayed before any novel
//! cases, and a failing novel case prints the exact `cc` line to commit
//! (the case seed lives in the first 16 hex digits of the token).

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use crate::strategy::Strategy;

/// Assert a boolean condition inside a `proptest!` body, failing the case
/// (rather than panicking) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    concat!(
                        "assertion failed: `",
                        stringify!($left),
                        " == ",
                        stringify!($right),
                        "`: {:?} != {:?}"
                    ),
                    left, right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} != {:?})", format!($($fmt)+), left, right),
            ));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    concat!(
                        "assertion failed: `",
                        stringify!($left),
                        " != ",
                        stringify!($right),
                        "`: both are {:?}"
                    ),
                    left
                ),
            ));
        }
    }};
}

/// Choose uniformly between several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests. Mirrors proptest's macro: an optional
/// `#![proptest_config(...)]` inner attribute, then `fn name(pat in
/// strategy, ...) { body }` items, each expanded into a `#[test]`-capable
/// function that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut config = $config;
                // Locate the sibling `.proptest-regressions` file so
                // persisted failure seeds replay before novel cases.
                config.source_file = ::core::option::Option::Some(file!());
                let mut runner = $crate::test_runner::TestRunner::new(config);
                let strategy = ($($strategy,)+);
                let outcome = runner.run(&strategy, |($($arg,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                });
                if let ::core::result::Result::Err(message) = outcome {
                    panic!("{}", message);
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::Config::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in -50i32..50, y in 1usize..9, f in 0.0f64..1.0) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((1..9).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_sizes_respect_range(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn fixed_size_vec(v in prop::collection::vec(any::<bool>(), 4)) {
            prop_assert_eq!(v.len(), 4);
        }

        #[test]
        fn string_pattern_len(s in ".{0,40}") {
            prop_assert!(s.chars().count() <= 40);
        }

        #[test]
        fn map_and_oneof(v in prop_oneof![Just(1u8), any::<u8>().prop_map(|x| x / 2)]) {
            prop_assert!(v == 1 || v <= 127);
        }
    }

    #[derive(Clone, Debug)]
    #[allow(dead_code)] // leaf payload only exercises prop_map construction
    enum Tree {
        Leaf(u8),
        Node(Vec<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 1,
            Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn recursive_strategies_terminate(
            t in any::<u8>().prop_map(Tree::Leaf).prop_recursive(4, 24, 3, |inner| {
                prop::collection::vec(inner, 0..3).prop_map(Tree::Node)
            })
        ) {
            prop_assert!(depth(&t) <= 6);
        }
    }

    #[test]
    fn failing_property_reports_input() {
        let mut runner =
            crate::test_runner::TestRunner::new(crate::test_runner::Config::with_cases(64));
        let err = runner
            .run(&(0u32..100,), |(x,)| {
                crate::prop_assert!(x < 10, "x too big");
                Ok(())
            })
            .unwrap_err();
        assert!(err.contains("x too big"), "unexpected message: {err}");
    }
}
