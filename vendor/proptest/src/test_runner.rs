//! Test-case generation driver: configuration, RNG, and the runner.

use crate::strategy::Strategy;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Deterministic split-mix PRNG used for all generation. Seeded once per
/// runner; printing the seed on failure makes a run reproducible via the
/// `PROPTEST_SEED` environment variable.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Runner configuration. Re-exported from the prelude as `ProptestConfig`
/// to match the real crate.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// Configuration running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        Self { cases }
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The input was rejected (does not count as a failure).
    Reject(String),
}

impl TestCaseError {
    /// A failed case with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejected (skipped) case with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives a property over `config.cases` generated inputs.
pub struct TestRunner {
    config: Config,
    rng: TestRng,
    seed: u64,
}

impl TestRunner {
    /// Runner with a fresh random seed (overridable via `PROPTEST_SEED`).
    pub fn new(config: Config) -> Self {
        let seed = match std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            Some(s) => s,
            None => {
                use std::hash::{BuildHasher, Hasher};
                std::collections::hash_map::RandomState::new()
                    .build_hasher()
                    .finish()
            }
        };
        Self {
            config,
            rng: TestRng::from_seed(seed),
            seed,
        }
    }

    /// Run `test` against generated inputs. Returns `Err` with a
    /// human-readable report (failing input + seed) on the first
    /// violation; panics inside the property are reported then propagated.
    pub fn run<S, F>(&mut self, strategy: &S, test: F) -> Result<(), String>
    where
        S: Strategy,
        F: Fn(S::Value) -> TestCaseResult,
    {
        for case in 0..self.config.cases {
            let value = strategy.generate(&mut self.rng);
            let rendered = format!("{value:?}");
            match catch_unwind(AssertUnwindSafe(|| test(value))) {
                Ok(Ok(())) => {}
                Ok(Err(TestCaseError::Reject(_))) => {}
                Ok(Err(TestCaseError::Fail(message))) => {
                    return Err(format!(
                        "proptest: property failed: {message}\n  \
                         case {case}/{total}, seed {seed} (set PROPTEST_SEED={seed} to replay)\n  \
                         input: {rendered}",
                        total = self.config.cases,
                        seed = self.seed,
                    ));
                }
                Err(payload) => {
                    eprintln!(
                        "proptest: property panicked\n  \
                         case {case}/{total}, seed {seed} (set PROPTEST_SEED={seed} to replay)\n  \
                         input: {rendered}",
                        total = self.config.cases,
                        seed = self.seed,
                    );
                    resume_unwind(payload);
                }
            }
        }
        Ok(())
    }
}
