//! Test-case generation driver: configuration, RNG, and the runner.

use crate::strategy::Strategy;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// Deterministic split-mix PRNG used for all generation. Seeded once per
/// runner; printing the seed on failure makes a run reproducible via the
/// `PROPTEST_SEED` environment variable.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Runner configuration. Re-exported from the prelude as `ProptestConfig`
/// to match the real crate.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Source file of the `proptest!` block (filled in by the macro via
    /// `file!()`). When set, the sibling `<file>.proptest-regressions`
    /// file is parsed and its persisted `cc` seeds are replayed before
    /// any novel cases are generated — the same contract as the real
    /// crate, with the case seed packed into the first 16 hex digits of
    /// the `cc` token.
    pub source_file: Option<&'static str>,
}

impl Config {
    /// Configuration running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            source_file: None,
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        Self {
            cases,
            source_file: None,
        }
    }
}

/// The regressions file persisted next to a test source file
/// (`tests/foo.rs` → `tests/foo.proptest-regressions`).
pub fn regressions_path(source_file: &str) -> PathBuf {
    PathBuf::from(source_file.strip_suffix(".rs").unwrap_or(source_file))
        .with_extension("proptest-regressions")
}

/// Parse the case seed out of one `cc` token: the first 16 hex digits
/// encode the u64 the failing case's RNG was seeded with.
pub fn parse_cc_seed(token: &str) -> Option<u64> {
    let head: String = token.chars().take(16).collect();
    if head.len() < 16 {
        return None;
    }
    u64::from_str_radix(&head, 16).ok()
}

/// Persisted regression seeds from a `.proptest-regressions` file
/// (missing file → empty).
pub fn load_regressions(source_file: &str) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(regressions_path(source_file)) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| line.trim().strip_prefix("cc "))
        .filter_map(|rest| parse_cc_seed(rest.split_whitespace().next()?))
        .collect()
}

/// Render a case seed as a 64-hex-digit `cc` token (seed in the first 16
/// digits, zero-padded like the real crate's 32-byte tokens).
pub fn cc_token(case_seed: u64) -> String {
    format!("{case_seed:016x}{:048}", 0)
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The input was rejected (does not count as a failure).
    Reject(String),
}

impl TestCaseError {
    /// A failed case with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejected (skipped) case with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives a property over `config.cases` generated inputs.
pub struct TestRunner {
    config: Config,
    rng: TestRng,
    seed: u64,
}

impl TestRunner {
    /// Runner with a fresh random seed (overridable via `PROPTEST_SEED`).
    pub fn new(config: Config) -> Self {
        let seed = match std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            Some(s) => s,
            None => {
                use std::hash::{BuildHasher, Hasher};
                std::collections::hash_map::RandomState::new()
                    .build_hasher()
                    .finish()
            }
        };
        Self {
            config,
            rng: TestRng::from_seed(seed),
            seed,
        }
    }

    /// Run `test` against generated inputs: first every seed persisted in
    /// the `.proptest-regressions` file (when the config carries a source
    /// file), then `config.cases` novel ones. Each case gets its own RNG
    /// seeded from the master stream, so a failure is replayable from the
    /// single `cc` token printed in the report. Returns `Err` with a
    /// human-readable report on the first violation; panics inside the
    /// property are reported then propagated.
    pub fn run<S, F>(&mut self, strategy: &S, test: F) -> Result<(), String>
    where
        S: Strategy,
        F: Fn(S::Value) -> TestCaseResult,
    {
        if let Some(src) = self.config.source_file {
            for (i, case_seed) in load_regressions(src).into_iter().enumerate() {
                self.run_one(strategy, &test, case_seed, &|message, rendered| {
                    format!(
                        "proptest: persisted regression failed again: {message}\n  \
                         cc {token} (entry {i} of {path})\n  input: {rendered}",
                        token = cc_token(case_seed),
                        path = regressions_path(src).display(),
                    )
                })?;
            }
        }
        for case in 0..self.config.cases {
            let case_seed = self.rng.next_u64();
            self.run_one(strategy, &test, case_seed, &|message, rendered| {
                let persist = match self.config.source_file {
                    Some(src) => format!(
                        "\n  to persist, add to {}:\n  cc {} # shrinks to {rendered}",
                        regressions_path(src).display(),
                        cc_token(case_seed),
                    ),
                    None => String::new(),
                };
                format!(
                    "proptest: property failed: {message}\n  \
                     case {case}/{total}, seed {seed} (set PROPTEST_SEED={seed} to replay){persist}\n  \
                     input: {rendered}",
                    total = self.config.cases,
                    seed = self.seed,
                )
            })?;
        }
        Ok(())
    }

    /// Generate and test the single case identified by `case_seed`.
    fn run_one<S, F>(
        &self,
        strategy: &S,
        test: &F,
        case_seed: u64,
        report: &dyn Fn(&str, &str) -> String,
    ) -> Result<(), String>
    where
        S: Strategy,
        F: Fn(S::Value) -> TestCaseResult,
    {
        let mut rng = TestRng::from_seed(case_seed);
        let value = strategy.generate(&mut rng);
        let rendered = format!("{value:?}");
        match catch_unwind(AssertUnwindSafe(|| test(value))) {
            Ok(Ok(())) | Ok(Err(TestCaseError::Reject(_))) => Ok(()),
            Ok(Err(TestCaseError::Fail(message))) => Err(report(&message, &rendered)),
            Err(payload) => {
                eprintln!("{}", report("property panicked", &rendered));
                resume_unwind(payload);
            }
        }
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;

    #[test]
    fn cc_tokens_round_trip() {
        let seed = 0x6e69_49cb_79bb_0cc0u64;
        let token = cc_token(seed);
        assert_eq!(token.len(), 64);
        assert_eq!(parse_cc_seed(&token), Some(seed));
        // Real-crate tokens (arbitrary 64 hex digits) parse to their head.
        assert_eq!(
            parse_cc_seed("6e6949cb79bb0cc0b62f36bc2dc9bd8b3d08c1811bb641f68273df26c67dbfb8"),
            Some(seed)
        );
        assert_eq!(parse_cc_seed("123"), None);
    }

    #[test]
    fn regressions_path_is_sibling() {
        assert_eq!(
            regressions_path("tests/proptest_profiler.rs"),
            PathBuf::from("tests/proptest_profiler.proptest-regressions")
        );
    }

    #[test]
    fn missing_regressions_file_is_empty() {
        assert!(load_regressions("tests/no_such_file.rs").is_empty());
    }

    #[test]
    fn persisted_seed_replays_before_novel_cases() {
        // A persisted failing seed must be generated first and fail
        // deterministically, regardless of the master seed.
        let dir = std::env::temp_dir().join("proptest-regressions-test");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("case.rs");
        let src_str: &'static str = Box::leak(src.to_string_lossy().into_owned().into_boxed_str());
        // Find a seed whose first generated u8 is odd, then persist it.
        let strategy = (crate::arbitrary::any::<u8>(),);
        let mut bad_seed = None;
        for s in 0..64u64 {
            let mut rng = TestRng::from_seed(s);
            let (v,) = strategy.generate(&mut rng);
            if v % 2 == 1 {
                bad_seed = Some(s);
                break;
            }
        }
        let bad_seed = bad_seed.expect("some small seed yields an odd u8");
        std::fs::write(
            regressions_path(src_str),
            format!("# persisted\ncc {}\n", cc_token(bad_seed)),
        )
        .unwrap();
        let mut config = Config::with_cases(0); // no novel cases at all
        config.source_file = Some(src_str);
        let err = TestRunner::new(config)
            .run(&strategy, |(v,)| {
                crate::prop_assert!(v % 2 == 0, "odd value {v}");
                Ok(())
            })
            .unwrap_err();
        assert!(err.contains("persisted regression"), "got: {err}");
        assert!(err.contains(&cc_token(bad_seed)), "got: {err}");
        let _ = std::fs::remove_file(regressions_path(src_str));
    }

    #[test]
    fn novel_failure_suggests_cc_line() {
        let mut config = Config::with_cases(16);
        config.source_file = Some("tests/no_such_file.rs");
        let err = TestRunner::new(config)
            .run(&(crate::arbitrary::any::<u8>(),), |(_v,)| {
                crate::prop_assert!(false, "always fails");
                Ok(())
            })
            .unwrap_err();
        assert!(err.contains("to persist, add to"), "got: {err}");
        assert!(err.contains("cc "), "got: {err}");
    }
}
