//! Profiler-level execution plans for event-stream property tests.
//!
//! A [`Body`] plan describes one well-formed single-thread execution —
//! nested regions, task creation and immediate execution at scheduling
//! points, parameter scopes — which [`emit`] turns into the exact event
//! stream a runtime would produce, fed through [`taskprof::Replayer`]
//! under virtual time.

use pomp::{RegionId, TaskIdAllocator};
use proptest::prelude::*;
use taskprof::{Event, Replayer, SnapNode};

/// The fixed parallel region used by plan replays.
pub const PAR: RegionId = RegionId(9000);
/// The barrier under which plans execute.
pub const BARRIER: RegionId = RegionId(9001);
/// First task construct.
pub const TASK_A: RegionId = RegionId(9002);
/// Second task construct.
pub const TASK_B: RegionId = RegionId(9003);
/// Creation-site region of [`TASK_A`] / [`TASK_B`] plans.
pub const CREATE_A: RegionId = RegionId(9004);
/// A taskwait region.
pub const TW: RegionId = RegionId(9005);
/// A user region.
pub const FOO: RegionId = RegionId(9006);
/// Another user region.
pub const BAR: RegionId = RegionId(9007);

/// A recursive plan for one task body.
#[derive(Clone, Debug)]
pub enum Body {
    /// Spend time.
    Work(u8),
    /// Enter a region, run the inner bodies, exit.
    Region(RegionId, Vec<Body>),
    /// Create + immediately execute a child task with the given body
    /// (models a scheduling point switching to a fresh task while this
    /// one is suspended).
    Child(RegionId, Vec<Body>),
    /// Parameter scope.
    Param(i64, Vec<Body>),
}

/// Strategy over recursive bodies up to the given recursion depth.
pub fn body_strategy(depth: u32) -> impl Strategy<Value = Body> {
    let leaf = prop_oneof![any::<u8>().prop_map(Body::Work)];
    leaf.prop_recursive(depth, 24, 4, |inner| {
        prop_oneof![
            (
                prop_oneof![Just(FOO), Just(BAR), Just(TW)],
                prop::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(r, b)| Body::Region(r, b)),
            (
                prop_oneof![Just(TASK_A), Just(TASK_B)],
                prop::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(r, b)| Body::Child(r, b)),
            (0i64..5, prop::collection::vec(inner, 0..2))
                .prop_map(|(v, b)| Body::Param(v, b)),
        ]
    })
}

/// Emit the event stream for a body executing as the current instance,
/// tracking the live-tree high-water mark in `max_live`.
pub fn emit(r: &mut Replayer, ids: &TaskIdAllocator, body: &[Body], max_live: &mut usize) {
    let depth_param = pomp::registry().register_param("pt-depth");
    for b in body {
        match b {
            Body::Work(units) => {
                r.apply(Event::Advance(*units as u64 + 1));
            }
            Body::Region(region, inner) => {
                r.apply(Event::Enter(*region));
                emit(r, ids, inner, max_live);
                r.apply(Event::Advance(1));
                r.apply(Event::Exit(*region));
            }
            Body::Child(region, inner) => {
                let id = ids.alloc();
                r.apply(Event::CreateBegin {
                    create: CREATE_A,
                    task_region: *region,
                    id,
                });
                r.apply(Event::Advance(1));
                r.apply(Event::CreateEnd { create: CREATE_A, id });
                // Execute it right away at this (creation) scheduling
                // point; the current task suspends meanwhile.
                let resumed = r.profile().current_task();
                r.apply(Event::TaskBegin { region: *region, id });
                *max_live = (*max_live).max(r.profile().live_instance_trees());
                emit(r, ids, inner, max_live);
                r.apply(Event::Advance(1));
                r.apply(Event::TaskEnd { region: *region, id });
                if let pomp::TaskRef::Explicit(_) = resumed {
                    r.apply(Event::Switch(resumed));
                }
            }
            Body::Param(v, inner) => {
                r.apply(Event::ParamBegin {
                    param: depth_param,
                    value: *v,
                });
                emit(r, ids, inner, max_live);
                r.apply(Event::Advance(1));
                r.apply(Event::ParamEnd { param: depth_param });
            }
        }
    }
}

/// Structural sanity of a snapshot subtree: non-negative exclusive time
/// (under the executing policy), min ≤ max, samples ≤ visits.
pub fn subtree_ok(n: &SnapNode, executing_policy: bool) -> Result<(), String> {
    // Inclusive >= sum of children (no negative exclusive) under the
    // executing policy.
    if executing_policy && n.exclusive_ns() < 0 {
        return Err(format!("negative exclusive at {:?}", n.kind));
    }
    // min <= max; samples <= visits; sampled stats consistent.
    if n.stats.samples > 0 {
        if n.stats.min_ns > n.stats.max_ns {
            return Err(format!("min > max at {:?}", n.kind));
        }
        if n.stats.max_ns > n.stats.sum_ns {
            return Err(format!("max > sum at {:?}", n.kind));
        }
    }
    if n.stats.samples > n.stats.visits {
        return Err(format!("samples > visits at {:?}", n.kind));
    }
    for c in &n.children {
        subtree_ok(c, executing_policy)?;
    }
    Ok(())
}
