//! Randomly shaped task trees for runtime-level property tests.
//!
//! A [`Shape`] describes a uniform task tree by per-depth fanout: the
//! implicit task spawns `fanout[0]` tasks, each of which spawns
//! `fanout[1]`, and so on, with optional taskwaits between levels and a
//! tunable amount of busy work per task. The same shape can execute on a
//! real work-stealing team ([`run_shape`]) or be converted into a
//! deterministic-simulation workload ([`steps`] / [`tree_workload`]).

use pomp::Monitor;
use proptest::prelude::*;
use simsched::{Step, TreeWorkload};
use std::sync::atomic::{AtomicU64, Ordering};
use taskrt::{taskwait_region, ParallelConstruct, TaskConstruct, TaskCtx, Team};

/// A randomly shaped task tree: each node spawns children and optionally
/// taskwaits between batches.
#[derive(Clone, Debug)]
pub struct Shape {
    /// Children per node, by depth (empty → leaf).
    pub fanout: Vec<u8>,
    /// Whether each level taskwaits after spawning.
    pub wait: Vec<bool>,
    /// Work units burned per task.
    pub work: u8,
}

/// Strategy over small task-tree shapes (up to 3 levels, fanout < 4).
pub fn shape_strategy() -> impl Strategy<Value = Shape> {
    (
        prop::collection::vec(0u8..4, 1..4),
        prop::collection::vec(any::<bool>(), 4),
        any::<u8>(),
    )
        .prop_map(|(fanout, wait, work)| Shape { fanout, wait, work })
}

/// Number of explicit tasks a shape creates.
pub fn expected_tasks(shape: &Shape) -> u64 {
    // Root (implicit) spawns fanout[0] tasks, each spawns fanout[1], ...
    let mut total = 0u64;
    let mut level_count = 1u64;
    for &f in &shape.fanout {
        level_count *= f as u64;
        total += level_count;
        if level_count == 0 {
            break;
        }
    }
    total
}

/// Spawn one level of the shape from the current task: used as the body
/// of the implicit task (depth 0) and of each spawned task (depth + 1).
pub fn spawn_level<'e, M: Monitor>(
    ctx: &TaskCtx<'_, 'e, M>,
    shape: &'e Shape,
    depth: usize,
    task: &'e TaskConstruct,
    tw: pomp::RegionId,
    executed: &'e AtomicU64,
    work_sink: &'e AtomicU64,
) {
    if depth >= shape.fanout.len() {
        return;
    }
    for _ in 0..shape.fanout[depth] {
        ctx.task(task, move |ctx| {
            executed.fetch_add(1, Ordering::Relaxed);
            let mut acc = 0u64;
            for i in 0..shape.work as u64 * 16 {
                acc = acc.wrapping_mul(31).wrapping_add(i);
            }
            work_sink.fetch_add(acc, Ordering::Relaxed);
            spawn_level(ctx, shape, depth + 1, task, tw, executed, work_sink);
            if shape.wait.get(depth + 1).copied().unwrap_or(false) {
                ctx.taskwait(tw);
            }
        });
    }
    if shape.wait.first().copied().unwrap_or(true) && depth == 0 {
        ctx.taskwait(tw);
    }
}

/// Execute the shape on a fresh team (thread 0 is the producer) and
/// return how many tasks ran.
pub fn run_shape<M: Monitor>(monitor: &M, shape: &Shape, threads: usize) -> u64 {
    let par = ParallelConstruct::new("pt-rt!parallel");
    let task = TaskConstruct::new("pt-rt-task");
    let tw = taskwait_region("pt-rt!tw");
    let executed = AtomicU64::new(0);
    let work_sink = AtomicU64::new(0);
    let (exec_ref, sink_ref, shape_ref, task_ref) = (&executed, &work_sink, shape, &task);
    Team::new(threads).parallel(monitor, &par, |ctx| {
        if ctx.tid() == 0 {
            spawn_level(ctx, shape_ref, 0, task_ref, tw, exec_ref, sink_ref);
        }
    });
    executed.load(Ordering::Relaxed)
}

/// Convert the shape into simulation steps: the same tree topology and
/// taskwait placement, with busy work replaced by virtual time.
pub fn steps(shape: &Shape) -> Vec<Step> {
    fn level(shape: &Shape, depth: usize) -> Vec<Step> {
        let mut out = Vec::new();
        if depth > 0 {
            // Each task body: its work, then its children.
            out.push(Step::Work(shape.work as u64 + 1));
        }
        if depth < shape.fanout.len() {
            for _ in 0..shape.fanout[depth] {
                out.push(Step::Task(level(shape, depth + 1)));
            }
            let waits = if depth == 0 {
                shape.wait.first().copied().unwrap_or(true)
            } else {
                shape.wait.get(depth + 1).copied().unwrap_or(false)
            };
            if waits {
                out.push(Step::Taskwait);
            }
        }
        out
    }
    level(shape, 0)
}

/// The shape as a single-producer simulation workload (the single winner
/// plays the producer thread 0 plays in [`run_shape`]).
pub fn tree_workload(shape: &Shape) -> TreeWorkload {
    TreeWorkload::new("pt-sim-shape", vec![], steps(shape))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_preserve_task_count_and_depth() {
        let shape = Shape {
            fanout: vec![2, 3],
            wait: vec![true, false, true, false],
            work: 1,
        };
        let w = tree_workload(&shape);
        assert_eq!(w.expected_instances(4), expected_tasks(&shape));
        assert_eq!(w.live_tree_bound(), 2);
    }

    #[test]
    fn zero_fanout_level_makes_a_leafless_tree() {
        let shape = Shape {
            fanout: vec![0, 3],
            wait: vec![true; 4],
            work: 0,
        };
        assert_eq!(expected_tasks(&shape), 0);
        assert_eq!(tree_workload(&shape).expected_instances(2), 0);
    }
}
