//! Shared test utilities for the taskprof suite.
//!
//! Two generators live here so every property suite draws from the same
//! distribution of task graphs:
//!
//! * [`shape`] — runtime-level task-tree shapes ([`shape::Shape`]): run
//!   them on a real [`taskrt::Team`] (`shape::run_shape`), or convert
//!   them to a [`simsched::TreeWorkload`] (`shape::steps`) for
//!   deterministic schedule exploration.
//! * [`body`] — profiler-level execution plans ([`body::Body`]): emit
//!   them as event streams through [`taskprof::Replayer`].
//!
//! This is a dev-only crate: production crates must not depend on it.

pub mod body;
pub mod shape;
