//! Declarative task-graph workloads for schedule exploration.
//!
//! A [`TreeWorkload`] describes a task graph as data — nested [`Step`]
//! lists interpreted against the real [`taskrt::TaskCtx`] API — so the
//! same graph can be run under any seed or choice script and so property
//! tests can *generate* graphs. Virtual time is spent only through
//! [`Step::Work`], which makes every instance's inclusive time a property
//! of the graph, not of the schedule (see [`crate::clock`]).

use crate::clock::SimClock;
use pomp::{registry, Monitor, ParamId, RegionId};
use taskrt::{
    taskwait_region, ParallelConstruct, ParallelOutcome, SingleConstruct, TaskConstruct, TaskCtx,
    Team,
};

/// One step of a workload body. Bodies are step lists executed in order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Step {
    /// Spend `ns` of virtual time.
    Work(u64),
    /// Create a task instance with the given body (the schedule policy
    /// decides deferred vs. undeferred).
    Task(Vec<Step>),
    /// Wait for the current task's children (task scheduling point).
    Taskwait,
    /// Run the body inside the workload's instrumented user region.
    Region(Vec<Step>),
    /// Run the body inside a parameter scope with the given value.
    Param(i64, Vec<Step>),
}

impl Step {
    /// Shorthand for a task that just works for `ns`.
    pub fn leaf(ns: u64) -> Step {
        Step::Task(vec![Step::Work(ns)])
    }
}

fn nesting_depth(steps: &[Step]) -> usize {
    steps
        .iter()
        .map(|s| match s {
            Step::Task(body) => 1 + nesting_depth(body),
            Step::Region(body) | Step::Param(_, body) => nesting_depth(body),
            Step::Work(_) | Step::Taskwait => 0,
        })
        .max()
        .unwrap_or(0)
}

fn count_tasks(steps: &[Step]) -> u64 {
    steps
        .iter()
        .map(|s| match s {
            Step::Task(body) => 1 + count_tasks(body),
            Step::Region(body) | Step::Param(_, body) => count_tasks(body),
            Step::Work(_) | Step::Taskwait => 0,
        })
        .sum()
}

/// A schedule-explorable workload: one parallel region in which every
/// thread runs `prologue` as its implicit task, then a `single` construct
/// whose winner runs `single_body`. All tasks are instances of one task
/// construct, so the profile invariants have a single construct to check.
#[derive(Clone, Debug)]
pub struct TreeWorkload {
    name: String,
    par: ParallelConstruct,
    task: TaskConstruct,
    tw: RegionId,
    single: SingleConstruct,
    region: RegionId,
    param: ParamId,
    prologue: Vec<Step>,
    single_body: Vec<Step>,
}

impl TreeWorkload {
    /// A workload named `name` (regions are registered under that name —
    /// reuse the same name for the same graph to avoid growing the region
    /// registry).
    pub fn new(name: &str, prologue: Vec<Step>, single_body: Vec<Step>) -> Self {
        Self {
            name: name.to_string(),
            par: ParallelConstruct::new(&format!("{name}!parallel")),
            task: TaskConstruct::new(&format!("{name}!task")),
            tw: taskwait_region(&format!("{name}!taskwait")),
            single: SingleConstruct::new(&format!("{name}!single")),
            region: registry().register(
                &format!("{name}!region"),
                pomp::RegionKind::Function,
                file!(),
                line!(),
            ),
            param: registry().register_param(&format!("{name}!param")),
            prologue,
            single_body,
        }
    }

    /// Workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parallel region id (root of every thread's main tree).
    pub fn parallel_region(&self) -> RegionId {
        self.par.region
    }

    /// The task construct all instances belong to.
    pub fn task_region(&self) -> RegionId {
        self.task.task
    }

    /// The task construct's creation-site region.
    pub fn create_region(&self) -> RegionId {
        self.task.create
    }

    /// The single region (the winner's body executes inside it).
    pub fn single_region(&self) -> RegionId {
        self.single.region
    }

    /// The instrumented user region [`Step::Region`] bodies run inside.
    pub fn user_region(&self) -> RegionId {
        self.region
    }

    /// The same graph with every [`Step::Work`] attributed to `target`
    /// divided by `k` — the workload a replay-checked what-if runs.
    /// Regions are re-registered under the same name, so every id is
    /// identical to this workload's (the registry is idempotent).
    ///
    /// Returns `None` if any affected work amount is not divisible by
    /// `k`: integer virtual time cannot represent the sped-up graph
    /// exactly, and an inexact graph would break the bit-exact replay
    /// check (callers should pick test workloads with divisible weights).
    pub fn speedup_region(&self, target: RegionId, k: u64) -> Option<TreeWorkload> {
        assert!(k >= 1, "speedup factor must be >= 1");
        // Walk with the same attribution the profiler applies: work inside
        // a task body belongs to the task region, inside a `Step::Region`
        // to the user region, prologue work to the parallel region, and
        // the single winner's body to the single region. Parameter scopes
        // are transparent.
        fn scale(
            steps: &[Step],
            ctx: RegionId,
            target: RegionId,
            k: u64,
            task: RegionId,
            user: RegionId,
        ) -> Option<Vec<Step>> {
            steps
                .iter()
                .map(|s| match s {
                    Step::Work(ns) => {
                        if ctx == target {
                            (ns % k == 0).then(|| Step::Work(ns / k))
                        } else {
                            Some(Step::Work(*ns))
                        }
                    }
                    Step::Task(body) => scale(body, task, target, k, task, user).map(Step::Task),
                    Step::Taskwait => Some(Step::Taskwait),
                    Step::Region(body) => {
                        scale(body, user, target, k, task, user).map(Step::Region)
                    }
                    Step::Param(v, body) => {
                        scale(body, ctx, target, k, task, user).map(|b| Step::Param(*v, b))
                    }
                })
                .collect()
        }
        let prologue = scale(
            &self.prologue,
            self.par.region,
            target,
            k,
            self.task.task,
            self.region,
        )?;
        let single_body = scale(
            &self.single_body,
            self.single.region,
            target,
            k,
            self.task.task,
            self.region,
        )?;
        Some(TreeWorkload::new(&self.name, prologue, single_body))
    }

    /// Table II bound: with tied tasks, a thread only stacks an instance
    /// on top of another at a taskwait inside it (or by running one
    /// undeferred), and the new instance is always a strict descendant —
    /// so the live-instance chain can never be longer than the graph's
    /// maximum task nesting depth.
    pub fn live_tree_bound(&self) -> usize {
        nesting_depth(&self.prologue).max(nesting_depth(&self.single_body))
    }

    /// Exact number of task instances a team of `nthreads` creates:
    /// every thread runs the prologue, one thread runs the single body.
    pub fn expected_instances(&self, nthreads: usize) -> u64 {
        count_tasks(&self.prologue) * nthreads as u64 + count_tasks(&self.single_body)
    }

    fn exec<'env, M: Monitor>(
        &'env self,
        ctx: &TaskCtx<'_, 'env, M>,
        clock: &'env SimClock,
        steps: &'env [Step],
    ) {
        for step in steps {
            match step {
                Step::Work(ns) => clock.work(*ns),
                Step::Task(body) => {
                    ctx.task(&self.task, move |c| self.exec(c, clock, body));
                }
                Step::Taskwait => ctx.taskwait(self.tw),
                Step::Region(body) => {
                    ctx.region(self.region, |c| self.exec(c, clock, body));
                }
                Step::Param(value, body) => {
                    ctx.parameter(self.param, *value, |c| self.exec(c, clock, body));
                }
            }
        }
    }

    /// Run the workload on `team` under `monitor`, spending virtual time
    /// on `clock` (the simulation scheduler's clock).
    pub fn run<M: Monitor>(
        &self,
        team: &Team,
        monitor: &M,
        clock: &SimClock,
    ) -> ParallelOutcome {
        team.parallel(monitor, &self.par, |ctx| {
            self.exec(ctx, clock, &self.prologue);
            ctx.single(&self.single, |c| self.exec(c, clock, &self.single_body));
        })
    }
}

/// Recursive fib-style binary task tree of the given depth: each task
/// spawns two children and taskwaits, like the paper's `fib` kernel.
pub fn fib_like(depth: usize) -> TreeWorkload {
    fn node(depth: usize) -> Vec<Step> {
        if depth == 0 {
            return vec![Step::Work(10)];
        }
        vec![
            Step::Work(5),
            Step::Task(node(depth - 1)),
            Step::Task(node(depth - 1)),
            Step::Taskwait,
            Step::Work(2),
        ]
    }
    TreeWorkload::new(
        &format!("sim-fib-{depth}"),
        vec![],
        vec![Step::Task(node(depth)), Step::Taskwait],
    )
}

/// Fib-style binary tree whose every work amount is a multiple of 60, so
/// [`TreeWorkload::speedup_region`] stays integer-exact for any
/// K ∈ {2, 3, 4, 5, 6}: the workload behind the what-if validation demos
/// and the replay-exactness test suite.
pub fn divisible(depth: usize) -> TreeWorkload {
    fn node(depth: usize) -> Vec<Step> {
        if depth == 0 {
            return vec![Step::Work(120)];
        }
        vec![
            Step::Work(60),
            Step::Task(node(depth - 1)),
            Step::Task(node(depth - 1)),
            Step::Taskwait,
            Step::Work(60),
        ]
    }
    TreeWorkload::new(
        &format!("sim-div-{depth}"),
        vec![],
        vec![Step::Task(node(depth)), Step::Taskwait],
    )
}

/// Flat producer: the single winner spawns `n` leaf tasks of varied sizes
/// and taskwaits — the classic single-producer pattern (paper Fig. 5).
pub fn flat(n: usize) -> TreeWorkload {
    let mut body: Vec<Step> = (0..n).map(|i| Step::leaf(10 + (i as u64 % 7) * 3)).collect();
    body.push(Step::Taskwait);
    TreeWorkload::new(&format!("sim-flat-{n}"), vec![], body)
}

/// Mixed stressor: every thread spawns a nested tree from its implicit
/// task (concurrent producers), then the single winner runs a deeper tree
/// with parameter scopes and an inner user region.
pub fn mixed() -> TreeWorkload {
    let prologue = vec![
        Step::Work(3),
        Step::Task(vec![
            Step::Work(8),
            Step::Task(vec![Step::Work(4)]),
            Step::Taskwait,
        ]),
        Step::leaf(6),
        Step::Taskwait,
    ];
    let single_body = vec![
        Step::Region(vec![
            Step::Param(1, vec![Step::Task(vec![
                Step::Work(5),
                Step::Param(2, vec![Step::Task(vec![Step::Work(9)]), Step::Taskwait]),
            ])]),
            Step::Task(vec![Step::Work(11)]),
            Step::Taskwait,
        ]),
        Step::Work(1),
    ];
    TreeWorkload::new("sim-mixed", prologue, single_body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_and_count_walk_nested_bodies() {
        let steps = vec![
            Step::Task(vec![Step::Task(vec![Step::Work(1)]), Step::Taskwait]),
            Step::Region(vec![Step::Task(vec![Step::Work(1)])]),
        ];
        assert_eq!(nesting_depth(&steps), 2);
        assert_eq!(count_tasks(&steps), 3);
    }

    #[test]
    fn workload_accounting() {
        let w = TreeWorkload::new(
            "sim-acct-test",
            vec![Step::leaf(1), Step::Taskwait],
            vec![Step::Task(vec![Step::leaf(1), Step::Taskwait])],
        );
        assert_eq!(w.live_tree_bound(), 2);
        assert_eq!(w.expected_instances(3), 3 + 2);
    }

    #[test]
    fn builders_make_consistent_graphs() {
        assert_eq!(fib_like(2).live_tree_bound(), 3);
        assert_eq!(fib_like(2).expected_instances(4), 7);
        assert_eq!(flat(5).expected_instances(2), 5);
        assert_eq!(flat(5).live_tree_bound(), 1);
        assert!(mixed().expected_instances(2) > 0);
    }
}
