//! Seeded pseudo-randomness for scheduling decisions.
//!
//! Splitmix64: tiny, stateless-feeling, and good enough equidistribution
//! for picking "which thread runs next" — what matters here is not
//! statistical quality but that every run with the same seed makes the
//! same sequence of choices.

/// A splitmix64 generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n` must be nonzero).
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SplitMix64::new(7);
        for n in 1..10 {
            for _ in 0..50 {
                assert!(r.below(n) < n);
            }
        }
    }
}
