//! Replay-checked what-if validation.
//!
//! `critpath`'s what-if engine predicts the makespan of a run with one
//! region K× faster by re-solving the recorded DAG with scaled weights.
//! Under this crate's simulation the prediction is *checkable*: the
//! scheduler's decisions are purely structural — who runs next, defer vs.
//! undeferred, steal victims all come from the seed's choice stream, and
//! clock values never feed back into scheduling — so running the *same
//! graph with the region's work actually divided by K* under the same
//! seed reproduces the identical schedule (identical choice trace), and
//! its measured makespan must equal the prediction exactly. Any
//! discrepancy is a bug in the DAG model, not noise.
//!
//! [`validate_whatif`] performs that experiment end to end; the
//! `tests/critpath_whatif.rs` suite asserts exactness across workloads
//! and speedup factors.

use crate::run::{run_workload, SimConfig, SimRun};
use crate::workloads::TreeWorkload;
use critpath::{DagError, DagOptions, TaskDag};
use pomp::RegionId;

/// The [`DagOptions`] matching a simulated run: the scheduler's spawn
/// cost is charged into the creator's open frame on the undeferred path,
/// so the DAG builder must carve it back out for region attribution to
/// match a replay.
pub fn dag_options(config: &SimConfig) -> DagOptions {
    DagOptions {
        undeferred_spawn_cost: Some(config.spawn_cost),
    }
}

/// Build the critical-path DAG of a completed simulated run.
pub fn analyze(run: &SimRun, workload: &TreeWorkload) -> Result<TaskDag, DagError> {
    TaskDag::from_streams(
        &run.streams,
        workload.parallel_region(),
        &dag_options(&run.config),
    )
}

/// Outcome of one prediction-vs-replay experiment.
#[derive(Clone, Copy, Debug)]
pub struct WhatIfValidation {
    /// The region hypothetically (and then actually) sped up.
    pub region: RegionId,
    /// The speedup factor K.
    pub speedup: u64,
    /// Makespan of the baseline run.
    pub baseline_makespan_ns: u64,
    /// What the DAG model predicts for the sped-up run.
    pub predicted_makespan_ns: u64,
    /// What the sped-up run actually measured under the same seed.
    pub replayed_makespan_ns: u64,
    /// Predicted logical span of the sped-up run (lower bound on any
    /// schedule).
    pub predicted_span_ns: u64,
    /// Whether baseline and sped-up runs took the identical choice trace
    /// (the premise of the exactness argument).
    pub traces_match: bool,
}

impl WhatIfValidation {
    /// Did the replay reproduce the prediction exactly?
    pub fn exact(&self) -> bool {
        self.predicted_makespan_ns == self.replayed_makespan_ns && self.traces_match
    }
}

/// Run `workload` under `config`, predict the effect of making `region`
/// `speedup`× faster, then *actually* run the sped-up graph under the
/// same seed and measure. Returns `None` when the sped-up graph is not
/// representable in integer virtual time (some affected work amount not
/// divisible by `speedup` — see [`TreeWorkload::speedup_region`]).
///
/// # Panics
///
/// Panics if either run's event streams do not assemble into a DAG —
/// that would be a recorder or runtime bug, not a caller error.
pub fn validate_whatif(
    workload: &TreeWorkload,
    config: &SimConfig,
    region: RegionId,
    speedup: u64,
) -> Option<WhatIfValidation> {
    let sped_workload = workload.speedup_region(region, speedup)?;
    let baseline = run_workload(workload, config);
    let dag = analyze(&baseline, workload).expect("baseline streams form a DAG");
    let prediction = dag.what_if(region, speedup);
    let rerun = run_workload(&sped_workload, config);
    let rerun_dag = analyze(&rerun, &sped_workload).expect("sped-up streams form a DAG");
    Some(WhatIfValidation {
        region,
        speedup,
        baseline_makespan_ns: prediction.baseline_makespan_ns,
        predicted_makespan_ns: prediction.predicted_makespan_ns,
        replayed_makespan_ns: rerun_dag.makespan_ns(),
        predicted_span_ns: prediction.predicted_span_ns,
        traces_match: baseline.trace == rerun.trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn divisible_tree() -> TreeWorkload {
        crate::workloads::divisible(3)
    }

    #[test]
    fn prediction_matches_replay_exactly() {
        let w = divisible_tree();
        let cfg = SimConfig::seeded(2, 11);
        for k in [2, 3, 5] {
            let v = validate_whatif(&w, &cfg, w.task_region(), k).expect("divisible by 60");
            assert!(v.traces_match, "K={k}: schedule changed under scaling");
            assert_eq!(
                v.predicted_makespan_ns, v.replayed_makespan_ns,
                "K={k}: prediction diverged from replay"
            );
            assert!(v.predicted_makespan_ns <= v.baseline_makespan_ns);
            assert!(v.predicted_span_ns <= v.predicted_makespan_ns);
            assert!(v.exact());
        }
    }

    #[test]
    fn indivisible_speedup_is_refused() {
        let w = divisible_tree();
        let cfg = SimConfig::seeded(2, 11);
        assert!(validate_whatif(&w, &cfg, w.task_region(), 7).is_none());
    }
}
