//! Per-simulated-thread virtual time.
//!
//! Under simulation, time advances only when a workload explicitly calls
//! [`SimClock::work`] (and when the scheduler charges its fixed task
//! creation cost). Each simulated thread owns its own [`VirtualClock`]
//! slot: polling at a taskwait or barrier costs nothing, and a suspended
//! thread's clock never moves while another simulated thread runs — so a
//! task instance's inclusive time is exactly its own work in *every*
//! schedule, which is what makes the cross-schedule invariant checks
//! possible.
//!
//! The profiler's [`pomp::ClockSource::thread_reader`] has no thread-id
//! parameter, so the binding between an OS thread and its clock slot goes
//! through a thread-local set by the scheduler's `thread_start` hook
//! (which runs before the monitor's `thread_begin` on the same thread).

use pomp::{Clock, ClockSource, VirtualClock};
use std::cell::Cell;
use std::sync::{Arc, Mutex};

thread_local! {
    static CURRENT_SIM_TID: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Bind (or unbind) the calling OS thread to a simulated thread id.
pub(crate) fn set_current_tid(tid: Option<usize>) {
    CURRENT_SIM_TID.with(|c| c.set(tid));
}

/// The simulated thread id bound to the calling OS thread, if any.
pub(crate) fn current_tid() -> Option<usize> {
    CURRENT_SIM_TID.with(|c| c.get())
}

/// One virtual clock per simulated thread, bound through a thread-local.
///
/// Clones share the slots, so the scheduler, the profiler, the event
/// recorder, and the test driver all observe the same timelines.
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    slots: Arc<Mutex<Vec<VirtualClock>>>,
}

impl SimClock {
    /// A clock with no slots yet; slots materialize on first use per tid.
    pub fn new() -> Self {
        Self::default()
    }

    /// The clock slot of simulated thread `tid` (shared handle; created at
    /// t = 0 on first access).
    pub fn slot(&self, tid: usize) -> VirtualClock {
        let mut slots = self.slots.lock().expect("sim clock poisoned");
        while slots.len() <= tid {
            slots.push(VirtualClock::new());
        }
        slots[tid].clone()
    }

    /// Current virtual time of thread `tid` (0 if it never ran).
    pub fn now_for(&self, tid: usize) -> u64 {
        self.slot(tid).now()
    }

    /// Advance the *calling simulated thread's* clock by `ns` — the only
    /// way workload bodies spend virtual time.
    ///
    /// # Panics
    ///
    /// Panics when called from a thread that is not part of a simulated
    /// team (the scheduler binds the id in `thread_start`).
    pub fn work(&self, ns: u64) {
        let tid = current_tid().expect("SimClock::work called outside a simulated team thread");
        self.slot(tid).advance(ns);
    }

    /// Advance thread `tid`'s clock by `ns` (scheduler-internal costs).
    pub(crate) fn advance_for(&self, tid: usize, ns: u64) {
        self.slot(tid).advance(ns);
    }
}

impl Clock for SimClock {
    fn now(&self) -> u64 {
        match current_tid() {
            Some(tid) => self.now_for(tid),
            None => 0,
        }
    }
}

impl ClockSource for SimClock {
    type Reader = VirtualClock;

    fn thread_reader(&self) -> VirtualClock {
        let tid = current_tid()
            .expect("SimClock reader requested outside a simulated team thread (is the SimScheduler policy installed?)");
        self.slot(tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::ClockReader;

    #[test]
    fn slots_are_independent() {
        let c = SimClock::new();
        c.slot(0).advance(10);
        c.slot(2).advance(5);
        assert_eq!(c.now_for(0), 10);
        assert_eq!(c.now_for(1), 0);
        assert_eq!(c.now_for(2), 5);
    }

    #[test]
    fn work_uses_the_bound_tid() {
        let c = SimClock::new();
        set_current_tid(Some(1));
        c.work(7);
        let reader = c.thread_reader();
        assert_eq!(ClockReader::now(&reader), 7);
        assert_eq!(c.now_for(0), 0);
        set_current_tid(None);
    }

    #[test]
    #[should_panic(expected = "outside a simulated team")]
    fn work_outside_team_panics() {
        set_current_tid(None);
        SimClock::new().work(1);
    }

    #[test]
    fn clones_share_slots() {
        let a = SimClock::new();
        let b = a.clone();
        a.slot(0).advance(3);
        assert_eq!(b.now_for(0), 3);
    }
}
