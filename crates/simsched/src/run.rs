//! One simulated run: workload × schedule → profile + replay + trace.

use crate::recorder::EventRecorder;
use crate::scheduler::{Choice, SimScheduler, DEFAULT_SPAWN_COST_NS};
use crate::workloads::TreeWorkload;
use std::sync::Arc;
use taskprof::{AssignPolicy, ProfMonitor, Replayer, ThreadSnapshot};
use taskrt::Team;

/// Where scheduling decisions come from.
#[derive(Clone, Debug)]
pub enum Choices {
    /// Every choice from a splitmix64 PRNG over this seed.
    Seed(u64),
    /// Replay this choice script, then fair round-robin (bounded DFS).
    Script(Vec<usize>),
}

/// Configuration of one simulated run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Simulated team size.
    pub nthreads: usize,
    /// Virtual cost charged per task creation.
    pub spawn_cost: u64,
    /// Decision source.
    pub choices: Choices,
}

impl SimConfig {
    /// Seeded run on `nthreads` simulated threads with the default spawn
    /// cost.
    pub fn seeded(nthreads: usize, seed: u64) -> Self {
        Self {
            nthreads,
            spawn_cost: DEFAULT_SPAWN_COST_NS,
            choices: Choices::Seed(seed),
        }
    }

    /// Scripted run (bounded DFS) on `nthreads` simulated threads.
    pub fn scripted(nthreads: usize, script: Vec<usize>) -> Self {
        Self {
            nthreads,
            spawn_cost: DEFAULT_SPAWN_COST_NS,
            choices: Choices::Script(script),
        }
    }
}

/// Everything one simulated run produced.
#[derive(Debug)]
pub struct SimRun {
    /// The configuration that produced this run.
    pub config: SimConfig,
    /// The profiler's output, measured incrementally during the run.
    pub profile: taskprof::Profile,
    /// Per-thread snapshots obtained by *replaying* the recorded event
    /// stream offline — must agree with `profile` (differential check).
    pub replayed: Vec<ThreadSnapshot>,
    /// The recorded per-thread event streams themselves (sorted by tid) —
    /// the input to `critpath::TaskDag::from_streams`.
    pub streams: Vec<(usize, Vec<taskprof::Event>)>,
    /// The schedule: every recorded decision, in order.
    pub trace: Vec<Choice>,
}

/// Execute `workload` once under full simulation: deterministic scheduler,
/// virtual clocks, the real profiler, and an event recorder in parallel.
/// Panics if a task body panics (workloads are expected not to).
pub fn run_workload(workload: &TreeWorkload, config: &SimConfig) -> SimRun {
    let sched = match &config.choices {
        Choices::Seed(seed) => SimScheduler::new(*seed),
        Choices::Script(script) => SimScheduler::scripted(script.clone()),
    }
    .with_spawn_cost(config.spawn_cost);
    let clock = sched.clock().clone();
    let sched = Arc::new(sched);
    let team = Team::new(config.nthreads).with_policy(sched.clone());

    let recorder = EventRecorder::new(clock.clone());
    let prof = ProfMonitor::builder()
        .clock(clock.clone())
        .build()
        .expect("profiler config is valid");
    // Recorder on the left: both monitors see each hook at the same
    // virtual timestamp, so the replayed stream is an exact transcript of
    // what the profiler measured.
    let monitor = (&recorder, &prof);
    workload.run(&team, &monitor, &clock).unwrap();

    let profile = prof.take_profile().expect("region finished");
    let streams = recorder.take_streams();
    let replayed = streams
        .iter()
        .map(|(tid, events)| {
            let mut r = Replayer::new(workload.parallel_region(), AssignPolicy::Executing);
            r.run(events.iter().copied());
            r.finish(*tid)
        })
        .collect();
    SimRun {
        config: config.clone(),
        profile,
        replayed,
        streams,
        trace: sched.take_trace(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn same_seed_same_profile() {
        let w = workloads::flat(4);
        let cfg = SimConfig::seeded(2, 7);
        let a = run_workload(&w, &cfg);
        let b = run_workload(&w, &cfg);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.profile.num_threads(), 2);
        for (ta, tb) in a.profile.threads.iter().zip(&b.profile.threads) {
            assert_eq!(ta.main, tb.main);
            assert_eq!(ta.task_trees, tb.task_trees);
            assert_eq!(ta.max_live_trees, tb.max_live_trees);
        }
    }

    #[test]
    fn different_seeds_usually_differ() {
        let w = workloads::flat(6);
        let a = run_workload(&w, &SimConfig::seeded(2, 1));
        let b = run_workload(&w, &SimConfig::seeded(2, 2));
        // Traces are overwhelmingly likely to differ on a 6-task graph;
        // the *invariants* agreeing anyway is what explore() checks.
        assert_ne!(a.trace, b.trace);
    }
}
