//! # simsched — deterministic schedule exploration for task profiles
//!
//! The profiler's correctness claims (paper Sections IV–V) are statements
//! about *every* schedule: exclusive times stay consistent however tasks
//! interleave (Fig. 3), stub time equals task-tree time per construct
//! (Fig. 5), and the live-instance high-water mark stays within the tied-
//! scheduling bound (Table II). Real work-stealing executions sample that
//! space blindly and unreproducibly. This crate makes the space
//! *drivable*: the real `taskrt` runtime executes under a
//! [`SimScheduler`] — a [`taskrt::SchedulePolicy`] that serializes the
//! team onto one execution token and takes every nondeterministic
//! decision (who runs at each scheduling point, defer vs. undeferred
//! creation, `single` arbitration order, steal victims) from a `u64` seed
//! or an explicit choice script — while a per-thread virtual clock
//! ([`SimClock`]) replaces the TSC so profiles are exact and
//! byte-reproducible.
//!
//! On top of single runs ([`run_workload`]), [`explore_seeds`] samples
//! many schedules and [`explore_dfs`] enumerates all of them for small
//! graphs; every run is checked against the invariant suite
//! ([`check_profile`], [`check_differential`]) and all runs must agree on
//! the schedule-invariant [`Fingerprint`].
//!
//! ```
//! use simsched::{explore_seeds, workloads};
//!
//! let w = workloads::fib_like(2);
//! let report = explore_seeds(&w, 2, 0..8);
//! assert!(report.is_clean(), "{:?}", report.violations);
//! assert_eq!(report.runs, 8);
//! ```

#![warn(missing_docs)]

mod clock;
mod explore;
mod invariants;
mod recorder;
mod rng;
mod run;
mod scheduler;
pub mod whatif;
pub mod workloads;

pub use clock::SimClock;
pub use explore::{explore_dfs, explore_seeds, ExploreReport};
pub use invariants::{check_differential, check_profile, fingerprint, Fingerprint, Violation};
pub use recorder::{EventRecorder, RecorderThread};
pub use rng::SplitMix64;
pub use run::{run_workload, Choices, SimConfig, SimRun};
pub use scheduler::{Choice, SimScheduler, DEFAULT_SPAWN_COST_NS};
pub use whatif::{validate_whatif, WhatIfValidation};
pub use workloads::{Step, TreeWorkload};
