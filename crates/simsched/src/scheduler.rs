//! The deterministic simulation scheduler.
//!
//! [`SimScheduler`] implements [`taskrt::SchedulePolicy`] so the *real*
//! runtime — the same worker, barrier, and taskwait code the production
//! work stealer drives — executes under simulation: real OS threads, but
//! exactly one runs at a time (an execution token handed over at task
//! scheduling points), and every nondeterministic choice is made by a
//! seeded PRNG or a scripted choice list. Combined with the per-thread
//! [`SimClock`], a run is a pure function of `(workload, nthreads, seed)`.
//!
//! # Choice model
//!
//! Every decision with more than one option flows through one serialized
//! [`ChoiceStream`]: which thread receives the token at each scheduling
//! point, and whether a `task()` defers or runs undeferred. The stream
//! records a trace of `(options, taken)` pairs, so a bounded DFS can
//! replay a prefix and branch into the untaken alternatives (see
//! [`crate::explore`]). Steal-victim and barrier acquire-order choices go
//! through a *side* PRNG derived from the seed: they are deterministic
//! per run but excluded from the DFS branching space, which would
//! otherwise explode.
//!
//! # Liveness
//!
//! The token is handed over among all threads still inside the parallel
//! region. In seeded mode the uniform pick reaches every thread with
//! probability 1; in scripted mode choices beyond the script fall back to
//! a fair round-robin counter, so barrier arrivals always make progress
//! (always-pick-thread-0 would livelock a barrier poll loop).

use crate::clock::{set_current_tid, SimClock};
use crate::rng::SplitMix64;
use std::sync::{Condvar, Mutex};
use taskrt::{AcquireOrder, SchedPoint, SchedulePolicy};

/// Default virtual-time cost of creating one deferred task, charged inside
/// the creator's `task_create` frame (so the paper's Fig. 5 creation split
/// is nonzero under simulation).
pub const DEFAULT_SPAWN_COST_NS: u64 = 40;

/// One recorded scheduling decision: `taken < options`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Choice {
    /// Number of alternatives that were available.
    pub options: usize,
    /// The alternative that was taken.
    pub taken: usize,
}

/// Serialized source of scheduling decisions: an optional script prefix,
/// then a seeded PRNG (seeded mode) or a fair round-robin counter
/// (scripted mode). Records everything it decides.
#[derive(Clone, Debug)]
pub(crate) struct ChoiceStream {
    script: Vec<usize>,
    rng: Option<SplitMix64>,
    round_robin: usize,
    trace: Vec<Choice>,
}

impl ChoiceStream {
    fn seeded(seed: u64) -> Self {
        Self {
            script: Vec::new(),
            rng: Some(SplitMix64::new(seed)),
            round_robin: 0,
            trace: Vec::new(),
        }
    }

    fn scripted(script: Vec<usize>) -> Self {
        Self {
            script,
            rng: None,
            round_robin: 0,
            trace: Vec::new(),
        }
    }

    /// Decide among `n` options. Trivial decisions (`n < 2`) are not
    /// consulted or recorded, so traces contain only real branch points.
    fn choose(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        if n < 2 {
            return 0;
        }
        let pos = self.trace.len();
        let taken = if pos < self.script.len() {
            self.script[pos] % n
        } else if let Some(rng) = &mut self.rng {
            rng.below(n)
        } else {
            let rr = self.round_robin;
            self.round_robin += 1;
            rr % n
        };
        self.trace.push(Choice { options: n, taken });
        taken
    }
}

struct State {
    /// Expected team size (set by the first `thread_start` of a region).
    expected: usize,
    /// Threads registered and not yet stopped, indexed by tid.
    alive: Vec<bool>,
    /// Threads whose last scheduling point was an *idle* poll (found
    /// nothing runnable) with no state-changing event since. Handing the
    /// token back to a blocked thread would replay the identical failed
    /// poll, so blocked threads are not candidates — which also bounds
    /// the decision trace (at most `nthreads` idle polls between real
    /// events), making DFS exploration finite.
    blocked: Vec<bool>,
    /// Registered-so-far count of the current region's startup barrier.
    registered: usize,
    /// Threads still inside the region (registered minus stopped).
    active: usize,
    /// Holder of the execution token (`None` before startup / after the
    /// last thread stops).
    running: Option<usize>,
    choices: ChoiceStream,
    side: SplitMix64,
}

impl State {
    /// Runnable candidates: alive and not idle-blocked. Falls back to all
    /// alive threads if everyone is blocked — that state is unreachable
    /// in a deadlock-free runtime (an idle poll always follows a failed
    /// progress attempt, and some thread can always progress), but
    /// liveness beats reduction if the reasoning is ever wrong.
    fn candidates(&self) -> Vec<usize> {
        let unblocked: Vec<usize> = (0..self.alive.len())
            .filter(|&t| self.alive[t] && !self.blocked[t])
            .collect();
        if !unblocked.is_empty() {
            return unblocked;
        }
        debug_assert!(
            !self.alive.iter().any(|&a| a),
            "every live simulated thread is idle-blocked (missed a state change?)"
        );
        (0..self.alive.len()).filter(|&t| self.alive[t]).collect()
    }

    /// A state-changing event happened: every idle-blocked thread may now
    /// be able to make progress again.
    fn unblock_all(&mut self) {
        self.blocked.iter_mut().for_each(|b| *b = false);
    }

    /// Hand the token to a chosen candidate (or park it when none).
    fn grant(&mut self) {
        let candidates = self.candidates();
        self.running = if candidates.is_empty() {
            None
        } else {
            Some(candidates[self.choices.choose(candidates.len())])
        };
    }
}

/// Deterministic scheduling policy: serialize the team onto one execution
/// token and make every choice from a seed (or script). Install with
/// [`taskrt::Team::with_policy`]; the paired [`SimClock`] must be the
/// profiler's clock source for the run to be fully virtual-time.
pub struct SimScheduler {
    clock: SimClock,
    spawn_cost: u64,
    state: Mutex<State>,
    cv: Condvar,
}

impl std::fmt::Debug for SimScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimScheduler")
            .field("spawn_cost", &self.spawn_cost)
            .finish_non_exhaustive()
    }
}

impl SimScheduler {
    fn with_choices(choices: ChoiceStream, side_seed: u64) -> Self {
        Self {
            clock: SimClock::new(),
            spawn_cost: DEFAULT_SPAWN_COST_NS,
            state: Mutex::new(State {
                expected: 0,
                alive: Vec::new(),
                blocked: Vec::new(),
                registered: 0,
                active: 0,
                running: None,
                choices,
                side: SplitMix64::new(side_seed ^ 0xD6E8_FEB8_6659_FD93),
            }),
            cv: Condvar::new(),
        }
    }

    /// Seeded mode: every choice comes from splitmix64 over `seed`.
    pub fn new(seed: u64) -> Self {
        Self::with_choices(ChoiceStream::seeded(seed), seed)
    }

    /// Scripted mode (bounded DFS): the first choices replay `script`
    /// (each entry taken modulo the number of options); once the script is
    /// exhausted, choices fall back to fair round-robin.
    pub fn scripted(script: Vec<usize>) -> Self {
        // Fixed side seed: a run replaying a script prefix must reproduce
        // the same steal/acquire decisions, or DFS branches would not
        // extend the schedule they think they are extending.
        Self::with_choices(ChoiceStream::scripted(script), 0x5851_F42D_4C95_7F2D)
    }

    /// Override the per-task-creation virtual cost (default
    /// [`DEFAULT_SPAWN_COST_NS`]).
    pub fn with_spawn_cost(mut self, ns: u64) -> Self {
        self.spawn_cost = ns;
        self
    }

    /// The per-thread virtual clock this scheduler charges costs to. Hand
    /// it to the profiler (`ProfMonitor::builder().clock(..)`) and to the
    /// workload (for [`SimClock::work`]).
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The trace of every recorded decision so far (call after the
    /// parallel region returns for the full schedule).
    pub fn take_trace(&self) -> Vec<Choice> {
        self.state.lock().expect("sim state poisoned").choices.trace.clone()
    }

    /// Block until the calling thread holds the token.
    fn wait_for_token<'a>(
        &self,
        mut st: std::sync::MutexGuard<'a, State>,
        tid: usize,
    ) -> std::sync::MutexGuard<'a, State> {
        while st.running != Some(tid) {
            st = self.cv.wait(st).expect("sim state poisoned");
        }
        st
    }

    /// Rotate the token at a scheduling point: pick the next runner among
    /// the candidates; if it is someone else, hand over and block until
    /// the token returns. An `idle` point (a poll that found nothing)
    /// blocks the caller until a state-changing event; a non-idle point
    /// is itself such an event and unblocks everyone.
    fn rotate(&self, tid: usize, idle: bool) {
        let mut st = self.state.lock().expect("sim state poisoned");
        debug_assert_eq!(st.running, Some(tid), "rotating without the token");
        if idle {
            st.blocked[tid] = true;
        } else {
            st.unblock_all();
        }
        let candidates = st.candidates();
        if candidates.len() > 1 || candidates.first() != Some(&tid) {
            let next = candidates[st.choices.choose(candidates.len())];
            if next != tid {
                st.running = Some(next);
                self.cv.notify_all();
                drop(self.wait_for_token(st, tid));
            }
        }
    }
}

impl SchedulePolicy for SimScheduler {
    fn thread_start(&self, tid: usize, nthreads: usize) {
        set_current_tid(Some(tid));
        let mut st = self.state.lock().expect("sim state poisoned");
        st.expected = nthreads;
        if st.alive.len() < nthreads {
            st.alive.resize(nthreads, false);
            st.blocked.resize(nthreads, false);
        }
        assert!(!st.alive[tid], "thread {tid} started twice in one region");
        st.alive[tid] = true;
        st.registered += 1;
        st.active += 1;
        st.unblock_all();
        // Startup barrier: no thread runs until the whole team registered,
        // so the first token grant chooses among all of them.
        if st.registered == st.expected {
            st.grant();
            self.cv.notify_all();
        }
        drop(self.wait_for_token(st, tid));
    }

    fn thread_stop(&self, tid: usize) {
        let mut st = self.state.lock().expect("sim state poisoned");
        st.alive[tid] = false;
        st.active -= 1;
        st.unblock_all();
        if st.running == Some(tid) {
            st.grant();
        }
        if st.active == 0 {
            // Region over: reset the startup barrier so the same policy
            // can serialize the session's next parallel region.
            st.registered = 0;
            st.running = None;
        }
        self.cv.notify_all();
        drop(st);
        set_current_tid(None);
    }

    fn sched_point(&self, tid: usize, point: SchedPoint) -> bool {
        if point == SchedPoint::Spawn {
            // Creation cost lands inside the creator's open task_create
            // frame (the runtime calls this hook between create_begin and
            // create_end).
            self.clock.advance_for(tid, self.spawn_cost);
        }
        let idle = matches!(point, SchedPoint::TaskwaitIdle | SchedPoint::BarrierIdle);
        self.rotate(tid, idle);
        // The token hand-off *is* the wait: the caller must not also
        // spin/snooze, or an empty poll loop would sleep while holding
        // the token.
        true
    }

    fn defer_task(&self, tid: usize) -> bool {
        let defer = {
            let mut st = self.state.lock().expect("sim state poisoned");
            st.choices.choose(2) == 0
        };
        if !defer {
            // Charge the same creation cost as the deferred path so a task
            // instance's inclusive time (own work + spawn cost per child
            // created) is identical in every schedule — the undeferred
            // cost lands in the creator's current frame instead of a
            // task_create frame, but inside the same instance either way.
            self.clock.advance_for(tid, self.spawn_cost);
        }
        defer
    }

    fn steal_start(&self, _tid: usize, nthreads: usize, _round_robin: usize) -> usize {
        let mut st = self.state.lock().expect("sim state poisoned");
        st.side.below(nthreads.max(1))
    }

    fn acquire_order(&self, _tid: usize) -> AcquireOrder {
        let mut st = self.state.lock().expect("sim state poisoned");
        // Mostly production order; occasionally steal-first, so barrier
        // draining explores remote-queue-first interleavings too. Safe:
        // pop_any executes whatever it acquires immediately (any task is
        // eligible at a barrier), so no task is ever parked by this.
        if st.side.below(4) == 0 {
            AcquireOrder::StealFirst
        } else {
            AcquireOrder::LocalFirst
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choice_stream_script_then_round_robin() {
        let mut c = ChoiceStream::scripted(vec![1, 0]);
        assert_eq!(c.choose(3), 1); // script[0]
        assert_eq!(c.choose(1), 0); // trivial, unrecorded
        assert_eq!(c.choose(2), 0); // script[1]
        assert_eq!(c.choose(3), 0); // rr 0
        assert_eq!(c.choose(3), 1); // rr 1
        assert_eq!(c.choose(2), 0); // rr 2 % 2
        assert_eq!(
            c.trace.iter().map(|ch| ch.taken).collect::<Vec<_>>(),
            vec![1, 0, 0, 1, 0]
        );
    }

    #[test]
    fn choice_stream_seeded_is_reproducible() {
        let mut a = ChoiceStream::seeded(9);
        let mut b = ChoiceStream::seeded(9);
        let seq_a: Vec<usize> = (0..32).map(|_| a.choose(4)).collect();
        let seq_b: Vec<usize> = (0..32).map(|_| b.choose(4)).collect();
        assert_eq!(seq_a, seq_b);
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn script_entries_wrap_modulo_options() {
        let mut c = ChoiceStream::scripted(vec![7]);
        assert_eq!(c.choose(3), 1); // 7 % 3
    }

    #[test]
    fn scheduler_single_thread_flows_through() {
        // A 1-thread "team": the token is granted immediately and every
        // scheduling point keeps it (no other candidates).
        let s = SimScheduler::new(0);
        s.thread_start(0, 1);
        assert!(s.sched_point(0, SchedPoint::BarrierPoll));
        assert!(s.sched_point(0, SchedPoint::Spawn));
        assert_eq!(s.clock().now_for(0), DEFAULT_SPAWN_COST_NS);
        s.thread_stop(0);
        assert!(s.take_trace().is_empty(), "1-thread runs have no choices");
    }

    #[test]
    fn spawn_cost_is_configurable() {
        let s = SimScheduler::new(0).with_spawn_cost(7);
        s.thread_start(0, 1);
        s.sched_point(0, SchedPoint::Spawn);
        assert_eq!(s.clock().now_for(0), 7);
        s.thread_stop(0);
    }
}
