//! Profile-invariant checking.
//!
//! Three families of checks run after every simulated schedule:
//!
//! 1. **Single-profile consistency** ([`check_profile`]) — properties any
//!    correct profile of any schedule must have: non-negative exclusive
//!    time at every node under the `Executing` attribution policy (the
//!    paper's Fig. 3 shows only `Creating` may go negative), statistics
//!    sanity, the per-thread stub/task-tree accounting identity of Fig. 5
//!    (time in stub nodes of a construct equals time in its aggregated
//!    task tree), and the Table II bound on concurrently live instance
//!    trees.
//! 2. **Differential agreement** ([`check_differential`]) — the profile
//!    measured incrementally during the run must match the profile
//!    obtained by replaying the recorded event stream offline through
//!    [`taskprof::Replayer`].
//! 3. **Schedule invariance** ([`fingerprint`]) — quantities that must
//!    not depend on scheduling at all under virtual time: instance
//!    counts, per-construct totals and min/max instance durations, and
//!    region visit counts (task-creation regions excluded: a policy may
//!    run a task undeferred, which skips its creation region).

use crate::run::SimRun;
use crate::workloads::TreeWorkload;
use pomp::{registry, RegionId, RegionKind};
use std::collections::BTreeMap;
use taskprof::{NodeKind, Profile, SnapNode, ThreadSnapshot};

/// One violated invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Where the violation was found (thread, node path, ...).
    pub context: String,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.context, self.message)
    }
}

fn violation(out: &mut Vec<Violation>, context: impl Into<String>, message: String) {
    out.push(Violation {
        context: context.into(),
        message,
    });
}

fn node_label(kind: NodeKind) -> String {
    match kind {
        NodeKind::Region(r) => registry().name(r),
        NodeKind::Stub(r) => format!("stub:{}", registry().name(r)),
        NodeKind::Param(p, v) => format!("{}={v}", registry().param_name(p)),
        NodeKind::Truncated => "<truncated>".to_string(),
    }
}

/// Walk a tree checking per-node statistics sanity and the Fig. 3
/// non-negativity of exclusive time (always true under `Executing`
/// attribution — the profiler never charges a child more than its
/// parent's span).
fn check_tree(tree: &SnapNode, ctx: &str, out: &mut Vec<Violation>) {
    tree.walk(&mut |_, node| {
        let label = node_label(node.kind);
        let s = &node.stats;
        if node.exclusive_ns() < 0 {
            violation(
                out,
                format!("{ctx}/{label}"),
                format!(
                    "negative exclusive time {} ns (inclusive {}, children {})",
                    node.exclusive_ns(),
                    s.sum_ns,
                    s.sum_ns as i64 - node.exclusive_ns()
                ),
            );
        }
        if s.samples > s.visits {
            violation(
                out,
                format!("{ctx}/{label}"),
                format!("more samples ({}) than visits ({})", s.samples, s.visits),
            );
        }
        if s.samples == 0 {
            if s.min_ns != u64::MAX || s.max_ns != 0 || s.sum_ns != 0 {
                violation(
                    out,
                    format!("{ctx}/{label}"),
                    format!(
                        "unsampled node has nonempty durations (min {}, max {}, sum {})",
                        s.min_ns, s.max_ns, s.sum_ns
                    ),
                );
            }
        } else {
            if s.min_ns > s.max_ns {
                violation(
                    out,
                    format!("{ctx}/{label}"),
                    format!("min {} > max {}", s.min_ns, s.max_ns),
                );
            }
            if s.sum_ns < s.max_ns {
                violation(
                    out,
                    format!("{ctx}/{label}"),
                    format!("sum {} < max {}", s.sum_ns, s.max_ns),
                );
            }
        }
    });
}

/// Sum stub statistics per construct over one thread's forest.
fn stub_totals(thread: &ThreadSnapshot) -> BTreeMap<RegionId, (u64, u64)> {
    let mut totals: BTreeMap<RegionId, (u64, u64)> = BTreeMap::new();
    let mut collect = |tree: &SnapNode| {
        tree.walk(&mut |_, node| {
            if let NodeKind::Stub(r) = node.kind {
                let e = totals.entry(r).or_insert((0, 0));
                e.0 += node.stats.sum_ns;
                e.1 += node.stats.visits;
            }
        });
    };
    collect(&thread.main);
    for tree in &thread.task_trees {
        collect(tree);
    }
    totals
}

/// Check one profile against the schedule-independent consistency rules.
/// `workload` supplies the structural expectations (instance count,
/// live-tree bound).
pub fn check_profile(
    profile: &Profile,
    workload: &TreeWorkload,
    nthreads: usize,
) -> Vec<Violation> {
    let mut out = Vec::new();
    if profile.num_threads() != nthreads {
        violation(
            &mut out,
            "profile",
            format!("{} thread snapshots, expected {nthreads}", profile.num_threads()),
        );
        return out;
    }

    let bound = workload.live_tree_bound();
    for thread in &profile.threads {
        let ctx = format!("tid{}", thread.tid);
        check_tree(&thread.main, &ctx, &mut out);
        for tree in &thread.task_trees {
            check_tree(tree, &ctx, &mut out);
        }

        // Fig. 5 identity: per construct, the time the thread spent inside
        // task fragments (stub nodes at scheduling points) equals the time
        // accounted in its aggregated task tree.
        let stubs = stub_totals(thread);
        for tree in &thread.task_trees {
            let NodeKind::Region(r) = tree.kind else {
                violation(&mut out, &ctx, format!("task tree root is {:?}", tree.kind));
                continue;
            };
            let (stub_sum, stub_visits) = stubs.get(&r).copied().unwrap_or((0, 0));
            if stub_sum != tree.stats.sum_ns {
                violation(
                    &mut out,
                    format!("{ctx}/{}", registry().name(r)),
                    format!(
                        "stub time {} ns != task tree time {} ns (Fig. 5 identity)",
                        stub_sum, tree.stats.sum_ns
                    ),
                );
            }
            if stub_visits < tree.stats.samples {
                violation(
                    &mut out,
                    format!("{ctx}/{}", registry().name(r)),
                    format!(
                        "{} stub fragments < {} completed instances",
                        stub_visits, tree.stats.samples
                    ),
                );
            }
        }
        for (&r, &(stub_sum, _)) in &stubs {
            if thread.task_tree(r).is_none() && stub_sum > 0 {
                violation(
                    &mut out,
                    format!("{ctx}/{}", registry().name(r)),
                    format!("{stub_sum} ns in stubs but no task tree for the construct"),
                );
            }
        }

        // Table II bound: tied tasks can only stack as deep as the graph
        // nests.
        if thread.max_live_trees > bound {
            violation(
                &mut out,
                &ctx,
                format!(
                    "max_live_trees {} exceeds the workload nesting bound {}",
                    thread.max_live_trees, bound
                ),
            );
        }
        if thread.shed_instances != 0 {
            violation(
                &mut out,
                &ctx,
                format!("{} instances shed without a configured cap", thread.shed_instances),
            );
        }
        if !thread.diagnostics.is_empty() {
            violation(
                &mut out,
                &ctx,
                format!("self-healing diagnostics present: {:?}", thread.diagnostics),
            );
        }
    }

    // Every instance completes exactly once, on exactly one thread.
    let task = workload.task_region();
    let completed: u64 = profile
        .threads
        .iter()
        .filter_map(|t| t.task_tree(task))
        .map(|tree| tree.stats.samples)
        .sum();
    let expected = workload.expected_instances(nthreads);
    if completed != expected {
        violation(
            &mut out,
            "profile",
            format!("{completed} completed instances, workload creates {expected}"),
        );
    }
    if profile.aborted_instances() != 0 {
        violation(
            &mut out,
            "profile",
            format!("{} aborted instances", profile.aborted_instances()),
        );
    }
    out
}

/// Compare the incrementally measured profile against the offline replay
/// of the recorded event stream. Arena capacity is exempt (an allocation
/// strategy, not a measurement); everything else must agree exactly.
pub fn check_differential(run: &SimRun) -> Vec<Violation> {
    let mut out = Vec::new();
    if run.replayed.len() != run.profile.threads.len() {
        violation(
            &mut out,
            "differential",
            format!(
                "{} replayed streams vs {} profiled threads",
                run.replayed.len(),
                run.profile.threads.len()
            ),
        );
        return out;
    }
    for (measured, replayed) in run.profile.threads.iter().zip(&run.replayed) {
        let ctx = format!("differential/tid{}", measured.tid);
        if measured.tid != replayed.tid {
            violation(
                &mut out,
                &ctx,
                format!("tid mismatch: replayed {}", replayed.tid),
            );
            continue;
        }
        if measured.main != replayed.main {
            violation(
                &mut out,
                &ctx,
                "main tree: live profiler and event replay disagree".to_string(),
            );
        }
        if measured.task_trees != replayed.task_trees {
            violation(
                &mut out,
                &ctx,
                "task trees: live profiler and event replay disagree".to_string(),
            );
        }
        if measured.max_live_trees != replayed.max_live_trees {
            violation(
                &mut out,
                &ctx,
                format!(
                    "max_live_trees: measured {} vs replayed {}",
                    measured.max_live_trees, replayed.max_live_trees
                ),
            );
        }
    }
    out
}

/// The schedule-invariant digest of a profile: equal across *all*
/// schedules of the same workload under virtual time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fingerprint {
    /// Completed task instances, team-wide.
    pub instances: u64,
    /// Per task construct: (region, samples, sum, min, max) aggregated
    /// over threads.
    pub task_stats: Vec<(RegionId, u64, u64, u64, u64)>,
    /// Team-wide visit counts per region, excluding task-creation regions
    /// (whose visits depend on the defer-vs-undeferred choice) — stub,
    /// parameter, and truncated nodes are not regions and not counted.
    pub region_visits: Vec<(RegionId, u64)>,
}

/// Compute the schedule-invariant fingerprint of a profile.
pub fn fingerprint(profile: &Profile) -> Fingerprint {
    let mut tasks: BTreeMap<RegionId, (u64, u64, u64, u64)> = BTreeMap::new();
    let mut visits: BTreeMap<RegionId, u64> = BTreeMap::new();
    for thread in &profile.threads {
        for tree in &thread.task_trees {
            if let NodeKind::Region(r) = tree.kind {
                let e = tasks.entry(r).or_insert((0, 0, u64::MAX, 0));
                e.0 += tree.stats.samples;
                e.1 += tree.stats.sum_ns;
                e.2 = e.2.min(tree.stats.min_ns);
                e.3 = e.3.max(tree.stats.max_ns);
            }
        }
        let mut count = |tree: &SnapNode, skip_root: bool| {
            tree.walk(&mut |depth, node| {
                if skip_root && depth == 0 {
                    return;
                }
                if let NodeKind::Region(r) = node.kind {
                    if registry().kind(r) != RegionKind::TaskCreate {
                        *visits.entry(r).or_insert(0) += node.stats.visits;
                    }
                }
            });
        };
        count(&thread.main, false);
        for tree in &thread.task_trees {
            // Task-tree roots are counted through `samples` in task_stats;
            // their `visits` equal samples anyway, but keeping them out of
            // the region map avoids double bookkeeping.
            count(tree, true);
        }
    }
    Fingerprint {
        instances: tasks.values().map(|t| t.0).sum(),
        task_stats: tasks
            .into_iter()
            .map(|(r, (samples, sum, min, max))| (r, samples, sum, min, max))
            .collect(),
        region_visits: visits.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{run_workload, SimConfig};
    use crate::workloads;

    #[test]
    fn clean_run_has_no_violations() {
        let w = workloads::fib_like(3);
        let run = run_workload(&w, &SimConfig::seeded(2, 11));
        let v = check_profile(&run.profile, &w, 2);
        assert!(v.is_empty(), "{v:?}");
        let d = check_differential(&run);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn fingerprints_agree_across_seeds() {
        let w = workloads::mixed();
        let base = fingerprint(&run_workload(&w, &SimConfig::seeded(3, 0)).profile);
        for seed in 1..6 {
            let fp = fingerprint(&run_workload(&w, &SimConfig::seeded(3, seed)).profile);
            assert_eq!(base, fp, "seed {seed} diverged");
        }
        assert_eq!(base.instances, w.expected_instances(3));
    }

    #[test]
    fn tampered_profile_is_caught() {
        let w = workloads::flat(3);
        let mut run = run_workload(&w, &SimConfig::seeded(2, 5));
        // Corrupt one node: inflate a task tree's total without touching
        // its stubs — the Fig. 5 identity must flag it.
        let t = run
            .profile
            .threads
            .iter_mut()
            .find(|t| !t.task_trees.is_empty())
            .expect("someone ran a task");
        t.task_trees[0].stats.sum_ns += 1;
        let v = check_profile(&run.profile, &w, 2);
        assert!(
            v.iter().any(|v| v.message.contains("Fig. 5")),
            "tampering went unnoticed: {v:?}"
        );
    }
}
