//! Differential event recording.
//!
//! [`EventRecorder`] is a [`pomp::Monitor`] that transcribes the hook
//! stream of a simulated run into per-thread [`taskprof::Event`] lists
//! (virtual-time deltas become `Event::Advance`). Pair it with the real
//! profiler — `(&recorder, &prof)` with the recorder on the left so both
//! observe identical clock values — then replay each stream through
//! [`taskprof::Replayer`] and compare snapshots: the incremental profiler
//! and the offline replayer must agree on every node, or one of them is
//! wrong. That cross-check is the "differential" half of the invariant
//! suite in [`crate::invariants`].

use crate::clock::SimClock;
use pomp::{ClockReader, Monitor, ParamId, RegionId, TaskId, TaskRef, ThreadHooks, VirtualClock};
use std::cell::{Cell, RefCell};
use std::sync::Mutex;
use taskprof::Event;

/// Per-thread transcriber: buffers the hook stream as replayable events.
#[derive(Debug)]
pub struct RecorderThread {
    reader: VirtualClock,
    last: Cell<u64>,
    events: RefCell<Vec<Event>>,
}

impl RecorderThread {
    fn emit(&self, ev: Event) {
        let now = ClockReader::now(&self.reader);
        let mut events = self.events.borrow_mut();
        let last = self.last.get();
        if now > last {
            events.push(Event::Advance(now - last));
            self.last.set(now);
        }
        events.push(ev);
    }
}

impl ThreadHooks for RecorderThread {
    fn enter(&self, region: RegionId) {
        self.emit(Event::Enter(region));
    }

    fn exit(&self, region: RegionId) {
        self.emit(Event::Exit(region));
    }

    fn task_create_begin(&self, create_region: RegionId, task_region: RegionId, new_task: TaskId) {
        self.emit(Event::CreateBegin {
            create: create_region,
            task_region,
            id: new_task,
        });
    }

    fn task_create_end(&self, create_region: RegionId, new_task: TaskId) {
        self.emit(Event::CreateEnd {
            create: create_region,
            id: new_task,
        });
    }

    fn task_begin(&self, task_region: RegionId, task: TaskId) {
        self.emit(Event::TaskBegin {
            region: task_region,
            id: task,
        });
    }

    fn task_end(&self, task_region: RegionId, task: TaskId) {
        self.emit(Event::TaskEnd {
            region: task_region,
            id: task,
        });
    }

    fn task_abort(&self, task_region: RegionId, task: TaskId) {
        self.emit(Event::TaskAbort {
            region: task_region,
            id: task,
        });
    }

    fn task_switch(&self, resumed: TaskRef) {
        self.emit(Event::Switch(resumed));
    }

    fn parameter_begin(&self, param: ParamId, value: i64) {
        self.emit(Event::ParamBegin { param, value });
    }

    fn parameter_end(&self, param: ParamId) {
        self.emit(Event::ParamEnd { param });
    }
}

/// Monitor that records each simulated thread's event stream.
#[derive(Debug, Default)]
pub struct EventRecorder {
    clock: SimClock,
    streams: Mutex<Vec<(usize, Vec<Event>)>>,
}

impl EventRecorder {
    /// A recorder reading timestamps from `clock` (clone of the
    /// scheduler's [`SimClock`], so recorded deltas match what the paired
    /// profiler measures).
    pub fn new(clock: SimClock) -> Self {
        Self {
            clock,
            streams: Mutex::new(Vec::new()),
        }
    }

    /// The recorded per-thread streams, sorted by tid. Each stream covers
    /// one thread's parallel region begin-to-end; a trailing
    /// `Event::Advance` carries any time between the last hook and the
    /// thread's end.
    pub fn take_streams(&self) -> Vec<(usize, Vec<Event>)> {
        let mut streams = std::mem::take(&mut *self.streams.lock().expect("recorder poisoned"));
        streams.sort_by_key(|(tid, _)| *tid);
        streams
    }
}

impl Monitor for EventRecorder {
    type Thread = RecorderThread;

    fn thread_begin(&self, tid: usize, _nthreads: usize, _region: RegionId) -> RecorderThread {
        let reader = self.clock.slot(tid);
        let last = ClockReader::now(&reader);
        RecorderThread {
            reader,
            last: Cell::new(last),
            events: RefCell::new(Vec::new()),
        }
    }

    fn thread_end(&self, tid: usize, thread: RecorderThread) {
        let now = ClockReader::now(&thread.reader);
        let mut events = thread.events.into_inner();
        let last = thread.last.get();
        if now > last {
            events.push(Event::Advance(now - last));
        }
        self.streams
            .lock()
            .expect("recorder poisoned")
            .push((tid, events));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::set_current_tid;

    #[test]
    fn records_deltas_not_absolutes() {
        let clock = SimClock::new();
        let rec = EventRecorder::new(clock.clone());
        set_current_tid(Some(0));
        let t = rec.thread_begin(0, 1, RegionId(1));
        clock.work(10);
        t.enter(RegionId(2));
        clock.work(5);
        t.exit(RegionId(2));
        rec.thread_end(0, t);
        set_current_tid(None);
        let streams = rec.take_streams();
        assert_eq!(streams.len(), 1);
        let (tid, events) = &streams[0];
        assert_eq!(*tid, 0);
        assert!(matches!(events[0], Event::Advance(10)));
        assert!(matches!(events[1], Event::Enter(RegionId(2))));
        assert!(matches!(events[2], Event::Advance(5)));
        assert!(matches!(events[3], Event::Exit(RegionId(2))));
        assert_eq!(events.len(), 4);
    }

    #[test]
    fn trailing_time_is_flushed_at_thread_end() {
        let clock = SimClock::new();
        let rec = EventRecorder::new(clock.clone());
        set_current_tid(Some(3));
        let t = rec.thread_begin(3, 4, RegionId(1));
        clock.work(7);
        rec.thread_end(3, t);
        set_current_tid(None);
        let streams = rec.take_streams();
        assert!(matches!(streams[0].1[..], [Event::Advance(7)]));
    }
}
