//! Schedule exploration: many schedules, one set of invariants.
//!
//! [`explore_seeds`] samples the schedule space with a seeded PRNG per
//! run; [`explore_dfs`] enumerates it exhaustively for small graphs by
//! branching on every recorded decision (bounded by a schedule budget).
//! Both check every run with the full invariant suite of
//! [`crate::invariants`] and additionally require the schedule-invariant
//! [`Fingerprint`] to be identical across all explored schedules.

use crate::invariants::{check_differential, check_profile, fingerprint, Fingerprint, Violation};
use crate::run::{run_workload, SimConfig, SimRun};
use crate::workloads::TreeWorkload;
use std::collections::HashSet;

/// Outcome of an exploration.
#[derive(Debug)]
pub struct ExploreReport {
    /// Number of schedules executed.
    pub runs: usize,
    /// Number of *distinct* schedules seen (distinct decision traces).
    pub distinct_schedules: usize,
    /// All violations, tagged with the schedule that produced them.
    pub violations: Vec<Violation>,
    /// The common fingerprint (of the first run) — `None` if nothing ran.
    pub fingerprint: Option<Fingerprint>,
}

impl ExploreReport {
    /// True when every run passed every check.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

fn check_run(
    run: &SimRun,
    workload: &TreeWorkload,
    nthreads: usize,
    reference: &mut Option<Fingerprint>,
    tag: &str,
    violations: &mut Vec<Violation>,
) {
    let mut found = check_profile(&run.profile, workload, nthreads);
    found.extend(check_differential(run));
    let fp = fingerprint(&run.profile);
    match reference {
        None => *reference = Some(fp),
        Some(expected) => {
            if *expected != fp {
                found.push(Violation {
                    context: "fingerprint".to_string(),
                    message: format!(
                        "schedule-variant profile: expected {expected:?}, got {fp:?}"
                    ),
                });
            }
        }
    }
    for mut v in found {
        v.context = format!("{tag}/{}", v.context);
        violations.push(v);
    }
}

/// Run `workload` once per seed in `seeds` and check all invariants,
/// including fingerprint equality across every seed.
pub fn explore_seeds(
    workload: &TreeWorkload,
    nthreads: usize,
    seeds: impl IntoIterator<Item = u64>,
) -> ExploreReport {
    let mut violations = Vec::new();
    let mut reference = None;
    let mut traces = HashSet::new();
    let mut runs = 0;
    for seed in seeds {
        let run = run_workload(workload, &SimConfig::seeded(nthreads, seed));
        runs += 1;
        traces.insert(run.trace.clone());
        check_run(
            &run,
            workload,
            nthreads,
            &mut reference,
            &format!("seed{seed}"),
            &mut violations,
        );
    }
    ExploreReport {
        runs,
        distinct_schedules: traces.len(),
        violations,
        fingerprint: reference,
    }
}

/// Exhaustively enumerate schedules by depth-first search over the
/// decision trace: run a script, then branch on every decision the run
/// made beyond the script with every untaken alternative. Stops after
/// `max_schedules` runs (the space is exponential); returns the report
/// plus whether the space was exhausted.
pub fn explore_dfs(
    workload: &TreeWorkload,
    nthreads: usize,
    max_schedules: usize,
) -> (ExploreReport, bool) {
    let mut violations = Vec::new();
    let mut reference = None;
    let mut seen_traces = HashSet::new();
    let mut runs = 0;
    // Frontier of choice scripts still to try; starts with the empty
    // script (pure round-robin baseline).
    let mut frontier: Vec<Vec<usize>> = vec![Vec::new()];
    let mut exhausted = true;
    while let Some(script) = frontier.pop() {
        if runs >= max_schedules {
            exhausted = false;
            break;
        }
        let script_len = script.len();
        let run = run_workload(workload, &SimConfig::scripted(nthreads, script));
        runs += 1;
        if !seen_traces.insert(run.trace.clone()) {
            // An alternative prefix converged onto an already-checked
            // schedule; nothing new to branch on.
            continue;
        }
        check_run(
            &run,
            workload,
            nthreads,
            &mut reference,
            &format!("dfs{}", runs - 1),
            &mut violations,
        );
        // Branch: for every decision made beyond the fixed script, queue
        // the prefix with each untaken alternative.
        let taken: Vec<usize> = run.trace.iter().map(|c| c.taken).collect();
        for i in script_len..run.trace.len() {
            for alt in 0..run.trace[i].options {
                if alt != run.trace[i].taken {
                    let mut branch = taken[..i].to_vec();
                    branch.push(alt);
                    frontier.push(branch);
                }
            }
        }
    }
    (
        ExploreReport {
            runs,
            distinct_schedules: seen_traces.len(),
            violations,
            fingerprint: reference,
        },
        exhausted,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn seeds_explore_cleanly_and_diversely() {
        let w = workloads::flat(4);
        let report = explore_seeds(&w, 2, 0..16);
        assert_eq!(report.runs, 16);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert!(
            report.distinct_schedules > 1,
            "16 seeds produced a single schedule"
        );
    }

    #[test]
    fn dfs_exhausts_a_tiny_graph() {
        let w = workloads::flat(1);
        let (report, exhausted) = explore_dfs(&w, 2, 500);
        assert!(exhausted, "tiny graph should exhaust within 500 schedules");
        assert!(report.is_clean(), "{:?}", report.violations);
        assert!(report.distinct_schedules >= 2);
    }

    #[test]
    fn dfs_respects_the_budget() {
        let w = workloads::fib_like(2);
        let (report, _) = explore_dfs(&w, 2, 10);
        assert!(report.runs <= 10);
        assert!(report.is_clean(), "{:?}", report.violations);
    }
}
