//! `bots` — a from-scratch Rust port of the Barcelona OpenMP Tasks Suite
//! (Duran et al., ICPP 2009) on the `taskrt` tied-task runtime.
//!
//! The paper evaluates its profiler on the nine BOTS codes; this crate
//! provides all nine with the same task shapes:
//!
//! | code       | pattern                                   | cut-off variant |
//! |------------|-------------------------------------------|-----------------|
//! | alignment  | single creator, one task per pair         | no              |
//! | fft        | binary task recursion + combine           | no              |
//! | fib        | binary task recursion, tiny leaf work     | yes (depth)     |
//! | floorplan  | branch-and-bound, task per candidate      | yes (depth)     |
//! | health     | task per child village per time step      | yes (level)     |
//! | nqueens    | task per valid placement per row          | yes (row)       |
//! | sort       | 4-way sort tasks + recursive merge tasks  | no              |
//! | sparselu   | single creator, task per block op         | no              |
//! | strassen   | 7 product tasks per recursion level       | yes (depth)     |
//!
//! Every code has a serial reference implementation used for verification,
//! deterministic input generation, and a uniform entry point
//! ([`run_app`]) used by the experiment harness. Input sizes are scaled
//! by [`Scale`]; `Scale::Medium` is the default for the paper-shaped
//! experiments (scaled down from the paper's cluster inputs — see
//! `EXPERIMENTS.md`).

#![warn(missing_docs)]

pub mod alignment;
pub mod fft;
pub mod fib;
pub mod floorplan;
pub mod health;
pub mod nqueens;
pub mod sort;
pub mod sparselu;
pub mod strassen;
pub mod util;

use pomp::Monitor;
use std::time::Duration;

/// Input-size scale of a run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Tiny inputs for unit tests (sub-second in debug builds).
    Test,
    /// Small inputs for quick experiments.
    Small,
    /// The default experiment size (scaled-down analogue of the paper's
    /// "medium" BOTS inputs).
    Medium,
}

/// Which BOTS variant to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Variant {
    /// Unbounded task creation (paper Fig. 14 / Fig. 15 / Table I).
    NoCutoff,
    /// Recursion cut-off: below a depth threshold no tasks are created
    /// (paper Fig. 13). Falls back to `NoCutoff` for codes without a
    /// cut-off version (alignment, fft, sort, sparselu).
    Cutoff,
}

/// Options of one benchmark run.
#[derive(Clone, Copy, Debug)]
pub struct RunOpts {
    /// Team size.
    pub threads: usize,
    /// Input scale.
    pub scale: Scale,
    /// Cut-off variant.
    pub variant: Variant,
    /// Enable parameter (recursion-depth) instrumentation where supported
    /// (nqueens — the paper's Table IV experiment).
    pub depth_param: bool,
}

impl RunOpts {
    /// Medium no-cutoff run on `threads` threads.
    pub fn new(threads: usize) -> Self {
        Self {
            threads,
            scale: Scale::Medium,
            variant: Variant::NoCutoff,
            depth_param: false,
        }
    }

    /// Builder: set the scale.
    pub fn scale(mut self, scale: Scale) -> Self {
        self.scale = scale;
        self
    }

    /// Builder: set the variant.
    pub fn variant(mut self, variant: Variant) -> Self {
        self.variant = variant;
        self
    }

    /// Builder: enable depth-parameter instrumentation.
    pub fn with_depth_param(mut self) -> Self {
        self.depth_param = true;
        self
    }
}

/// Result of one benchmark run.
#[derive(Clone, Copy, Debug)]
pub struct Outcome {
    /// Wall time of the parallel kernel (the quantity BOTS reports).
    pub kernel: Duration,
    /// Order-independent result checksum.
    pub checksum: u64,
    /// True when the result matches the serial reference.
    pub verified: bool,
}

/// The nine BOTS codes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum AppId {
    Alignment,
    Fft,
    Fib,
    Floorplan,
    Health,
    Nqueens,
    Sort,
    SparseLu,
    Strassen,
}

/// All codes, in the paper's (alphabetical) order.
pub const ALL_APPS: [AppId; 9] = [
    AppId::Alignment,
    AppId::Fft,
    AppId::Fib,
    AppId::Floorplan,
    AppId::Health,
    AppId::Nqueens,
    AppId::Sort,
    AppId::SparseLu,
    AppId::Strassen,
];

impl AppId {
    /// Lowercase display name (matches the paper's figures).
    pub fn name(self) -> &'static str {
        match self {
            AppId::Alignment => "alignment",
            AppId::Fft => "fft",
            AppId::Fib => "fib",
            AppId::Floorplan => "floorplan",
            AppId::Health => "health",
            AppId::Nqueens => "nqueens",
            AppId::Sort => "sort",
            AppId::SparseLu => "sparselu",
            AppId::Strassen => "strassen",
        }
    }

    /// True for codes that provide a cut-off version in BOTS (paper
    /// Section V-A: fib, floorplan, health, nqueens, strassen).
    pub fn has_cutoff(self) -> bool {
        matches!(
            self,
            AppId::Fib | AppId::Floorplan | AppId::Health | AppId::Nqueens | AppId::Strassen
        )
    }

    /// The name of this code's *primary* task construct region (for
    /// profile queries; sort and sparselu have additional constructs).
    pub fn task_region_name(self) -> &'static str {
        match self {
            AppId::Alignment => "alignment_pair",
            AppId::Fft => "fft_split",
            AppId::Fib => "fib",
            AppId::Floorplan => "floorplan_add_cell",
            AppId::Health => "health_village",
            AppId::Nqueens => "nqueens",
            AppId::Sort => "sort_split",
            AppId::SparseLu => "sparselu_bmod",
            AppId::Strassen => "strassen_mul",
        }
    }
}

/// Run one BOTS code under the given monitor. The single entry point used
/// by examples, tests, and the experiment harness.
pub fn run_app<M: Monitor>(id: AppId, monitor: &M, opts: &RunOpts) -> Outcome {
    match id {
        AppId::Alignment => alignment::run(monitor, opts),
        AppId::Fft => fft::run(monitor, opts),
        AppId::Fib => fib::run(monitor, opts),
        AppId::Floorplan => floorplan::run(monitor, opts),
        AppId::Health => health::run(monitor, opts),
        AppId::Nqueens => nqueens::run(monitor, opts),
        AppId::Sort => sort::run(monitor, opts),
        AppId::SparseLu => sparselu::run(monitor, opts),
        AppId::Strassen => strassen::run(monitor, opts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::NullMonitor;

    #[test]
    fn every_app_runs_and_verifies_at_test_scale() {
        for app in ALL_APPS {
            let opts = RunOpts::new(2).scale(Scale::Test);
            let out = run_app(app, &NullMonitor, &opts);
            assert!(out.verified, "{} failed verification", app.name());
        }
    }

    #[test]
    fn cutoff_variants_verify() {
        for app in ALL_APPS.into_iter().filter(|a| a.has_cutoff()) {
            let opts = RunOpts::new(2).scale(Scale::Test).variant(Variant::Cutoff);
            let out = run_app(app, &NullMonitor, &opts);
            assert!(out.verified, "{} (cutoff) failed verification", app.name());
        }
    }

    #[test]
    fn checksums_are_reproducible_across_thread_counts() {
        for app in ALL_APPS {
            // floorplan's explored-node count is schedule-dependent; its
            // checksum is the best area, which must still agree.
            let a = run_app(app, &NullMonitor, &RunOpts::new(1).scale(Scale::Test));
            let b = run_app(app, &NullMonitor, &RunOpts::new(4).scale(Scale::Test));
            assert_eq!(a.checksum, b.checksum, "{} checksum unstable", app.name());
        }
    }
}
