//! BOTS `strassen`: Strassen matrix multiplication with one task per
//! sub-product (7 per recursion level).
//!
//! In the paper's Table I strassen is the *well-sized* code: ~150 µs mean
//! task time, two orders of magnitude above fib/health/nqueens — and the
//! only code with near-zero profiling overhead in Figs. 13/14.

use crate::util::SplitMix64;
use crate::{Outcome, RunOpts, Scale, Variant};
use pomp::{Monitor, RegionId};
use std::sync::OnceLock;
use std::time::Instant;
use taskrt::{taskwait_region, ParallelConstruct, SingleConstruct, TaskConstruct, TaskCtx, Team};

/// Regions of the strassen benchmark.
pub struct Regions {
    /// The parallel region.
    pub par: ParallelConstruct,
    /// The per-product task construct.
    pub task: TaskConstruct,
    /// The joining taskwait.
    pub tw: RegionId,
    /// The single construct hosting the root call.
    pub single: SingleConstruct,
}

/// Lazily registered regions.
pub fn regions() -> &'static Regions {
    static R: OnceLock<Regions> = OnceLock::new();
    R.get_or_init(|| Regions {
        par: ParallelConstruct::new("strassen!parallel"),
        task: TaskConstruct::new("strassen_mul"),
        tw: taskwait_region("strassen!taskwait"),
        single: SingleConstruct::new("strassen!single"),
    })
}

/// Matrix dimension per scale (power of two; BOTS medium is 1024).
pub fn input_n(scale: Scale) -> usize {
    input_dims(scale).0
}

/// (matrix dimension, leaf-kernel dimension) per scale. The leaf grows
/// with the matrix so the Medium tasks land in the ~hundred-µs range the
/// paper's Table I reports for strassen.
pub fn input_dims(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Test => (64, 16),
        Scale::Small => (128, 16),
        Scale::Medium => (512, 64),
    }
}

/// Task-creation cut-off depth of the cut-off variant: one level less
/// than the recursion supports, so the cut-off version always creates
/// strictly fewer (but still enough) tasks at every scale.
pub fn cutoff_depth(n: usize, leaf: usize) -> u32 {
    let task_levels = (n / leaf).max(2).ilog2();
    task_levels.saturating_sub(1).max(1)
}

/// An unowned dense sub-matrix view (row-major, arbitrary row stride).
/// Sibling Strassen tasks write disjoint product buffers, so all accesses
/// are unsafe-with-discipline like the C original.
#[derive(Clone, Copy, Debug)]
pub struct Mat {
    ptr: *mut f64,
    stride: usize,
}

// SAFETY: raw view; all access unsafe and caller-disciplined.
unsafe impl Send for Mat {}
unsafe impl Sync for Mat {}

impl Mat {
    /// View over a full `n × n` buffer.
    pub fn new(buf: &mut [f64], n: usize) -> Self {
        assert!(buf.len() >= n * n);
        Self {
            ptr: buf.as_mut_ptr(),
            stride: n,
        }
    }

    /// Element pointer.
    ///
    /// # Safety
    /// In-bounds for the viewed matrix; caller manages aliasing.
    #[inline]
    pub unsafe fn at(self, i: usize, j: usize) -> *mut f64 {
        self.ptr.add(i * self.stride + j)
    }

    /// The `(qi, qj)` quadrant view of an `n × n` matrix (`half = n/2`).
    pub fn quad(self, qi: usize, qj: usize, half: usize) -> Mat {
        Mat {
            // SAFETY: quadrant offset stays within the viewed matrix.
            ptr: unsafe { self.ptr.add(qi * half * self.stride + qj * half) },
            stride: self.stride,
        }
    }
}

/// `c = a + b` over `n × n` views.
///
/// # Safety
/// Views valid for `n × n`; `c` not concurrently accessed.
unsafe fn mat_add(a: Mat, b: Mat, c: Mat, n: usize) {
    for i in 0..n {
        for j in 0..n {
            *c.at(i, j) = *a.at(i, j) + *b.at(i, j);
        }
    }
}

/// `c = a - b` over `n × n` views.
///
/// # Safety
/// As [`mat_add`].
unsafe fn mat_sub(a: Mat, b: Mat, c: Mat, n: usize) {
    for i in 0..n {
        for j in 0..n {
            *c.at(i, j) = *a.at(i, j) - *b.at(i, j);
        }
    }
}

/// Naive `c = a * b` (ikj order) over `n × n` views.
///
/// # Safety
/// As [`mat_add`]; `c` disjoint from `a` and `b`.
unsafe fn matmul_leaf(a: Mat, b: Mat, c: Mat, n: usize) {
    for i in 0..n {
        for j in 0..n {
            *c.at(i, j) = 0.0;
        }
        for k in 0..n {
            let aik = *a.at(i, k);
            for j in 0..n {
                *c.at(i, j) += aik * *b.at(k, j);
            }
        }
    }
}

/// One Strassen product: computes `m = (a_l ± a_r)(b_l ± b_r)` where
/// either operand sum may be a single quadrant.
#[derive(Clone, Copy)]
enum Operand {
    One(Mat),
    Add(Mat, Mat),
    Sub(Mat, Mat),
}

impl Operand {
    /// Materialize the operand into `buf` if needed, returning the view to
    /// multiply.
    ///
    /// # Safety
    /// `buf` is an exclusive `half × half` scratch buffer.
    unsafe fn materialize(self, buf: &mut Vec<f64>, half: usize) -> Mat {
        match self {
            Operand::One(m) => m,
            Operand::Add(x, y) => {
                buf.resize(half * half, 0.0);
                let m = Mat::new(buf, half);
                mat_add(x, y, m, half);
                m
            }
            Operand::Sub(x, y) => {
                buf.resize(half * half, 0.0);
                let m = Mat::new(buf, half);
                mat_sub(x, y, m, half);
                m
            }
        }
    }
}

/// The seven Strassen products for quadrants of `a` and `b`.
fn products(a: Mat, b: Mat, half: usize) -> [(Operand, Operand); 7] {
    let (a11, a12, a21, a22) = (
        a.quad(0, 0, half),
        a.quad(0, 1, half),
        a.quad(1, 0, half),
        a.quad(1, 1, half),
    );
    let (b11, b12, b21, b22) = (
        b.quad(0, 0, half),
        b.quad(0, 1, half),
        b.quad(1, 0, half),
        b.quad(1, 1, half),
    );
    [
        (Operand::Add(a11, a22), Operand::Add(b11, b22)), // m1
        (Operand::Add(a21, a22), Operand::One(b11)),      // m2
        (Operand::One(a11), Operand::Sub(b12, b22)),      // m3
        (Operand::One(a22), Operand::Sub(b21, b11)),      // m4
        (Operand::Add(a11, a12), Operand::One(b22)),      // m5
        (Operand::Sub(a21, a11), Operand::Add(b11, b12)), // m6
        (Operand::Sub(a12, a22), Operand::Add(b21, b22)), // m7
    ]
}

/// Combine the seven products into `c`.
///
/// # Safety
/// `c` is an exclusive `n × n` view; `m` are `half × half` views.
unsafe fn combine(m: &[Mat; 7], c: Mat, half: usize) {
    let (c11, c12, c21, c22) = (
        c.quad(0, 0, half),
        c.quad(0, 1, half),
        c.quad(1, 0, half),
        c.quad(1, 1, half),
    );
    for i in 0..half {
        for j in 0..half {
            let (m1, m2, m3, m4) = (*m[0].at(i, j), *m[1].at(i, j), *m[2].at(i, j), *m[3].at(i, j));
            let (m5, m6, m7) = (*m[4].at(i, j), *m[5].at(i, j), *m[6].at(i, j));
            *c11.at(i, j) = m1 + m4 - m5 + m7;
            *c12.at(i, j) = m3 + m5;
            *c21.at(i, j) = m2 + m4;
            *c22.at(i, j) = m1 - m2 + m3 + m6;
        }
    }
}

/// Serial Strassen recursion: `c = a * b`.
///
/// # Safety
/// Views valid for `n × n`; `c` disjoint and exclusive.
pub unsafe fn strassen_serial(a: Mat, b: Mat, c: Mat, n: usize, leaf: usize) {
    if n <= leaf {
        matmul_leaf(a, b, c, n);
        return;
    }
    let half = n / 2;
    let mut bufs: Vec<Vec<f64>> = (0..7).map(|_| vec![0.0; half * half]).collect();
    let ms: Vec<Mat> = bufs.iter_mut().map(|v| Mat::new(v, half)).collect();
    for (k, (oa, ob)) in products(a, b, half).into_iter().enumerate() {
        let (mut ta, mut tb) = (Vec::new(), Vec::new());
        let ma = oa.materialize(&mut ta, half);
        let mb = ob.materialize(&mut tb, half);
        strassen_serial(ma, mb, ms[k], half, leaf);
    }
    combine(&[ms[0], ms[1], ms[2], ms[3], ms[4], ms[5], ms[6]], c, half);
}

#[allow(clippy::too_many_arguments)]
fn strassen_task<'e, M: Monitor>(
    ctx: &TaskCtx<'_, 'e, M>,
    a: Mat,
    b: Mat,
    c: Mat,
    n: usize,
    leaf: usize,
    depth: u32,
    cutoff: Option<u32>,
) {
    if n <= leaf {
        // SAFETY: this call tree owns `c` exclusively.
        unsafe { matmul_leaf(a, b, c, n) };
        return;
    }
    if let Some(cd) = cutoff {
        if depth >= cd {
            unsafe { strassen_serial(a, b, c, n, leaf) };
            return;
        }
    }
    let r = regions();
    let half = n / 2;
    let mut bufs: Vec<Vec<f64>> = (0..7).map(|_| vec![0.0; half * half]).collect();
    let ms: Vec<Mat> = bufs.iter_mut().map(|v| Mat::new(v, half)).collect();
    for (k, (oa, ob)) in products(a, b, half).into_iter().enumerate() {
        let m = ms[k];
        ctx.task(&r.task, move |ctx| {
            // SAFETY: each task materializes into its own scratch buffers
            // and writes its own product buffer `m`; operand quadrants are
            // only read.
            let (mut ta, mut tb) = (Vec::new(), Vec::new());
            let ma = unsafe { oa.materialize(&mut ta, half) };
            let mb = unsafe { ob.materialize(&mut tb, half) };
            strassen_task(ctx, ma, mb, m, half, leaf, depth + 1, cutoff);
        });
    }
    ctx.taskwait(r.tw);
    // SAFETY: children done; `c` exclusive to this call tree.
    unsafe { combine(&[ms[0], ms[1], ms[2], ms[3], ms[4], ms[5], ms[6]], c, half) };
}

/// Deterministic input matrix.
pub fn gen_matrix(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    (0..n * n).map(|_| rng.unit_f64() * 2.0 - 1.0).collect()
}

/// Run the benchmark.
pub fn run<M: Monitor>(monitor: &M, opts: &RunOpts) -> Outcome {
    let (n, leaf) = input_dims(opts.scale);
    let cutoff = (opts.variant == Variant::Cutoff).then_some(cutoff_depth(n, leaf));
    let mut a = gen_matrix(n, 0x5712_A55E);
    let mut b = gen_matrix(n, 0x5712_A55F);
    let mut c = vec![0.0f64; n * n];
    let (ma, mb, mc) = (Mat::new(&mut a, n), Mat::new(&mut b, n), Mat::new(&mut c, n));
    let r = regions();
    let team = Team::new(opts.threads);
    let start = Instant::now();
    team.parallel(monitor, &r.par, |ctx| {
        ctx.single(&r.single, |ctx| strassen_task(ctx, ma, mb, mc, n, leaf, 0, cutoff));
    });
    let kernel = start.elapsed();
    // Serial Strassen has the identical operation order per element, so
    // the parallel result must be bitwise equal.
    let mut a2 = a.clone();
    let mut b2 = b.clone();
    let mut expect = vec![0.0f64; n * n];
    unsafe {
        strassen_serial(
            Mat::new(&mut a2, n),
            Mat::new(&mut b2, n),
            Mat::new(&mut expect, n),
            n,
            leaf,
        )
    };
    let verified = c == expect;
    Outcome {
        kernel,
        checksum: crate::util::checksum_f64(c.iter().copied()),
        verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::NullMonitor;

    fn naive(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
        let mut c = vec![0.0; n * n];
        for i in 0..n {
            for k in 0..n {
                for j in 0..n {
                    c[i * n + j] += a[i * n + k] * b[k * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn strassen_serial_matches_naive() {
        let n = 64;
        let mut a = gen_matrix(n, 1);
        let mut b = gen_matrix(n, 2);
        let want = naive(&a, &b, n);
        let mut c = vec![0.0; n * n];
        unsafe {
            strassen_serial(Mat::new(&mut a, n), Mat::new(&mut b, n), Mat::new(&mut c, n), n, 16)
        };
        for (x, y) in c.iter().zip(&want) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn quadrant_views_address_correctly() {
        let n = 4;
        let mut m: Vec<f64> = (0..16).map(|x| x as f64).collect();
        let mat = Mat::new(&mut m, n);
        let q11 = mat.quad(1, 1, 2);
        unsafe {
            assert_eq!(*q11.at(0, 0), 10.0);
            assert_eq!(*q11.at(1, 1), 15.0);
        }
    }

    #[test]
    fn parallel_matches_serial_all_thread_counts() {
        for threads in [1, 2, 4] {
            let out = run(&NullMonitor, &RunOpts::new(threads).scale(Scale::Test));
            assert!(out.verified, "threads = {threads}");
        }
    }

    #[test]
    fn cutoff_variant_matches() {
        let out = run(
            &NullMonitor,
            &RunOpts::new(2).scale(Scale::Test).variant(Variant::Cutoff),
        );
        assert!(out.verified);
    }
}
