//! BOTS `floorplan`: branch-and-bound placement of cells on a grid,
//! minimizing the bounding-box area. One task per candidate placement; the
//! shared best bound prunes the search.
//!
//! This is the code whose instrumented runs fall into two load-balance
//! classes in the paper (Section V-A): scheduling decisions change which
//! branches are explored first and how the bound tightens.

use crate::util::SplitMix64;
use crate::{Outcome, RunOpts, Scale, Variant};
use pomp::{Monitor, RegionId};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;
use taskrt::{taskwait_region, ParallelConstruct, SingleConstruct, TaskConstruct, TaskCtx, Team};

/// Grid dimension (placements beyond this are rejected).
pub const GRID: usize = 16;

/// Occupancy bitboard: bit `c` of `rows[r]` = cell at (r, c).
pub type Board = [u16; GRID];

/// A cell with alternative shapes (h, w).
#[derive(Clone, Debug)]
pub struct Cell {
    /// Alternative orientations/implementations.
    pub alts: Vec<(u8, u8)>,
}

/// Regions of the floorplan benchmark.
pub struct Regions {
    /// The parallel region.
    pub par: ParallelConstruct,
    /// The per-placement task construct.
    pub task: TaskConstruct,
    /// The per-level taskwait.
    pub tw: RegionId,
    /// The single construct hosting the root call.
    pub single: SingleConstruct,
}

/// Lazily registered regions.
pub fn regions() -> &'static Regions {
    static R: OnceLock<Regions> = OnceLock::new();
    R.get_or_init(|| Regions {
        par: ParallelConstruct::new("floorplan!parallel"),
        task: TaskConstruct::new("floorplan_add_cell"),
        tw: taskwait_region("floorplan!taskwait"),
        single: SingleConstruct::new("floorplan!single"),
    })
}

/// Number of cells per scale (BOTS inputs are 15/20 cells).
pub fn input_cells(scale: Scale) -> usize {
    match scale {
        Scale::Test => 6,
        Scale::Small => 8,
        Scale::Medium => 10,
    }
}

/// Task-creation cut-off depth of the cut-off variant.
pub const CUTOFF_DEPTH: usize = 3;

/// Deterministic cell set: 2–3 alternatives of 1..=3 × 1..=3 shapes.
pub fn gen_cells(n: usize, seed: u64) -> Vec<Cell> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let nalts = 2 + rng.below(2) as usize;
            let alts = (0..nalts)
                .map(|_| (1 + rng.below(3) as u8, 1 + rng.below(3) as u8))
                .collect();
            Cell { alts }
        })
        .collect()
}

/// Try placing an `h × w` cell with top-left corner (r, c); returns the
/// new board on success.
pub fn place(board: &Board, r: usize, c: usize, h: u8, w: u8) -> Option<Board> {
    let (h, w) = (h as usize, w as usize);
    if r + h > GRID || c + w > GRID {
        return None;
    }
    let mask = ((1u32 << w) - 1) as u16;
    let shifted = mask << c;
    let mut nb = *board;
    for row in &mut nb[r..r + h] {
        if *row & shifted != 0 {
            return None;
        }
        *row |= shifted;
    }
    Some(nb)
}

/// Candidate top-left positions: the origin on an empty board, otherwise
/// every free cell whose upper or left neighbour is occupied (plus free
/// cells on the top/left edge adjacent to the occupied region's bounding
/// box). Keeps branching moderate, like the original's corner positions.
pub fn candidates(board: &Board) -> Vec<(usize, usize)> {
    if board.iter().all(|&r| r == 0) {
        return vec![(0, 0)];
    }
    let mut out = Vec::new();
    let occupied = |r: usize, c: usize| board[r] & (1 << c) != 0;
    for r in 0..GRID {
        for c in 0..GRID {
            if occupied(r, c) {
                continue;
            }
            let above = r > 0 && occupied(r - 1, c);
            let left = c > 0 && occupied(r, c - 1);
            if above || left {
                out.push((r, c));
            }
        }
    }
    out
}

/// Bounding-box area of the occupied region.
pub fn area(board: &Board) -> u32 {
    let mut max_r = 0usize;
    let mut max_c = 0usize;
    let mut any = false;
    for (r, &row) in board.iter().enumerate() {
        if row != 0 {
            any = true;
            max_r = r;
            max_c = max_c.max(15 - row.leading_zeros() as usize);
        }
    }
    if any {
        ((max_r + 1) * (max_c + 1)) as u32
    } else {
        0
    }
}

/// Serial branch-and-bound reference.
pub fn serial_best(cells: &[Cell]) -> u32 {
    fn go(cells: &[Cell], id: usize, board: &Board, best: &mut u32, nsol: &mut u64) {
        if id == cells.len() {
            let a = area(board);
            if a < *best {
                *best = a;
            }
            *nsol += 1;
            return;
        }
        for &(h, w) in &cells[id].alts {
            for (r, c) in candidates(board) {
                if let Some(nb) = place(board, r, c, h, w) {
                    if area(&nb) >= *best {
                        continue; // bound
                    }
                    go(cells, id + 1, &nb, best, nsol);
                }
            }
        }
    }
    let mut best = u32::MAX;
    let mut nsol = 0;
    go(cells, 0, &[0; GRID], &mut best, &mut nsol);
    best
}

#[allow(clippy::too_many_arguments)]
fn add_cell_task<'e, M: Monitor>(
    ctx: &TaskCtx<'_, 'e, M>,
    cells: &'e [Cell],
    id: usize,
    board: Board,
    best: &'e AtomicU32,
    explored: &'e AtomicU64,
    cutoff: Option<usize>,
) {
    explored.fetch_add(1, Ordering::Relaxed);
    if id == cells.len() {
        best.fetch_min(area(&board), Ordering::AcqRel);
        return;
    }
    let r = regions();
    let spawn = cutoff.is_none_or(|c| id < c);
    for &(h, w) in &cells[id].alts {
        for (cr, cc) in candidates(&board) {
            if let Some(nb) = place(&board, cr, cc, h, w) {
                if area(&nb) >= best.load(Ordering::Acquire) {
                    continue;
                }
                if spawn {
                    ctx.task(&r.task, move |ctx| {
                        add_cell_task(ctx, cells, id + 1, nb, best, explored, cutoff)
                    });
                } else {
                    add_cell_task(ctx, cells, id + 1, nb, best, explored, cutoff);
                }
            }
        }
    }
    if spawn {
        ctx.taskwait(r.tw);
    }
}

/// Run the benchmark.
pub fn run<M: Monitor>(monitor: &M, opts: &RunOpts) -> Outcome {
    let cells = gen_cells(input_cells(opts.scale), 0xF100_0F1A);
    let cutoff = (opts.variant == Variant::Cutoff).then_some(CUTOFF_DEPTH);
    let best = AtomicU32::new(u32::MAX);
    let explored = AtomicU64::new(0);
    let r = regions();
    let team = Team::new(opts.threads);
    let (cells_ref, best_ref, explored_ref) = (&cells[..], &best, &explored);
    let start = Instant::now();
    team.parallel(monitor, &r.par, |ctx| {
        ctx.single(&r.single, |ctx| {
            add_cell_task(ctx, cells_ref, 0, [0; GRID], best_ref, explored_ref, cutoff);
        });
    });
    let kernel = start.elapsed();
    let got = best.load(Ordering::Relaxed);
    // Branch-and-bound is exact: the optimum is schedule-independent even
    // though the explored-node count is not.
    let verified = got == serial_best(&cells);
    Outcome {
        kernel,
        checksum: got as u64,
        verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::NullMonitor;

    #[test]
    fn place_detects_overlap_and_bounds() {
        let empty = [0u16; GRID];
        let b = place(&empty, 0, 0, 2, 2).unwrap();
        assert!(place(&b, 1, 1, 1, 1).is_none(), "overlap");
        assert!(place(&b, 0, 2, 1, 1).is_some());
        assert!(place(&empty, 15, 0, 2, 1).is_none(), "row overflow");
        assert!(place(&empty, 0, 15, 1, 2).is_none(), "col overflow");
    }

    #[test]
    fn area_is_bounding_box() {
        let empty = [0u16; GRID];
        assert_eq!(area(&empty), 0);
        let b = place(&empty, 0, 0, 2, 3).unwrap();
        assert_eq!(area(&b), 6);
        let b2 = place(&b, 3, 0, 1, 1).unwrap();
        assert_eq!(area(&b2), 4 * 3);
    }

    #[test]
    fn candidates_touch_placed_region() {
        let empty = [0u16; GRID];
        assert_eq!(candidates(&empty), vec![(0, 0)]);
        let b = place(&empty, 0, 0, 1, 1).unwrap();
        let cs = candidates(&b);
        assert!(cs.contains(&(0, 1)));
        assert!(cs.contains(&(1, 0)));
        assert!(!cs.contains(&(0, 0)), "occupied cell is not a candidate");
        assert!(!cs.contains(&(5, 5)), "detached cell is not a candidate");
    }

    #[test]
    fn serial_best_two_unit_cells() {
        // Two 1×1 cells: optimum packs them into a 1×2 box (area 2).
        let cells = vec![
            Cell { alts: vec![(1, 1)] },
            Cell { alts: vec![(1, 1)] },
        ];
        assert_eq!(serial_best(&cells), 2);
    }

    #[test]
    fn parallel_finds_same_optimum() {
        for threads in [1, 2, 4] {
            let out = run(&NullMonitor, &RunOpts::new(threads).scale(Scale::Test));
            assert!(out.verified, "threads = {threads}");
        }
    }

    #[test]
    fn cutoff_variant_matches() {
        let out = run(
            &NullMonitor,
            &RunOpts::new(2).scale(Scale::Test).variant(Variant::Cutoff),
        );
        assert!(out.verified);
    }
}
