//! BOTS `fib`: the paper's pathological granularity example.
//!
//! Each task creates two child tasks and sums two numbers after a
//! `taskwait` — per-task work of an addition, so without a cut-off the
//! instrumentation overhead dominates (310 % in the paper's Fig. 13, 527 %
//! in Fig. 14).

use crate::util::SendPtr;
use crate::{Outcome, RunOpts, Scale, Variant};
use pomp::{Monitor, RegionId};
use std::sync::OnceLock;
use std::time::Instant;
use taskrt::{taskwait_region, ParallelConstruct, SingleConstruct, TaskConstruct, TaskCtx, Team};

/// Regions of the fib benchmark.
pub struct Regions {
    /// The parallel region.
    pub par: ParallelConstruct,
    /// The recursive task construct.
    pub task: TaskConstruct,
    /// The taskwait joining the two children.
    pub tw: RegionId,
    /// The single construct hosting the root call.
    pub single: SingleConstruct,
}

/// Lazily registered regions.
pub fn regions() -> &'static Regions {
    static R: OnceLock<Regions> = OnceLock::new();
    R.get_or_init(|| Regions {
        par: ParallelConstruct::new("fib!parallel"),
        task: TaskConstruct::new("fib"),
        tw: taskwait_region("fib!taskwait"),
        single: SingleConstruct::new("fib!single"),
    })
}

/// Serial reference.
pub fn fib_serial(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib_serial(n - 1) + fib_serial(n - 2)
    }
}

/// Input size per scale (the paper ran n large enough for 3.69 G tasks;
/// we keep the same microsecond-scale tasks at laptop-scale counts).
pub fn input_n(scale: Scale) -> u64 {
    match scale {
        Scale::Test => 15,
        Scale::Small => 20,
        Scale::Medium => 25,
    }
}

/// Manual cut-off depth of the BOTS cut-off version.
pub const CUTOFF_DEPTH: u32 = 8;

fn fib_task<'e, M: Monitor>(
    ctx: &TaskCtx<'_, 'e, M>,
    n: u64,
    depth: u32,
    cutoff: Option<u32>,
) -> u64 {
    if n < 2 {
        return n;
    }
    if let Some(c) = cutoff {
        if depth >= c {
            return fib_serial(n);
        }
    }
    let r = regions();
    let (mut a, mut b) = (0u64, 0u64);
    let (pa, pb) = (SendPtr::new(&mut a), SendPtr::new(&mut b));
    // SAFETY (both tasks): the pointees live in this frame, which stays
    // alive across the taskwait below; each child writes a distinct slot.
    ctx.task(&r.task, move |ctx| unsafe {
        pa.write(fib_task(ctx, n - 1, depth + 1, cutoff));
    });
    ctx.task(&r.task, move |ctx| unsafe {
        pb.write(fib_task(ctx, n - 2, depth + 1, cutoff));
    });
    ctx.taskwait(r.tw);
    a + b
}

/// Run the benchmark.
pub fn run<M: Monitor>(monitor: &M, opts: &RunOpts) -> Outcome {
    run_with_team(monitor, &Team::new(opts.threads), opts)
}

/// Run the benchmark on a caller-supplied team — e.g. one carrying a
/// deterministic [`taskrt::SchedulePolicy`] for schedule exploration.
/// `opts.threads` is ignored in favour of the team's size.
pub fn run_with_team<M: Monitor>(monitor: &M, team: &Team, opts: &RunOpts) -> Outcome {
    let n = input_n(opts.scale);
    let cutoff = (opts.variant == Variant::Cutoff).then_some(CUTOFF_DEPTH);
    let r = regions();
    let mut result = 0u64;
    let pr = SendPtr::new(&mut result);
    let start = Instant::now();
    team.parallel(monitor, &r.par, |ctx| {
        ctx.single(&r.single, |ctx| {
            let v = fib_task(ctx, n, 0, cutoff);
            // SAFETY: `result` outlives the parallel region; only the
            // single's executor writes it.
            unsafe { pr.write(v) };
        });
    });
    let kernel = start.elapsed();
    let expected = fib_serial(n);
    Outcome {
        kernel,
        checksum: result,
        verified: result == expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Variant;
    use pomp::NullMonitor;

    #[test]
    fn serial_fib_basics() {
        assert_eq!(fib_serial(0), 0);
        assert_eq!(fib_serial(1), 1);
        assert_eq!(fib_serial(10), 55);
        assert_eq!(fib_serial(20), 6765);
    }

    #[test]
    fn task_fib_matches_serial_across_threads() {
        for threads in [1, 2, 4] {
            let out = run(
                &NullMonitor,
                &RunOpts::new(threads).scale(Scale::Test),
            );
            assert!(out.verified);
            assert_eq!(out.checksum, fib_serial(input_n(Scale::Test)));
        }
    }

    #[test]
    fn cutoff_version_matches() {
        let out = run(
            &NullMonitor,
            &RunOpts::new(2).scale(Scale::Test).variant(Variant::Cutoff),
        );
        assert!(out.verified);
    }
}
