//! BOTS `alignment`: all-pairs protein sequence alignment.
//!
//! Single-creator pattern: one thread creates one task per sequence pair;
//! each task computes a Gotoh affine-gap global alignment score. Tasks are
//! comparatively large and uniform — the code with zero measurable
//! profiling overhead in the paper's Fig. 13.

use crate::util::{RawSlice, SplitMix64};
use crate::{Outcome, RunOpts, Scale};
use pomp::Monitor;
use std::sync::OnceLock;
use std::time::Instant;
use taskrt::{ForConstruct, ParallelConstruct, SingleConstruct, TaskConstruct, Team};

/// Alphabet size (amino acids).
pub const ALPHABET: u8 = 20;

/// Scoring scheme (simple substitution model instead of PAM — the task
/// shape, not the biology, is what the experiments exercise).
const MATCH: i32 = 5;
const MISMATCH: i32 = -2;
const GAP_OPEN: i32 = -6;
const GAP_EXTEND: i32 = -1;

/// Regions of the alignment benchmark.
pub struct Regions {
    /// The parallel region.
    pub par: ParallelConstruct,
    /// The per-pair task construct.
    pub task: TaskConstruct,
    /// The single construct creating all pair tasks.
    pub single: SingleConstruct,
    /// The worksharing loop of the BOTS "for" version.
    pub for_loop: ForConstruct,
}

/// Lazily registered regions.
pub fn regions() -> &'static Regions {
    static R: OnceLock<Regions> = OnceLock::new();
    R.get_or_init(|| Regions {
        par: ParallelConstruct::new("alignment!parallel"),
        task: TaskConstruct::new("alignment_pair"),
        single: SingleConstruct::new("alignment!single"),
        for_loop: ForConstruct::new("alignment!for"),
    })
}

/// (sequence count, sequence length) per scale.
pub fn input_dims(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Test => (8, 64),
        Scale::Small => (12, 128),
        Scale::Medium => (20, 256),
    }
}

/// Deterministic sequence set.
pub fn gen_seqs(count: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SplitMix64::new(seed);
    (0..count)
        .map(|_| (0..len).map(|_| rng.below(ALPHABET as u64) as u8).collect())
        .collect()
}

/// Gotoh global alignment score with affine gaps, O(|a|·|b|) time,
/// O(|b|) space.
pub fn align_score(a: &[u8], b: &[u8]) -> i32 {
    const NEG: i32 = i32::MIN / 4;
    let m = b.len();
    // s[j]: best score ending anywhere; e[j]: best ending in a gap in `a`.
    let mut s = vec![0i32; m + 1];
    let mut e = vec![NEG; m + 1];
    for (j, slot) in s.iter_mut().enumerate().skip(1) {
        *slot = GAP_OPEN + (j as i32 - 1) * GAP_EXTEND;
    }
    for &ca in a {
        let mut diag = s[0];
        let mut f = NEG; // best ending in a gap in `b`, current row
        s[0] = if s[0] == 0 {
            GAP_OPEN
        } else {
            s[0] + GAP_EXTEND
        };
        for j in 1..=m {
            e[j] = (e[j] + GAP_EXTEND).max(s[j] + GAP_OPEN);
            f = (f + GAP_EXTEND).max(s[j - 1] + GAP_OPEN);
            let sub = diag + if ca == b[j - 1] { MATCH } else { MISMATCH };
            diag = s[j];
            s[j] = sub.max(e[j]).max(f);
        }
    }
    s[m]
}

/// Serial reference: scores of all pairs (i < j), in pair order.
pub fn serial_scores(seqs: &[Vec<u8>]) -> Vec<i32> {
    let mut out = Vec::new();
    for i in 0..seqs.len() {
        for j in i + 1..seqs.len() {
            out.push(align_score(&seqs[i], &seqs[j]));
        }
    }
    out
}

/// Run the benchmark.
pub fn run<M: Monitor>(monitor: &M, opts: &RunOpts) -> Outcome {
    let (count, len) = input_dims(opts.scale);
    let seqs = gen_seqs(count, len, 0xA119_0000);
    let npairs = count * (count - 1) / 2;
    let mut results = vec![0i32; npairs];
    let rs = RawSlice::new(&mut results);
    let seqs_ref = &seqs;
    let r = regions();
    let team = Team::new(opts.threads);
    let start = Instant::now();
    team.parallel(monitor, &r.par, |ctx| {
        ctx.single(&r.single, |ctx| {
            let mut p = 0usize;
            for i in 0..seqs_ref.len() {
                for j in i + 1..seqs_ref.len() {
                    let slot = p;
                    ctx.task(&r.task, move |_| {
                        let score = align_score(&seqs_ref[i], &seqs_ref[j]);
                        // SAFETY: each task writes its own result slot.
                        unsafe { rs.range_mut(slot, 1)[0] = score };
                    });
                    p += 1;
                }
            }
            // Joined by the single's implied barrier.
        });
    });
    let kernel = start.elapsed();
    let expect = serial_scores(&seqs);
    let verified = results == expect;
    let checksum = results
        .iter()
        .fold(0u64, |acc, &s| acc.wrapping_add(s as i64 as u64));
    Outcome {
        kernel,
        checksum,
        verified,
    }
}

/// The BOTS "for" version: the pair loop is a dynamically scheduled
/// worksharing construct instead of a task per pair. Same result, no
/// tasks — in a profile its time sits under the workshare region rather
/// than in task trees.
pub fn run_for<M: Monitor>(monitor: &M, opts: &RunOpts) -> Outcome {
    let (count, len) = input_dims(opts.scale);
    let seqs = gen_seqs(count, len, 0xA119_0000);
    let pairs: Vec<(usize, usize)> = (0..count)
        .flat_map(|i| (i + 1..count).map(move |j| (i, j)))
        .collect();
    let mut results = vec![0i32; pairs.len()];
    let rs = RawSlice::new(&mut results);
    let (seqs_ref, pairs_ref) = (&seqs, &pairs);
    let r = regions();
    let team = Team::new(opts.threads);
    let start = Instant::now();
    team.parallel(monitor, &r.par, |ctx| {
        ctx.for_dynamic(&r.for_loop, 0..pairs_ref.len(), 1, |p| {
            let (i, j) = pairs_ref[p];
            let score = align_score(&seqs_ref[i], &seqs_ref[j]);
            // SAFETY: each iteration index is executed exactly once, so
            // result slots are written disjointly.
            unsafe { rs.range_mut(p, 1)[0] = score };
        });
    });
    let kernel = start.elapsed();
    let expect = serial_scores(&seqs);
    let verified = results == expect;
    let checksum = results
        .iter()
        .fold(0u64, |acc, &s| acc.wrapping_add(s as i64 as u64));
    Outcome {
        kernel,
        checksum,
        verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::NullMonitor;

    #[test]
    fn for_version_matches_task_version() {
        for threads in [1, 3] {
            let opts = RunOpts::new(threads).scale(Scale::Test);
            let a = run(&NullMonitor, &opts);
            let b = run_for(&NullMonitor, &opts);
            assert!(a.verified && b.verified);
            assert_eq!(a.checksum, b.checksum);
        }
    }

    #[test]
    fn identical_sequences_score_full_match() {
        let s = vec![1u8, 2, 3, 4, 5];
        assert_eq!(align_score(&s, &s), 5 * MATCH);
    }

    #[test]
    fn empty_vs_sequence_pays_gaps() {
        let s = vec![1u8, 2, 3];
        assert_eq!(align_score(&[], &s), GAP_OPEN + 2 * GAP_EXTEND);
        assert_eq!(align_score(&s, &[]), GAP_OPEN + 2 * GAP_EXTEND);
    }

    #[test]
    fn single_substitution_prefers_mismatch_over_gaps() {
        let a = vec![1u8, 2, 3, 4];
        let b = vec![1u8, 2, 9, 4];
        assert_eq!(align_score(&a, &b), 3 * MATCH + MISMATCH);
    }

    #[test]
    fn alignment_is_symmetric() {
        let seqs = gen_seqs(4, 50, 9);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(
                    align_score(&seqs[i], &seqs[j]),
                    align_score(&seqs[j], &seqs[i])
                );
            }
        }
    }

    #[test]
    fn parallel_matches_serial_all_thread_counts() {
        for threads in [1, 2, 4] {
            let out = run(&NullMonitor, &RunOpts::new(threads).scale(Scale::Test));
            assert!(out.verified, "threads = {threads}");
        }
    }
}
