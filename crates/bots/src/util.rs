//! Shared utilities for the BOTS kernels: raw-pointer wrappers for
//! disjoint concurrent writes (the idiom the C originals use implicitly)
//! and a small deterministic PRNG for input generation.

/// A `Send + Sync` raw pointer to a single value.
///
/// BOTS kernels let child tasks write results into stack slots of the
/// parent task, which is safe because the parent `taskwait`s before
/// reading. `SendPtr` expresses that idiom; every dereference is `unsafe`
/// and the caller must uphold the BOTS discipline: the pointee outlives all
/// tasks that use the pointer, and no two concurrent tasks access the same
/// pointee.
#[derive(Debug)]
pub struct SendPtr<T>(pub *mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// SAFETY: see type docs — all access is unsafe and caller-disciplined.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Wrap a mutable reference.
    pub fn new(r: &mut T) -> Self {
        Self(r as *mut T)
    }

    /// Write through the pointer.
    ///
    /// # Safety
    /// Pointee alive; no concurrent access to the same pointee.
    #[inline]
    pub unsafe fn write(self, v: T) {
        *self.0 = v;
    }

    /// Mutable reference to the pointee.
    ///
    /// # Safety
    /// Pointee alive; no concurrent access to the same pointee.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn as_mut<'a>(self) -> &'a mut T {
        &mut *self.0
    }
}

/// A `Send + Sync` raw view of a slice that tasks index disjointly.
///
/// Used by sort/fft/strassen/sparselu where sibling tasks write disjoint
/// ranges of one buffer.
#[derive(Debug)]
pub struct RawSlice<T> {
    ptr: *mut T,
    len: usize,
}

impl<T> Clone for RawSlice<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for RawSlice<T> {}

// SAFETY: see type docs.
unsafe impl<T> Send for RawSlice<T> {}
unsafe impl<T> Sync for RawSlice<T> {}

impl<T> RawSlice<T> {
    /// View of a whole slice.
    pub fn new(s: &mut [T]) -> Self {
        Self {
            ptr: s.as_mut_ptr(),
            len: s.len(),
        }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for an empty view.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mutable sub-slice `[start, start+len)`.
    ///
    /// # Safety
    /// Underlying buffer alive; no concurrent task touches an overlapping
    /// range; bounds within `self.len()`.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn range_mut<'a>(&self, start: usize, len: usize) -> &'a mut [T] {
        debug_assert!(start + len <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(start), len)
    }

    /// Shared sub-slice `[start, start+len)`.
    ///
    /// # Safety
    /// Underlying buffer alive; no concurrent writer overlaps the range.
    #[inline]
    pub unsafe fn range<'a>(&self, start: usize, len: usize) -> &'a [T] {
        debug_assert!(start + len <= self.len);
        std::slice::from_raw_parts(self.ptr.add(start), len)
    }
}

/// Deterministic 64-bit PRNG (splitmix64) for reproducible inputs.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Order-independent checksum of f64 data (sum of bit patterns folded),
/// tolerant formatting for EXPERIMENTS.md comparisons is done elsewhere.
pub fn checksum_f64(data: impl IntoIterator<Item = f64>) -> u64 {
    let mut acc = 0u64;
    for v in data {
        // Quantize to escape scheduling-order-dependent rounding noise.
        let q = (v * 1e6).round() as i64;
        acc = acc.wrapping_add(q as u64);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sendptr_roundtrip() {
        let mut x = 1u64;
        let p = SendPtr::new(&mut x);
        unsafe { p.write(42) };
        assert_eq!(x, 42);
        unsafe {
            *p.as_mut() += 1;
        }
        assert_eq!(x, 43);
    }

    #[test]
    fn rawslice_disjoint_ranges() {
        let mut v = vec![0u32; 10];
        let rs = RawSlice::new(&mut v);
        assert_eq!(rs.len(), 10);
        let (a, b) = unsafe { (rs.range_mut(0, 5), rs.range_mut(5, 5)) };
        a.fill(1);
        b.fill(2);
        assert_eq!(v[4], 1);
        assert_eq!(v[5], 2);
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(1);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
        let u = r.unit_f64();
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn checksum_is_order_independent() {
        let a = checksum_f64([1.5, 2.25, -3.0]);
        let b = checksum_f64([-3.0, 1.5, 2.25]);
        assert_eq!(a, b);
    }
}
