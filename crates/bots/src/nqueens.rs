//! BOTS `nqueens`: count all placements of n queens on an n×n board.
//!
//! The paper's Section VI case study: a task is created for every valid
//! placement in the current row, recursively — so without a cut-off the
//! task count explodes and mean task size shrinks with depth (Table IV).
//! With depth-parameter instrumentation enabled, every task reports its
//! recursion level, producing per-level sub-trees in the profile.

use crate::{Outcome, RunOpts, Scale, Variant};
use pomp::{param, Monitor, ParamId, RegionId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;
use taskrt::{taskwait_region, ParallelConstruct, SingleConstruct, TaskConstruct, TaskCtx, Team};

/// Regions of the nqueens benchmark.
pub struct Regions {
    /// The parallel region.
    pub par: ParallelConstruct,
    /// The per-placement task construct.
    pub task: TaskConstruct,
    /// The per-row taskwait.
    pub tw: RegionId,
    /// The single construct hosting the root call.
    pub single: SingleConstruct,
}

/// Lazily registered regions.
pub fn regions() -> &'static Regions {
    static R: OnceLock<Regions> = OnceLock::new();
    R.get_or_init(|| Regions {
        par: ParallelConstruct::new("nqueens!parallel"),
        task: TaskConstruct::new("nqueens"),
        tw: taskwait_region("nqueens!taskwait"),
        single: SingleConstruct::new("nqueens!single"),
    })
}

/// The recursion-depth parameter (paper Table IV).
pub fn depth_param() -> ParamId {
    param!("depth")
}

/// Board size per scale (paper used n = 14).
pub fn input_n(scale: Scale) -> usize {
    match scale {
        Scale::Test => 8,
        Scale::Small => 10,
        Scale::Medium => 12,
    }
}

/// Cut-off level of the BOTS cut-off version (paper Section VI: "stopping
/// task creation at level 3").
pub const CUTOFF_ROW: usize = 3;

/// Is placing a queen at (row, col) compatible with rows `0..row`?
#[inline]
fn ok(board: &[u8], row: usize, col: u8) -> bool {
    for (r, &c) in board[..row].iter().enumerate() {
        let dist = (row - r) as i32;
        let dc = c as i32 - col as i32;
        if dc == 0 || dc == dist || dc == -dist {
            return false;
        }
    }
    true
}

/// Serial reference: solutions with rows `0..row` already placed.
pub fn serial_count(n: usize, board: &mut [u8], row: usize) -> u64 {
    if row == n {
        return 1;
    }
    let mut total = 0;
    for col in 0..n as u8 {
        if ok(board, row, col) {
            board[row] = col;
            total += serial_count(n, board, row + 1);
        }
    }
    total
}

fn nq_task<'e, M: Monitor>(
    ctx: &TaskCtx<'_, 'e, M>,
    n: usize,
    row: usize,
    board: Vec<u8>,
    count: &'e AtomicU64,
    cutoff: Option<usize>,
    depth_param_on: bool,
) {
    if row == n {
        count.fetch_add(1, Ordering::Relaxed);
        return;
    }
    if let Some(c) = cutoff {
        if row >= c {
            let mut b = board;
            count.fetch_add(serial_count(n, &mut b, row), Ordering::Relaxed);
            return;
        }
    }
    let r = regions();
    for col in 0..n as u8 {
        if ok(&board, row, col) {
            let mut b2 = board.clone();
            b2[row] = col;
            ctx.task(&r.task, move |ctx| {
                if depth_param_on {
                    ctx.parameter(depth_param(), row as i64, move |ctx| {
                        nq_task(ctx, n, row + 1, b2, count, cutoff, depth_param_on)
                    });
                } else {
                    nq_task(ctx, n, row + 1, b2, count, cutoff, depth_param_on);
                }
            });
        }
    }
    ctx.taskwait(r.tw);
}

/// Run the benchmark.
pub fn run<M: Monitor>(monitor: &M, opts: &RunOpts) -> Outcome {
    run_with_team(monitor, &Team::new(opts.threads), opts)
}

/// Run the benchmark on a caller-supplied team — e.g. one carrying a
/// deterministic [`taskrt::SchedulePolicy`] for schedule exploration.
/// `opts.threads` is ignored in favour of the team's size.
pub fn run_with_team<M: Monitor>(monitor: &M, team: &Team, opts: &RunOpts) -> Outcome {
    let n = input_n(opts.scale);
    let cutoff = (opts.variant == Variant::Cutoff).then_some(CUTOFF_ROW);
    let r = regions();
    let count = AtomicU64::new(0);
    let count_ref = &count;
    let depth_param_on = opts.depth_param;
    let start = Instant::now();
    team.parallel(monitor, &r.par, |ctx| {
        ctx.single(&r.single, |ctx| {
            nq_task(ctx, n, 0, vec![0; n], count_ref, cutoff, depth_param_on);
        });
    });
    let kernel = start.elapsed();
    let got = count.load(Ordering::Relaxed);
    let expected = expected_solutions(n);
    Outcome {
        kernel,
        checksum: got,
        verified: got == expected,
    }
}

/// Known solution counts for the boards we use.
pub fn expected_solutions(n: usize) -> u64 {
    match n {
        4 => 2,
        5 => 10,
        6 => 4,
        7 => 40,
        8 => 92,
        9 => 352,
        10 => 724,
        11 => 2680,
        12 => 14200,
        13 => 73712,
        14 => 365_596,
        _ => {
            let mut b = vec![0u8; n];
            serial_count(n, &mut b, 0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::NullMonitor;

    #[test]
    fn serial_matches_known_counts() {
        for (n, want) in [(4, 2u64), (5, 10), (6, 4), (7, 40), (8, 92)] {
            let mut b = vec![0u8; n];
            assert_eq!(serial_count(n, &mut b, 0), want, "n = {n}");
        }
    }

    #[test]
    fn ok_rejects_attacks() {
        // Queen at row 0 col 0.
        let board = [0u8, 0, 0];
        assert!(!ok(&board, 1, 0), "same column");
        assert!(!ok(&board, 1, 1), "diagonal");
        assert!(ok(&board, 1, 2));
        assert!(!ok(&board, 2, 2), "long diagonal");
    }

    #[test]
    fn task_version_matches_for_all_thread_counts() {
        for threads in [1, 2, 4] {
            let out = run(&NullMonitor, &RunOpts::new(threads).scale(Scale::Test));
            assert!(out.verified, "threads = {threads}");
        }
    }

    #[test]
    fn cutoff_and_depth_param_variants_match() {
        let out = run(
            &NullMonitor,
            &RunOpts::new(2).scale(Scale::Test).variant(Variant::Cutoff),
        );
        assert!(out.verified);
        let out = run(
            &NullMonitor,
            &RunOpts::new(2).scale(Scale::Test).with_depth_param(),
        );
        assert!(out.verified);
    }
}
