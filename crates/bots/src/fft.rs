//! BOTS `fft`: task-parallel recursive Cooley-Tukey FFT (radix 2).
//!
//! Each recursion level splits into an even and an odd half-transform
//! (two tasks), joins at a taskwait, and combines with twiddle factors.

use crate::util::{checksum_f64, RawSlice, SplitMix64};
use crate::{Outcome, RunOpts, Scale};
use pomp::{Monitor, RegionId};
use std::sync::OnceLock;
use std::time::Instant;
use taskrt::{taskwait_region, ParallelConstruct, SingleConstruct, TaskConstruct, TaskCtx, Team};

/// Minimal complex number (kept local: no external num crate).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Construct from parts.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// e^{-2πi k / n} (forward-transform twiddle factor).
    pub fn twiddle(k: usize, n: usize) -> Complex {
        let ang = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
        Complex::new(ang.cos(), ang.sin())
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;

    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;

    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;

    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

/// Regions of the fft benchmark.
pub struct Regions {
    /// The parallel region.
    pub par: ParallelConstruct,
    /// The split task construct.
    pub task: TaskConstruct,
    /// The joining taskwait.
    pub tw: RegionId,
    /// The single construct hosting the root call.
    pub single: SingleConstruct,
}

/// Lazily registered regions.
pub fn regions() -> &'static Regions {
    static R: OnceLock<Regions> = OnceLock::new();
    R.get_or_init(|| Regions {
        par: ParallelConstruct::new("fft!parallel"),
        task: TaskConstruct::new("fft_split"),
        tw: taskwait_region("fft!taskwait"),
        single: SingleConstruct::new("fft!single"),
    })
}

/// Transform length per scale (power of two).
pub fn input_len(scale: Scale) -> usize {
    match scale {
        Scale::Test => 1 << 10,
        Scale::Small => 1 << 14,
        Scale::Medium => 1 << 17,
    }
}

/// Below this length the recursion is sequential.
const SEQ_BASE: usize = 512;

/// Deterministic complex input.
pub fn gen_input(len: usize, seed: u64) -> Vec<Complex> {
    let mut rng = SplitMix64::new(seed);
    (0..len)
        .map(|_| Complex::new(rng.unit_f64() - 0.5, rng.unit_f64() - 0.5))
        .collect()
}

/// Sequential recursive FFT: transform `src[s0], src[s0+stride], ...`
/// (n elements) into `dst[d0 .. d0+n)`.
pub fn fft_seq(src: &[Complex], dst: &mut [Complex], s0: usize, d0: usize, n: usize, stride: usize) {
    if n == 1 {
        dst[d0] = src[s0];
        return;
    }
    let half = n / 2;
    fft_seq(src, dst, s0, d0, half, stride * 2);
    fft_seq(src, dst, s0 + stride, d0 + half, half, stride * 2);
    combine(dst, d0, n);
}

/// Butterfly combine of the two half-transforms stored in
/// `dst[d0..d0+n)`.
fn combine(dst: &mut [Complex], d0: usize, n: usize) {
    let half = n / 2;
    for k in 0..half {
        let t = Complex::twiddle(k, n) * dst[d0 + half + k];
        let e = dst[d0 + k];
        dst[d0 + k] = e + t;
        dst[d0 + half + k] = e - t;
    }
}

/// Naive O(n²) DFT reference for small-n verification.
pub fn dft_naive(src: &[Complex]) -> Vec<Complex> {
    let n = src.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::default();
            for (j, &x) in src.iter().enumerate() {
                acc = acc + Complex::twiddle((k * j) % n, n) * x;
            }
            acc
        })
        .collect()
}

fn fft_task<'e, M: Monitor>(
    ctx: &TaskCtx<'_, 'e, M>,
    src: RawSlice<Complex>,
    dst: RawSlice<Complex>,
    s0: usize,
    d0: usize,
    n: usize,
    stride: usize,
) {
    // SAFETY throughout: `src` is only read; each call tree writes
    // `dst[d0..d0+n)` exclusively (the two children split it disjointly).
    if n <= SEQ_BASE {
        let s = unsafe { src.range(0, src.len()) };
        let d = unsafe { dst.range_mut(0, dst.len()) };
        fft_seq(s, d, s0, d0, n, stride);
        return;
    }
    let r = regions();
    let half = n / 2;
    ctx.task(&r.task, move |ctx| {
        fft_task(ctx, src, dst, s0, d0, half, stride * 2);
    });
    ctx.task(&r.task, move |ctx| {
        fft_task(ctx, src, dst, s0 + stride, d0 + half, half, stride * 2);
    });
    ctx.taskwait(r.tw);
    combine(unsafe { dst.range_mut(0, dst.len()) }, d0, n);
}

/// Library entry point: task-parallel forward FFT of `input`
/// (`input.len()` must be a power of two).
pub fn fft<M: Monitor>(monitor: &M, threads: usize, input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    let mut src = input.to_vec();
    let mut dst = vec![Complex::default(); n];
    let rs_src = RawSlice::new(&mut src);
    let rs_dst = RawSlice::new(&mut dst);
    let r = regions();
    Team::new(threads).parallel(monitor, &r.par, |ctx| {
        ctx.single(&r.single, |ctx| fft_task(ctx, rs_src, rs_dst, 0, 0, n, 1));
    });
    dst
}

/// Run the benchmark.
pub fn run<M: Monitor>(monitor: &M, opts: &RunOpts) -> Outcome {
    let n = input_len(opts.scale);
    let src = gen_input(n, 0xFF77_0001);
    let mut dst = vec![Complex::default(); n];
    let mut src_copy = src.clone();
    let rs_src = RawSlice::new(&mut src_copy);
    let rs_dst = RawSlice::new(&mut dst);
    let r = regions();
    let team = Team::new(opts.threads);
    let start = Instant::now();
    team.parallel(monitor, &r.par, |ctx| {
        ctx.single(&r.single, |ctx| fft_task(ctx, rs_src, rs_dst, 0, 0, n, 1));
    });
    let kernel = start.elapsed();
    // Reference: the sequential recursion has the identical operation
    // order, so results are bitwise equal.
    let mut expect = vec![Complex::default(); n];
    fft_seq(&src, &mut expect, 0, 0, n, 1);
    let verified = dst == expect;
    Outcome {
        kernel,
        checksum: checksum_f64(dst.iter().flat_map(|c| [c.re, c.im])),
        verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::NullMonitor;

    fn close(a: Complex, b: Complex) -> bool {
        (a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9
    }

    #[test]
    fn fft_seq_matches_naive_dft() {
        let src = gen_input(64, 3);
        let mut out = vec![Complex::default(); 64];
        fft_seq(&src, &mut out, 0, 0, 64, 1);
        let want = dft_naive(&src);
        for (a, b) in out.iter().zip(&want) {
            assert!(close(*a, *b), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut src = vec![Complex::default(); 16];
        src[0] = Complex::new(1.0, 0.0);
        let mut out = vec![Complex::default(); 16];
        fft_seq(&src, &mut out, 0, 0, 16, 1);
        for c in out {
            assert!(close(c, Complex::new(1.0, 0.0)));
        }
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        let t = Complex::twiddle(0, 8);
        assert!(close(t, Complex::new(1.0, 0.0)));
    }

    #[test]
    fn parallel_fft_matches_serial() {
        for threads in [1, 2, 4] {
            let out = run(&NullMonitor, &RunOpts::new(threads).scale(Scale::Test));
            assert!(out.verified, "threads = {threads}");
        }
    }
}
