//! BOTS `sparselu`: LU factorization of a sparse blocked matrix.
//!
//! The single-creator version the paper selected: one thread walks the
//! elimination order and creates one task per block operation (`fwd`,
//! `bdiv`, `bmod`), joining phases with taskwaits.

use crate::util::{checksum_f64, SplitMix64};
use crate::{Outcome, RunOpts, Scale};
use pomp::{Monitor, RegionId};
use std::sync::OnceLock;
use std::time::Instant;
use taskrt::{taskwait_region, ParallelConstruct, SingleConstruct, TaskConstruct, Team};

/// Regions of the sparselu benchmark.
pub struct Regions {
    /// The parallel region.
    pub par: ParallelConstruct,
    /// Forward-substitution tasks (row of U).
    pub task_fwd: TaskConstruct,
    /// Block-division tasks (column of L).
    pub task_bdiv: TaskConstruct,
    /// Trailing-update tasks.
    pub task_bmod: TaskConstruct,
    /// Phase-joining taskwait.
    pub tw: RegionId,
    /// The single construct hosting the factorization loop.
    pub single: SingleConstruct,
}

/// Lazily registered regions.
pub fn regions() -> &'static Regions {
    static R: OnceLock<Regions> = OnceLock::new();
    R.get_or_init(|| Regions {
        par: ParallelConstruct::new("sparselu!parallel"),
        task_fwd: TaskConstruct::new("sparselu_fwd"),
        task_bdiv: TaskConstruct::new("sparselu_bdiv"),
        task_bmod: TaskConstruct::new("sparselu_bmod"),
        tw: taskwait_region("sparselu!taskwait"),
        single: SingleConstruct::new("sparselu!single"),
    })
}

/// Blocked sparse matrix: `nb × nb` grid of optional `bs × bs` dense
/// blocks.
pub struct SparseMat {
    /// Blocks per side.
    pub nb: usize,
    /// Block dimension.
    pub bs: usize,
    /// Row-major grid of blocks.
    pub blocks: Vec<Option<Box<[f64]>>>,
}

impl SparseMat {
    /// The BOTS sparsity pattern with deterministic block contents.
    pub fn generate(nb: usize, bs: usize, seed: u64) -> Self {
        let mut blocks = Vec::with_capacity(nb * nb);
        for ii in 0..nb {
            for jj in 0..nb {
                // BOTS genmat null-entry rule.
                let mut null_entry = false;
                if ii < jj && ii % 3 != 0 {
                    null_entry = true;
                }
                if ii > jj && jj % 3 != 0 {
                    null_entry = true;
                }
                if ii % 2 == 1 {
                    null_entry = true;
                }
                if jj % 2 == 1 {
                    null_entry = true;
                }
                if ii == jj || ii == jj + 1 || ii + 1 == jj {
                    null_entry = false;
                }
                blocks.push((!null_entry).then(|| {
                    let mut rng =
                        SplitMix64::new(seed ^ ((ii as u64) << 32) ^ jj as u64);
                    let mut b = vec![0.0f64; bs * bs].into_boxed_slice();
                    for (k, v) in b.iter_mut().enumerate() {
                        *v = rng.unit_f64() + if ii == jj && k % (bs + 1) == 0 {
                            // Diagonal dominance keeps the factorization
                            // numerically tame.
                            bs as f64
                        } else {
                            0.0
                        };
                    }
                    b
                }));
            }
        }
        Self { nb, bs, blocks }
    }

    /// Index into the block grid.
    #[inline]
    fn idx(&self, ii: usize, jj: usize) -> usize {
        ii * self.nb + jj
    }

    /// Is block (ii, jj) present?
    pub fn present(&self, ii: usize, jj: usize) -> bool {
        self.blocks[self.idx(ii, jj)].is_some()
    }

    /// Raw pointer to block (ii, jj) data (must be present).
    fn block_ptr(&mut self, ii: usize, jj: usize) -> *mut f64 {
        let i = self.idx(ii, jj);
        self.blocks[i].as_mut().expect("missing block").as_mut_ptr()
    }

    /// Allocate block (ii, jj) as zeros if absent.
    pub fn ensure_block(&mut self, ii: usize, jj: usize) {
        let i = self.idx(ii, jj);
        if self.blocks[i].is_none() {
            self.blocks[i] = Some(vec![0.0; self.bs * self.bs].into_boxed_slice());
        }
    }

    /// Order-independent checksum over all present blocks.
    pub fn checksum(&self) -> u64 {
        let mut acc = 0u64;
        for b in self.blocks.iter().flatten() {
            acc = acc.wrapping_add(checksum_f64(b.iter().copied()));
        }
        acc
    }
}

/// Diagonal-block LU (BOTS `lu0`).
///
/// # Safety
/// `diag` points at a live `bs × bs` block with exclusive access.
unsafe fn lu0(diag: *mut f64, bs: usize) {
    let d = std::slice::from_raw_parts_mut(diag, bs * bs);
    for k in 0..bs {
        for i in k + 1..bs {
            d[i * bs + k] /= d[k * bs + k];
            for j in k + 1..bs {
                d[i * bs + j] -= d[i * bs + k] * d[k * bs + j];
            }
        }
    }
}

/// Apply L⁻¹ of the diagonal block to a row-of-U block (BOTS `fwd`).
///
/// # Safety
/// Live `bs × bs` blocks; `col` exclusive, `diag` not written concurrently.
unsafe fn fwd(diag: *const f64, col: *mut f64, bs: usize) {
    let d = std::slice::from_raw_parts(diag, bs * bs);
    let c = std::slice::from_raw_parts_mut(col, bs * bs);
    for j in 0..bs {
        for k in 0..bs {
            for i in k + 1..bs {
                c[i * bs + j] -= d[i * bs + k] * c[k * bs + j];
            }
        }
    }
}

/// Solve X·U = A for a column-of-L block (BOTS `bdiv`).
///
/// # Safety
/// As [`fwd`] with `row` exclusive.
unsafe fn bdiv(diag: *const f64, row: *mut f64, bs: usize) {
    let d = std::slice::from_raw_parts(diag, bs * bs);
    let r = std::slice::from_raw_parts_mut(row, bs * bs);
    for i in 0..bs {
        for k in 0..bs {
            r[i * bs + k] /= d[k * bs + k];
            for j in k + 1..bs {
                r[i * bs + j] -= r[i * bs + k] * d[k * bs + j];
            }
        }
    }
}

/// Trailing update `inner -= row · col` (BOTS `bmod`).
///
/// # Safety
/// As [`fwd`] with `inner` exclusive.
unsafe fn bmod(row: *const f64, col: *const f64, inner: *mut f64, bs: usize) {
    let r = std::slice::from_raw_parts(row, bs * bs);
    let c = std::slice::from_raw_parts(col, bs * bs);
    let x = std::slice::from_raw_parts_mut(inner, bs * bs);
    for i in 0..bs {
        for k in 0..bs {
            let rik = r[i * bs + k];
            for j in 0..bs {
                x[i * bs + j] -= rik * c[k * bs + j];
            }
        }
    }
}

/// Serial reference factorization.
pub fn serial_lu(m: &mut SparseMat) {
    let (nb, bs) = (m.nb, m.bs);
    for kk in 0..nb {
        unsafe { lu0(m.block_ptr(kk, kk), bs) };
        for jj in kk + 1..nb {
            if m.present(kk, jj) {
                let diag = m.block_ptr(kk, kk) as *const f64;
                unsafe { fwd(diag, m.block_ptr(kk, jj), bs) };
            }
        }
        for ii in kk + 1..nb {
            if m.present(ii, kk) {
                let diag = m.block_ptr(kk, kk) as *const f64;
                unsafe { bdiv(diag, m.block_ptr(ii, kk), bs) };
            }
        }
        for ii in kk + 1..nb {
            if m.present(ii, kk) {
                for jj in kk + 1..nb {
                    if m.present(kk, jj) {
                        m.ensure_block(ii, jj);
                        let row = m.block_ptr(ii, kk) as *const f64;
                        let col = m.block_ptr(kk, jj) as *const f64;
                        unsafe { bmod(row, col, m.block_ptr(ii, jj), bs) };
                    }
                }
            }
        }
    }
}

/// Wrapper making a block pointer sendable into a task (the task writes a
/// block no sibling touches — BOTS discipline).
#[derive(Clone, Copy)]
struct BlockPtr(*mut f64);
// SAFETY: access is disciplined by the phase structure (taskwaits between
// conflicting phases).
unsafe impl Send for BlockPtr {}
unsafe impl Sync for BlockPtr {}

impl BlockPtr {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Send` wrapper, not the raw pointer field.
    #[inline]
    fn get(self) -> *mut f64 {
        self.0
    }
}

/// Task-parallel factorization.
pub fn parallel_lu<M: Monitor>(team: &Team, monitor: &M, m: &mut SparseMat) {
    let (nb, bs) = (m.nb, m.bs);
    let r = regions();
    // Pre-allocate all fill-in blocks so the block grid is structurally
    // immutable during the parallel phase.
    for kk in 0..nb {
        for ii in kk + 1..nb {
            for jj in kk + 1..nb {
                if m.present(ii, kk) && m.present(kk, jj) {
                    m.ensure_block(ii, jj);
                }
            }
        }
    }
    // Only the single's executor touches the matrix structure; the Mutex
    // exists to make the capture Sync.
    let mat = parking_lot::Mutex::new(m);
    team.parallel(monitor, &r.par, |ctx| {
        ctx.single(&r.single, |ctx| {
            let mut mat = mat.lock();
            for kk in 0..nb {
                unsafe { lu0(mat.block_ptr(kk, kk), bs) };
                let diag = BlockPtr(mat.block_ptr(kk, kk));
                for jj in kk + 1..nb {
                    if mat.present(kk, jj) {
                        let col = BlockPtr(mat.block_ptr(kk, jj));
                        ctx.task(&r.task_fwd, move |_| unsafe {
                            // SAFETY: sole writer of this block this phase.
                            fwd(diag.get(), col.get(), bs);
                        });
                    }
                }
                for ii in kk + 1..nb {
                    if mat.present(ii, kk) {
                        let row = BlockPtr(mat.block_ptr(ii, kk));
                        ctx.task(&r.task_bdiv, move |_| unsafe {
                            // SAFETY: sole writer of this block this phase.
                            bdiv(diag.get(), row.get(), bs);
                        });
                    }
                }
                ctx.taskwait(r.tw);
                for ii in kk + 1..nb {
                    if mat.present(ii, kk) {
                        let row = BlockPtr(mat.block_ptr(ii, kk));
                        for jj in kk + 1..nb {
                            if mat.present(kk, jj) {
                                let col = BlockPtr(mat.block_ptr(kk, jj));
                                let inner = BlockPtr(mat.block_ptr(ii, jj));
                                ctx.task(&r.task_bmod, move |_| unsafe {
                                    // SAFETY: (ii, jj) unique this phase;
                                    // row/col blocks are read-only here.
                                    bmod(row.get(), col.get(), inner.get(), bs);
                                });
                            }
                        }
                    }
                }
                ctx.taskwait(r.tw);
            }
        });
    });
}

/// The BOTS "for" version: each phase is a worksharing loop instead of a
/// batch of tasks. The paper selected the single/task version for its
/// evaluation; this variant exists in BOTS and is provided for
/// completeness (its profile has workshare regions instead of task
/// trees).
pub fn parallel_lu_for<M: Monitor>(team: &Team, monitor: &M, m: &mut SparseMat) {
    let (nb, bs) = (m.nb, m.bs);
    let r = regions();
    let for_loop = for_regions();
    // Materialize all fill-in blocks up front so every block pointer is
    // stable for the whole factorization.
    for kk in 0..nb {
        for ii in kk + 1..nb {
            for jj in kk + 1..nb {
                if m.present(ii, kk) && m.present(kk, jj) {
                    m.ensure_block(ii, jj);
                }
            }
        }
    }
    let ptrs: Vec<Option<BlockPtr>> = (0..nb * nb)
        .map(|i| {
            let (ii, jj) = (i / nb, i % nb);
            m.present(ii, jj).then(|| BlockPtr(m.block_ptr(ii, jj)))
        })
        .collect();
    let ptrs = &ptrs;
    let at = move |ii: usize, jj: usize| ptrs[ii * nb + jj];
    team.parallel(monitor, &r.par, |ctx| {
        for kk in 0..nb {
            ctx.single(&r.single, |_| unsafe {
                // SAFETY: single executor; exclusive during this phase.
                lu0(at(kk, kk).expect("diagonal block").get(), bs);
            });
            let diag = at(kk, kk).expect("diagonal block");
            // Row of U and column of L in one combined workshare
            // (disjoint target blocks).
            let span = nb - (kk + 1);
            ctx.for_dynamic(&for_loop.fwd_bdiv, 0..2 * span, 1, |x| {
                let idx = kk + 1 + (x % span);
                if x < span {
                    if let Some(col) = at(kk, idx) {
                        // SAFETY: sole writer of block (kk, idx) this phase.
                        unsafe { fwd(diag.get(), col.get(), bs) };
                    }
                } else if let Some(row) = at(idx, kk) {
                    // SAFETY: sole writer of block (idx, kk) this phase.
                    unsafe { bdiv(diag.get(), row.get(), bs) };
                }
            });
            ctx.for_dynamic(&for_loop.bmod, 0..span * span, 1, |x| {
                let ii = kk + 1 + x / span;
                let jj = kk + 1 + x % span;
                if let (Some(row), Some(col)) = (at(ii, kk), at(kk, jj)) {
                    let inner = at(ii, jj).expect("fill-in was materialized");
                    // SAFETY: (ii, jj) is unique within this phase; row
                    // and col blocks are read-only here.
                    unsafe { bmod(row.get(), col.get(), inner.get(), bs) };
                }
            });
        }
    });
}

/// Worksharing regions of the "for" version.
pub struct ForRegions {
    /// Combined fwd/bdiv phase loop.
    pub fwd_bdiv: taskrt::ForConstruct,
    /// Trailing-update phase loop.
    pub bmod: taskrt::ForConstruct,
}

/// Lazily registered worksharing regions.
pub fn for_regions() -> &'static ForRegions {
    static R: OnceLock<ForRegions> = OnceLock::new();
    R.get_or_init(|| ForRegions {
        fwd_bdiv: taskrt::ForConstruct::new("sparselu!for_fwd_bdiv"),
        bmod: taskrt::ForConstruct::new("sparselu!for_bmod"),
    })
}

/// Run the "for" variant as a benchmark.
pub fn run_for<M: Monitor>(monitor: &M, opts: &RunOpts) -> Outcome {
    let (nb, bs) = input_dims(opts.scale);
    let mut m = SparseMat::generate(nb, bs, 0x0123_4567);
    let team = Team::new(opts.threads);
    let start = Instant::now();
    parallel_lu_for(&team, monitor, &mut m);
    let kernel = start.elapsed();
    let mut reference = SparseMat::generate(nb, bs, 0x0123_4567);
    serial_lu(&mut reference);
    let verified = m.checksum() == reference.checksum();
    Outcome {
        kernel,
        checksum: m.checksum(),
        verified,
    }
}

/// Problem size per scale (blocks per side, block dimension; BOTS medium
/// is 50 × 100).
pub fn input_dims(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Test => (6, 8),
        Scale::Small => (10, 16),
        Scale::Medium => (14, 24),
    }
}

/// Run the benchmark.
pub fn run<M: Monitor>(monitor: &M, opts: &RunOpts) -> Outcome {
    let (nb, bs) = input_dims(opts.scale);
    let mut m = SparseMat::generate(nb, bs, 0x0123_4567);
    let team = Team::new(opts.threads);
    let start = Instant::now();
    parallel_lu(&team, monitor, &mut m);
    let kernel = start.elapsed();
    let mut reference = SparseMat::generate(nb, bs, 0x0123_4567);
    serial_lu(&mut reference);
    // Identical per-block operation order ⇒ bitwise-equal factors.
    let verified = m.checksum() == reference.checksum();
    Outcome {
        kernel,
        checksum: m.checksum(),
        verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::NullMonitor;

    #[test]
    fn genmat_pattern_is_deterministic_and_diagonal_present() {
        let m = SparseMat::generate(8, 4, 1);
        let m2 = SparseMat::generate(8, 4, 1);
        assert_eq!(m.checksum(), m2.checksum());
        for k in 0..8 {
            assert!(m.present(k, k), "diagonal block {k} missing");
        }
    }

    #[test]
    fn lu0_factorizes_small_block() {
        // A = L·U for a 2×2: [[4, 2], [2, 3]] → L21 = 0.5, U22 = 2.
        let mut d = [4.0, 2.0, 2.0, 3.0];
        unsafe { lu0(d.as_mut_ptr(), 2) };
        assert_eq!(d, [4.0, 2.0, 0.5, 2.0]);
    }

    #[test]
    fn serial_lu_reproduces_product() {
        // Dense 1-block matrix: verify PA = LU by reconstruction.
        let bs = 8;
        let mut m = SparseMat::generate(1, bs, 3);
        let orig: Vec<f64> = m.blocks[0].as_ref().unwrap().to_vec();
        serial_lu(&mut m);
        let f = m.blocks[0].as_ref().unwrap();
        // Reconstruct L·U.
        let mut prod = vec![0.0; bs * bs];
        for i in 0..bs {
            for j in 0..bs {
                let mut acc = 0.0;
                for k in 0..bs {
                    let l = if i == k {
                        1.0
                    } else if k < i {
                        f[i * bs + k]
                    } else {
                        0.0
                    };
                    let u = if k <= j { f[k * bs + j] } else { 0.0 };
                    acc += l * u;
                }
                prod[i * bs + j] = acc;
            }
        }
        for (a, b) in prod.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn parallel_matches_serial_all_thread_counts() {
        for threads in [1, 2, 4] {
            let out = run(&NullMonitor, &RunOpts::new(threads).scale(Scale::Test));
            assert!(out.verified, "threads = {threads}");
        }
    }

    #[test]
    fn for_version_matches_task_version() {
        for threads in [1, 3] {
            let opts = RunOpts::new(threads).scale(Scale::Test);
            let a = run(&NullMonitor, &opts);
            let b = run_for(&NullMonitor, &opts);
            assert!(a.verified && b.verified, "threads = {threads}");
            assert_eq!(a.checksum, b.checksum);
        }
    }
}
