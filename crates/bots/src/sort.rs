//! BOTS `sort`: cilksort — 4-way parallel mergesort with recursive
//! task-parallel merging and a sequential quicksort below a grain size.

use crate::util::{RawSlice, SplitMix64};
use crate::{Outcome, RunOpts, Scale};
use pomp::{Monitor, RegionId};
use std::sync::OnceLock;
use std::time::Instant;
use taskrt::{taskwait_region, ParallelConstruct, SingleConstruct, TaskConstruct, TaskCtx, Team};

/// Regions of the sort benchmark.
pub struct Regions {
    /// The parallel region.
    pub par: ParallelConstruct,
    /// Recursive sort-split tasks.
    pub task_sort: TaskConstruct,
    /// Recursive merge tasks.
    pub task_merge: TaskConstruct,
    /// The joining taskwait.
    pub tw: RegionId,
    /// The single construct hosting the root call.
    pub single: SingleConstruct,
}

/// Lazily registered regions.
pub fn regions() -> &'static Regions {
    static R: OnceLock<Regions> = OnceLock::new();
    R.get_or_init(|| Regions {
        par: ParallelConstruct::new("sort!parallel"),
        task_sort: TaskConstruct::new("sort_split"),
        task_merge: TaskConstruct::new("sort_merge"),
        tw: taskwait_region("sort!taskwait"),
        single: SingleConstruct::new("sort!single"),
    })
}

/// Element count per scale (BOTS medium is 32 M; scaled down).
pub fn input_len(scale: Scale) -> usize {
    match scale {
        Scale::Test => 1 << 13,
        Scale::Small => 1 << 16,
        Scale::Medium => 1 << 19,
    }
}

/// Below this many elements, sort sequentially (BOTS default 2048).
const QUICK_GRAIN: usize = 2048;
/// Below this many total elements, merge sequentially (BOTS default 2048).
const MERGE_GRAIN: usize = 2048;

/// Deterministic input.
pub fn gen_input(len: usize, seed: u64) -> Vec<u32> {
    let mut rng = SplitMix64::new(seed);
    (0..len).map(|_| rng.next_u64() as u32).collect()
}

/// In-place sequential quicksort with insertion sort below 32 elements
/// (own implementation, mirroring BOTS's seqquick/insertion pair).
pub fn seq_quicksort(s: &mut [u32]) {
    if s.len() <= 32 {
        // Insertion sort.
        for i in 1..s.len() {
            let v = s[i];
            let mut j = i;
            while j > 0 && s[j - 1] > v {
                s[j] = s[j - 1];
                j -= 1;
            }
            s[j] = v;
        }
        return;
    }
    // Median-of-three pivot.
    let (lo, mid, hi) = (0, s.len() / 2, s.len() - 1);
    let mut pivot = s[mid];
    if (s[lo] > pivot) != (s[lo] > s[hi]) {
        pivot = s[lo];
    } else if (s[hi] > pivot) != (s[hi] > s[lo]) {
        pivot = s[hi];
    }
    let (mut i, mut j) = (0usize, s.len() - 1);
    loop {
        while s[i] < pivot {
            i += 1;
        }
        while s[j] > pivot {
            j -= 1;
        }
        if i >= j {
            break;
        }
        s.swap(i, j);
        i += 1;
        j = j.saturating_sub(1);
    }
    let split = j + 1;
    let (a, b) = s.split_at_mut(split);
    seq_quicksort(a);
    seq_quicksort(b);
}

/// Sequential two-way merge.
fn seq_merge(a: &[u32], b: &[u32], out: &mut [u32]) {
    debug_assert_eq!(a.len() + b.len(), out.len());
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        if i < a.len() && (j >= b.len() || a[i] <= b[j]) {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

/// Index of the first element in `s` that is `>= key` (lower bound).
fn lower_bound(s: &[u32], key: u32) -> usize {
    s.partition_point(|&x| x < key)
}

/// Recursive parallel merge (cilkmerge): split the larger run at its
/// median, binary-search the split point in the other run, and merge the
/// two halves as tasks.
#[allow(clippy::too_many_arguments)]
fn par_merge<'e, M: Monitor>(
    ctx: &TaskCtx<'_, 'e, M>,
    src: RawSlice<u32>,
    a0: usize,
    alen: usize,
    b0: usize,
    blen: usize,
    dst: RawSlice<u32>,
    o0: usize,
) {
    // SAFETY throughout: `src` ranges [a0, a0+alen) and [b0, b0+blen) are
    // only read, `dst` range [o0, o0+alen+blen) is written exclusively by
    // this call tree; the recursion partitions both ranges disjointly.
    if alen + blen <= MERGE_GRAIN {
        let (a, b) = unsafe { (src.range(a0, alen), src.range(b0, blen)) };
        let out = unsafe { dst.range_mut(o0, alen + blen) };
        seq_merge(a, b, out);
        return;
    }
    // Ensure the first run is the larger one.
    if alen < blen {
        return par_merge(ctx, src, b0, blen, a0, alen, dst, o0);
    }
    let r = regions();
    let ma = alen / 2;
    let key = unsafe { src.range(a0, alen) }[ma];
    let mb = lower_bound(unsafe { src.range(b0, blen) }, key);
    ctx.task(&r.task_merge, move |ctx| {
        par_merge(ctx, src, a0, ma, b0, mb, dst, o0);
    });
    ctx.task(&r.task_merge, move |ctx| {
        par_merge(
            ctx,
            src,
            a0 + ma,
            alen - ma,
            b0 + mb,
            blen - mb,
            dst,
            o0 + ma + mb,
        );
    });
    ctx.taskwait(r.tw);
}

/// Recursive 4-way parallel mergesort over `data[lo..lo+len)`, using
/// `tmp[lo..lo+len)` as scratch.
fn par_sort<'e, M: Monitor>(
    ctx: &TaskCtx<'_, 'e, M>,
    data: RawSlice<u32>,
    tmp: RawSlice<u32>,
    lo: usize,
    len: usize,
) {
    if len <= QUICK_GRAIN {
        // SAFETY: this call tree owns [lo, lo+len) exclusively.
        seq_quicksort(unsafe { data.range_mut(lo, len) });
        return;
    }
    let r = regions();
    let q = len / 4;
    let quarters = [(lo, q), (lo + q, q), (lo + 2 * q, q), (lo + 3 * q, len - 3 * q)];
    for (qlo, qlen) in quarters {
        ctx.task(&r.task_sort, move |ctx| par_sort(ctx, data, tmp, qlo, qlen));
    }
    ctx.taskwait(r.tw);
    // Merge quarter pairs into tmp.
    ctx.task(&r.task_merge, move |ctx| {
        par_merge(ctx, data, lo, q, lo + q, q, tmp, lo);
    });
    ctx.task(&r.task_merge, move |ctx| {
        par_merge(ctx, data, lo + 2 * q, q, lo + 3 * q, len - 3 * q, tmp, lo + 2 * q);
    });
    ctx.taskwait(r.tw);
    // Merge halves back into data.
    par_merge(ctx, tmp, lo, 2 * q, lo + 2 * q, len - 2 * q, data, lo);
}

/// Library entry point: task-parallel sort of an arbitrary slice.
pub fn sort_slice<M: Monitor>(monitor: &M, threads: usize, data: &mut [u32]) {
    let len = data.len();
    let mut tmp = vec![0u32; len];
    let rs_data = RawSlice::new(data);
    let rs_tmp = RawSlice::new(&mut tmp);
    let r = regions();
    Team::new(threads).parallel(monitor, &r.par, |ctx| {
        ctx.single(&r.single, |ctx| par_sort(ctx, rs_data, rs_tmp, 0, len));
    });
}

/// Run the benchmark.
pub fn run<M: Monitor>(monitor: &M, opts: &RunOpts) -> Outcome {
    let len = input_len(opts.scale);
    let mut data = gen_input(len, 0xB075_5047);
    let sum_before: u64 = data.iter().map(|&x| x as u64).sum();
    let mut tmp = vec![0u32; len];
    let rs_data = RawSlice::new(&mut data);
    let rs_tmp = RawSlice::new(&mut tmp);
    let r = regions();
    let team = Team::new(opts.threads);
    let start = Instant::now();
    team.parallel(monitor, &r.par, |ctx| {
        ctx.single(&r.single, |ctx| par_sort(ctx, rs_data, rs_tmp, 0, len));
    });
    let kernel = start.elapsed();
    let sorted = data.windows(2).all(|w| w[0] <= w[1]);
    let sum_after: u64 = data.iter().map(|&x| x as u64).sum();
    Outcome {
        kernel,
        checksum: sum_after,
        verified: sorted && sum_before == sum_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::NullMonitor;

    #[test]
    fn seq_quicksort_sorts() {
        let mut v = gen_input(10_000, 42);
        let mut expect = v.clone();
        expect.sort_unstable();
        seq_quicksort(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn seq_quicksort_edge_cases() {
        let mut empty: Vec<u32> = vec![];
        seq_quicksort(&mut empty);
        let mut one = vec![7u32];
        seq_quicksort(&mut one);
        assert_eq!(one, vec![7]);
        let mut dups = vec![3u32; 100];
        seq_quicksort(&mut dups);
        assert_eq!(dups, vec![3u32; 100]);
        let mut rev: Vec<u32> = (0..1000).rev().collect();
        seq_quicksort(&mut rev);
        assert!(rev.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn seq_merge_interleaves() {
        let a = [1u32, 4, 6];
        let b = [2u32, 3, 5, 7];
        let mut out = [0u32; 7];
        seq_merge(&a, &b, &mut out);
        assert_eq!(out, [1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn parallel_sort_matches_reference() {
        for threads in [1, 2, 4] {
            let out = run(&NullMonitor, &RunOpts::new(threads).scale(Scale::Test));
            assert!(out.verified, "threads = {threads}");
        }
    }
}
