//! BOTS `health`: discrete-time simulation of a hierarchical health-care
//! system. Each time step recursively simulates the village tree — one
//! task per child village — then processes the local hospital and collects
//! patients referred up by the children.
//!
//! In the paper's Table I, health's tasks average 2.35 µs: far too small,
//! which is why it shows up to 32 % instrumented overhead at one thread
//! (Fig. 13) that shrinks as threads are added and runtime contention
//! shadows the measurement cost.

use crate::util::{SendPtr, SplitMix64};
use crate::{Outcome, RunOpts, Scale, Variant};
use pomp::{Monitor, RegionId};
use std::sync::OnceLock;
use std::time::Instant;
use taskrt::{taskwait_region, ParallelConstruct, SingleConstruct, TaskConstruct, TaskCtx, Team};

/// Regions of the health benchmark.
pub struct Regions {
    /// The parallel region.
    pub par: ParallelConstruct,
    /// The per-village simulation task.
    pub task: TaskConstruct,
    /// The per-village taskwait.
    pub tw: RegionId,
    /// The single construct hosting the step loop.
    pub single: SingleConstruct,
}

/// Lazily registered regions.
pub fn regions() -> &'static Regions {
    static R: OnceLock<Regions> = OnceLock::new();
    R.get_or_init(|| Regions {
        par: ParallelConstruct::new("health!parallel"),
        task: TaskConstruct::new("health_village"),
        tw: taskwait_region("health!taskwait"),
        single: SingleConstruct::new("health!single"),
    })
}

/// Simulation parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Tree height (root level = `levels - 1`, leaves = 0).
    pub levels: u32,
    /// Children per non-leaf village.
    pub branch: usize,
    /// Initial healthy population per village.
    pub population: usize,
    /// Simulated time steps.
    pub steps: u32,
    /// Input seed.
    pub seed: u64,
}

/// Parameters per scale.
pub fn params(scale: Scale) -> Params {
    match scale {
        Scale::Test => Params {
            levels: 3,
            branch: 3,
            population: 15,
            steps: 20,
            seed: 0x4EA1,
        },
        Scale::Small => Params {
            levels: 4,
            branch: 3,
            population: 20,
            steps: 60,
            seed: 0x4EA1,
        },
        Scale::Medium => Params {
            levels: 5,
            branch: 4,
            population: 20,
            steps: 120,
            seed: 0x4EA1,
        },
    }
}

/// Cut-off: tasks only for villages at or above this level.
pub const CUTOFF_LEVEL: u32 = 2;

const SICK_DENOM: u64 = 15; // P(get sick) = 1/15 per step
const ASSESS_CAPACITY: usize = 2;
const ASSESS_TIME: u32 = 3;
const TREAT_TIME: u32 = 8;
const CURE_NUM: u64 = 4; // P(cured at assessment) = 4/10
const REFER_NUM: u64 = 3; // P(referred up)        = 3/10 (rest: treat here)

/// A patient; the list they sit in encodes their state.
#[derive(Clone, Copy, Debug)]
pub struct Patient {
    /// Steps remaining in the current state.
    pub remaining: u32,
}

/// A village with a hospital.
pub struct Village {
    /// Level in the tree (leaves = 0).
    pub level: u32,
    /// Child villages.
    pub children: Vec<Village>,
    rng: SplitMix64,
    healthy: Vec<Patient>,
    waiting: Vec<Patient>,
    assess: Vec<Patient>,
    inside: Vec<Patient>,
    refer_up: Vec<Patient>,
    treated_total: u64,
}

impl Village {
    /// Build the deterministic village tree.
    pub fn generate(p: &Params) -> Village {
        fn build(level: u32, p: &Params, path: u64) -> Village {
            let children = if level == 0 {
                Vec::new()
            } else {
                (0..p.branch)
                    .map(|i| build(level - 1, p, path * 31 + i as u64 + 1))
                    .collect()
            };
            Village {
                level,
                children,
                rng: SplitMix64::new(p.seed ^ path.wrapping_mul(0x9E37_79B9)),
                healthy: vec![Patient { remaining: 0 }; p.population],
                waiting: Vec::new(),
                assess: Vec::new(),
                inside: Vec::new(),
                refer_up: Vec::new(),
                treated_total: 0,
            }
        }
        build(p.levels - 1, p, 1)
    }

    /// One local hospital step (children are handled by the caller).
    fn step_local(&mut self, is_root: bool) {
        // 1. Healthy population falls sick with a fixed hazard.
        let mut i = 0;
        while i < self.healthy.len() {
            if self.rng.below(SICK_DENOM) == 0 {
                let mut p = self.healthy.swap_remove(i);
                p.remaining = 0;
                self.waiting.push(p);
            } else {
                i += 1;
            }
        }
        // 2. Admit up to the assessment capacity.
        let take = ASSESS_CAPACITY.min(self.waiting.len());
        for mut p in self.waiting.drain(..take) {
            p.remaining = ASSESS_TIME;
            self.assess.push(p);
        }
        // 3. Assessment outcomes.
        let mut k = 0;
        while k < self.assess.len() {
            if self.assess[k].remaining > 0 {
                self.assess[k].remaining -= 1;
                k += 1;
                continue;
            }
            let mut p = self.assess.swap_remove(k);
            let roll = self.rng.below(10);
            if roll < CURE_NUM {
                self.healthy.push(p);
            } else if roll < CURE_NUM + REFER_NUM && !is_root {
                self.refer_up.push(p);
            } else {
                p.remaining = TREAT_TIME;
                self.inside.push(p);
            }
        }
        // 4. Treatment progress.
        let mut k = 0;
        while k < self.inside.len() {
            if self.inside[k].remaining > 0 {
                self.inside[k].remaining -= 1;
                k += 1;
            } else {
                let p = self.inside.swap_remove(k);
                self.treated_total += 1;
                self.healthy.push(p);
            }
        }
    }

    /// Collect patients the children referred upwards.
    fn collect_referrals(&mut self) {
        // Split borrows: move out of children into our waiting list.
        let mut incoming = Vec::new();
        for c in &mut self.children {
            incoming.append(&mut c.refer_up);
        }
        self.waiting.append(&mut incoming);
    }

    /// Serial simulation of one step for this subtree.
    pub fn step_serial(&mut self, is_root: bool) {
        for c in &mut self.children {
            c.step_serial(false);
        }
        self.step_local(is_root);
        self.collect_referrals();
    }

    /// Total patients in this subtree (conservation check).
    pub fn total_patients(&self) -> usize {
        self.healthy.len()
            + self.waiting.len()
            + self.assess.len()
            + self.inside.len()
            + self.refer_up.len()
            + self.children.iter().map(Village::total_patients).sum::<usize>()
    }

    /// Deterministic state checksum.
    pub fn checksum(&self) -> u64 {
        let mut acc = (self.healthy.len() as u64)
            .wrapping_mul(3)
            .wrapping_add((self.waiting.len() as u64).wrapping_mul(5))
            .wrapping_add((self.assess.len() as u64).wrapping_mul(7))
            .wrapping_add((self.inside.len() as u64).wrapping_mul(11))
            .wrapping_add(self.treated_total.wrapping_mul(13));
        for c in &self.children {
            acc = acc.wrapping_mul(31).wrapping_add(c.checksum());
        }
        acc
    }
}

fn sim_task<'e, M: Monitor>(
    ctx: &TaskCtx<'_, 'e, M>,
    village: SendPtr<Village>,
    is_root: bool,
    cutoff: Option<u32>,
) {
    // SAFETY: each task owns its village subtree exclusively; the parent
    // only touches it again after its taskwait.
    let v = unsafe { village.as_mut() };
    let r = regions();
    let spawn_children = cutoff.is_none_or(|c| v.level >= c);
    for child in &mut v.children {
        if spawn_children {
            let p = SendPtr::new(child);
            ctx.task(&r.task, move |ctx| sim_task(ctx, p, false, cutoff));
        } else {
            child.step_serial(false);
        }
    }
    v.step_local(is_root);
    ctx.taskwait(r.tw);
    v.collect_referrals();
}

/// Run the benchmark.
pub fn run<M: Monitor>(monitor: &M, opts: &RunOpts) -> Outcome {
    let p = params(opts.scale);
    let cutoff = (opts.variant == Variant::Cutoff).then_some(CUTOFF_LEVEL);
    let mut root = Village::generate(&p);
    let initial = root.total_patients();
    let r = regions();
    let team = Team::new(opts.threads);
    let root_ptr = SendPtr::new(&mut root);
    let start = Instant::now();
    team.parallel(monitor, &r.par, |ctx| {
        ctx.single(&r.single, |ctx| {
            for _ in 0..p.steps {
                // SAFETY: the single's executor drives steps sequentially;
                // each step's tasks are joined by taskwaits inside.
                sim_task(ctx, root_ptr, true, cutoff);
                ctx.taskwait(regions().tw);
            }
        });
    });
    let kernel = start.elapsed();
    // Serial reference with identical seeds.
    let mut reference = Village::generate(&p);
    for _ in 0..p.steps {
        reference.step_serial(true);
    }
    let verified =
        root.checksum() == reference.checksum() && root.total_patients() == initial;
    Outcome {
        kernel,
        checksum: root.checksum(),
        verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::NullMonitor;

    #[test]
    fn tree_shape_matches_params() {
        let p = params(Scale::Test);
        let v = Village::generate(&p);
        assert_eq!(v.level, p.levels - 1);
        assert_eq!(v.children.len(), p.branch);
        assert!(v.children[0].children[0].children.is_empty());
        fn count(v: &Village) -> usize {
            1 + v.children.iter().map(count).sum::<usize>()
        }
        assert_eq!(count(&v), 1 + 3 + 9);
    }

    #[test]
    fn serial_sim_conserves_patients() {
        let p = params(Scale::Test);
        let mut v = Village::generate(&p);
        let before = v.total_patients();
        for _ in 0..p.steps {
            v.step_serial(true);
        }
        assert_eq!(v.total_patients(), before);
        // Something actually happened.
        assert!(v.checksum() != Village::generate(&p).checksum());
    }

    #[test]
    fn root_never_refers_up() {
        let p = params(Scale::Test);
        let mut v = Village::generate(&p);
        for _ in 0..50 {
            v.step_serial(true);
            assert!(v.refer_up.is_empty());
        }
    }

    #[test]
    fn parallel_matches_serial_all_thread_counts() {
        for threads in [1, 2, 4] {
            let out = run(&NullMonitor, &RunOpts::new(threads).scale(Scale::Test));
            assert!(out.verified, "threads = {threads}");
        }
    }

    #[test]
    fn cutoff_variant_matches() {
        let out = run(
            &NullMonitor,
            &RunOpts::new(4).scale(Scale::Test).variant(Variant::Cutoff),
        );
        assert!(out.verified);
    }
}
