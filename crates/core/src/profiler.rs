//! The task profiling algorithm (paper Section IV-C, Fig. 12).
//!
//! One [`ThreadProfile`] per thread per parallel region. It maintains:
//!
//! * the implicit task's call tree (the *main tree*, rooted at the parallel
//!   region),
//! * a table of *active* explicit task instances, each with a private,
//!   detached instance tree and a frame stack whose timers stop across
//!   suspension (paper Section IV-B3),
//! * the *current task* pointer,
//! * *stub nodes* under the implicit task's scheduling points recording the
//!   time the thread spent executing task fragments there (Section IV-B4),
//! * per-construct aggregate task trees, sitting beside the main tree, into
//!   which completed instance trees are merged (with node reuse), and
//! * the maximum number of concurrently live instance trees, the memory
//!   metric of the paper's Table II.
//!
//! All event methods take an explicit timestamp so the algorithm is fully
//! deterministic under a virtual clock (this is how the tests replay the
//! paper's event-stream figures with exact numbers). The
//! [`crate::monitor::ProfMonitor`] adapter supplies real clock readings.

use crate::body::TaskBody;
use crate::snapshot::{SnapNode, ThreadSnapshot};
use crate::tree::{Arena, NodeId, NodeKind};
use pomp::{ParamId, RegionId, TaskId, TaskRef};
use std::collections::HashMap;

/// Where a task's execution is attributed in the call tree.
///
/// The paper's Section IV-B2 (Fig. 3) argues only `Executing` produces
/// meaningful metrics; `Creating` is provided as the ablation that
/// reproduces the negative-exclusive-time pathology.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AssignPolicy {
    /// Attribute task execution to the scheduling point where it executes:
    /// detached instance trees + stub nodes + merge on completion.
    #[default]
    Executing,
    /// Attribute task execution to the node where the task was *created*:
    /// the instance tree hangs under the creation site, no stub nodes.
    /// Exclusive times of creation sites can go negative (Fig. 3 left).
    Creating,
}

/// An active explicit task instance (started but not completed).
#[derive(Debug)]
pub(crate) struct Instance {
    pub(crate) region: RegionId,
    pub(crate) body: TaskBody,
}

/// Per-thread call-path profile under construction.
#[derive(Debug)]
pub struct ThreadProfile {
    arena: Arena,
    parallel_region: RegionId,
    root: NodeId,
    implicit: TaskBody,
    instances: HashMap<TaskId, Instance>,
    current: TaskRef,
    policy: AssignPolicy,
    /// Aggregate task-tree roots in order of first completion.
    task_roots: Vec<NodeId>,
    /// Creation-site node per not-yet-started instance (used by the
    /// `Creating` policy and pruned at task begin).
    creation_nodes: HashMap<TaskId, NodeId>,
    live_trees: usize,
    max_live_trees: usize,
    /// Call-path depth limit per task body (paper Section IV-B3: "tree
    /// depth limits might kick in"). Frames beyond it collapse into a
    /// single [`NodeKind::Truncated`] child.
    max_depth: Option<usize>,
    /// Overload-shedding cap on concurrently live instance trees: beyond
    /// it, new instances degrade to counting-only (no private tree).
    max_live_limit: Option<usize>,
    /// Currently live *shed* (counting-only) instances and their construct
    /// regions. Disjoint from `instances`.
    shed_live: HashMap<TaskId, RegionId>,
    /// Total instances shed so far (monotonic; shown in the profile).
    shed_total: u64,
    /// Self-healing diagnostics: anomalies the profiler repaired instead
    /// of panicking over (e.g. instances force-closed at region end).
    diagnostics: Vec<String>,
    finished: bool,
}

impl ThreadProfile {
    /// Start profiling a thread's share of `parallel_region` at time `t`.
    pub fn new(parallel_region: RegionId, t: u64, policy: AssignPolicy) -> Self {
        Self::new_in(Arena::new(), parallel_region, t, policy)
    }

    /// Like [`ThreadProfile::new`] but building the trees inside a caller
    /// supplied (typically recycled) `arena`, so a thread beginning a new
    /// parallel region reuses the node capacity of an earlier one instead
    /// of allocating. The arena is reset first.
    pub fn new_in(mut arena: Arena, parallel_region: RegionId, t: u64, policy: AssignPolicy) -> Self {
        arena.reset();
        let root = arena.alloc(NodeKind::Region(parallel_region), None);
        arena.node_mut(root).stats.add_visit();
        let mut implicit = TaskBody::new(root);
        implicit.push(root, t);
        Self {
            arena,
            parallel_region,
            root,
            implicit,
            instances: HashMap::new(),
            current: TaskRef::Implicit,
            policy,
            task_roots: Vec::new(),
            creation_nodes: HashMap::new(),
            live_trees: 0,
            max_live_trees: 0,
            max_depth: None,
            max_live_limit: None,
            shed_live: HashMap::new(),
            shed_total: 0,
            diagnostics: Vec::new(),
            finished: false,
        }
    }

    /// Limit call-path depth per task body: regions entered beyond
    /// `depth` open frames collapse into one `<truncated>` node. This is
    /// the profile-explosion guard the paper's Section IV-B3 refers to
    /// (Score-P's call-path depth limit).
    pub fn set_max_depth(&mut self, depth: Option<usize>) {
        self.max_depth = depth;
    }

    /// Overload shedding (robustness guard): cap the number of
    /// concurrently live instance trees. Once `live_instance_trees()`
    /// reaches the cap, *newly begun* instances degrade to counting-only —
    /// they get no private tree, their inner events are dropped, and only
    /// their instance count (plus abort count) reaches the aggregate task
    /// tree. The number of shed instances is reported in the snapshot.
    pub fn set_max_live_trees(&mut self, limit: Option<usize>) {
        self.max_live_limit = limit;
    }

    /// Total task instances degraded to counting-only by the live-tree cap.
    pub fn shed_instances(&self) -> u64 {
        self.shed_total
    }

    /// Anomalies the profiler repaired instead of panicking over (empty
    /// for a clean run). See [`ThreadProfile::finish`].
    pub fn diagnostics(&self) -> &[String] {
        &self.diagnostics
    }

    /// True when the current task is a shed (counting-only) instance.
    fn current_is_shed(&self) -> bool {
        matches!(self.current, TaskRef::Explicit(id) if self.shed_live.contains_key(&id))
    }

    /// The attribution policy in effect.
    pub fn policy(&self) -> AssignPolicy {
        self.policy
    }

    /// Toggle free-list node reuse (ablation of the Section V-B memory
    /// strategy; on by default).
    pub fn set_node_reuse(&mut self, reuse: bool) {
        self.arena.set_reuse(reuse);
    }

    /// The task currently executing on this thread.
    pub fn current_task(&self) -> TaskRef {
        self.current
    }

    /// Number of instance trees currently alive.
    pub fn live_instance_trees(&self) -> usize {
        self.live_trees
    }

    /// High-water mark of concurrently live instance trees (paper
    /// Table II).
    pub fn max_live_trees(&self) -> usize {
        self.max_live_trees
    }

    /// Nodes currently allocated in this thread's arena (live) — the memory
    /// measure of Section V-B.
    pub fn live_nodes(&self) -> usize {
        self.arena.live_nodes()
    }

    /// High-water mark of arena slots ever allocated.
    pub fn arena_capacity(&self) -> usize {
        self.arena.capacity_nodes()
    }

    #[inline]
    fn enter_kind(&mut self, kind: NodeKind, t: u64) {
        if self.current_is_shed() {
            return; // counting-only: inner structure is dropped
        }
        let max_depth = self.max_depth;
        match self.current {
            TaskRef::Implicit => {
                Self::enter_on(&mut self.arena, &mut self.implicit, kind, t, max_depth)
            }
            TaskRef::Explicit(id) => {
                let inst = self
                    .instances
                    .get_mut(&id)
                    .expect("enter on unknown task instance");
                Self::enter_on(&mut self.arena, &mut inst.body, kind, t, max_depth)
            }
        }
    }

    fn enter_on(
        arena: &mut Arena,
        body: &mut TaskBody,
        kind: NodeKind,
        t: u64,
        max_depth: Option<usize>,
    ) {
        let cur = body.current_node();
        let node = if max_depth.is_some_and(|d| body.depth() >= d) {
            // Collapse: alias all deeper frames onto one truncated node.
            if arena.node(cur).kind == NodeKind::Truncated {
                cur
            } else {
                arena.child_of(cur, NodeKind::Truncated)
            }
        } else {
            arena.child_of(cur, kind)
        };
        arena.node_mut(node).stats.add_visit();
        body.push(node, t);
    }

    #[inline]
    fn exit_kind(&mut self, kind: NodeKind, t: u64) {
        if self.current_is_shed() {
            return;
        }
        let (node, dur, after_top) = match self.current {
            TaskRef::Implicit => {
                let (n, d) = self.implicit.pop(t);
                (n, d, self.implicit.current_node())
            }
            TaskRef::Explicit(id) => {
                let inst = self
                    .instances
                    .get_mut(&id)
                    .expect("exit on unknown task instance");
                let (n, d) = inst.pop_frame(t);
                (n, d, inst.body.current_node())
            }
        };
        if self.arena.node(node).kind == NodeKind::Truncated {
            // Aliased truncated frames: only the outermost records a
            // sample, otherwise the collapsed node would double-count
            // its own inclusive time.
            if after_top != node {
                self.arena.node_mut(node).stats.record(dur);
            }
            return;
        }
        debug_assert_eq!(
            self.arena.node(node).kind,
            kind,
            "exit event does not match innermost open region"
        );
        self.arena.node_mut(node).stats.record(dur);
    }

    /// Region enter event on the current task.
    pub fn enter(&mut self, region: RegionId, t: u64) {
        self.enter_kind(NodeKind::Region(region), t);
    }

    /// Region exit event on the current task.
    pub fn exit(&mut self, region: RegionId, t: u64) {
        self.exit_kind(NodeKind::Region(region), t);
    }

    /// Enter a parameter scope (paper Section VI): children recorded under
    /// a `(param, value)` node until the matching [`ThreadProfile::parameter_end`].
    pub fn parameter_begin(&mut self, param: ParamId, value: i64, t: u64) {
        self.enter_kind(NodeKind::Param(param, value), t);
    }

    /// Leave the innermost parameter scope.
    pub fn parameter_end(&mut self, param: ParamId, t: u64) {
        if self.current_is_shed() {
            return;
        }
        let (node, dur, after_top) = match self.current {
            TaskRef::Implicit => {
                let (n, d) = self.implicit.pop(t);
                (n, d, self.implicit.current_node())
            }
            TaskRef::Explicit(id) => {
                let inst = self
                    .instances
                    .get_mut(&id)
                    .expect("parameter_end on unknown task instance");
                let (n, d) = inst.pop_frame(t);
                (n, d, inst.body.current_node())
            }
        };
        if self.arena.node(node).kind == NodeKind::Truncated {
            if after_top != node {
                self.arena.node_mut(node).stats.record(dur);
            }
            return;
        }
        debug_assert!(
            matches!(self.arena.node(node).kind, NodeKind::Param(p, _) if p == param),
            "parameter_end does not match innermost open scope"
        );
        self.arena.node_mut(node).stats.record(dur);
    }

    /// Task creation begins: enter the creation region and remember the
    /// creation site of `new_task`.
    pub fn task_create_begin(
        &mut self,
        create_region: RegionId,
        _task_region: RegionId,
        new_task: TaskId,
        t: u64,
    ) {
        self.enter(create_region, t);
        if self.current_is_shed() {
            return; // no creation site to remember: the creator has no tree
        }
        let site = match self.current {
            TaskRef::Implicit => self.implicit.current_node(),
            TaskRef::Explicit(id) => self.instances[&id].body.current_node(),
        };
        self.creation_nodes.insert(new_task, site);
    }

    /// Task creation finished.
    pub fn task_create_end(&mut self, create_region: RegionId, _new_task: TaskId, t: u64) {
        self.exit(create_region, t);
    }

    /// `TaskSwitch` (paper Fig. 12): the thread's current task changes to
    /// `resumed`. Suspends the current explicit task's timers, maintains
    /// the stub node in the implicit task's tree, and resumes the target.
    pub fn task_switch(&mut self, resumed: TaskRef, t: u64) {
        if self.current == resumed {
            return;
        }
        // "if current task is an explicit task { Exit(implicit, root region
        // of current task); stop time measurement on all open regions }"
        // Shed (counting-only) instances have no body and no stub frame.
        if let TaskRef::Explicit(id) = self.current {
            if !self.shed_live.contains_key(&id) {
                let inst = self
                    .instances
                    .get_mut(&id)
                    .expect("switch away from unknown task instance");
                inst.body.pause(t);
                if self.policy == AssignPolicy::Executing {
                    let (node, dur) = self.implicit.pop(t);
                    debug_assert!(
                        matches!(self.arena.node(node).kind, NodeKind::Stub(_)),
                        "implicit task's top frame must be the suspended task's stub"
                    );
                    self.arena.node_mut(node).stats.record(dur);
                }
            }
        }
        self.current = resumed;
        // "if task instance is an explicit task { resume time measurement;
        // Enter(implicit, root region of task instance) }"
        if let TaskRef::Explicit(id) = resumed {
            if !self.shed_live.contains_key(&id) {
                let inst = self
                    .instances
                    .get_mut(&id)
                    .expect("switch to unknown task instance");
                if inst.body.is_paused() {
                    inst.body.resume(t);
                }
                if self.policy == AssignPolicy::Executing {
                    let region = inst.region;
                    let stub = self
                        .arena
                        .child_of(self.implicit.current_node(), NodeKind::Stub(region));
                    self.arena.node_mut(stub).stats.add_visit();
                    self.implicit.push(stub, t);
                }
            }
        }
    }

    /// `TaskBegin` (paper Fig. 12): the thread starts executing instance
    /// `id` of construct `task_region`. Creates the instance-specific data,
    /// switches to the instance, and enters its root region.
    pub fn task_begin(&mut self, task_region: RegionId, id: TaskId, t: u64) {
        debug_assert!(
            !self.instances.contains_key(&id),
            "task instance began twice"
        );
        if self.max_live_limit.is_some_and(|cap| self.live_trees >= cap) {
            // Overload shedding: the cap on concurrently live instance
            // trees is reached. Degrade this instance to counting-only —
            // it is still tracked as the current task (the event stream
            // keeps referring to it), but gets no private tree, and only
            // its existence reaches the aggregate tree.
            self.shed_total += 1;
            self.shed_live.insert(id, task_region);
            let agg = self.aggregate_root(task_region);
            self.arena.node_mut(agg).stats.add_visit();
            self.task_switch(TaskRef::Explicit(id), t);
            self.creation_nodes.remove(&id);
            return;
        }
        let root = match self.policy {
            AssignPolicy::Executing => {
                // Detached private tree; merged on completion.
                self.arena.alloc(NodeKind::Region(task_region), None)
            }
            AssignPolicy::Creating => {
                // Hang the instance under the node where it was created
                // (falling back to the implicit task's position for
                // instances whose creation was not observed).
                let parent = self
                    .creation_nodes
                    .get(&id)
                    .copied()
                    .unwrap_or_else(|| self.implicit.current_node());
                self.arena.child_of(parent, NodeKind::Region(task_region))
            }
        };
        self.instances.insert(
            id,
            Instance {
                region: task_region,
                body: TaskBody::new(root),
            },
        );
        self.live_trees += 1;
        self.max_live_trees = self.max_live_trees.max(self.live_trees);
        self.task_switch(TaskRef::Explicit(id), t);
        let inst = self.instances.get_mut(&id).expect("just inserted");
        self.arena.node_mut(root).stats.add_visit();
        inst.body.push(root, t);
    }

    /// `TaskEnd` (paper Fig. 12): instance `id` completed. Exits its root
    /// region, switches back to the implicit task, and merges the instance
    /// tree into the thread's aggregate tree for this construct (releasing
    /// the instance nodes for reuse).
    pub fn task_end(&mut self, task_region: RegionId, id: TaskId, t: u64) {
        assert_eq!(
            self.current,
            TaskRef::Explicit(id),
            "task_end for a task that is not current"
        );
        if self.shed_live.contains_key(&id) {
            self.end_shed(id, t, false);
            return;
        }
        // Exit(task instance, task region)
        let inst = self.instances.get_mut(&id).expect("unknown task instance");
        debug_assert_eq!(inst.region, task_region);
        let (node, dur) = inst.body.pop(t);
        debug_assert_eq!(node, inst.body.root, "task ended with open inner regions");
        debug_assert_eq!(inst.body.depth(), 0, "task ended with open inner regions");
        self.arena.node_mut(node).stats.record(dur);
        // TaskSwitch(implicit task)
        self.task_switch(TaskRef::Implicit, t);
        // Merge task tree into the global profile of the thread.
        let inst = self.instances.remove(&id).expect("unknown task instance");
        if self.policy == AssignPolicy::Executing {
            let agg = self.aggregate_root(task_region);
            self.arena.merge_into(inst.body.root, agg);
        }
        self.live_trees -= 1;
        self.creation_nodes.remove(&id);
    }

    /// `TaskAbort`: instance `id` died mid-execution (its body panicked,
    /// or it is being force-closed at region end). The panic unwound
    /// without emitting exit events, so every open frame of the instance
    /// is force-closed — charging each the time observed so far — the
    /// instance root is tagged aborted, and the partial tree is still
    /// merged into the aggregate task tree. The thread resumes the
    /// implicit task, exactly as after a normal `task_end`.
    pub fn task_abort(&mut self, task_region: RegionId, id: TaskId, t: u64) {
        if self.shed_live.contains_key(&id) {
            if self.current != TaskRef::Explicit(id) {
                self.task_switch(TaskRef::Explicit(id), t);
            }
            self.end_shed(id, t, true);
            return;
        }
        // Robustness: the abort may arrive for a *suspended* instance
        // (forced closure at region end). Resume it first so the stub
        // accounting in the implicit tree stays balanced.
        if self.current != TaskRef::Explicit(id) {
            self.task_switch(TaskRef::Explicit(id), t);
        }
        let inst = self
            .instances
            .get_mut(&id)
            .expect("abort of unknown task instance");
        debug_assert_eq!(inst.region, task_region);
        let root = inst.body.root;
        let mut closed = Vec::with_capacity(inst.body.depth());
        while inst.body.depth() > 0 {
            let (node, dur) = inst.body.pop(t);
            // Aliased <truncated> frames: record the outermost only (the
            // same double-count guard exit_kind applies).
            let aliased = inst.body.current_node() == node;
            closed.push((node, dur, aliased));
        }
        for (node, dur, aliased) in closed {
            if aliased && self.arena.node(node).kind == NodeKind::Truncated {
                continue;
            }
            self.arena.node_mut(node).stats.record(dur);
        }
        self.arena.node_mut(root).stats.record_abort();
        self.task_switch(TaskRef::Implicit, t);
        let inst = self.instances.remove(&id).expect("unknown task instance");
        if self.policy == AssignPolicy::Executing {
            let agg = self.aggregate_root(task_region);
            self.arena.merge_into(inst.body.root, agg);
        }
        self.live_trees -= 1;
        self.creation_nodes.remove(&id);
    }

    /// Complete a shed (counting-only) instance: no tree to merge, just
    /// bookkeeping — and an abort tag on the aggregate root if it died.
    fn end_shed(&mut self, id: TaskId, t: u64, aborted: bool) {
        debug_assert_eq!(
            self.current,
            TaskRef::Explicit(id),
            "shed instance ended while not current"
        );
        if aborted {
            let region = self.shed_live[&id];
            let agg = self.aggregate_root(region);
            self.arena.node_mut(agg).stats.record_abort();
        }
        self.task_switch(TaskRef::Implicit, t);
        self.shed_live.remove(&id);
        self.creation_nodes.remove(&id);
    }

    fn aggregate_root(&mut self, region: RegionId) -> NodeId {
        let kind = NodeKind::Region(region);
        if let Some(&r) = self
            .task_roots
            .iter()
            .find(|&&r| self.arena.node(r).kind == kind)
        {
            return r;
        }
        let r = self.arena.alloc(kind, None);
        self.task_roots.push(r);
        r
    }

    /// Close the profile at time `t` (end of the parallel region). Any
    /// regions still open on the implicit task (normally just the
    /// parallel-region root) are exited.
    ///
    /// Self-healing: a faulty runtime (or a panic that escaped task
    /// containment) may end the region with task instances still open.
    /// Instead of panicking inside the measurement system, each leftover
    /// instance is force-closed as aborted — its open frames are charged
    /// the time observed so far, its partial tree is merged and tagged —
    /// and a [`ThreadProfile::diagnostics`] entry records the repair.
    pub fn finish(&mut self, t: u64) {
        if let TaskRef::Explicit(id) = self.current {
            self.diagnostics.push(format!(
                "region ended while task instance {} was still executing; force-closed as aborted",
                id.get()
            ));
            let region = self.instance_region(id);
            self.task_abort(region, id, t);
        }
        let mut leftover: Vec<TaskId> = self
            .instances
            .keys()
            .chain(self.shed_live.keys())
            .copied()
            .collect();
        leftover.sort();
        for id in leftover {
            self.diagnostics.push(format!(
                "region ended with suspended task instance {}; force-closed as aborted",
                id.get()
            ));
            let region = self.instance_region(id);
            self.task_abort(region, id, t);
        }
        while self.implicit.depth() > 0 {
            let (node, dur) = self.implicit.pop(t);
            self.arena.node_mut(node).stats.record(dur);
        }
        self.finished = true;
    }

    /// The construct region of an active (live or shed) instance.
    fn instance_region(&self, id: TaskId) -> RegionId {
        self.instances
            .get(&id)
            .map(|i| i.region)
            .or_else(|| self.shed_live.get(&id).copied())
            .expect("active instance without a region")
    }

    /// True once [`ThreadProfile::finish`] ran.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Consume the profile and recover its arena (reset, capacity kept)
    /// for recycling into the next parallel region's shard.
    pub fn into_arena(mut self) -> Arena {
        self.arena.reset();
        self.arena
    }

    // Crate-internal access for the migration module (see `migrate.rs`).
    pub(crate) fn instances_mut(&mut self) -> &mut HashMap<TaskId, Instance> {
        &mut self.instances
    }

    pub(crate) fn instances_ref(&self) -> &HashMap<TaskId, Instance> {
        &self.instances
    }

    pub(crate) fn arena_mut(&mut self) -> &mut Arena {
        &mut self.arena
    }

    pub(crate) fn arena_ref(&self) -> &Arena {
        &self.arena
    }

    pub(crate) fn snap_public(&self, node: NodeId) -> SnapNode {
        self.snap(node)
    }

    pub(crate) fn dec_live_trees(&mut self) {
        self.live_trees -= 1;
    }

    pub(crate) fn inc_live_trees(&mut self) {
        self.live_trees += 1;
        self.max_live_trees = self.max_live_trees.max(self.live_trees);
    }

    pub(crate) fn insert_instance(&mut self, id: TaskId, region: RegionId, body: TaskBody) {
        self.instances.insert(id, Instance { region, body });
    }

    fn snap(&self, node: NodeId) -> SnapNode {
        let n = self.arena.node(node);
        SnapNode {
            kind: n.kind,
            stats: n.stats,
            children: n.children.iter().map(|&c| self.snap(c)).collect(),
        }
    }

    /// Extract a plain snapshot (main tree + aggregated task trees) for
    /// analysis. Usually called after [`ThreadProfile::finish`]; calling it
    /// earlier snapshots the in-progress state (open frames simply have not
    /// recorded samples yet).
    pub fn snapshot(&self, tid: usize) -> ThreadSnapshot {
        ThreadSnapshot {
            tid,
            parallel_region: self.parallel_region,
            main: self.snap(self.root),
            task_trees: self.task_roots.iter().map(|&r| self.snap(r)).collect(),
            max_live_trees: self.max_live_trees,
            arena_capacity: self.arena.capacity_nodes(),
            shed_instances: self.shed_total,
            diagnostics: self.diagnostics.clone(),
        }
    }
}

impl Instance {
    fn pop_frame(&mut self, t: u64) -> (NodeId, u64) {
        self.body.pop(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::TaskIdAllocator;

    fn rid(i: u32) -> RegionId {
        RegionId(i)
    }

    const PAR: u32 = 0;
    const TASK_A: u32 = 1;
    const CREATE_A: u32 = 2;
    const BARRIER: u32 = 3;
    const TASKWAIT: u32 = 4;
    const FOO: u32 = 5;

    /// Helper: find a child snapshot by kind.
    fn child(n: &SnapNode, kind: NodeKind) -> &SnapNode {
        n.children
            .iter()
            .find(|c| c.kind == kind)
            .unwrap_or_else(|| panic!("no child {kind:?} under {:?}", n.kind))
    }

    #[test]
    fn plain_nesting_without_tasks_matches_fig1() {
        // Paper Fig. 1: main{ foo(), bar() } — here PAR{ FOO twice }.
        let mut p = ThreadProfile::new(rid(PAR), 0, AssignPolicy::Executing);
        p.enter(rid(FOO), 10);
        p.exit(rid(FOO), 30);
        p.enter(rid(FOO), 40);
        p.exit(rid(FOO), 45);
        p.finish(100);
        let s = p.snapshot(0);
        assert_eq!(s.main.stats.sum_ns, 100);
        assert_eq!(s.main.stats.visits, 1);
        let foo = child(&s.main, NodeKind::Region(rid(FOO)));
        assert_eq!(foo.stats.visits, 2);
        assert_eq!(foo.stats.sum_ns, 25);
        assert_eq!(foo.stats.min_ns, 5);
        assert_eq!(foo.stats.max_ns, 20);
        assert!(s.task_trees.is_empty());
    }

    #[test]
    fn single_task_in_barrier_creates_stub_and_task_tree() {
        // The walkthrough of paper Figs. 6-8 and 10-11 with one instance.
        let ids = TaskIdAllocator::new();
        let t1 = ids.alloc();
        let mut p = ThreadProfile::new(rid(PAR), 0, AssignPolicy::Executing);
        p.task_create_begin(rid(CREATE_A), rid(TASK_A), t1, 10);
        p.task_create_end(rid(CREATE_A), t1, 12);
        p.enter(rid(BARRIER), 20);
        p.task_begin(rid(TASK_A), t1, 25);
        p.task_end(rid(TASK_A), t1, 75);
        p.exit(rid(BARRIER), 80);
        p.finish(100);
        let s = p.snapshot(0);

        // Main tree: PAR -> {create A, barrier -> stub A}.
        let create = child(&s.main, NodeKind::Region(rid(CREATE_A)));
        assert_eq!(create.stats.sum_ns, 2);
        let barrier = child(&s.main, NodeKind::Region(rid(BARRIER)));
        assert_eq!(barrier.stats.sum_ns, 60);
        let stub = child(barrier, NodeKind::Stub(rid(TASK_A)));
        assert_eq!(stub.stats.visits, 1, "one fragment executed");
        assert_eq!(stub.stats.sum_ns, 50, "time executing the task in the barrier");
        // Barrier exclusive = 60 - 50 = 10 (management/idle), the Fig. 5 split.

        // Task tree beside the main tree.
        assert_eq!(s.task_trees.len(), 1);
        let task = &s.task_trees[0];
        assert_eq!(task.kind, NodeKind::Region(rid(TASK_A)));
        assert_eq!(task.stats.visits, 1);
        assert_eq!(task.stats.sum_ns, 50);
    }

    #[test]
    fn interleaved_fragments_fig2_are_attributed_per_instance() {
        // Paper Fig. 2: two instances of the same construct, both enter
        // foo(), both suspend inside it; the exit events can only be
        // attributed correctly with instance tracking.
        let ids = TaskIdAllocator::new();
        let (t1, t2) = (ids.alloc(), ids.alloc());
        let mut p = ThreadProfile::new(rid(PAR), 0, AssignPolicy::Executing);
        p.enter(rid(BARRIER), 0);
        p.task_begin(rid(TASK_A), t1, 10);
        p.enter(rid(FOO), 12);
        p.enter(rid(TASKWAIT), 14); // t1 suspends here
        p.task_begin(rid(TASK_A), t2, 20); // implies switch away from t1
        p.enter(rid(FOO), 22);
        p.exit(rid(FOO), 30); // this exit belongs to t2's foo
        p.task_end(rid(TASK_A), t2, 32);
        p.task_switch(TaskRef::Explicit(t1), 35); // t1 resumes
        p.exit(rid(TASKWAIT), 36);
        p.exit(rid(FOO), 40); // and this exit to t1's foo
        p.task_end(rid(TASK_A), t1, 42);
        p.exit(rid(BARRIER), 50);
        p.finish(60);
        let s = p.snapshot(0);

        let task = &s.task_trees[0];
        assert_eq!(task.stats.visits, 2);
        // t1 ran 10..14 suspended 14(+6 create t2 window)..35 resumed 35..42
        // minus its own suspension: t1 inclusive = (20-10) + (42-35) = 17.
        // t2 inclusive = 32-20 = 12. Sum = 29.
        assert_eq!(task.stats.sum_ns, 29);
        assert_eq!(task.stats.min_ns, 12);
        assert_eq!(task.stats.max_ns, 17);
        let foo = child(task, NodeKind::Region(rid(FOO)));
        // t1's foo: entered 12, suspended 20..35, exited 40 => 13.
        // t2's foo: 22..30 => 8. Sum 21, both instances' fragments correct.
        assert_eq!(foo.stats.visits, 2);
        assert_eq!(foo.stats.sum_ns, 21);
        assert_eq!(foo.stats.min_ns, 8);
        assert_eq!(foo.stats.max_ns, 13);
        // taskwait under foo, time excludes t1's suspension: 14..20 + 35..36 = 7.
        let tw = child(foo, NodeKind::Region(rid(TASKWAIT)));
        assert_eq!(tw.stats.sum_ns, 7);

        // Implicit tree: barrier with two stub fragments for t1 (10..20,
        // 35..42) and one for t2 (20..32): stub visits 3, time 29.
        let barrier = child(&s.main, NodeKind::Region(rid(BARRIER)));
        let stub = child(barrier, NodeKind::Stub(rid(TASK_A)));
        assert_eq!(stub.stats.visits, 3);
        assert_eq!(stub.stats.sum_ns, 29);
    }

    #[test]
    fn max_live_trees_tracks_suspension_depth() {
        let ids = TaskIdAllocator::new();
        let (t1, t2, t3) = (ids.alloc(), ids.alloc(), ids.alloc());
        let mut p = ThreadProfile::new(rid(PAR), 0, AssignPolicy::Executing);
        p.enter(rid(BARRIER), 0);
        p.task_begin(rid(TASK_A), t1, 1);
        p.enter(rid(TASKWAIT), 2);
        p.task_begin(rid(TASK_A), t2, 3);
        p.enter(rid(TASKWAIT), 4);
        p.task_begin(rid(TASK_A), t3, 5);
        assert_eq!(p.live_instance_trees(), 3);
        p.task_end(rid(TASK_A), t3, 6);
        p.task_switch(TaskRef::Explicit(t2), 7);
        p.exit(rid(TASKWAIT), 8);
        p.task_end(rid(TASK_A), t2, 9);
        p.task_switch(TaskRef::Explicit(t1), 10);
        p.exit(rid(TASKWAIT), 11);
        p.task_end(rid(TASK_A), t1, 12);
        p.exit(rid(BARRIER), 13);
        p.finish(14);
        assert_eq!(p.max_live_trees(), 3);
        assert_eq!(p.live_instance_trees(), 0);
    }

    #[test]
    fn instance_nodes_are_reused_across_instances() {
        let ids = TaskIdAllocator::new();
        let mut p = ThreadProfile::new(rid(PAR), 0, AssignPolicy::Executing);
        p.enter(rid(BARRIER), 0);
        let mut t = 1u64;
        let mut watermark_after_first = 0;
        for k in 0..100 {
            let id = ids.alloc();
            p.task_begin(rid(TASK_A), id, t);
            p.enter(rid(FOO), t + 1);
            p.exit(rid(FOO), t + 2);
            p.task_end(rid(TASK_A), id, t + 3);
            t += 10;
            if k == 0 {
                watermark_after_first = p.arena_capacity();
            }
        }
        // Sequential instances must not grow the arena: every instance tree
        // is released and its nodes reused (paper Section V-B).
        assert_eq!(p.arena_capacity(), watermark_after_first);
        p.exit(rid(BARRIER), t);
        p.finish(t + 1);
        let s = p.snapshot(0);
        assert_eq!(s.task_trees[0].stats.visits, 100);
    }

    #[test]
    fn creating_policy_reproduces_fig3_negative_exclusive_time() {
        // Fig. 3: creation takes 2, the task runs 5 inside the barrier.
        let ids = TaskIdAllocator::new();
        let t1 = ids.alloc();
        let mut p = ThreadProfile::new(rid(PAR), 0, AssignPolicy::Creating);
        p.task_create_begin(rid(CREATE_A), rid(TASK_A), t1, 2); // parallel start took 2
        p.task_create_end(rid(CREATE_A), t1, 4);
        p.enter(rid(BARRIER), 4);
        p.task_begin(rid(TASK_A), t1, 4);
        p.task_end(rid(TASK_A), t1, 9); // task ran 5
        p.exit(rid(BARRIER), 11); // 2 more waiting
        p.finish(11);
        let s = p.snapshot(0);
        // Task tree hangs under the creation node; no stub under barrier.
        assert!(s.task_trees.is_empty());
        let create = child(&s.main, NodeKind::Region(rid(CREATE_A)));
        let task = child(create, NodeKind::Region(rid(TASK_A)));
        assert_eq!(task.stats.sum_ns, 5);
        // Creation node: inclusive 2, child task 5 => exclusive -3 < 0.
        let create_exclusive = create.stats.sum_ns as i64 - task.stats.sum_ns as i64;
        assert!(create_exclusive < 0, "Fig. 3 pathology: {create_exclusive}");
        // Barrier keeps the task's 5 ns in its *exclusive* time (no stub):
        let barrier = child(&s.main, NodeKind::Region(rid(BARRIER)));
        assert_eq!(barrier.stats.sum_ns, 7);
        assert!(barrier.children.is_empty());
    }

    #[test]
    fn executing_policy_fig3_right_side_is_sane() {
        let ids = TaskIdAllocator::new();
        let t1 = ids.alloc();
        let mut p = ThreadProfile::new(rid(PAR), 0, AssignPolicy::Executing);
        p.task_create_begin(rid(CREATE_A), rid(TASK_A), t1, 2);
        p.task_create_end(rid(CREATE_A), t1, 4);
        p.enter(rid(BARRIER), 4);
        p.task_begin(rid(TASK_A), t1, 4);
        p.task_end(rid(TASK_A), t1, 9);
        p.exit(rid(BARRIER), 11);
        p.finish(11);
        let s = p.snapshot(0);
        let create = child(&s.main, NodeKind::Region(rid(CREATE_A)));
        assert_eq!(create.stats.sum_ns, 2);
        assert!(create.children.is_empty());
        let barrier = child(&s.main, NodeKind::Region(rid(BARRIER)));
        let stub = child(barrier, NodeKind::Stub(rid(TASK_A)));
        // Barrier exclusive = 7 - 5 = 2: only true waiting remains.
        assert_eq!(barrier.stats.sum_ns as i64 - stub.stats.sum_ns as i64, 2);
        assert_eq!(s.task_trees[0].stats.sum_ns, 5);
    }

    #[test]
    fn parameter_nodes_split_task_statistics() {
        // Table IV mechanism: tasks report their recursion depth.
        let ids = TaskIdAllocator::new();
        let depth = ParamId(0);
        let mut p = ThreadProfile::new(rid(PAR), 0, AssignPolicy::Executing);
        p.enter(rid(BARRIER), 0);
        let mut t = 0u64;
        for (d, dur) in [(0i64, 40u64), (1, 15), (1, 25), (2, 5)] {
            let id = ids.alloc();
            p.task_begin(rid(TASK_A), id, t);
            p.parameter_begin(depth, d, t);
            p.parameter_end(depth, t + dur);
            p.task_end(rid(TASK_A), id, t + dur);
            t += dur + 5;
        }
        p.exit(rid(BARRIER), t);
        p.finish(t);
        let s = p.snapshot(0);
        let task = &s.task_trees[0];
        assert_eq!(task.stats.visits, 4);
        let d1 = child(task, NodeKind::Param(depth, 1));
        assert_eq!(d1.stats.visits, 2);
        assert_eq!(d1.stats.sum_ns, 40);
        assert_eq!(d1.stats.min_ns, 15);
        assert_eq!(d1.stats.max_ns, 25);
        let d2 = child(task, NodeKind::Param(depth, 2));
        assert_eq!(d2.stats.sum_ns, 5);
    }

    #[test]
    fn finish_with_active_instance_heals_and_diagnoses() {
        // The seed behaviour here was a panic; the measurement system must
        // never take down the application, so leftover instances are now
        // force-closed as aborted with a diagnostic.
        let ids = TaskIdAllocator::new();
        let t1 = ids.alloc();
        let mut p = ThreadProfile::new(rid(PAR), 0, AssignPolicy::Executing);
        p.enter(rid(BARRIER), 0);
        p.task_begin(rid(TASK_A), t1, 1);
        p.task_switch(TaskRef::Implicit, 2);
        p.exit(rid(BARRIER), 3);
        p.finish(4);
        assert!(p.is_finished());
        assert_eq!(p.diagnostics().len(), 1);
        assert!(p.diagnostics()[0].contains("force-closed"), "{:?}", p.diagnostics());
        assert_eq!(p.live_instance_trees(), 0, "instance tree was released");
        let s = p.snapshot(0);
        assert_eq!(s.diagnostics, p.diagnostics());
        // The partial instance still reached the aggregate tree, tagged.
        let task = &s.task_trees[0];
        assert_eq!(task.stats.aborted, 1);
        assert_eq!(task.stats.sum_ns, 1, "ran 1..2 before suspension");
    }

    #[test]
    fn finish_while_task_current_heals_and_diagnoses() {
        let ids = TaskIdAllocator::new();
        let t1 = ids.alloc();
        let mut p = ThreadProfile::new(rid(PAR), 0, AssignPolicy::Executing);
        p.enter(rid(BARRIER), 0);
        p.task_begin(rid(TASK_A), t1, 1);
        p.enter(rid(FOO), 2); // open inner region, never exited
        p.finish(10);
        assert_eq!(p.diagnostics().len(), 1);
        assert!(p.diagnostics()[0].contains("still executing"));
        let s = p.snapshot(0);
        let task = &s.task_trees[0];
        assert_eq!(task.stats.aborted, 1);
        assert_eq!(task.stats.sum_ns, 9, "charged up to the force-close");
        let foo = child(task, NodeKind::Region(rid(FOO)));
        assert_eq!(foo.stats.sum_ns, 8);
        // Implicit tree stayed balanced: stub closed, barrier closed.
        let barrier = child(&s.main, NodeKind::Region(rid(BARRIER)));
        let stub = child(barrier, NodeKind::Stub(rid(TASK_A)));
        assert_eq!(stub.stats.sum_ns, 9);
        s.main.walk(&mut |_, n| assert!(n.exclusive_ns() >= 0));
    }

    #[test]
    fn task_abort_closes_open_frames_and_merges_tagged() {
        // A panicking task unwinds without exit events: the abort must
        // force-close foo, tag the instance, and still merge it so the
        // measured time is not lost.
        let ids = TaskIdAllocator::new();
        let (t1, t2) = (ids.alloc(), ids.alloc());
        let mut p = ThreadProfile::new(rid(PAR), 0, AssignPolicy::Executing);
        p.enter(rid(BARRIER), 0);
        p.task_begin(rid(TASK_A), t1, 10);
        p.enter(rid(FOO), 12);
        p.task_abort(rid(TASK_A), t1, 20); // panic inside foo
        p.task_begin(rid(TASK_A), t2, 25); // siblings keep running
        p.task_end(rid(TASK_A), t2, 40);
        p.exit(rid(BARRIER), 50);
        p.finish(60);
        assert!(p.diagnostics().is_empty(), "abort is not an anomaly");
        let s = p.snapshot(0);
        let task = &s.task_trees[0];
        assert_eq!(task.stats.visits, 2);
        assert_eq!(task.stats.aborted, 1, "one of two instances failed");
        assert_eq!(task.stats.sum_ns, 25, "aborted 10 ns + completed 15 ns");
        let foo = child(task, NodeKind::Region(rid(FOO)));
        assert_eq!(foo.stats.sum_ns, 8, "force-closed at the abort");
        // Stub accounting balanced: two fragments, 10 + 15 ns.
        let barrier = child(&s.main, NodeKind::Region(rid(BARRIER)));
        let stub = child(barrier, NodeKind::Stub(rid(TASK_A)));
        assert_eq!(stub.stats.visits, 2);
        assert_eq!(stub.stats.sum_ns, 25);
        s.main.walk(&mut |_, n| assert!(n.exclusive_ns() >= 0));
    }

    #[test]
    fn live_tree_cap_sheds_to_counting_only() {
        // Cap of 2: the third *concurrent* instance degrades to
        // counting-only; once trees free up, new instances profile fully.
        let ids = TaskIdAllocator::new();
        let (t1, t2, t3) = (ids.alloc(), ids.alloc(), ids.alloc());
        let mut p = ThreadProfile::new(rid(PAR), 0, AssignPolicy::Executing);
        p.set_max_live_trees(Some(2));
        p.enter(rid(BARRIER), 0);
        p.task_begin(rid(TASK_A), t1, 1);
        p.enter(rid(TASKWAIT), 2);
        p.task_begin(rid(TASK_A), t2, 3);
        p.enter(rid(TASKWAIT), 4);
        p.task_begin(rid(TASK_A), t3, 5); // cap reached: shed
        assert_eq!(p.live_instance_trees(), 2);
        assert_eq!(p.shed_instances(), 1);
        p.enter(rid(FOO), 6); // dropped (counting-only)
        p.exit(rid(FOO), 7); // dropped
        p.task_end(rid(TASK_A), t3, 8);
        p.task_switch(TaskRef::Explicit(t2), 8);
        p.exit(rid(TASKWAIT), 9);
        p.task_end(rid(TASK_A), t2, 10);
        p.task_switch(TaskRef::Explicit(t1), 10);
        p.exit(rid(TASKWAIT), 11);
        p.task_end(rid(TASK_A), t1, 12);
        // Capacity freed: the next instance gets a real tree again.
        let t4 = ids.alloc();
        p.task_begin(rid(TASK_A), t4, 13);
        p.enter(rid(FOO), 14);
        p.exit(rid(FOO), 16);
        p.task_end(rid(TASK_A), t4, 17);
        p.exit(rid(BARRIER), 20);
        p.finish(21);
        let s = p.snapshot(0);
        assert_eq!(s.shed_instances, 1);
        assert_eq!(s.max_live_trees, 2, "the cap held");
        let task = &s.task_trees[0];
        // 4 instances counted (visits), 3 sampled (shed one has no time).
        assert_eq!(task.stats.visits, 4);
        assert_eq!(task.stats.samples, 3);
        let foo = child(task, NodeKind::Region(rid(FOO)));
        assert_eq!(foo.stats.visits, 1, "shed instance's foo was dropped");
        assert_eq!(foo.stats.sum_ns, 2);
        s.main.walk(&mut |_, n| assert!(n.exclusive_ns() >= 0));
    }

    #[test]
    fn shed_instance_abort_is_counted() {
        let ids = TaskIdAllocator::new();
        let (t1, t2) = (ids.alloc(), ids.alloc());
        let mut p = ThreadProfile::new(rid(PAR), 0, AssignPolicy::Executing);
        p.set_max_live_trees(Some(1));
        p.enter(rid(BARRIER), 0);
        p.task_begin(rid(TASK_A), t1, 1);
        p.enter(rid(TASKWAIT), 2);
        p.task_begin(rid(TASK_A), t2, 3); // shed
        p.task_abort(rid(TASK_A), t2, 5); // and it panics
        p.task_switch(TaskRef::Explicit(t1), 5);
        p.exit(rid(TASKWAIT), 6);
        p.task_end(rid(TASK_A), t1, 7);
        p.exit(rid(BARRIER), 8);
        p.finish(9);
        let s = p.snapshot(0);
        assert_eq!(s.shed_instances, 1);
        let task = &s.task_trees[0];
        assert_eq!(task.stats.visits, 2);
        assert_eq!(task.stats.aborted, 1);
    }

    #[test]
    fn depth_limit_collapses_deep_recursion() {
        // A 100-deep recursion into the same region with limit 3:
        // frames 0,1,2 are real; 3.. collapse into one <truncated> node.
        let mut p = ThreadProfile::new(rid(PAR), 0, AssignPolicy::Executing);
        p.set_max_depth(Some(3));
        let mut t = 0u64;
        for _ in 0..100 {
            t += 1;
            p.enter(rid(FOO), t);
        }
        for _ in 0..100 {
            t += 1;
            p.exit(rid(FOO), t);
        }
        p.finish(t + 1);
        let s = p.snapshot(0);
        // Structure: PAR -> foo -> foo -> truncated (depth 1,2 regions +
        // one collapsed node; the parallel root occupies depth 0).
        let f1 = child(&s.main, NodeKind::Region(rid(FOO)));
        let f2 = child(f1, NodeKind::Region(rid(FOO)));
        let tr = child(f2, NodeKind::Truncated);
        assert!(tr.children.is_empty(), "nothing may nest below <truncated>");
        // 98 collapsed enters, one recorded sample (outermost truncated
        // frame): entered at t=3, last collapsed exit at t=198 → 195 ns.
        assert_eq!(tr.stats.visits, 98);
        assert_eq!(tr.stats.samples, 1);
        assert_eq!(tr.stats.sum_ns, 195);
        // The tree stayed tiny: 5 nodes instead of 101.
        assert_eq!(s.main.size(), 4);
        // No negative exclusive anywhere.
        s.main.walk(&mut |_, n| assert!(n.exclusive_ns() >= 0));
    }

    #[test]
    fn depth_limit_applies_per_task_body() {
        // Each task instance gets its own depth budget.
        let ids = TaskIdAllocator::new();
        let mut p = ThreadProfile::new(rid(PAR), 0, AssignPolicy::Executing);
        p.set_max_depth(Some(2));
        p.enter(rid(BARRIER), 0);
        let id = ids.alloc();
        p.task_begin(rid(TASK_A), id, 1);
        // Task body: depth 0 is the root frame; two more enters allowed,
        // third collapses.
        p.enter(rid(FOO), 2);
        p.enter(rid(FOO), 3); // collapses (depth 2 within the task)
        p.exit(rid(FOO), 4);
        p.exit(rid(FOO), 5);
        p.task_end(rid(TASK_A), id, 6);
        p.exit(rid(BARRIER), 7);
        p.finish(8);
        let s = p.snapshot(0);
        let task = &s.task_trees[0];
        let foo = child(task, NodeKind::Region(rid(FOO)));
        assert!(foo.child(NodeKind::Truncated).is_some());
        assert!(foo.child(NodeKind::Region(rid(FOO))).is_none());
    }

    #[test]
    fn redundant_switch_to_current_task_is_a_no_op() {
        let ids = TaskIdAllocator::new();
        let t1 = ids.alloc();
        let mut p = ThreadProfile::new(rid(PAR), 0, AssignPolicy::Executing);
        p.enter(rid(BARRIER), 0);
        p.task_begin(rid(TASK_A), t1, 1);
        p.task_switch(TaskRef::Explicit(t1), 2);
        p.task_switch(TaskRef::Explicit(t1), 3);
        p.task_end(rid(TASK_A), t1, 10);
        p.exit(rid(BARRIER), 11);
        p.finish(12);
        let s = p.snapshot(0);
        let barrier = child(&s.main, NodeKind::Region(rid(BARRIER)));
        let stub = child(barrier, NodeKind::Stub(rid(TASK_A)));
        assert_eq!(stub.stats.visits, 1);
        assert_eq!(stub.stats.sum_ns, 9);
    }
}
