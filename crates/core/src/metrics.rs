//! Per-node metric statistics.
//!
//! Following Score-P (paper Section IV-A), every call-tree node stores, for
//! each metric, "the sum, the minimum, the maximum and the number of
//! samples". We track one metric — inclusive wall time — plus the visit
//! count. Exclusive time is *derived* at analysis time by subtracting the
//! children's inclusive sums (paper Fig. 3 caption).

/// Statistics of one call-tree node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Stats {
    /// Number of times the region was entered (for task roots after
    /// merging: the number of completed instances; for stub nodes: the
    /// number of task fragments executed under the scheduling point).
    pub visits: u64,
    /// Sum of recorded inclusive durations, nanoseconds.
    pub sum_ns: u64,
    /// Minimum recorded duration (`u64::MAX` while no samples).
    pub min_ns: u64,
    /// Maximum recorded duration.
    pub max_ns: u64,
    /// Number of recorded duration samples (≤ visits; a still-open region
    /// has been visited but not yet sampled).
    pub samples: u64,
    /// Number of *aborted* (panicked or force-closed) task instances whose
    /// partial execution is folded into this node. Zero everywhere except
    /// on task roots that absorbed a `task_abort`; survives merging, so an
    /// aggregate task tree reports how many of its instances failed.
    pub aborted: u64,
}

impl Default for Stats {
    fn default() -> Self {
        Self::new()
    }
}

impl Stats {
    /// Empty statistics.
    pub const fn new() -> Self {
        Self {
            visits: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            samples: 0,
            aborted: 0,
        }
    }

    /// Count one visit (region enter).
    #[inline]
    pub fn add_visit(&mut self) {
        self.visits += 1;
    }

    /// Record one completed inclusive duration (region exit).
    #[inline]
    pub fn record(&mut self, dur_ns: u64) {
        self.sum_ns += dur_ns;
        self.min_ns = self.min_ns.min(dur_ns);
        self.max_ns = self.max_ns.max(dur_ns);
        self.samples += 1;
    }

    /// Count one aborted instance (the task's body panicked or the region
    /// ended while the instance was still open and it was force-closed).
    #[inline]
    pub fn record_abort(&mut self) {
        self.aborted += 1;
    }

    /// Fold another node's statistics into this one (tree merging).
    #[inline]
    pub fn merge(&mut self, other: &Stats) {
        self.visits += other.visits;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        self.samples += other.samples;
        self.aborted += other.aborted;
    }

    /// Mean duration over recorded samples, or 0 with no samples.
    pub fn mean_ns(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.samples as f64
        }
    }

    /// Minimum as an `Option` (None with no samples).
    pub fn min(&self) -> Option<u64> {
        (self.samples > 0).then_some(self.min_ns)
    }

    /// Reset to empty (node reuse).
    pub fn clear(&mut self) {
        *self = Stats::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_updates_extrema() {
        let mut s = Stats::new();
        s.add_visit();
        s.record(10);
        s.add_visit();
        s.record(4);
        s.add_visit();
        s.record(7);
        assert_eq!(s.visits, 3);
        assert_eq!(s.samples, 3);
        assert_eq!(s.sum_ns, 21);
        assert_eq!(s.min(), Some(4));
        assert_eq!(s.max_ns, 10);
        assert!((s.mean_ns() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_no_min_and_zero_mean() {
        let s = Stats::new();
        assert_eq!(s.min(), None);
        assert_eq!(s.mean_ns(), 0.0);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Stats::new();
        a.add_visit();
        a.record(5);
        let mut b = Stats::new();
        b.add_visit();
        b.add_visit();
        b.record(1);
        b.record(9);
        a.merge(&b);
        assert_eq!(a.visits, 3);
        assert_eq!(a.samples, 3);
        assert_eq!(a.sum_ns, 15);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max_ns, 9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Stats::new();
        a.add_visit();
        a.record(5);
        let before = a;
        a.merge(&Stats::new());
        assert_eq!(a, before);
    }

    #[test]
    fn abort_counts_survive_merging() {
        let mut a = Stats::new();
        a.add_visit();
        a.record(5);
        a.record_abort();
        let mut b = Stats::new();
        b.record_abort();
        b.record_abort();
        a.merge(&b);
        assert_eq!(a.aborted, 3);
        assert_eq!(a.samples, 1, "aborts do not add duration samples");
    }

    #[test]
    fn clear_resets() {
        let mut s = Stats::new();
        s.add_visit();
        s.record(5);
        s.clear();
        assert_eq!(s, Stats::new());
    }
}
