//! Arena-allocated call trees with node reuse.
//!
//! Each thread owns one [`Arena`] holding *all* of its trees: the implicit
//! task's main tree, the private tree of every active task instance, and the
//! aggregated per-construct task trees. Nodes released when an instance tree
//! is merged go onto a free list and are reused for the next instance —
//! the memory-bounding behaviour evaluated in the paper's Section V-B
//! ("released task-instance tree nodes are reused").

use crate::metrics::Stats;
use pomp::{ParamId, RegionId};

/// Handle of a node within one thread's [`Arena`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NodeId(u32);

impl NodeId {
    /// Arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a call-tree node represents.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NodeKind {
    /// An entered source region (function, task root, taskwait, ...).
    Region(RegionId),
    /// A *stub node* (paper Section IV-B4): child of a scheduling-point
    /// node in the implicit task's tree, accounting the time the thread
    /// spent executing fragments of tasks of this construct there.
    Stub(RegionId),
    /// A parameter sub-tree, e.g. `depth = 3` (paper Section VI).
    Param(ParamId, i64),
    /// Collapsed sub-tree below the configured depth limit (the "tree
    /// depth limits" the paper's Section IV-B3 refers to): everything
    /// deeper is accounted here in aggregate.
    Truncated,
}

/// One call-tree node.
#[derive(Debug)]
pub struct Node {
    /// Node identity used for child lookup during profiling and merging.
    pub kind: NodeKind,
    /// Parent node; `None` for roots (the main root, detached instance
    /// roots, and aggregated task-tree roots).
    pub parent: Option<NodeId>,
    /// Children in creation order. Fan-out in task profiles is small, so
    /// lookup is a linear scan.
    pub children: Vec<NodeId>,
    /// Metric statistics.
    pub stats: Stats,
}

/// Arena of call-tree nodes with a free list.
#[derive(Debug)]
pub struct Arena {
    nodes: Vec<Node>,
    free: Vec<NodeId>,
    reuse: bool,
}

impl Default for Arena {
    fn default() -> Self {
        Self {
            nodes: Vec::new(),
            free: Vec::new(),
            reuse: true,
        }
    }
}

impl Arena {
    /// Empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty arena with room for `nodes` nodes before reallocating —
    /// the preallocated per-thread measurement memory of the sharded
    /// fast path (no allocation on the first `nodes` enter events).
    pub fn with_capacity(nodes: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(nodes),
            free: Vec::new(),
            reuse: true,
        }
    }

    /// Clear all nodes while keeping the allocated slot capacity, so the
    /// arena can be recycled for the next parallel region without paying
    /// its allocations again.
    pub fn reset(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.reuse = true;
    }

    /// Toggle free-list node reuse (on by default). Disabling it is the
    /// ablation of the paper's Section V-B memory strategy: released
    /// nodes are leaked instead of recycled, so memory grows with the
    /// *total* number of instances rather than the *concurrent* number.
    pub fn set_reuse(&mut self, reuse: bool) {
        self.reuse = reuse;
    }

    /// Total nodes ever allocated (high-water mark of arena slots).
    pub fn capacity_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Nodes currently in use (allocated minus free-listed).
    pub fn live_nodes(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Allocate a node, reusing a released slot when available.
    pub fn alloc(&mut self, kind: NodeKind, parent: Option<NodeId>) -> NodeId {
        if !self.reuse {
            self.free.clear();
        }
        if let Some(id) = self.free.pop() {
            let n = &mut self.nodes[id.index()];
            n.kind = kind;
            n.parent = parent;
            n.children.clear();
            n.stats.clear();
            id
        } else {
            let id = NodeId(u32::try_from(self.nodes.len()).expect("arena overflow"));
            self.nodes.push(Node {
                kind,
                parent,
                children: Vec::new(),
                stats: Stats::new(),
            });
            id
        }
    }

    /// Shared access to a node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node.
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Find the child of `parent` with identity `kind`, creating it if
    /// absent. This is the per-enter-event lookup of the Score-P profiling
    /// algorithm (paper Section IV-A).
    pub fn child_of(&mut self, parent: NodeId, kind: NodeKind) -> NodeId {
        if let Some(&c) = self.nodes[parent.index()]
            .children
            .iter()
            .find(|&&c| self.nodes[c.index()].kind == kind)
        {
            return c;
        }
        let c = self.alloc(kind, Some(parent));
        self.nodes[parent.index()].children.push(c);
        c
    }

    /// Find an existing child without creating.
    pub fn find_child(&self, parent: NodeId, kind: NodeKind) -> Option<NodeId> {
        self.nodes[parent.index()]
            .children
            .iter()
            .copied()
            .find(|&c| self.nodes[c.index()].kind == kind)
    }

    /// Merge the subtree rooted at `src` into the children of `dst`
    /// (matching by node identity, creating missing nodes), then release
    /// every `src` node to the free list. `src` must be a *detached* root
    /// (its slot is released too).
    ///
    /// This implements the paper's TaskEnd step "merge task tree into
    /// global profile of thread" with node reuse.
    pub fn merge_into(&mut self, src: NodeId, dst: NodeId) {
        debug_assert_ne!(src, dst);
        let src_stats = self.nodes[src.index()].stats;
        self.nodes[dst.index()].stats.merge(&src_stats);
        // Take the child list to avoid aliasing while we recurse.
        let children = std::mem::take(&mut self.nodes[src.index()].children);
        for child in children {
            let kind = self.nodes[child.index()].kind;
            let dst_child = self.child_of(dst, kind);
            self.merge_into(child, dst_child);
        }
        self.free.push(src);
    }

    /// Release a whole subtree (used when a profile is torn down without
    /// merging, e.g. on abandoned replay state).
    pub fn release_subtree(&mut self, root: NodeId) {
        let children = std::mem::take(&mut self.nodes[root.index()].children);
        for c in children {
            self.release_subtree(c);
        }
        self.free.push(root);
    }

    /// Sum of the inclusive-time sums of `node`'s children — the subtrahend
    /// of the exclusive-time computation.
    pub fn children_sum_ns(&self, node: NodeId) -> u64 {
        self.nodes[node.index()]
            .children
            .iter()
            .map(|&c| self.nodes[c.index()].stats.sum_ns)
            .sum()
    }

    /// Exclusive time of `node`: its inclusive sum minus its children's
    /// inclusive sums. Signed, because the paper's Fig. 3 shows how the
    /// *wrong* attribution policy produces negative values.
    pub fn exclusive_ns(&self, node: NodeId) -> i64 {
        self.nodes[node.index()].stats.sum_ns as i64 - self.children_sum_ns(node) as i64
    }

    /// Number of nodes in the subtree rooted at `root` (including it).
    pub fn subtree_size(&self, root: NodeId) -> usize {
        1 + self.nodes[root.index()]
            .children
            .iter()
            .map(|&c| self.subtree_size(c))
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(i: u32) -> RegionId {
        RegionId(i)
    }

    #[test]
    fn child_of_finds_or_creates() {
        let mut a = Arena::new();
        let root = a.alloc(NodeKind::Region(rid(0)), None);
        let c1 = a.child_of(root, NodeKind::Region(rid(1)));
        let c2 = a.child_of(root, NodeKind::Region(rid(1)));
        assert_eq!(c1, c2);
        let c3 = a.child_of(root, NodeKind::Region(rid(2)));
        assert_ne!(c1, c3);
        assert_eq!(a.node(root).children.len(), 2);
        assert_eq!(a.node(c1).parent, Some(root));
    }

    #[test]
    fn stub_and_region_of_same_region_are_distinct_children() {
        let mut a = Arena::new();
        let root = a.alloc(NodeKind::Region(rid(0)), None);
        let r = a.child_of(root, NodeKind::Region(rid(1)));
        let s = a.child_of(root, NodeKind::Stub(rid(1)));
        assert_ne!(r, s);
    }

    #[test]
    fn param_nodes_keyed_by_value() {
        let mut a = Arena::new();
        let root = a.alloc(NodeKind::Region(rid(0)), None);
        let p3 = a.child_of(root, NodeKind::Param(ParamId(0), 3));
        let p4 = a.child_of(root, NodeKind::Param(ParamId(0), 4));
        let p3b = a.child_of(root, NodeKind::Param(ParamId(0), 3));
        assert_ne!(p3, p4);
        assert_eq!(p3, p3b);
    }

    #[test]
    fn merge_into_adds_stats_and_releases_nodes() {
        let mut a = Arena::new();
        // dst tree: root -> x
        let dst = a.alloc(NodeKind::Region(rid(9)), None);
        let dx = a.child_of(dst, NodeKind::Region(rid(1)));
        a.node_mut(dst).stats.record(10);
        a.node_mut(dx).stats.record(4);
        // src tree: root -> {x, y}
        let src = a.alloc(NodeKind::Region(rid(9)), None);
        let sx = a.child_of(src, NodeKind::Region(rid(1)));
        let sy = a.child_of(src, NodeKind::Region(rid(2)));
        a.node_mut(src).stats.record(20);
        a.node_mut(sx).stats.record(6);
        a.node_mut(sy).stats.record(1);
        let live_before = a.live_nodes();
        a.merge_into(src, dst);
        // dst absorbed stats; y was created under dst.
        assert_eq!(a.node(dst).stats.sum_ns, 30);
        assert_eq!(a.node(dst).stats.samples, 2);
        assert_eq!(a.node(dx).stats.sum_ns, 10);
        let dy = a.find_child(dst, NodeKind::Region(rid(2))).unwrap();
        assert_eq!(a.node(dy).stats.sum_ns, 1);
        // src root and sx were released; sy was *reused* as dy or released.
        // Net live-node change: -3 (src subtree) +1 (new dy).
        assert_eq!(a.live_nodes(), live_before - 2);
    }

    #[test]
    fn released_nodes_are_reused() {
        let mut a = Arena::new();
        let r1 = a.alloc(NodeKind::Region(rid(0)), None);
        let c1 = a.child_of(r1, NodeKind::Region(rid(1)));
        a.release_subtree(r1);
        assert_eq!(a.live_nodes(), 0);
        let r2 = a.alloc(NodeKind::Region(rid(5)), None);
        let c2 = a.child_of(r2, NodeKind::Region(rid(6)));
        // Slots are recycled: no new capacity was needed.
        assert_eq!(a.capacity_nodes(), 2);
        assert_eq!(a.live_nodes(), 2);
        // Reused nodes are fully reset.
        assert_eq!(a.node(r2).stats, Stats::new());
        assert_eq!(a.node(r2).children, vec![c2]);
        assert!([r1, c1].contains(&r2) && [r1, c1].contains(&c2));
    }

    #[test]
    fn exclusive_time_subtracts_children() {
        let mut a = Arena::new();
        let root = a.alloc(NodeKind::Region(rid(0)), None);
        let c = a.child_of(root, NodeKind::Region(rid(1)));
        a.node_mut(root).stats.record(10);
        a.node_mut(c).stats.record(7);
        assert_eq!(a.exclusive_ns(root), 3);
        // The paper's Fig. 3 pathology: child bigger than parent.
        a.node_mut(c).stats.record(8);
        assert_eq!(a.exclusive_ns(root), -5);
    }

    #[test]
    fn subtree_size_counts_nodes() {
        let mut a = Arena::new();
        let root = a.alloc(NodeKind::Region(rid(0)), None);
        let c = a.child_of(root, NodeKind::Region(rid(1)));
        a.child_of(c, NodeKind::Region(rid(2)));
        a.child_of(root, NodeKind::Region(rid(3)));
        assert_eq!(a.subtree_size(root), 4);
    }
}
