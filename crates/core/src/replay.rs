//! Deterministic event-stream replay.
//!
//! The paper explains its algorithm through event streams (Figs. 1, 2, 4,
//! 6–11). This module provides a small language for writing such streams
//! down and feeding them through the profiler under virtual time, so tests
//! and examples can reproduce those figures with exact numbers, without a
//! runtime or real threads.

use crate::profiler::{AssignPolicy, ThreadProfile};
use crate::snapshot::ThreadSnapshot;
use pomp::{ParamId, RegionId, TaskId, TaskRef};

/// One step of a replayed event stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// Advance virtual time by `dt` nanoseconds.
    Advance(u64),
    /// Region enter on the current task.
    Enter(RegionId),
    /// Region exit on the current task.
    Exit(RegionId),
    /// Begin creating a deferred task instance.
    CreateBegin {
        /// The creation-site region.
        create: RegionId,
        /// The created task's construct region.
        task_region: RegionId,
        /// The new instance id.
        id: TaskId,
    },
    /// Finish creating `id`.
    CreateEnd {
        /// The creation-site region.
        create: RegionId,
        /// The created instance id.
        id: TaskId,
    },
    /// Begin executing a task instance (implies a switch to it).
    TaskBegin {
        /// The task construct region.
        region: RegionId,
        /// The instance id.
        id: TaskId,
    },
    /// Complete a task instance (implies a switch to the implicit task).
    TaskEnd {
        /// The task construct region.
        region: RegionId,
        /// The instance id.
        id: TaskId,
    },
    /// Abort a task instance (its body panicked): open frames are
    /// force-closed, the instance is tagged aborted and still merged
    /// (implies a switch to the implicit task).
    TaskAbort {
        /// The task construct region.
        region: RegionId,
        /// The instance id.
        id: TaskId,
    },
    /// Resume `target` at a scheduling point.
    Switch(TaskRef),
    /// Open a parameter scope on the current task.
    ParamBegin {
        /// Parameter name handle.
        param: ParamId,
        /// Parameter value.
        value: i64,
    },
    /// Close the innermost scope of `param`.
    ParamEnd {
        /// Parameter name handle.
        param: ParamId,
    },
}

/// Replays an event stream through a [`ThreadProfile`] under virtual time.
#[derive(Debug)]
pub struct Replayer {
    profile: ThreadProfile,
    t: u64,
}

impl Replayer {
    /// Start a replay of a parallel region at virtual time 0.
    pub fn new(parallel_region: RegionId, policy: AssignPolicy) -> Self {
        Self {
            profile: ThreadProfile::new(parallel_region, 0, policy),
            t: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.t
    }

    /// Access the underlying profile (e.g. for live-tree assertions).
    pub fn profile(&self) -> &ThreadProfile {
        &self.profile
    }

    /// Configure overload shedding (cap on live instance trees) for the
    /// replayed thread.
    pub fn set_max_live_trees(&mut self, limit: Option<usize>) -> &mut Self {
        self.profile.set_max_live_trees(limit);
        self
    }

    /// Configure tree-depth truncation for the replayed thread (mirrors
    /// `ProfMonitor`'s `max_depth`, so offline replays can reproduce a
    /// depth-limited live profile exactly).
    pub fn set_max_depth(&mut self, depth: Option<usize>) -> &mut Self {
        self.profile.set_max_depth(depth);
        self
    }

    /// Apply one event.
    pub fn apply(&mut self, ev: Event) {
        match ev {
            Event::Advance(dt) => self.t += dt,
            Event::Enter(r) => self.profile.enter(r, self.t),
            Event::Exit(r) => self.profile.exit(r, self.t),
            Event::CreateBegin {
                create,
                task_region,
                id,
            } => self.profile.task_create_begin(create, task_region, id, self.t),
            Event::CreateEnd { create, id } => {
                self.profile.task_create_end(create, id, self.t)
            }
            Event::TaskBegin { region, id } => self.profile.task_begin(region, id, self.t),
            Event::TaskEnd { region, id } => self.profile.task_end(region, id, self.t),
            Event::TaskAbort { region, id } => self.profile.task_abort(region, id, self.t),
            Event::Switch(target) => self.profile.task_switch(target, self.t),
            Event::ParamBegin { param, value } => {
                self.profile.parameter_begin(param, value, self.t)
            }
            Event::ParamEnd { param } => self.profile.parameter_end(param, self.t),
        }
    }

    /// Apply a sequence of events.
    pub fn run(&mut self, events: impl IntoIterator<Item = Event>) -> &mut Self {
        for ev in events {
            self.apply(ev);
        }
        self
    }

    /// Finish the region at the current virtual time and snapshot.
    pub fn finish(mut self, tid: usize) -> ThreadSnapshot {
        self.profile.finish(self.t);
        self.profile.snapshot(tid)
    }
}

/// Replay a whole stream in one call.
pub fn replay(
    parallel_region: RegionId,
    policy: AssignPolicy,
    events: impl IntoIterator<Item = Event>,
) -> ThreadSnapshot {
    let mut r = Replayer::new(parallel_region, policy);
    r.run(events);
    r.finish(0)
}

/// Multi-thread replay with one shared virtual clock — including task
/// *migration* between threads, the untied-task scenario of the paper's
/// Section IV-D1 that no 2012 runtime could deliver events for.
#[derive(Debug)]
pub struct TeamReplayer {
    threads: Vec<ThreadProfile>,
    t: u64,
}

impl TeamReplayer {
    /// A replayed team of `nthreads` threads at virtual time 0.
    pub fn new(nthreads: usize, parallel_region: RegionId, policy: AssignPolicy) -> Self {
        Self {
            threads: (0..nthreads)
                .map(|_| ThreadProfile::new(parallel_region, 0, policy))
                .collect(),
            t: 0,
        }
    }

    /// Current virtual time (shared by all threads).
    pub fn now(&self) -> u64 {
        self.t
    }

    /// Advance the shared clock.
    pub fn advance(&mut self, dt: u64) -> &mut Self {
        self.t += dt;
        self
    }

    /// Configure overload shedding (cap on live instance trees) on every
    /// replayed thread.
    pub fn set_max_live_trees(&mut self, limit: Option<usize>) -> &mut Self {
        for p in &mut self.threads {
            p.set_max_live_trees(limit);
        }
        self
    }

    /// Configure tree-depth truncation on every replayed thread.
    pub fn set_max_depth(&mut self, depth: Option<usize>) -> &mut Self {
        for p in &mut self.threads {
            p.set_max_depth(depth);
        }
        self
    }

    /// Apply an event on thread `tid`. `Event::Advance` moves the shared
    /// clock.
    pub fn apply(&mut self, tid: usize, ev: Event) -> &mut Self {
        let t = self.t;
        let p = &mut self.threads[tid];
        match ev {
            Event::Advance(dt) => self.t += dt,
            Event::Enter(r) => p.enter(r, t),
            Event::Exit(r) => p.exit(r, t),
            Event::CreateBegin {
                create,
                task_region,
                id,
            } => p.task_create_begin(create, task_region, id, t),
            Event::CreateEnd { create, id } => p.task_create_end(create, id, t),
            Event::TaskBegin { region, id } => p.task_begin(region, id, t),
            Event::TaskEnd { region, id } => p.task_end(region, id, t),
            Event::TaskAbort { region, id } => p.task_abort(region, id, t),
            Event::Switch(target) => p.task_switch(target, t),
            Event::ParamBegin { param, value } => p.parameter_begin(param, value, t),
            Event::ParamEnd { param } => p.parameter_end(param, t),
        }
        self
    }

    /// Migrate the suspended instance `id` from thread `from` to thread
    /// `to` (resume it there with `Event::Switch`).
    pub fn migrate(&mut self, id: pomp::TaskId, from: usize, to: usize) -> &mut Self {
        let detached = self.threads[from].detach_instance(id);
        self.threads[to].attach_instance(id, detached);
        self
    }

    /// Access a thread's in-progress profile.
    pub fn thread(&self, tid: usize) -> &ThreadProfile {
        &self.threads[tid]
    }

    /// Finish all threads at the current time and collect the profile.
    pub fn finish(mut self) -> crate::snapshot::Profile {
        let t = self.t;
        crate::snapshot::Profile {
            threads: self
                .threads
                .iter_mut()
                .enumerate()
                .map(|(tid, p)| {
                    p.finish(t);
                    p.snapshot(tid)
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::NodeKind;
    use pomp::TaskIdAllocator;

    #[test]
    fn replay_matches_direct_profile_calls() {
        let ids = TaskIdAllocator::new();
        let id = ids.alloc();
        let (par, task, barrier) = (RegionId(0), RegionId(1), RegionId(2));
        let snap = replay(
            par,
            AssignPolicy::Executing,
            [
                Event::Advance(10),
                Event::Enter(barrier),
                Event::TaskBegin { region: task, id },
                Event::Advance(25),
                Event::TaskEnd { region: task, id },
                Event::Advance(5),
                Event::Exit(barrier),
                Event::Advance(2),
            ],
        );
        assert_eq!(snap.main.stats.sum_ns, 42);
        let b = snap.main.child(NodeKind::Region(barrier)).unwrap();
        assert_eq!(b.stats.sum_ns, 30);
        assert_eq!(snap.task_trees[0].stats.sum_ns, 25);
    }

    #[test]
    fn fig4_suspend_resume_under_other_node() {
        // Paper Fig. 4: task1 suspends at a taskwait, task2 runs and
        // suspends too, then task1 resumes — inside the *same* taskwait
        // region of the implicit task the call paths stay untangled.
        let ids = TaskIdAllocator::new();
        let (t1, t2) = (ids.alloc(), ids.alloc());
        let (par, task, tw, barrier) = (RegionId(0), RegionId(1), RegionId(2), RegionId(3));
        let snap = replay(
            par,
            AssignPolicy::Executing,
            [
                Event::Enter(barrier),
                Event::TaskBegin { region: task, id: t1 },
                Event::Advance(10),
                Event::Enter(tw), // t1 waits for children
                Event::Advance(1),
                Event::TaskBegin { region: task, id: t2 }, // t1 suspended
                Event::Advance(20),
                Event::TaskEnd { region: task, id: t2 },
                Event::Switch(TaskRef::Explicit(t1)), // t1 resumes
                Event::Advance(2),
                Event::Exit(tw),
                Event::Advance(3),
                Event::TaskEnd { region: task, id: t1 },
                Event::Exit(barrier),
            ],
        );
        let tree = &snap.task_trees[0];
        // Two completed instances: t2 ran 20, t1 ran 10+1+2+3 = 16.
        assert_eq!(tree.stats.visits, 2);
        assert_eq!(tree.stats.sum_ns, 36);
        assert_eq!(tree.stats.min_ns, 16);
        assert_eq!(tree.stats.max_ns, 20);
        // t1's taskwait accumulated only unsuspended time: 1 + 2 = 3.
        let tw_node = tree.child(NodeKind::Region(tw)).unwrap();
        assert_eq!(tw_node.stats.sum_ns, 3);
        // Three fragments under the barrier stub (t1, t2, t1 again).
        let b = snap.main.child(NodeKind::Region(barrier)).unwrap();
        let stub = b.child(NodeKind::Stub(task)).unwrap();
        assert_eq!(stub.stats.visits, 3);
        assert_eq!(stub.stats.sum_ns, 36);
    }

    #[test]
    fn team_replay_with_migration() {
        // An "untied" task starts on thread 0, suspends, migrates, and
        // completes on thread 1 — the statistics follow the task.
        let ids = TaskIdAllocator::new();
        let id = ids.alloc();
        let (par, task, barrier) = (RegionId(20), RegionId(21), RegionId(22));
        let mut team = TeamReplayer::new(2, par, AssignPolicy::Executing);
        team.apply(0, Event::Enter(barrier))
            .apply(1, Event::Enter(barrier))
            .apply(0, Event::TaskBegin { region: task, id })
            .advance(10)
            .apply(0, Event::Switch(TaskRef::Implicit))
            .migrate(id, 0, 1)
            .advance(5)
            .apply(1, Event::Switch(TaskRef::Explicit(id)))
            .advance(7)
            .apply(1, Event::TaskEnd { region: task, id })
            .apply(0, Event::Exit(barrier))
            .apply(1, Event::Exit(barrier));
        let profile = team.finish();
        // The completed instance (10 + 7 ns) is accounted on thread 1.
        assert!(profile.threads[0].task_trees.is_empty());
        let tree = profile.threads[1].task_tree(task).unwrap();
        assert_eq!(tree.stats.sum_ns, 17);
        assert_eq!(tree.stats.samples, 1);
        // Each thread's stub saw its own fragment.
        let stub0 = profile.threads[0]
            .main
            .child(NodeKind::Region(barrier))
            .unwrap()
            .child(NodeKind::Stub(task))
            .unwrap()
            .stats
            .sum_ns;
        let stub1 = profile.threads[1]
            .main
            .child(NodeKind::Region(barrier))
            .unwrap()
            .child(NodeKind::Stub(task))
            .unwrap()
            .stats
            .sum_ns;
        assert_eq!((stub0, stub1), (10, 7));
    }

    #[test]
    fn live_trees_visible_mid_replay() {
        let ids = TaskIdAllocator::new();
        let t1 = ids.alloc();
        let (par, task, barrier) = (RegionId(0), RegionId(1), RegionId(2));
        let mut r = Replayer::new(par, AssignPolicy::Executing);
        r.run([
            Event::Enter(barrier),
            Event::TaskBegin { region: task, id: t1 },
        ]);
        assert_eq!(r.profile().live_instance_trees(), 1);
        r.run([
            Event::TaskEnd { region: task, id: t1 },
            Event::Exit(barrier),
        ]);
        assert_eq!(r.profile().live_instance_trees(), 0);
        let snap = r.finish(7);
        assert_eq!(snap.tid, 7);
        assert_eq!(snap.max_live_trees, 1);
    }
}
