//! Plain, analysis-friendly snapshots of finished profiles.
//!
//! A [`SnapNode`] tree owns its data and has no arena indirection, so the
//! `cube` crate (and user code) can aggregate, render, export, and diff
//! profiles without touching profiler internals.

use crate::metrics::Stats;
use crate::tree::NodeKind;
use pomp::RegionId;

/// One node of a snapshotted call tree.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapNode {
    /// Node identity (region, stub, or parameter value).
    pub kind: NodeKind,
    /// Metric statistics.
    pub stats: Stats,
    /// Child nodes.
    pub children: Vec<SnapNode>,
}

impl SnapNode {
    /// Exclusive time: inclusive sum minus children's inclusive sums.
    /// Signed — the `Creating` attribution policy can make it negative
    /// (paper Fig. 3).
    pub fn exclusive_ns(&self) -> i64 {
        self.stats.sum_ns as i64 - self.children.iter().map(|c| c.stats.sum_ns as i64).sum::<i64>()
    }

    /// First child with the given identity.
    pub fn child(&self, kind: NodeKind) -> Option<&SnapNode> {
        self.children.iter().find(|c| c.kind == kind)
    }

    /// Depth-first pre-order walk, calling `f(depth, node)`.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(usize, &'a SnapNode)) {
        fn go<'a>(n: &'a SnapNode, d: usize, f: &mut impl FnMut(usize, &'a SnapNode)) {
            f(d, n);
            for c in &n.children {
                go(c, d + 1, f);
            }
        }
        go(self, 0, f)
    }

    /// Number of nodes in this subtree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(SnapNode::size).sum::<usize>()
    }
}

/// The finished profile of one thread in one parallel region.
#[derive(Clone, Debug)]
pub struct ThreadSnapshot {
    /// Team-local thread id (0-based).
    pub tid: usize,
    /// The parallel region this profile covers.
    pub parallel_region: RegionId,
    /// The implicit task's call tree (root = the parallel region).
    pub main: SnapNode,
    /// Aggregated task trees, one per task construct this thread executed
    /// instances of, "beside" the main tree (paper Section IV-B4).
    pub task_trees: Vec<SnapNode>,
    /// Maximum number of concurrently live task-instance trees
    /// (paper Table II).
    pub max_live_trees: usize,
    /// High-water mark of call-tree nodes allocated by this thread
    /// (paper Section V-B memory accounting).
    pub arena_capacity: usize,
    /// Task instances degraded to counting-only because the live-tree cap
    /// was reached (overload shedding; 0 when no cap was configured).
    pub shed_instances: u64,
    /// Self-healing diagnostics recorded while closing the profile (e.g.
    /// instances force-closed at region end). Empty for a clean run.
    pub diagnostics: Vec<String>,
}

impl ThreadSnapshot {
    /// The aggregated task tree for a given task construct, if any
    /// instance of it completed on this thread.
    pub fn task_tree(&self, region: RegionId) -> Option<&SnapNode> {
        self.task_trees
            .iter()
            .find(|t| t.kind == NodeKind::Region(region))
    }
}

/// A whole parallel region's profile: one snapshot per team thread.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Per-thread snapshots, ordered by `tid`.
    pub threads: Vec<ThreadSnapshot>,
}

impl Profile {
    /// The parallel region id (taken from the first thread).
    pub fn parallel_region(&self) -> Option<RegionId> {
        self.threads.first().map(|t| t.parallel_region)
    }

    /// Number of team threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Maximum over threads of the concurrent-instance-tree high-water
    /// mark — the per-code value of the paper's Table II.
    pub fn max_live_trees(&self) -> usize {
        self.threads.iter().map(|t| t.max_live_trees).max().unwrap_or(0)
    }

    /// Total task instances shed (degraded to counting-only) across all
    /// threads.
    pub fn shed_instances(&self) -> u64 {
        self.threads.iter().map(|t| t.shed_instances).sum()
    }

    /// Total aborted task instances across all threads, summed over every
    /// node of every tree (the abort tag only ever sits on task roots, so
    /// this never double-counts).
    pub fn aborted_instances(&self) -> u64 {
        fn tree_aborts(n: &SnapNode) -> u64 {
            n.stats.aborted + n.children.iter().map(tree_aborts).sum::<u64>()
        }
        self.threads
            .iter()
            .map(|t| tree_aborts(&t.main) + t.task_trees.iter().map(tree_aborts).sum::<u64>())
            .sum()
    }

    /// All self-healing diagnostics, as `(tid, message)` pairs.
    pub fn diagnostics(&self) -> Vec<(usize, &str)> {
        self.threads
            .iter()
            .flat_map(|t| t.diagnostics.iter().map(move |d| (t.tid, d.as_str())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::ParamId;

    fn leaf(kind: NodeKind, sum: u64) -> SnapNode {
        let mut stats = Stats::new();
        stats.add_visit();
        stats.record(sum);
        SnapNode {
            kind,
            stats,
            children: vec![],
        }
    }

    #[test]
    fn exclusive_subtracts_children() {
        let mut root = leaf(NodeKind::Region(RegionId(0)), 100);
        root.children.push(leaf(NodeKind::Region(RegionId(1)), 30));
        root.children.push(leaf(NodeKind::Stub(RegionId(2)), 50));
        assert_eq!(root.exclusive_ns(), 20);
    }

    #[test]
    fn walk_visits_in_preorder_with_depth() {
        let mut root = leaf(NodeKind::Region(RegionId(0)), 10);
        let mut c = leaf(NodeKind::Region(RegionId(1)), 5);
        c.children.push(leaf(NodeKind::Param(ParamId(0), 3), 2));
        root.children.push(c);
        let mut seen = vec![];
        root.walk(&mut |d, n| seen.push((d, n.kind)));
        assert_eq!(
            seen,
            vec![
                (0, NodeKind::Region(RegionId(0))),
                (1, NodeKind::Region(RegionId(1))),
                (2, NodeKind::Param(ParamId(0), 3)),
            ]
        );
        assert_eq!(root.size(), 3);
    }

    #[test]
    fn profile_max_live_trees_takes_thread_max() {
        let snap = |tid, max| ThreadSnapshot {
            tid,
            parallel_region: RegionId(0),
            main: leaf(NodeKind::Region(RegionId(0)), 1),
            task_trees: vec![],
            max_live_trees: max,
            arena_capacity: 0,
            shed_instances: 0,
            diagnostics: vec![],
        };
        let p = Profile {
            threads: vec![snap(0, 3), snap(1, 19), snap(2, 4)],
        };
        assert_eq!(p.max_live_trees(), 19);
        assert_eq!(p.num_threads(), 3);
        assert_eq!(p.parallel_region(), Some(RegionId(0)));
    }
}
