//! Measurement-system self-calibration.
//!
//! Score-P reports its clock resolution and per-event cost so users can
//! judge whether a measured effect is real or perturbation. This module
//! measures, on the current machine:
//!
//! * the effective clock read cost and resolution,
//! * the profiler's enter/exit pair cost,
//! * the full task begin/end/merge cycle cost.
//!
//! The paper's rule of thumb falls out directly: a task is "reasonably
//! sized" when its body dwarfs [`Calibration::task_cycle_ns`] (strassen's
//! 149 µs tasks vs. ~100 ns of instrumentation ⇒ ~0 % overhead; fib's
//! 1.49 µs tasks ⇒ hundreds of %).

use crate::profiler::{AssignPolicy, ThreadProfile};
use pomp::{ClockReader, ClockSource, MonotonicClock, RegionId, TaskIdAllocator};

/// Measured per-event costs, nanoseconds.
#[derive(Clone, Copy, Debug)]
pub struct Calibration {
    /// Cost of one clock read.
    pub clock_read_ns: f64,
    /// Smallest observed nonzero clock increment (resolution bound).
    pub clock_resolution_ns: u64,
    /// Cost of one profiled enter+exit pair (including two clock reads).
    pub enter_exit_ns: f64,
    /// Cost of one full task begin+end (instance creation, stub
    /// bookkeeping, merge, node recycling).
    pub task_cycle_ns: f64,
}

impl Calibration {
    /// Estimated profiling overhead fraction for tasks with the given
    /// mean body time (one creation + one begin/end cycle per task).
    pub fn overhead_fraction(&self, task_body_ns: f64) -> f64 {
        if task_body_ns <= 0.0 {
            return f64::INFINITY;
        }
        (self.task_cycle_ns + self.enter_exit_ns) / task_body_ns
    }
}

/// Run the calibration (takes a few milliseconds).
pub fn calibrate() -> Calibration {
    // Measure through the same per-thread reader the sharded fast path
    // uses, so the reported costs describe the actual event path.
    let clock = MonotonicClock::new().thread_reader();
    const N: u64 = 20_000;

    // Clock read cost + resolution.
    let start = clock.now();
    let mut min_step = u64::MAX;
    let mut prev = start;
    for _ in 0..N {
        let t = clock.now();
        if t > prev {
            min_step = min_step.min(t - prev);
        }
        prev = t;
    }
    let clock_read_ns = (prev - start) as f64 / N as f64;
    let clock_resolution_ns = if min_step == u64::MAX { 1 } else { min_step };

    // Profiler enter/exit pair (with real clock reads like ProfMonitor).
    let par = RegionId(u32::MAX - 1);
    let work = RegionId(u32::MAX - 2);
    let task = RegionId(u32::MAX - 3);
    let mut p = ThreadProfile::new(par, clock.now(), AssignPolicy::Executing);
    let start = clock.now();
    for _ in 0..N {
        p.enter(work, clock.now());
        p.exit(work, clock.now());
    }
    let enter_exit_ns = (clock.now() - start) as f64 / N as f64;

    // Task lifecycle.
    let ids = TaskIdAllocator::new();
    let start = clock.now();
    for _ in 0..N {
        let id = ids.alloc();
        p.task_begin(task, id, clock.now());
        p.task_end(task, id, clock.now());
    }
    let task_cycle_ns = (clock.now() - start) as f64 / N as f64;

    Calibration {
        clock_read_ns,
        clock_resolution_ns,
        enter_exit_ns,
        task_cycle_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_yields_sane_numbers() {
        let c = calibrate();
        assert!(c.clock_read_ns > 0.0);
        assert!(
            c.clock_read_ns < 100_000.0,
            "clock read implausibly slow: {} ns",
            c.clock_read_ns
        );
        assert!(c.clock_resolution_ns >= 1);
        assert!(c.enter_exit_ns > 0.0);
        assert!(c.task_cycle_ns > 0.0);
        // A full task cycle costs at least as much as... practically, more
        // than a single clock read.
        assert!(c.task_cycle_ns > c.clock_read_ns);
    }

    #[test]
    fn overhead_model_orders_granularities() {
        let c = calibrate();
        // The paper's Table I story in model form: 149 µs tasks have far
        // lower relative overhead than 1.49 µs tasks.
        let big = c.overhead_fraction(149_000.0);
        let small = c.overhead_fraction(1_490.0);
        assert!(big < small);
        assert!((small / big - 100.0).abs() < 1.0, "linear in 1/size");
        assert!(c.overhead_fraction(0.0).is_infinite());
    }
}
