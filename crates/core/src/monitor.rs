//! Adapter implementing the `pomp` hook interface on top of
//! [`ThreadProfile`] with a real (or virtual) clock.
//!
//! `ProfMonitor` is what you hand to the `taskrt` runtime to get an
//! *instrumented* run; [`pomp::NullMonitor`] gives the uninstrumented
//! baseline. Configure one with [`ProfMonitor::builder`]; after the
//! parallel regions complete, [`ProfMonitor::take_profile`] returns the
//! collected per-thread snapshots.
//!
//! # The sharded fast path
//!
//! Every steady-state event (enter/exit/switch/create/param) touches only
//! the thread's own [`ProfThread`] shard: a cached per-thread clock reader
//! ([`pomp::ClockSource::thread_reader`]) and a [`ThreadProfile`] whose
//! arena was preallocated (and is recycled across regions). No lock, no
//! atomic, no shared `Arc` dereference — and no `RefCell` borrow flag —
//! is on that path. Cross-thread hand-off happens only at region end
//! ([`pomp::Monitor::thread_end`]): the finished snapshot is published
//! with a single CAS push onto a lock-free [`HandoffStack`], and the
//! shard's arena goes onto a spare pool the next region steals from.

use crate::profiler::{AssignPolicy, ThreadProfile};
use crate::shard::HandoffStack;
use crate::snapshot::{Profile, ThreadSnapshot};
use crate::tree::Arena;
use pomp::{
    ClockReader, ClockSource, EventClass, Monitor, MonotonicClock, ParamId, RegionId, TaskId,
    TaskRef, ThreadHooks,
};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use taskprof_telemetry::{TelemetryConfig, TelemetryCore, ThreadTelemetry};

/// Default preallocated arena slots per thread shard. Sized generously for
/// BOTS-style call trees (tens of regions × parameter fan-out); a shard
/// that outgrows it just reallocates once and the larger arena is recycled.
pub const DEFAULT_PREALLOC_NODES: usize = 256;

/// A [`ProfMonitor`] configuration was rejected, naming the setting and
/// the reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A setting's value is invalid regardless of timing.
    InvalidValue {
        /// The setting that was rejected.
        setting: &'static str,
        /// The rejected value.
        value: usize,
        /// Why it is invalid.
        reason: &'static str,
    },
}

impl ConfigError {
    /// The name of the rejected setting.
    pub fn setting(&self) -> &'static str {
        match self {
            ConfigError::InvalidValue { setting, .. } => setting,
        }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::InvalidValue {
                setting,
                value,
                reason,
            } => write!(f, "invalid value {value} for `{setting}`: {reason}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// [`ProfMonitor::take_profile`] was called while a measurement was still
/// in progress (threads between `thread_begin` and `thread_end`, or a
/// parallel region between fork and join). Draining at that point would
/// silently return a half-merged profile, so it is a typed error instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionActiveError {
    /// Threads currently between `thread_begin` and `thread_end`.
    pub live_threads: usize,
    /// Parallel regions currently between fork and join.
    pub live_regions: usize,
}

impl std::fmt::Display for SessionActiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "profile requested mid-measurement: {} live thread(s), {} open parallel region(s)",
            self.live_threads, self.live_regions
        )
    }
}

impl std::error::Error for SessionActiveError {}

struct Inner<C: ClockSource> {
    clock: C,
    policy: AssignPolicy,
    max_depth: Option<usize>,
    max_live_trees: Option<usize>,
    prealloc_nodes: usize,
    /// Completed per-thread snapshots, published lock-free at thread end.
    collected: HandoffStack<ThreadSnapshot>,
    /// Recycled arenas: a thread beginning a region steals one instead of
    /// allocating fresh node storage.
    spare_arenas: HandoffStack<Arena>,
    live_threads: AtomicUsize,
    live_regions: AtomicUsize,
    /// Live telemetry counters, when enabled. `None` keeps the event fast
    /// path to a single never-taken branch per hook.
    telemetry: Option<Arc<TelemetryCore>>,
}

/// Builder for [`ProfMonitor`]: collect every setting, validate once in
/// [`ProfMonitorBuilder::build`].
///
/// ```
/// use taskprof::{AssignPolicy, ProfMonitor};
/// let monitor = ProfMonitor::builder()
///     .policy(AssignPolicy::Executing)
///     .max_depth(32)
///     .build()
///     .unwrap();
/// # let _ = monitor;
/// ```
#[derive(Debug)]
pub struct ProfMonitorBuilder<C: ClockSource = MonotonicClock> {
    clock: C,
    policy: AssignPolicy,
    max_depth: Option<usize>,
    max_live_trees: Option<usize>,
    prealloc_nodes: usize,
    telemetry: Option<TelemetryConfig>,
}

impl Default for ProfMonitorBuilder<MonotonicClock> {
    fn default() -> Self {
        Self {
            clock: MonotonicClock::new(),
            policy: AssignPolicy::Executing,
            max_depth: None,
            max_live_trees: None,
            prealloc_nodes: DEFAULT_PREALLOC_NODES,
            telemetry: None,
        }
    }
}

impl ProfMonitorBuilder<MonotonicClock> {
    /// Builder with the real monotonic clock, executing-node attribution,
    /// and no limits.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<C: ClockSource> ProfMonitorBuilder<C> {
    /// Measure with `clock` instead of the real monotonic clock (virtual
    /// clocks for deterministic tests).
    pub fn clock<C2: ClockSource>(self, clock: C2) -> ProfMonitorBuilder<C2> {
        ProfMonitorBuilder {
            clock,
            policy: self.policy,
            max_depth: self.max_depth,
            max_live_trees: self.max_live_trees,
            prealloc_nodes: self.prealloc_nodes,
            telemetry: self.telemetry,
        }
    }

    /// Attribution policy (default [`AssignPolicy::Executing`], the
    /// paper's recommendation).
    pub fn policy(mut self, policy: AssignPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Limit call-path depth per task body (Score-P's depth limit —
    /// collapses deeper frames into `<truncated>` nodes). Must be ≥ 1.
    pub fn max_depth(mut self, depth: usize) -> Self {
        self.max_depth = Some(depth);
        self
    }

    /// Overload shedding: cap the number of concurrently live instance
    /// trees per thread; instances begun beyond the cap degrade to
    /// counting-only, and the shed count appears in the profile. Must be
    /// ≥ 1.
    pub fn max_live_trees(mut self, cap: usize) -> Self {
        self.max_live_trees = Some(cap);
        self
    }

    /// Arena slots preallocated per thread shard (default
    /// [`DEFAULT_PREALLOC_NODES`]). `0` disables preallocation.
    pub fn prealloc_nodes(mut self, nodes: usize) -> Self {
        self.prealloc_nodes = nodes;
        self
    }

    /// Enable live telemetry with default settings (lock-free shard
    /// gauges, 1-in-256 perturbation sampling). See
    /// [`ProfMonitor::telemetry_core`] for reading it.
    pub fn telemetry(self) -> Self {
        self.telemetry_config(TelemetryConfig::default())
    }

    /// Enable live telemetry with an explicit configuration.
    pub fn telemetry_config(mut self, config: TelemetryConfig) -> Self {
        self.telemetry = Some(config);
        self
    }

    /// Validate every setting and construct the monitor.
    pub fn build(self) -> Result<ProfMonitor<C>, ConfigError> {
        if self.max_depth == Some(0) {
            return Err(ConfigError::InvalidValue {
                setting: "max_depth",
                value: 0,
                reason: "a depth limit of 0 would truncate the parallel-region root itself",
            });
        }
        if self.max_live_trees == Some(0) {
            return Err(ConfigError::InvalidValue {
                setting: "max_live_trees",
                value: 0,
                reason: "a live-tree cap of 0 would shed every task instance",
            });
        }
        if let Some(cfg) = &self.telemetry {
            if cfg.sample_every == 0 {
                return Err(ConfigError::InvalidValue {
                    setting: "telemetry.sample_every",
                    value: 0,
                    reason: "the perturbation sampling period must be at least 1",
                });
            }
        }
        Ok(ProfMonitor {
            inner: Arc::new(Inner {
                clock: self.clock,
                policy: self.policy,
                max_depth: self.max_depth,
                max_live_trees: self.max_live_trees,
                prealloc_nodes: self.prealloc_nodes,
                collected: HandoffStack::new(),
                spare_arenas: HandoffStack::new(),
                live_threads: AtomicUsize::new(0),
                live_regions: AtomicUsize::new(0),
                telemetry: self
                    .telemetry
                    .map(|cfg| Arc::new(TelemetryCore::new(cfg))),
            }),
        })
    }
}

/// Profiling monitor: one per measurement session.
pub struct ProfMonitor<C: ClockSource = MonotonicClock> {
    inner: Arc<Inner<C>>,
}

impl<C: ClockSource> std::fmt::Debug for ProfMonitor<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfMonitor")
            .field("policy", &self.inner.policy)
            .field("max_depth", &self.inner.max_depth)
            .field("max_live_trees", &self.inner.max_live_trees)
            .field("prealloc_nodes", &self.inner.prealloc_nodes)
            .field(
                "live_threads",
                &self.inner.live_threads.load(Ordering::Relaxed),
            )
            .field(
                "live_regions",
                &self.inner.live_regions.load(Ordering::Relaxed),
            )
            .finish_non_exhaustive()
    }
}

impl Default for ProfMonitor<MonotonicClock> {
    fn default() -> Self {
        Self::new()
    }
}

impl ProfMonitor<MonotonicClock> {
    /// Monitor with the real monotonic clock and the paper's
    /// executing-node attribution. Use [`ProfMonitor::builder`] for
    /// anything configurable.
    pub fn new() -> Self {
        ProfMonitorBuilder::new()
            .build()
            .expect("default configuration is valid")
    }

    /// Builder with defaults (real clock, executing attribution).
    pub fn builder() -> ProfMonitorBuilder<MonotonicClock> {
        ProfMonitorBuilder::new()
    }
}

impl<C: ClockSource> ProfMonitor<C> {
    /// The monitor's clock (e.g. to advance a shared
    /// [`pomp::VirtualClock`] from a test driver).
    pub fn clock(&self) -> &C {
        &self.inner.clock
    }

    /// The attribution policy in effect.
    pub fn policy(&self) -> AssignPolicy {
        self.inner.policy
    }

    /// The live telemetry counters, when enabled via
    /// [`ProfMonitorBuilder::telemetry`]. Cheap to clone and safe to poll
    /// from any thread at any time, including mid-measurement.
    pub fn telemetry_core(&self) -> Option<Arc<TelemetryCore>> {
        self.inner.telemetry.clone()
    }

    /// Drain the snapshots collected since the last call, as one profile
    /// sorted by thread id. Call after the parallel region(s) complete;
    /// while threads are still measuring, the profile would be half-merged,
    /// so a [`SessionActiveError`] is returned instead.
    pub fn take_profile(&self) -> Result<Profile, SessionActiveError> {
        let live_threads = self.inner.live_threads.load(Ordering::Acquire);
        let live_regions = self.inner.live_regions.load(Ordering::Acquire);
        if live_threads > 0 || live_regions > 0 {
            return Err(SessionActiveError {
                live_threads,
                live_regions,
            });
        }
        let mut threads = self.inner.collected.take_all();
        threads.sort_by_key(|t| t.tid);
        if let Some(tc) = &self.inner.telemetry {
            tc.note_snapshots_collected(threads.len() as u64);
        }
        Ok(Profile { threads })
    }
}

/// Per-thread profiling shard (owned by exactly one runtime thread): the
/// cached clock reader plus the thread's private profile. Every
/// [`ThreadHooks`] event runs entirely on this struct — no locks, no
/// shared-state dereference.
pub struct ProfThread<C: ClockSource> {
    reader: C::Reader,
    /// Team-local thread id this hook set belongs to.
    pub tid: usize,
    // SAFETY invariant: only the owning thread touches `prof`, exactly one
    // hook at a time. `UnsafeCell` keeps the type `!Sync`, the runtime
    // hands each `ProfThread` to a single worker, and no `ThreadProfile`
    // method calls back into the hooks — so the `&mut` in `prof()` is
    // never aliased. This removes the `RefCell` borrow-flag check from
    // the per-event fast path.
    prof: UnsafeCell<ThreadProfile>,
    /// Telemetry write handle when enabled: relaxed stores onto the
    /// thread's own padded slot, so the steady-state path stays lock-free.
    telem: Option<ThreadTelemetry>,
}

impl<C: ClockSource> ProfThread<C> {
    #[inline]
    fn now(&self) -> u64 {
        self.reader.now()
    }

    /// Exclusive access to the shard's profile (see the field invariant).
    #[expect(clippy::mut_from_ref)]
    #[inline]
    fn prof(&self) -> &mut ThreadProfile {
        // SAFETY: single-owner, non-reentrant access per the field's
        // documented invariant; `UnsafeCell` makes the type `!Sync`.
        unsafe { &mut *self.prof.get() }
    }

    /// Telemetry tail for hooks without task-lifecycle side effects:
    /// count the event and, for the 1-in-N elected events, read the clock
    /// once more to self-time the profiling work that just ran
    /// (perturbation accounting). One never-taken branch when telemetry
    /// is off.
    #[inline]
    fn telem_tail(&self, class: EventClass, t0: u64) {
        if let Some(tm) = &self.telem {
            if tm.tick(class) {
                tm.record_cost(class, self.now().saturating_sub(t0));
            }
        }
    }

    /// After a task-lifecycle transition: publish the shard's live-tree
    /// gauge and track whether the thread is inside an explicit-task
    /// fragment at time `t`.
    #[inline]
    fn telem_task_state(tm: &ThreadTelemetry, prof: &ThreadProfile, t: u64) {
        tm.update_live(prof.live_instance_trees() as u64);
        match prof.current_task() {
            TaskRef::Explicit(_) => tm.fragment_begin(t),
            TaskRef::Implicit => tm.fragment_end(t),
        }
    }
}

impl<C: ClockSource + 'static> Monitor for ProfMonitor<C> {
    type Thread = ProfThread<C>;

    fn parallel_fork(&self, _region: RegionId, _nthreads: usize) {
        self.inner.live_regions.fetch_add(1, Ordering::AcqRel);
    }

    fn parallel_join(&self, _region: RegionId) {
        self.inner.live_regions.fetch_sub(1, Ordering::AcqRel);
    }

    fn thread_begin(&self, tid: usize, _nthreads: usize, region: RegionId) -> ProfThread<C> {
        self.inner.live_threads.fetch_add(1, Ordering::AcqRel);
        // Steal a recycled arena from an earlier region if one is spare;
        // otherwise preallocate. Either way the event path that follows
        // does not allocate until the preallocation is exhausted.
        let (arena, recycled) = match self.inner.spare_arenas.steal_one() {
            Some(a) => (a, true),
            None => (Arena::with_capacity(self.inner.prealloc_nodes), false),
        };
        let telem = self.inner.telemetry.as_ref().map(|tc| {
            if recycled {
                tc.note_arena_recycled();
            } else {
                tc.note_arena_allocated();
            }
            tc.thread_handle(tid)
        });
        let reader = self.inner.clock.thread_reader();
        let t = reader.now();
        let mut prof = ThreadProfile::new_in(arena, region, t, self.inner.policy);
        prof.set_max_depth(self.inner.max_depth);
        prof.set_max_live_trees(self.inner.max_live_trees);
        ProfThread {
            reader,
            tid,
            prof: UnsafeCell::new(prof),
            telem,
        }
    }

    fn thread_end(&self, tid: usize, thread: ProfThread<C>) {
        let t = thread.reader.now();
        let mut prof = thread.prof.into_inner();
        prof.finish(t);
        // Lock-free hand-off: one CAS publishes the snapshot, one more
        // returns the arena to the spare pool.
        self.inner.collected.push(prof.snapshot(tid));
        self.inner.spare_arenas.push(prof.into_arena());
        if let Some(tm) = &thread.telem {
            tm.thread_end(t);
            tm.core().note_snapshot_published();
            tm.core().note_arena_returned();
        }
        self.inner.live_threads.fetch_sub(1, Ordering::AcqRel);
    }
}

impl<C: ClockSource> ThreadHooks for ProfThread<C> {
    #[inline]
    fn enter(&self, region: RegionId) {
        let t = self.now();
        self.prof().enter(region, t);
        self.telem_tail(EventClass::Enter, t);
    }

    #[inline]
    fn exit(&self, region: RegionId) {
        let t = self.now();
        self.prof().exit(region, t);
        self.telem_tail(EventClass::Exit, t);
    }

    #[inline]
    fn task_create_begin(&self, create_region: RegionId, task_region: RegionId, new_task: TaskId) {
        let t = self.now();
        self.prof()
            .task_create_begin(create_region, task_region, new_task, t);
        if let Some(tm) = &self.telem {
            tm.task_created();
        }
        self.telem_tail(EventClass::TaskCreate, t);
    }

    #[inline]
    fn task_create_end(&self, create_region: RegionId, new_task: TaskId) {
        let t = self.now();
        self.prof()
            .task_create_end(create_region, new_task, t);
        self.telem_tail(EventClass::TaskCreate, t);
    }

    #[inline]
    fn task_begin(&self, task_region: RegionId, task: TaskId) {
        let t = self.now();
        let prof = self.prof();
        if let Some(tm) = &self.telem {
            // Shedding is decided inside `task_begin`; observe it as the
            // delta of the profile's shed counter.
            let shed_before = prof.shed_instances();
            prof.task_begin(task_region, task, t);
            if prof.shed_instances() > shed_before {
                tm.task_shed();
            }
            Self::telem_task_state(tm, prof, t);
        } else {
            prof.task_begin(task_region, task, t);
        }
        self.telem_tail(EventClass::TaskBegin, t);
    }

    #[inline]
    fn task_end(&self, task_region: RegionId, task: TaskId) {
        let t = self.now();
        let prof = self.prof();
        prof.task_end(task_region, task, t);
        if let Some(tm) = &self.telem {
            tm.task_completed();
            Self::telem_task_state(tm, prof, t);
        }
        self.telem_tail(EventClass::TaskEnd, t);
    }

    #[inline]
    fn task_abort(&self, task_region: RegionId, task: TaskId) {
        let t = self.now();
        let prof = self.prof();
        prof.task_abort(task_region, task, t);
        if let Some(tm) = &self.telem {
            tm.task_aborted();
            Self::telem_task_state(tm, prof, t);
        }
        self.telem_tail(EventClass::TaskAbort, t);
    }

    #[inline]
    fn task_switch(&self, resumed: TaskRef) {
        let t = self.now();
        let prof = self.prof();
        let prev = prof.current_task();
        prof.task_switch(resumed, t);
        if let Some(tm) = &self.telem {
            // A redundant switch (already current) is a profiler no-op and
            // must not be counted as a fragment resumption.
            if prev != resumed {
                Self::telem_task_state(tm, prof, t);
            }
        }
        self.telem_tail(EventClass::TaskSwitch, t);
    }

    #[inline]
    fn parameter_begin(&self, param: ParamId, value: i64) {
        let t = self.now();
        self.prof().parameter_begin(param, value, t);
        self.telem_tail(EventClass::Param, t);
    }

    #[inline]
    fn parameter_end(&self, param: ParamId) {
        let t = self.now();
        self.prof().parameter_end(param, t);
        self.telem_tail(EventClass::Param, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::NodeKind;
    use pomp::{TaskIdAllocator, VirtualClock};

    fn virtual_monitor() -> (VirtualClock, ProfMonitor<VirtualClock>) {
        let clock = VirtualClock::new();
        let m = ProfMonitor::builder()
            .clock(clock.clone())
            .build()
            .unwrap();
        (clock, m)
    }

    #[test]
    fn monitor_collects_per_thread_snapshots() {
        let (clock, m) = virtual_monitor();
        let par = RegionId(0);
        let work = RegionId(1);
        m.parallel_fork(par, 2);
        let t0 = m.thread_begin(0, 2, par);
        let t1 = m.thread_begin(1, 2, par);
        clock.set(10);
        t0.enter(work);
        clock.set(15);
        t0.exit(work);
        m.thread_end(0, t0);
        clock.set(20);
        m.thread_end(1, t1);
        m.parallel_join(par);

        let p = m.take_profile().unwrap();
        assert_eq!(p.num_threads(), 2);
        assert_eq!(p.threads[0].tid, 0);
        let w = p.threads[0].main.child(NodeKind::Region(work)).unwrap();
        assert_eq!(w.stats.sum_ns, 5);
        assert_eq!(p.threads[1].main.stats.sum_ns, 20);
        // Drained: second take is empty.
        assert_eq!(m.take_profile().unwrap().num_threads(), 0);
    }

    #[test]
    fn monitor_profiles_task_events_with_virtual_time() {
        let (clock, m) = virtual_monitor();
        let ids = TaskIdAllocator::new();
        let (par, task, barrier) = (RegionId(0), RegionId(1), RegionId(2));
        let th = m.thread_begin(0, 1, par);
        let id = ids.alloc();
        clock.set(10);
        th.enter(barrier);
        th.task_begin(task, id);
        clock.set(35);
        th.task_end(task, id);
        clock.set(40);
        th.exit(barrier);
        m.thread_end(0, th);
        let p = m.take_profile().unwrap();
        let snap = &p.threads[0];
        assert_eq!(snap.task_tree(task).unwrap().stats.sum_ns, 25);
        let b = snap.main.child(NodeKind::Region(barrier)).unwrap();
        assert_eq!(b.stats.sum_ns, 30);
        assert_eq!(b.child(NodeKind::Stub(task)).unwrap().stats.sum_ns, 25);
    }

    #[test]
    fn take_profile_sorts_by_tid() {
        let (_clock, m) = virtual_monitor();
        let par = RegionId(0);
        let a = m.thread_begin(3, 4, par);
        let b = m.thread_begin(1, 4, par);
        m.thread_end(3, a);
        m.thread_end(1, b);
        let p = m.take_profile().unwrap();
        assert_eq!(p.threads.iter().map(|t| t.tid).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn take_profile_mid_region_is_a_typed_error() {
        let (_clock, m) = virtual_monitor();
        let par = RegionId(0);
        m.parallel_fork(par, 1);
        let th = m.thread_begin(0, 1, par);
        let err = m.take_profile().unwrap_err();
        assert_eq!(err.live_threads, 1);
        assert_eq!(err.live_regions, 1);
        assert!(err.to_string().contains("mid-measurement"), "{err}");
        m.thread_end(0, th);
        let err = m.take_profile().unwrap_err();
        assert_eq!((err.live_threads, err.live_regions), (0, 1));
        m.parallel_join(par);
        assert_eq!(m.take_profile().unwrap().num_threads(), 1);
    }

    #[test]
    fn builder_validates_once() {
        let err = ProfMonitor::builder().max_depth(0).build().unwrap_err();
        assert_eq!(err.setting(), "max_depth");
        assert!(matches!(err, ConfigError::InvalidValue { value: 0, .. }));
        let err = ProfMonitor::builder().max_live_trees(0).build().unwrap_err();
        assert_eq!(err.setting(), "max_live_trees");
        assert!(err.to_string().contains("max_live_trees"), "{err}");
        assert!(ProfMonitor::builder()
            .max_depth(1)
            .max_live_trees(1)
            .prealloc_nodes(0)
            .build()
            .is_ok());
    }

    #[test]
    fn arenas_recycle_across_regions() {
        let (clock, m) = virtual_monitor();
        let par = RegionId(0);
        let work = RegionId(1);
        for round in 0..3u64 {
            m.parallel_fork(par, 1);
            let th = m.thread_begin(0, 1, par);
            clock.set(round * 100 + 10);
            th.enter(work);
            clock.set(round * 100 + 20);
            th.exit(work);
            m.thread_end(0, th);
            m.parallel_join(par);
        }
        // Exactly one thread ran each region, so exactly one arena
        // circulates through the spare pool.
        assert!(!m.inner.spare_arenas.is_empty());
        let spares = m.inner.spare_arenas.take_all();
        assert_eq!(spares.len(), 1, "one arena recycled, not re-allocated");
        let p = m.take_profile().unwrap();
        assert_eq!(p.num_threads(), 3, "three rounds collected");
    }

    #[test]
    fn shard_merge_preserves_thread_order_at_barrier() {
        // Threads finish in arbitrary (here: reverse) order; the merged
        // profile is still ordered by tid with every shard present.
        let (clock, m) = virtual_monitor();
        let par = RegionId(0);
        m.parallel_fork(par, 4);
        let shards: Vec<_> = (0..4).map(|tid| m.thread_begin(tid, 4, par)).collect();
        clock.set(50);
        for (tid, shard) in shards.into_iter().enumerate().rev() {
            m.thread_end(tid, shard);
        }
        m.parallel_join(par);
        let p = m.take_profile().unwrap();
        assert_eq!(
            p.threads.iter().map(|t| t.tid).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }
}
