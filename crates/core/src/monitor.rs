//! Adapter implementing the `pomp` hook interface on top of
//! [`ThreadProfile`] with a real (or virtual) clock.
//!
//! `ProfMonitor` is what you hand to the `taskrt` runtime to get an
//! *instrumented* run; [`pomp::NullMonitor`] gives the uninstrumented
//! baseline. After a parallel region completes, [`ProfMonitor::take_profile`]
//! returns the collected per-thread snapshots.

use crate::profiler::{AssignPolicy, ThreadProfile};
use crate::snapshot::{Profile, ThreadSnapshot};
use parking_lot::Mutex;
use pomp::{Clock, Monitor, MonotonicClock, ParamId, RegionId, TaskId, TaskRef, ThreadHooks};
use std::cell::RefCell;
use std::sync::Arc;

/// A [`ProfMonitor`] builder method was called at an invalid time — after
/// threads had already started using the monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigError;

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "monitor reconfigured after threads started using it")
    }
}

impl std::error::Error for ConfigError {}

struct Inner<C> {
    clock: C,
    policy: AssignPolicy,
    max_depth: Option<usize>,
    max_live_trees: Option<usize>,
    collected: Mutex<Vec<ThreadSnapshot>>,
}

/// Profiling monitor: one per measurement session.
pub struct ProfMonitor<C: Clock = MonotonicClock> {
    inner: Arc<Inner<C>>,
}

impl Default for ProfMonitor<MonotonicClock> {
    fn default() -> Self {
        Self::new()
    }
}

impl ProfMonitor<MonotonicClock> {
    /// Monitor with the real monotonic clock and the paper's
    /// executing-node attribution.
    pub fn new() -> Self {
        Self::with_clock(MonotonicClock::new(), AssignPolicy::Executing)
    }

    /// Monitor with the real clock and an explicit attribution policy.
    pub fn with_policy(policy: AssignPolicy) -> Self {
        Self::with_clock(MonotonicClock::new(), policy)
    }
}

impl<C: Clock> ProfMonitor<C> {
    /// Monitor over an arbitrary clock (virtual clocks for deterministic
    /// tests).
    pub fn with_clock(clock: C, policy: AssignPolicy) -> Self {
        Self {
            inner: Arc::new(Inner {
                clock,
                policy,
                max_depth: None,
                max_live_trees: None,
                collected: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Apply a configuration change, failing cleanly (instead of
    /// panicking) when threads already hold references to the monitor.
    fn reconfigure(self, apply: impl FnOnce(&mut Inner<C>)) -> Result<Self, ConfigError> {
        match Arc::try_unwrap(self.inner) {
            Ok(mut inner) => {
                apply(&mut inner);
                Ok(Self {
                    inner: Arc::new(inner),
                })
            }
            Err(_) => Err(ConfigError),
        }
    }

    /// Builder: limit call-path depth per task body (Score-P's depth
    /// limit — collapses deeper frames into `<truncated>` nodes). Fails
    /// with [`ConfigError`] once any parallel region has started.
    pub fn with_max_depth(self, depth: usize) -> Result<Self, ConfigError> {
        self.reconfigure(|i| i.max_depth = Some(depth))
    }

    /// Builder: overload shedding — cap the number of concurrently live
    /// instance trees per thread; instances begun beyond the cap degrade
    /// to counting-only, and the shed count appears in the profile. Fails
    /// with [`ConfigError`] once any parallel region has started.
    pub fn with_max_live_trees(self, cap: usize) -> Result<Self, ConfigError> {
        self.reconfigure(|i| i.max_live_trees = Some(cap))
    }

    /// Drain the snapshots collected since the last call, as one profile
    /// sorted by thread id. Call after each parallel region.
    pub fn take_profile(&self) -> Profile {
        let mut threads = std::mem::take(&mut *self.inner.collected.lock());
        threads.sort_by_key(|t| t.tid);
        Profile { threads }
    }
}

/// Per-thread profiling hooks (owned by exactly one runtime thread).
pub struct ProfThread<C: Clock> {
    inner: Arc<Inner<C>>,
    /// Team-local thread id this hook set belongs to.
    pub tid: usize,
    prof: RefCell<ThreadProfile>,
}

impl<C: Clock> ProfThread<C> {
    #[inline]
    fn now(&self) -> u64 {
        self.inner.clock.now()
    }
}

impl<C: Clock + 'static> Monitor for ProfMonitor<C> {
    type Thread = ProfThread<C>;

    fn thread_begin(&self, tid: usize, _nthreads: usize, region: RegionId) -> ProfThread<C> {
        let t = self.inner.clock.now();
        let mut prof = ThreadProfile::new(region, t, self.inner.policy);
        prof.set_max_depth(self.inner.max_depth);
        prof.set_max_live_trees(self.inner.max_live_trees);
        ProfThread {
            inner: self.inner.clone(),
            tid,
            prof: RefCell::new(prof),
        }
    }

    fn thread_end(&self, tid: usize, thread: ProfThread<C>) {
        let t = self.inner.clock.now();
        let mut prof = thread.prof.into_inner();
        prof.finish(t);
        self.inner.collected.lock().push(prof.snapshot(tid));
    }
}

impl<C: Clock> ThreadHooks for ProfThread<C> {
    #[inline]
    fn enter(&self, region: RegionId) {
        let t = self.now();
        self.prof.borrow_mut().enter(region, t);
    }

    #[inline]
    fn exit(&self, region: RegionId) {
        let t = self.now();
        self.prof.borrow_mut().exit(region, t);
    }

    #[inline]
    fn task_create_begin(&self, create_region: RegionId, task_region: RegionId, new_task: TaskId) {
        let t = self.now();
        self.prof
            .borrow_mut()
            .task_create_begin(create_region, task_region, new_task, t);
    }

    #[inline]
    fn task_create_end(&self, create_region: RegionId, new_task: TaskId) {
        let t = self.now();
        self.prof
            .borrow_mut()
            .task_create_end(create_region, new_task, t);
    }

    #[inline]
    fn task_begin(&self, task_region: RegionId, task: TaskId) {
        let t = self.now();
        self.prof.borrow_mut().task_begin(task_region, task, t);
    }

    #[inline]
    fn task_end(&self, task_region: RegionId, task: TaskId) {
        let t = self.now();
        self.prof.borrow_mut().task_end(task_region, task, t);
    }

    #[inline]
    fn task_abort(&self, task_region: RegionId, task: TaskId) {
        let t = self.now();
        self.prof.borrow_mut().task_abort(task_region, task, t);
    }

    #[inline]
    fn task_switch(&self, resumed: TaskRef) {
        let t = self.now();
        self.prof.borrow_mut().task_switch(resumed, t);
    }

    #[inline]
    fn parameter_begin(&self, param: ParamId, value: i64) {
        let t = self.now();
        self.prof.borrow_mut().parameter_begin(param, value, t);
    }

    #[inline]
    fn parameter_end(&self, param: ParamId) {
        let t = self.now();
        self.prof.borrow_mut().parameter_end(param, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::NodeKind;
    use pomp::{TaskIdAllocator, VirtualClock};

    #[test]
    fn monitor_collects_per_thread_snapshots() {
        let clock = VirtualClock::new();
        let m = ProfMonitor::with_clock(clock, AssignPolicy::Executing);
        let par = RegionId(0);
        let work = RegionId(1);
        m.parallel_fork(par, 2);
        let t0 = m.thread_begin(0, 2, par);
        let t1 = m.thread_begin(1, 2, par);
        m.inner.clock.set(10);
        t0.enter(work);
        m.inner.clock.set(15);
        t0.exit(work);
        m.thread_end(0, t0);
        m.inner.clock.set(20);
        m.thread_end(1, t1);
        m.parallel_join(par);

        let p = m.take_profile();
        assert_eq!(p.num_threads(), 2);
        assert_eq!(p.threads[0].tid, 0);
        let w = p.threads[0].main.child(NodeKind::Region(work)).unwrap();
        assert_eq!(w.stats.sum_ns, 5);
        assert_eq!(p.threads[1].main.stats.sum_ns, 20);
        // Drained: second take is empty.
        assert_eq!(m.take_profile().num_threads(), 0);
    }

    #[test]
    fn monitor_profiles_task_events_with_virtual_time() {
        let m = ProfMonitor::with_clock(VirtualClock::new(), AssignPolicy::Executing);
        let ids = TaskIdAllocator::new();
        let (par, task, barrier) = (RegionId(0), RegionId(1), RegionId(2));
        let th = m.thread_begin(0, 1, par);
        let id = ids.alloc();
        m.inner.clock.set(10);
        th.enter(barrier);
        th.task_begin(task, id);
        m.inner.clock.set(35);
        th.task_end(task, id);
        m.inner.clock.set(40);
        th.exit(barrier);
        m.thread_end(0, th);
        let p = m.take_profile();
        let snap = &p.threads[0];
        assert_eq!(snap.task_tree(task).unwrap().stats.sum_ns, 25);
        let b = snap.main.child(NodeKind::Region(barrier)).unwrap();
        assert_eq!(b.stats.sum_ns, 30);
        assert_eq!(b.child(NodeKind::Stub(task)).unwrap().stats.sum_ns, 25);
    }

    #[test]
    fn take_profile_sorts_by_tid() {
        let m = ProfMonitor::with_clock(VirtualClock::new(), AssignPolicy::Executing);
        let par = RegionId(0);
        let a = m.thread_begin(3, 4, par);
        let b = m.thread_begin(1, 4, par);
        m.thread_end(3, a);
        m.thread_end(1, b);
        let p = m.take_profile();
        assert_eq!(p.threads.iter().map(|t| t.tid).collect::<Vec<_>>(), vec![1, 3]);
    }
}
