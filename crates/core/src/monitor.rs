//! Adapter implementing the `pomp` hook interface on top of
//! [`ThreadProfile`] with a real (or virtual) clock.
//!
//! `ProfMonitor` is what you hand to the `taskrt` runtime to get an
//! *instrumented* run; [`pomp::NullMonitor`] gives the uninstrumented
//! baseline. Configure one with [`ProfMonitor::builder`]; after the
//! parallel regions complete, [`ProfMonitor::take_profile`] returns the
//! collected per-thread snapshots.
//!
//! # The sharded fast path
//!
//! Every steady-state event (enter/exit/switch/create/param) touches only
//! the thread's own [`ProfThread`] shard: a cached per-thread clock reader
//! ([`pomp::ClockSource::thread_reader`]) and a [`ThreadProfile`] whose
//! arena was preallocated (and is recycled across regions). No lock, no
//! atomic, no shared `Arc` dereference — and no `RefCell` borrow flag —
//! is on that path. Cross-thread hand-off happens only at region end
//! ([`pomp::Monitor::thread_end`]): the finished snapshot is published
//! with a single CAS push onto a lock-free [`HandoffStack`], and the
//! shard's arena goes onto a spare pool the next region steals from.

use crate::profiler::{AssignPolicy, ThreadProfile};
use crate::replay::Event;
use crate::shard::HandoffStack;
use crate::snapshot::{Profile, ThreadSnapshot};
use crate::tree::Arena;
use pomp::{
    ClockReader, ClockSource, EventClass, Monitor, MonotonicClock, ParamId, RegionId, TaskId,
    TaskRef, ThreadHooks,
};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use taskprof_telemetry::{TelemetryConfig, TelemetryCore, ThreadTelemetry};

/// Default preallocated arena slots per thread shard. Sized generously for
/// BOTS-style call trees (tens of regions × parameter fan-out); a shard
/// that outgrows it just reallocates once and the larger arena is recycled.
pub const DEFAULT_PREALLOC_NODES: usize = 256;

/// A [`ProfMonitor`] configuration was rejected, naming the setting and
/// the reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A setting's value is invalid regardless of timing.
    InvalidValue {
        /// The setting that was rejected.
        setting: &'static str,
        /// The rejected value.
        value: usize,
        /// Why it is invalid.
        reason: &'static str,
    },
}

impl ConfigError {
    /// The name of the rejected setting.
    pub fn setting(&self) -> &'static str {
        match self {
            ConfigError::InvalidValue { setting, .. } => setting,
        }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::InvalidValue {
                setting,
                value,
                reason,
            } => write!(f, "invalid value {value} for `{setting}`: {reason}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// [`ProfMonitor::take_profile`] was called while a measurement was still
/// in progress (threads between `thread_begin` and `thread_end`, or a
/// parallel region between fork and join). Draining at that point would
/// silently return a half-merged profile, so it is a typed error instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionActiveError {
    /// Threads currently between `thread_begin` and `thread_end`.
    pub live_threads: usize,
    /// Parallel regions currently between fork and join.
    pub live_regions: usize,
}

impl std::fmt::Display for SessionActiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "profile requested mid-measurement: {} live thread(s), {} open parallel region(s)",
            self.live_threads, self.live_regions
        )
    }
}

impl std::error::Error for SessionActiveError {}

struct Inner<C: ClockSource> {
    clock: C,
    policy: AssignPolicy,
    max_depth: Option<usize>,
    max_live_trees: Option<usize>,
    prealloc_nodes: usize,
    /// Completed per-thread snapshots, published lock-free at thread end.
    collected: HandoffStack<ThreadSnapshot>,
    /// Recycled arenas: a thread beginning a region steals one instead of
    /// allocating fresh node storage.
    spare_arenas: HandoffStack<Arena>,
    live_threads: AtomicUsize,
    live_regions: AtomicUsize,
    /// Live telemetry counters, when enabled. `None` keeps the event fast
    /// path to a single never-taken branch per hook.
    telemetry: Option<Arc<TelemetryCore>>,
    /// Record the create/join edge stream for critical-path analysis.
    record_edges: bool,
    /// Per-thread edge streams, published lock-free at thread end in
    /// packed form; decoded on drain in [`ProfMonitor::take_edge_streams`].
    edge_streams: HandoffStack<(usize, PackedEdgeStream)>,
}

// Edge-record tags (low 4 bits of the first word of every record).
const ET_LONG_ADVANCE: u64 = 0;
const ET_ENTER: u64 = 1;
const ET_EXIT: u64 = 2;
const ET_CREATE_BEGIN: u64 = 3;
const ET_CREATE_END: u64 = 4;
const ET_TASK_BEGIN: u64 = 5;
const ET_TASK_END: u64 = 6;
const ET_TASK_ABORT: u64 = 7;
const ET_SWITCH_IMPLICIT: u64 = 8;
const ET_SWITCH_EXPLICIT: u64 = 9;
const ET_PARAM_BEGIN: u64 = 10;
const ET_PARAM_END: u64 = 11;

/// Per-thread edge transcript: the hook stream recorded as packed
/// `u64` records and decoded into the replayable [`Event`] language
/// (differential timestamps, exactly what `critpath::TaskDag` consumes)
/// only once, off the measured path entirely, when the caller drains
/// [`ProfMonitor::take_edge_streams`]. Thread end just seals the word
/// buffer and hands it off — decoding is analysis-time cost, so the
/// instrumented run pays only the packed writes.
///
/// The hot path is dominated by memory traffic, not compute: retaining
/// one `Event` per hook plus its `Advance` streams ~48 bytes per event
/// through the cache, which costs more than the rest of the hook
/// combined once the log outgrows L2. The packed form is one word for
/// enter/exit-class records (tag in bits 0..4, timestamp delta in bits
/// 4..28, a `u32` region/param payload in bits 28..60) plus full-width
/// extra words only where needed (task ids, param values) — 8 bytes for
/// region events, 16–24 for task-lifecycle events, a 3–6× traffic
/// reduction. Deltas ≥ 2^24 ns (gaps over ~16 ms) take a rare
/// standalone long-advance record. When recording is off the whole
/// shard field is `None` and each hook pays one never-taken branch.
struct EdgeLog {
    last: u64,
    words: Vec<u64>,
}

impl EdgeLog {
    fn new(t: u64) -> Self {
        EdgeLog {
            last: t,
            words: Vec::with_capacity(1 << 12),
        }
    }

    /// Timestamp delta for the next record header, folding oversized
    /// gaps into a standalone long-advance record.
    #[inline(always)]
    fn delta(&mut self, t: u64) -> u64 {
        let d = t.saturating_sub(self.last);
        if d == 0 {
            return 0;
        }
        self.last = t;
        if d < (1 << 24) {
            d
        } else {
            self.long_advance(d)
        }
    }

    #[cold]
    fn long_advance(&mut self, d: u64) -> u64 {
        self.words.push(ET_LONG_ADVANCE | (d << 4));
        0
    }

    /// Append the first `n` of `w` with a single capacity check and
    /// unconditional in-capacity stores — three dependent `Vec::push`
    /// calls would pay three grow checks on the hottest path.
    #[inline(always)]
    fn push_words(&mut self, w: [u64; 3], n: usize) {
        let buf = &mut self.words;
        if buf.capacity() - buf.len() < 3 {
            buf.reserve(1 << 12);
        }
        // SAFETY: capacity for 3 words was just ensured; writes stay in
        // spare capacity and `set_len` only exposes the `n` valid ones.
        unsafe {
            let p = buf.as_mut_ptr().add(buf.len());
            p.write(w[0]);
            p.add(1).write(w[1]);
            p.add(2).write(w[2]);
            buf.set_len(buf.len() + n);
        }
    }

    #[inline(always)]
    fn emit(&mut self, t: u64, ev: Event) {
        // Hooks pass a literal variant, so after inlining the match
        // folds to the single arm and no `Event` ever materializes.
        let d = self.delta(t);
        let hdr = |tag: u64, a: u32| tag | (d << 4) | (u64::from(a) << 28);
        match ev {
            Event::Advance(_) => {}
            Event::Enter(r) => self.push_words([hdr(ET_ENTER, r.0), 0, 0], 1),
            Event::Exit(r) => self.push_words([hdr(ET_EXIT, r.0), 0, 0], 1),
            Event::CreateBegin {
                create,
                task_region,
                id,
            } => self.push_words(
                [
                    hdr(ET_CREATE_BEGIN, create.0),
                    u64::from(task_region.0),
                    id.get(),
                ],
                3,
            ),
            Event::CreateEnd { create, id } => {
                self.push_words([hdr(ET_CREATE_END, create.0), id.get(), 0], 2)
            }
            Event::TaskBegin { region, id } => {
                self.push_words([hdr(ET_TASK_BEGIN, region.0), id.get(), 0], 2)
            }
            Event::TaskEnd { region, id } => {
                self.push_words([hdr(ET_TASK_END, region.0), id.get(), 0], 2)
            }
            Event::TaskAbort { region, id } => {
                self.push_words([hdr(ET_TASK_ABORT, region.0), id.get(), 0], 2)
            }
            Event::Switch(TaskRef::Implicit) => {
                self.push_words([hdr(ET_SWITCH_IMPLICIT, 0), 0, 0], 1)
            }
            Event::Switch(TaskRef::Explicit(id)) => {
                self.push_words([hdr(ET_SWITCH_EXPLICIT, 0), id.get(), 0], 2)
            }
            Event::ParamBegin { param, value } => {
                self.push_words([hdr(ET_PARAM_BEGIN, param.0), value as u64, 0], 2)
            }
            Event::ParamEnd { param } => self.push_words([hdr(ET_PARAM_END, param.0), 0, 0], 1),
        }
    }

    /// Seal the log at thread-end timestamp `t`: the packed words plus
    /// the final span, ready for off-path decoding.
    fn finish(self, t: u64) -> PackedEdgeStream {
        PackedEdgeStream {
            last: self.last,
            end: t,
            words: self.words,
        }
    }
}

/// A sealed [`EdgeLog`]: the packed word buffer plus the thread-end
/// timestamp, published through the handoff stack and decoded lazily.
struct PackedEdgeStream {
    last: u64,
    end: u64,
    words: Vec<u64>,
}

impl PackedEdgeStream {
    /// Decode the packed log into the replayable event stream, with a
    /// trailing `Advance` up to the thread-end timestamp.
    fn into_events(self) -> Vec<Event> {
        let task_id = |w: u64| TaskId::from_raw(w).expect("recorded task ids are nonzero");
        let mut out = Vec::with_capacity(self.words.len());
        let mut i = 0;
        while i < self.words.len() {
            let w = self.words[i];
            i += 1;
            let tag = w & 0xF;
            if tag == ET_LONG_ADVANCE {
                out.push(Event::Advance(w >> 4));
                continue;
            }
            let d = (w >> 4) & 0xFF_FFFF;
            if d > 0 {
                out.push(Event::Advance(d));
            }
            let a = ((w >> 28) & 0xFFFF_FFFF) as u32;
            let mut extra = || {
                let w = self.words[i];
                i += 1;
                w
            };
            out.push(match tag {
                ET_ENTER => Event::Enter(RegionId(a)),
                ET_EXIT => Event::Exit(RegionId(a)),
                ET_CREATE_BEGIN => Event::CreateBegin {
                    create: RegionId(a),
                    task_region: RegionId(extra() as u32),
                    id: task_id(extra()),
                },
                ET_CREATE_END => Event::CreateEnd {
                    create: RegionId(a),
                    id: task_id(extra()),
                },
                ET_TASK_BEGIN => Event::TaskBegin {
                    region: RegionId(a),
                    id: task_id(extra()),
                },
                ET_TASK_END => Event::TaskEnd {
                    region: RegionId(a),
                    id: task_id(extra()),
                },
                ET_TASK_ABORT => Event::TaskAbort {
                    region: RegionId(a),
                    id: task_id(extra()),
                },
                ET_SWITCH_IMPLICIT => Event::Switch(TaskRef::Implicit),
                ET_SWITCH_EXPLICIT => Event::Switch(TaskRef::Explicit(task_id(extra()))),
                ET_PARAM_BEGIN => Event::ParamBegin {
                    param: ParamId(a),
                    value: extra() as i64,
                },
                ET_PARAM_END => Event::ParamEnd { param: ParamId(a) },
                _ => unreachable!("unknown edge-record tag {tag}"),
            });
        }
        if self.end > self.last {
            out.push(Event::Advance(self.end - self.last));
        }
        out
    }
}

/// Builder for [`ProfMonitor`]: collect every setting, validate once in
/// [`ProfMonitorBuilder::build`].
///
/// ```
/// use taskprof::{AssignPolicy, ProfMonitor};
/// let monitor = ProfMonitor::builder()
///     .policy(AssignPolicy::Executing)
///     .max_depth(32)
///     .build()
///     .unwrap();
/// # let _ = monitor;
/// ```
#[derive(Debug)]
pub struct ProfMonitorBuilder<C: ClockSource = MonotonicClock> {
    clock: C,
    policy: AssignPolicy,
    max_depth: Option<usize>,
    max_live_trees: Option<usize>,
    prealloc_nodes: usize,
    telemetry: Option<TelemetryConfig>,
    record_edges: bool,
}

impl Default for ProfMonitorBuilder<MonotonicClock> {
    fn default() -> Self {
        Self {
            clock: MonotonicClock::new(),
            policy: AssignPolicy::Executing,
            max_depth: None,
            max_live_trees: None,
            prealloc_nodes: DEFAULT_PREALLOC_NODES,
            telemetry: None,
            record_edges: false,
        }
    }
}

impl ProfMonitorBuilder<MonotonicClock> {
    /// Builder with the real monotonic clock, executing-node attribution,
    /// and no limits.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<C: ClockSource> ProfMonitorBuilder<C> {
    /// Measure with `clock` instead of the real monotonic clock (virtual
    /// clocks for deterministic tests).
    pub fn clock<C2: ClockSource>(self, clock: C2) -> ProfMonitorBuilder<C2> {
        ProfMonitorBuilder {
            clock,
            policy: self.policy,
            max_depth: self.max_depth,
            max_live_trees: self.max_live_trees,
            prealloc_nodes: self.prealloc_nodes,
            telemetry: self.telemetry,
            record_edges: self.record_edges,
        }
    }

    /// Attribution policy (default [`AssignPolicy::Executing`], the
    /// paper's recommendation).
    pub fn policy(mut self, policy: AssignPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Limit call-path depth per task body (Score-P's depth limit —
    /// collapses deeper frames into `<truncated>` nodes). Must be ≥ 1.
    pub fn max_depth(mut self, depth: usize) -> Self {
        self.max_depth = Some(depth);
        self
    }

    /// Overload shedding: cap the number of concurrently live instance
    /// trees per thread; instances begun beyond the cap degrade to
    /// counting-only, and the shed count appears in the profile. Must be
    /// ≥ 1.
    pub fn max_live_trees(mut self, cap: usize) -> Self {
        self.max_live_trees = Some(cap);
        self
    }

    /// Arena slots preallocated per thread shard (default
    /// [`DEFAULT_PREALLOC_NODES`]). `0` disables preallocation.
    pub fn prealloc_nodes(mut self, nodes: usize) -> Self {
        self.prealloc_nodes = nodes;
        self
    }

    /// Enable live telemetry with default settings (lock-free shard
    /// gauges, 1-in-256 perturbation sampling). See
    /// [`ProfMonitor::telemetry_core`] for reading it.
    pub fn telemetry(self) -> Self {
        self.telemetry_config(TelemetryConfig::default())
    }

    /// Enable live telemetry with an explicit configuration.
    pub fn telemetry_config(mut self, config: TelemetryConfig) -> Self {
        self.telemetry = Some(config);
        self
    }

    /// Record the task create/join edge stream alongside the profile, for
    /// critical-path (work/span) analysis. Each hook appends one
    /// differential [`Event`] to a thread-private buffer — no extra clock
    /// read, no synchronization until the thread ends. Off by default:
    /// when off, the only cost is one never-taken branch per hook. Drain
    /// with [`ProfMonitor::take_edge_streams`].
    pub fn record_task_edges(mut self) -> Self {
        self.record_edges = true;
        self
    }

    /// Validate every setting and construct the monitor.
    pub fn build(self) -> Result<ProfMonitor<C>, ConfigError> {
        if self.max_depth == Some(0) {
            return Err(ConfigError::InvalidValue {
                setting: "max_depth",
                value: 0,
                reason: "a depth limit of 0 would truncate the parallel-region root itself",
            });
        }
        if self.max_live_trees == Some(0) {
            return Err(ConfigError::InvalidValue {
                setting: "max_live_trees",
                value: 0,
                reason: "a live-tree cap of 0 would shed every task instance",
            });
        }
        if let Some(cfg) = &self.telemetry {
            if cfg.sample_every == 0 {
                return Err(ConfigError::InvalidValue {
                    setting: "telemetry.sample_every",
                    value: 0,
                    reason: "the perturbation sampling period must be at least 1",
                });
            }
        }
        Ok(ProfMonitor {
            inner: Arc::new(Inner {
                clock: self.clock,
                policy: self.policy,
                max_depth: self.max_depth,
                max_live_trees: self.max_live_trees,
                prealloc_nodes: self.prealloc_nodes,
                collected: HandoffStack::new(),
                spare_arenas: HandoffStack::new(),
                live_threads: AtomicUsize::new(0),
                live_regions: AtomicUsize::new(0),
                telemetry: self
                    .telemetry
                    .map(|cfg| Arc::new(TelemetryCore::new(cfg))),
                record_edges: self.record_edges,
                edge_streams: HandoffStack::new(),
            }),
        })
    }
}

/// Profiling monitor: one per measurement session.
pub struct ProfMonitor<C: ClockSource = MonotonicClock> {
    inner: Arc<Inner<C>>,
}

impl<C: ClockSource> std::fmt::Debug for ProfMonitor<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfMonitor")
            .field("policy", &self.inner.policy)
            .field("max_depth", &self.inner.max_depth)
            .field("max_live_trees", &self.inner.max_live_trees)
            .field("prealloc_nodes", &self.inner.prealloc_nodes)
            .field(
                "live_threads",
                &self.inner.live_threads.load(Ordering::Relaxed),
            )
            .field(
                "live_regions",
                &self.inner.live_regions.load(Ordering::Relaxed),
            )
            .finish_non_exhaustive()
    }
}

impl Default for ProfMonitor<MonotonicClock> {
    fn default() -> Self {
        Self::new()
    }
}

impl ProfMonitor<MonotonicClock> {
    /// Monitor with the real monotonic clock and the paper's
    /// executing-node attribution. Use [`ProfMonitor::builder`] for
    /// anything configurable.
    pub fn new() -> Self {
        ProfMonitorBuilder::new()
            .build()
            .expect("default configuration is valid")
    }

    /// Builder with defaults (real clock, executing attribution).
    pub fn builder() -> ProfMonitorBuilder<MonotonicClock> {
        ProfMonitorBuilder::new()
    }
}

impl<C: ClockSource> ProfMonitor<C> {
    /// The monitor's clock (e.g. to advance a shared
    /// [`pomp::VirtualClock`] from a test driver).
    pub fn clock(&self) -> &C {
        &self.inner.clock
    }

    /// The attribution policy in effect.
    pub fn policy(&self) -> AssignPolicy {
        self.inner.policy
    }

    /// The live telemetry counters, when enabled via
    /// [`ProfMonitorBuilder::telemetry`]. Cheap to clone and safe to poll
    /// from any thread at any time, including mid-measurement.
    pub fn telemetry_core(&self) -> Option<Arc<TelemetryCore>> {
        self.inner.telemetry.clone()
    }

    /// Drain the snapshots collected since the last call, as one profile
    /// sorted by thread id. Call after the parallel region(s) complete;
    /// while threads are still measuring, the profile would be half-merged,
    /// so a [`SessionActiveError`] is returned instead.
    pub fn take_profile(&self) -> Result<Profile, SessionActiveError> {
        let live_threads = self.inner.live_threads.load(Ordering::Acquire);
        let live_regions = self.inner.live_regions.load(Ordering::Acquire);
        if live_threads > 0 || live_regions > 0 {
            return Err(SessionActiveError {
                live_threads,
                live_regions,
            });
        }
        let mut threads = self.inner.collected.take_all();
        threads.sort_by_key(|t| t.tid);
        if let Some(tc) = &self.inner.telemetry {
            tc.note_snapshots_collected(threads.len() as u64);
        }
        Ok(Profile { threads })
    }

    /// Whether the task create/join edge stream is being recorded.
    pub fn records_task_edges(&self) -> bool {
        self.inner.record_edges
    }

    /// Drain the edge streams recorded since the last call, sorted by
    /// thread id — the input to `critpath::TaskDag::from_streams`. Empty
    /// unless the monitor was built with
    /// [`ProfMonitorBuilder::record_task_edges`]. Like
    /// [`ProfMonitor::take_profile`], draining mid-measurement would hand
    /// back a torn run, so it is the same typed error.
    pub fn take_edge_streams(&self) -> Result<Vec<(usize, Vec<Event>)>, SessionActiveError> {
        let live_threads = self.inner.live_threads.load(Ordering::Acquire);
        let live_regions = self.inner.live_regions.load(Ordering::Acquire);
        if live_threads > 0 || live_regions > 0 {
            return Err(SessionActiveError {
                live_threads,
                live_regions,
            });
        }
        let mut streams: Vec<(usize, Vec<Event>)> = self
            .inner
            .edge_streams
            .take_all()
            .into_iter()
            .map(|(tid, packed)| (tid, packed.into_events()))
            .collect();
        streams.sort_by_key(|(tid, _)| *tid);
        Ok(streams)
    }
}

/// Per-thread profiling shard (owned by exactly one runtime thread): the
/// cached clock reader plus the thread's private profile. Every
/// [`ThreadHooks`] event runs entirely on this struct — no locks, no
/// shared-state dereference.
pub struct ProfThread<C: ClockSource> {
    reader: C::Reader,
    /// Team-local thread id this hook set belongs to.
    pub tid: usize,
    // SAFETY invariant: only the owning thread touches `prof`, exactly one
    // hook at a time. `UnsafeCell` keeps the type `!Sync`, the runtime
    // hands each `ProfThread` to a single worker, and no `ThreadProfile`
    // method calls back into the hooks — so the `&mut` in `prof()` is
    // never aliased. This removes the `RefCell` borrow-flag check from
    // the per-event fast path.
    prof: UnsafeCell<ThreadProfile>,
    /// Telemetry write handle when enabled: relaxed stores onto the
    /// thread's own padded slot, so the steady-state path stays lock-free.
    telem: Option<ThreadTelemetry>,
    // SAFETY invariant: identical to `prof` — single-owner, one hook at a
    // time, no reentrancy.
    edges: Option<UnsafeCell<EdgeLog>>,
}

impl<C: ClockSource> ProfThread<C> {
    #[inline]
    fn now(&self) -> u64 {
        self.reader.now()
    }

    /// Exclusive access to the shard's profile (see the field invariant).
    #[expect(clippy::mut_from_ref)]
    #[inline]
    fn prof(&self) -> &mut ThreadProfile {
        // SAFETY: single-owner, non-reentrant access per the field's
        // documented invariant; `UnsafeCell` makes the type `!Sync`.
        unsafe { &mut *self.prof.get() }
    }

    /// Append to the edge transcript when recording is on: one branch,
    /// then a plain `Vec` push reusing the timestamp the hook already
    /// read.
    #[inline]
    fn edge(&self, t: u64, ev: Event) {
        if let Some(cell) = &self.edges {
            // SAFETY: single-owner, non-reentrant access per the field's
            // documented invariant; `UnsafeCell` makes the type `!Sync`.
            unsafe { &mut *cell.get() }.emit(t, ev);
        }
    }

    /// Telemetry tail for hooks without task-lifecycle side effects:
    /// count the event and, for the 1-in-N elected events, read the clock
    /// once more to self-time the profiling work that just ran
    /// (perturbation accounting). One never-taken branch when telemetry
    /// is off.
    #[inline]
    fn telem_tail(&self, class: EventClass, t0: u64) {
        if let Some(tm) = &self.telem {
            if tm.tick(class) {
                tm.record_cost(class, self.now().saturating_sub(t0));
            }
        }
    }

    /// After a task-lifecycle transition: publish the shard's live-tree
    /// gauge and track whether the thread is inside an explicit-task
    /// fragment at time `t`.
    #[inline]
    fn telem_task_state(tm: &ThreadTelemetry, prof: &ThreadProfile, t: u64) {
        tm.update_live(prof.live_instance_trees() as u64);
        match prof.current_task() {
            TaskRef::Explicit(_) => tm.fragment_begin(t),
            TaskRef::Implicit => tm.fragment_end(t),
        }
    }
}

impl<C: ClockSource + 'static> Monitor for ProfMonitor<C> {
    type Thread = ProfThread<C>;

    fn parallel_fork(&self, _region: RegionId, _nthreads: usize) {
        self.inner.live_regions.fetch_add(1, Ordering::AcqRel);
    }

    fn parallel_join(&self, _region: RegionId) {
        self.inner.live_regions.fetch_sub(1, Ordering::AcqRel);
    }

    fn thread_begin(&self, tid: usize, _nthreads: usize, region: RegionId) -> ProfThread<C> {
        self.inner.live_threads.fetch_add(1, Ordering::AcqRel);
        // Steal a recycled arena from an earlier region if one is spare;
        // otherwise preallocate. Either way the event path that follows
        // does not allocate until the preallocation is exhausted.
        let (arena, recycled) = match self.inner.spare_arenas.steal_one() {
            Some(a) => (a, true),
            None => (Arena::with_capacity(self.inner.prealloc_nodes), false),
        };
        let telem = self.inner.telemetry.as_ref().map(|tc| {
            if recycled {
                tc.note_arena_recycled();
            } else {
                tc.note_arena_allocated();
            }
            tc.thread_handle(tid)
        });
        let reader = self.inner.clock.thread_reader();
        let t = reader.now();
        let mut prof = ThreadProfile::new_in(arena, region, t, self.inner.policy);
        prof.set_max_depth(self.inner.max_depth);
        prof.set_max_live_trees(self.inner.max_live_trees);
        ProfThread {
            reader,
            tid,
            prof: UnsafeCell::new(prof),
            telem,
            edges: self
                .inner
                .record_edges
                .then(|| UnsafeCell::new(EdgeLog::new(t))),
        }
    }

    fn thread_end(&self, tid: usize, thread: ProfThread<C>) {
        let t = thread.reader.now();
        let mut prof = thread.prof.into_inner();
        prof.finish(t);
        if let Some(cell) = thread.edges {
            let log = cell.into_inner();
            self.inner.edge_streams.push((tid, log.finish(t)));
        }
        // Lock-free hand-off: one CAS publishes the snapshot, one more
        // returns the arena to the spare pool.
        self.inner.collected.push(prof.snapshot(tid));
        self.inner.spare_arenas.push(prof.into_arena());
        if let Some(tm) = &thread.telem {
            tm.thread_end(t);
            tm.core().note_snapshot_published();
            tm.core().note_arena_returned();
        }
        self.inner.live_threads.fetch_sub(1, Ordering::AcqRel);
    }
}

impl<C: ClockSource> ThreadHooks for ProfThread<C> {
    #[inline]
    fn enter(&self, region: RegionId) {
        let t = self.now();
        self.prof().enter(region, t);
        self.edge(t, Event::Enter(region));
        self.telem_tail(EventClass::Enter, t);
    }

    #[inline]
    fn exit(&self, region: RegionId) {
        let t = self.now();
        self.prof().exit(region, t);
        self.edge(t, Event::Exit(region));
        self.telem_tail(EventClass::Exit, t);
    }

    #[inline]
    fn task_create_begin(&self, create_region: RegionId, task_region: RegionId, new_task: TaskId) {
        let t = self.now();
        self.prof()
            .task_create_begin(create_region, task_region, new_task, t);
        self.edge(
            t,
            Event::CreateBegin {
                create: create_region,
                task_region,
                id: new_task,
            },
        );
        if let Some(tm) = &self.telem {
            tm.task_created();
        }
        self.telem_tail(EventClass::TaskCreate, t);
    }

    #[inline]
    fn task_create_end(&self, create_region: RegionId, new_task: TaskId) {
        let t = self.now();
        self.prof()
            .task_create_end(create_region, new_task, t);
        self.edge(
            t,
            Event::CreateEnd {
                create: create_region,
                id: new_task,
            },
        );
        self.telem_tail(EventClass::TaskCreate, t);
    }

    #[inline]
    fn task_begin(&self, task_region: RegionId, task: TaskId) {
        let t = self.now();
        let prof = self.prof();
        if let Some(tm) = &self.telem {
            // Shedding is decided inside `task_begin`; observe it as the
            // delta of the profile's shed counter.
            let shed_before = prof.shed_instances();
            prof.task_begin(task_region, task, t);
            if prof.shed_instances() > shed_before {
                tm.task_shed();
            }
            Self::telem_task_state(tm, prof, t);
        } else {
            prof.task_begin(task_region, task, t);
        }
        self.edge(
            t,
            Event::TaskBegin {
                region: task_region,
                id: task,
            },
        );
        self.telem_tail(EventClass::TaskBegin, t);
    }

    #[inline]
    fn task_end(&self, task_region: RegionId, task: TaskId) {
        let t = self.now();
        let prof = self.prof();
        prof.task_end(task_region, task, t);
        self.edge(
            t,
            Event::TaskEnd {
                region: task_region,
                id: task,
            },
        );
        if let Some(tm) = &self.telem {
            tm.task_completed();
            Self::telem_task_state(tm, prof, t);
        }
        self.telem_tail(EventClass::TaskEnd, t);
    }

    #[inline]
    fn task_abort(&self, task_region: RegionId, task: TaskId) {
        let t = self.now();
        let prof = self.prof();
        prof.task_abort(task_region, task, t);
        self.edge(
            t,
            Event::TaskAbort {
                region: task_region,
                id: task,
            },
        );
        if let Some(tm) = &self.telem {
            tm.task_aborted();
            Self::telem_task_state(tm, prof, t);
        }
        self.telem_tail(EventClass::TaskAbort, t);
    }

    #[inline]
    fn task_switch(&self, resumed: TaskRef) {
        let t = self.now();
        let prof = self.prof();
        let prev = prof.current_task();
        prof.task_switch(resumed, t);
        if prev != resumed {
            self.edge(t, Event::Switch(resumed));
        }
        if let Some(tm) = &self.telem {
            // A redundant switch (already current) is a profiler no-op and
            // must not be counted as a fragment resumption.
            if prev != resumed {
                Self::telem_task_state(tm, prof, t);
            }
        }
        self.telem_tail(EventClass::TaskSwitch, t);
    }

    #[inline]
    fn parameter_begin(&self, param: ParamId, value: i64) {
        let t = self.now();
        self.prof().parameter_begin(param, value, t);
        self.edge(t, Event::ParamBegin { param, value });
        self.telem_tail(EventClass::Param, t);
    }

    #[inline]
    fn parameter_end(&self, param: ParamId) {
        let t = self.now();
        self.prof().parameter_end(param, t);
        self.edge(t, Event::ParamEnd { param });
        self.telem_tail(EventClass::Param, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::NodeKind;
    use pomp::{TaskIdAllocator, VirtualClock};

    fn virtual_monitor() -> (VirtualClock, ProfMonitor<VirtualClock>) {
        let clock = VirtualClock::new();
        let m = ProfMonitor::builder()
            .clock(clock.clone())
            .build()
            .unwrap();
        (clock, m)
    }

    #[test]
    fn monitor_collects_per_thread_snapshots() {
        let (clock, m) = virtual_monitor();
        let par = RegionId(0);
        let work = RegionId(1);
        m.parallel_fork(par, 2);
        let t0 = m.thread_begin(0, 2, par);
        let t1 = m.thread_begin(1, 2, par);
        clock.set(10);
        t0.enter(work);
        clock.set(15);
        t0.exit(work);
        m.thread_end(0, t0);
        clock.set(20);
        m.thread_end(1, t1);
        m.parallel_join(par);

        let p = m.take_profile().unwrap();
        assert_eq!(p.num_threads(), 2);
        assert_eq!(p.threads[0].tid, 0);
        let w = p.threads[0].main.child(NodeKind::Region(work)).unwrap();
        assert_eq!(w.stats.sum_ns, 5);
        assert_eq!(p.threads[1].main.stats.sum_ns, 20);
        // Drained: second take is empty.
        assert_eq!(m.take_profile().unwrap().num_threads(), 0);
    }

    #[test]
    fn monitor_profiles_task_events_with_virtual_time() {
        let (clock, m) = virtual_monitor();
        let ids = TaskIdAllocator::new();
        let (par, task, barrier) = (RegionId(0), RegionId(1), RegionId(2));
        let th = m.thread_begin(0, 1, par);
        let id = ids.alloc();
        clock.set(10);
        th.enter(barrier);
        th.task_begin(task, id);
        clock.set(35);
        th.task_end(task, id);
        clock.set(40);
        th.exit(barrier);
        m.thread_end(0, th);
        let p = m.take_profile().unwrap();
        let snap = &p.threads[0];
        assert_eq!(snap.task_tree(task).unwrap().stats.sum_ns, 25);
        let b = snap.main.child(NodeKind::Region(barrier)).unwrap();
        assert_eq!(b.stats.sum_ns, 30);
        assert_eq!(b.child(NodeKind::Stub(task)).unwrap().stats.sum_ns, 25);
    }

    #[test]
    fn take_profile_sorts_by_tid() {
        let (_clock, m) = virtual_monitor();
        let par = RegionId(0);
        let a = m.thread_begin(3, 4, par);
        let b = m.thread_begin(1, 4, par);
        m.thread_end(3, a);
        m.thread_end(1, b);
        let p = m.take_profile().unwrap();
        assert_eq!(p.threads.iter().map(|t| t.tid).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn take_profile_mid_region_is_a_typed_error() {
        let (_clock, m) = virtual_monitor();
        let par = RegionId(0);
        m.parallel_fork(par, 1);
        let th = m.thread_begin(0, 1, par);
        let err = m.take_profile().unwrap_err();
        assert_eq!(err.live_threads, 1);
        assert_eq!(err.live_regions, 1);
        assert!(err.to_string().contains("mid-measurement"), "{err}");
        m.thread_end(0, th);
        let err = m.take_profile().unwrap_err();
        assert_eq!((err.live_threads, err.live_regions), (0, 1));
        m.parallel_join(par);
        assert_eq!(m.take_profile().unwrap().num_threads(), 1);
    }

    #[test]
    fn edge_recording_captures_differential_stream() {
        let clock = VirtualClock::new();
        let m = ProfMonitor::builder()
            .clock(clock.clone())
            .record_task_edges()
            .build()
            .unwrap();
        assert!(m.records_task_edges());
        let ids = TaskIdAllocator::new();
        let (par, task, create) = (RegionId(0), RegionId(1), RegionId(2));
        let id = ids.alloc();
        m.parallel_fork(par, 1);
        let th = m.thread_begin(0, 1, par);
        clock.set(10);
        th.task_create_begin(create, task, id);
        clock.set(14);
        th.task_create_end(create, id);
        th.task_begin(task, id);
        clock.set(20);
        th.task_end(task, id);
        // Mid-measurement drain is refused, like take_profile.
        assert!(m.take_edge_streams().is_err());
        clock.set(23);
        m.thread_end(0, th);
        m.parallel_join(par);
        let streams = m.take_edge_streams().unwrap();
        assert_eq!(streams.len(), 1);
        let (tid, events) = &streams[0];
        assert_eq!(*tid, 0);
        assert_eq!(
            events.as_slice(),
            &[
                Event::Advance(10),
                Event::CreateBegin {
                    create,
                    task_region: task,
                    id
                },
                Event::Advance(4),
                Event::CreateEnd { create, id },
                Event::TaskBegin { region: task, id },
                Event::Advance(6),
                Event::TaskEnd { region: task, id },
                Event::Advance(3),
            ]
        );
        // Drained: second take is empty, and the profile still collected.
        assert!(m.take_edge_streams().unwrap().is_empty());
        assert_eq!(m.take_profile().unwrap().num_threads(), 1);
    }

    #[test]
    fn edge_recording_off_publishes_nothing() {
        let (clock, m) = virtual_monitor();
        assert!(!m.records_task_edges());
        let th = m.thread_begin(0, 1, RegionId(0));
        clock.set(5);
        th.enter(RegionId(1));
        th.exit(RegionId(1));
        m.thread_end(0, th);
        assert!(m.take_edge_streams().unwrap().is_empty());
    }

    #[test]
    fn builder_validates_once() {
        let err = ProfMonitor::builder().max_depth(0).build().unwrap_err();
        assert_eq!(err.setting(), "max_depth");
        assert!(matches!(err, ConfigError::InvalidValue { value: 0, .. }));
        let err = ProfMonitor::builder().max_live_trees(0).build().unwrap_err();
        assert_eq!(err.setting(), "max_live_trees");
        assert!(err.to_string().contains("max_live_trees"), "{err}");
        assert!(ProfMonitor::builder()
            .max_depth(1)
            .max_live_trees(1)
            .prealloc_nodes(0)
            .build()
            .is_ok());
    }

    #[test]
    fn arenas_recycle_across_regions() {
        let (clock, m) = virtual_monitor();
        let par = RegionId(0);
        let work = RegionId(1);
        for round in 0..3u64 {
            m.parallel_fork(par, 1);
            let th = m.thread_begin(0, 1, par);
            clock.set(round * 100 + 10);
            th.enter(work);
            clock.set(round * 100 + 20);
            th.exit(work);
            m.thread_end(0, th);
            m.parallel_join(par);
        }
        // Exactly one thread ran each region, so exactly one arena
        // circulates through the spare pool.
        assert!(!m.inner.spare_arenas.is_empty());
        let spares = m.inner.spare_arenas.take_all();
        assert_eq!(spares.len(), 1, "one arena recycled, not re-allocated");
        let p = m.take_profile().unwrap();
        assert_eq!(p.num_threads(), 3, "three rounds collected");
    }

    #[test]
    fn shard_merge_preserves_thread_order_at_barrier() {
        // Threads finish in arbitrary (here: reverse) order; the merged
        // profile is still ordered by tid with every shard present.
        let (clock, m) = virtual_monitor();
        let par = RegionId(0);
        m.parallel_fork(par, 4);
        let shards: Vec<_> = (0..4).map(|tid| m.thread_begin(tid, 4, par)).collect();
        clock.set(50);
        for (tid, shard) in shards.into_iter().enumerate().rev() {
            m.thread_end(tid, shard);
        }
        m.parallel_join(par);
        let p = m.take_profile().unwrap();
        assert_eq!(
            p.threads.iter().map(|t| t.tid).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }
}
