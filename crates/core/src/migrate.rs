//! Untied-task migration support (paper Section IV-D1).
//!
//! The paper argues its algorithm "in principle also works for migrating
//! tasks": only the executing thread accesses a task's data, so when a
//! task migrates, its instance data can migrate with it. Because this
//! reproduction keeps one arena per thread (like Score-P's per-thread
//! memory), migration is an explicit ownership transfer: the suspended
//! instance's private tree and paused frame stack are detached into a
//! portable [`DetachedInstance`] and re-attached to the destination
//! thread's profile, where execution resumes via a normal `task_switch`.
//!
//! The `taskrt` runtime never migrates (it makes all tasks tied, the same
//! workaround the paper's instrumentation uses for untied tasks), so this
//! is exercised through event replay — exactly the "if the runtime
//! provided the hooks" scenario of Section IV-D2.

use crate::body::{Frame, TaskBody};
use crate::profiler::ThreadProfile;
use crate::snapshot::SnapNode;
use crate::tree::NodeId;
use pomp::{RegionId, TaskId, TaskRef};

/// A suspended task instance in transit between threads.
#[derive(Clone, Debug)]
pub struct DetachedInstance {
    pub(crate) region: RegionId,
    /// Portable copy of the instance's private tree.
    pub(crate) tree: SnapNode,
    /// Open frames as (path-from-root child indices, accumulated ns),
    /// outermost first.
    pub(crate) stack: Vec<(Vec<usize>, u64)>,
}

impl DetachedInstance {
    /// The task construct this instance belongs to.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// Number of open frames travelling with the instance.
    pub fn open_frames(&self) -> usize {
        self.stack.len()
    }
}

impl ThreadProfile {
    /// Detach the suspended instance `id` for migration to another
    /// thread. The instance must not be current (it must have been
    /// suspended by a `task_switch`). Its arena nodes are released for
    /// reuse.
    ///
    /// # Panics
    /// If `id` is unknown, currently executing, or not paused.
    pub fn detach_instance(&mut self, id: TaskId) -> DetachedInstance {
        assert_ne!(
            self.current_task(),
            TaskRef::Explicit(id),
            "cannot migrate the currently executing task"
        );
        let inst = self
            .instances_mut()
            .remove(&id)
            .expect("detach of unknown task instance");
        assert!(inst.body.is_paused(), "detach of a running task instance");
        let root = inst.body.root;
        let tree = self.snap_public(root);
        let stack = inst
            .body
            .frames()
            .iter()
            .map(|f| (self.path_from(root, f.node()), f.acc()))
            .collect();
        self.arena_mut().release_subtree(root);
        self.dec_live_trees();
        DetachedInstance {
            region: inst.region,
            tree,
            stack,
        }
    }

    /// Attach a migrated instance under id `id`. Resume it with a normal
    /// [`ThreadProfile::task_switch`].
    ///
    /// # Panics
    /// If `id` is already active on this thread.
    pub fn attach_instance(&mut self, id: TaskId, detached: DetachedInstance) {
        assert!(
            !self.instances_ref().contains_key(&id),
            "attach over an active instance"
        );
        let root = self.rebuild_tree(&detached.tree, None);
        let frames: Vec<Frame> = detached
            .stack
            .iter()
            .map(|(path, acc)| {
                let node = self.resolve_path(root, path);
                Frame::rebuilt_paused(node, *acc)
            })
            .collect();
        let body = TaskBody::from_paused_frames(root, frames);
        self.insert_instance(id, detached.region, body);
        self.inc_live_trees();
    }

    /// Child-index path from `root` down to `node`.
    fn path_from(&self, root: NodeId, node: NodeId) -> Vec<usize> {
        let mut rev = Vec::new();
        let mut cur = node;
        while cur != root {
            let parent = self
                .arena_ref()
                .node(cur)
                .parent
                .expect("frame node detached from instance root");
            let idx = self
                .arena_ref()
                .node(parent)
                .children
                .iter()
                .position(|&c| c == cur)
                .expect("child link broken");
            rev.push(idx);
            cur = parent;
        }
        rev.reverse();
        rev
    }

    fn resolve_path(&self, root: NodeId, path: &[usize]) -> NodeId {
        let mut cur = root;
        for &i in path {
            cur = self.arena_ref().node(cur).children[i];
        }
        cur
    }

    fn rebuild_tree(&mut self, snap: &SnapNode, parent: Option<NodeId>) -> NodeId {
        let id = self.arena_mut().alloc(snap.kind, parent);
        self.arena_mut().node_mut(id).stats = snap.stats;
        for c in &snap.children {
            let child = self.rebuild_tree(c, Some(id));
            self.arena_mut().node_mut(id).children.push(child);
        }
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::AssignPolicy;
    use crate::tree::NodeKind;
    use pomp::TaskIdAllocator;

    const PAR: RegionId = RegionId(9500);
    const TASK: RegionId = RegionId(9501);
    const TW: RegionId = RegionId(9502);
    const FOO: RegionId = RegionId(9503);
    const BARRIER: RegionId = RegionId(9504);

    #[test]
    fn migrated_task_resumes_and_merges_on_destination() {
        let ids = TaskIdAllocator::new();
        let id = ids.alloc();
        // Thread A: start the task, run 10 ns in foo, suspend at a
        // taskwait inside foo.
        let mut a = ThreadProfile::new(PAR, 0, AssignPolicy::Executing);
        a.enter(BARRIER, 0);
        a.task_begin(TASK, id, 0);
        a.enter(FOO, 2);
        a.enter(TW, 8);
        a.task_switch(TaskRef::Implicit, 10);
        let detached = a.detach_instance(id);
        assert_eq!(detached.region(), TASK);
        assert_eq!(detached.open_frames(), 3); // task root, foo, taskwait
        a.exit(BARRIER, 11);
        a.finish(12);
        let snap_a = a.snapshot(0);
        // Thread A keeps the fragment in its stub but no task tree (the
        // instance completed elsewhere).
        let bar = snap_a.main.child(NodeKind::Region(BARRIER)).unwrap();
        let stub = bar.child(NodeKind::Stub(TASK)).unwrap();
        assert_eq!(stub.stats.sum_ns, 10);
        assert!(snap_a.task_trees.is_empty());

        // Thread B: attach at its own barrier, resume 100 ns later (its
        // own clock), finish the task.
        let mut b = ThreadProfile::new(PAR, 0, AssignPolicy::Executing);
        b.enter(BARRIER, 0);
        b.attach_instance(id, detached);
        assert_eq!(b.live_instance_trees(), 1);
        b.task_switch(TaskRef::Explicit(id), 100);
        b.exit(TW, 103);
        b.exit(FOO, 105);
        b.task_end(TASK, id, 110);
        b.exit(BARRIER, 112);
        b.finish(112);
        let snap_b = b.snapshot(1);
        // The whole-instance statistics live on the destination thread:
        // 10 ns on A plus 10 ns on B.
        let tree = snap_b.task_tree(TASK).unwrap();
        assert_eq!(tree.stats.samples, 1);
        assert_eq!(tree.stats.sum_ns, 20);
        // foo: 6 on A (2..8 run, wait 8..10 inside tw) + ... recompute:
        // foo entered at 2, paused at 10 => 8; resumed 100, exited 105
        // => 5. total 13.
        let foo = tree.child(NodeKind::Region(FOO)).unwrap();
        assert_eq!(foo.stats.sum_ns, 13);
        let tw = foo.child(NodeKind::Region(TW)).unwrap();
        // tw: 8..10 (2) + 100..103 (3) = 5.
        assert_eq!(tw.stats.sum_ns, 5);
        // B's stub sees the second fragment only.
        let bar_b = snap_b.main.child(NodeKind::Region(BARRIER)).unwrap();
        let stub_b = bar_b.child(NodeKind::Stub(TASK)).unwrap();
        assert_eq!(stub_b.stats.sum_ns, 10);
    }

    #[test]
    fn detach_releases_arena_nodes() {
        let ids = TaskIdAllocator::new();
        let id = ids.alloc();
        let mut a = ThreadProfile::new(PAR, 0, AssignPolicy::Executing);
        a.enter(BARRIER, 0);
        a.task_begin(TASK, id, 0);
        a.enter(FOO, 1);
        a.task_switch(TaskRef::Implicit, 2);
        let live_before = a.live_nodes();
        let _d = a.detach_instance(id);
        assert!(a.live_nodes() < live_before);
        assert_eq!(a.live_instance_trees(), 0);
    }

    #[test]
    #[should_panic(expected = "currently executing")]
    fn detaching_current_task_panics() {
        let ids = TaskIdAllocator::new();
        let id = ids.alloc();
        let mut a = ThreadProfile::new(PAR, 0, AssignPolicy::Executing);
        a.enter(BARRIER, 0);
        a.task_begin(TASK, id, 0);
        let _ = a.detach_instance(id);
    }

    #[test]
    fn round_trip_preserves_partial_statistics() {
        let ids = TaskIdAllocator::new();
        let id = ids.alloc();
        let mut a = ThreadProfile::new(PAR, 0, AssignPolicy::Executing);
        a.enter(BARRIER, 0);
        a.task_begin(TASK, id, 0);
        a.enter(FOO, 1);
        a.exit(FOO, 4); // completed inner region: 3 ns sampled
        a.enter(FOO, 5);
        a.task_switch(TaskRef::Implicit, 7);
        let d = a.detach_instance(id);
        // Re-attach to the same thread (degenerate migration).
        a.attach_instance(id, d);
        a.task_switch(TaskRef::Explicit(id), 10);
        a.exit(FOO, 12);
        a.task_end(TASK, id, 13);
        a.exit(BARRIER, 14);
        a.finish(14);
        let snap = a.snapshot(0);
        let tree = snap.task_tree(TASK).unwrap();
        let foo = tree.child(NodeKind::Region(FOO)).unwrap();
        // First foo 3 ns; second foo 2 (5..7) + 2 (10..12) = 4.
        assert_eq!(foo.stats.visits, 2);
        assert_eq!(foo.stats.sum_ns, 7);
        assert_eq!(foo.stats.min_ns, 3);
        assert_eq!(foo.stats.max_ns, 4);
        // Whole task: 7 (0..7) + 3 (10..13) = 10.
        assert_eq!(tree.stats.sum_ns, 10);
    }
}
