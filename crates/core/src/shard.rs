//! Lock-free hand-off of per-thread measurement shards.
//!
//! The profiler's steady-state event path (enter/exit/switch) is entirely
//! thread-local: each worker owns a measurement shard (its
//! [`crate::ThreadProfile`] plus a cached clock reader) and never touches
//! shared state. Sharing only happens at two points, and both go through
//! the [`HandoffStack`] here instead of a mutex:
//!
//! * **barrier/team-end**: a thread finishing a parallel region publishes
//!   its completed [`crate::ThreadSnapshot`] with a single CAS push;
//! * **collection**: [`crate::ProfMonitor::take_profile`] *swaps* the whole
//!   list out atomically and owns it from then on.
//!
//! The same structure recycles spare [`crate::tree::Arena`]s between
//! regions (a thread beginning a region *steals* a preallocated arena left
//! behind by an earlier region instead of allocating).
//!
//! The stack is a Treiber stack restricted to the operations that avoid
//! the ABA problem without tagged pointers or hazard tracking: nodes are
//! only ever detached *wholesale* (`take_all`/`steal_one` swap the head to
//! null and then own the entire chain), never popped one-by-one from the
//! shared head, so a stale CAS can never re-link a freed node.

use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

struct Slot<T> {
    value: T,
    next: *mut Slot<T>,
}

/// A lock-free multi-producer hand-off stack (see module docs).
pub struct HandoffStack<T> {
    head: AtomicPtr<Slot<T>>,
}

// SAFETY: values are moved in by value and moved out by value; the raw
// pointers only ever reference heap nodes owned by the stack.
unsafe impl<T: Send> Send for HandoffStack<T> {}
unsafe impl<T: Send> Sync for HandoffStack<T> {}

impl<T> Default for HandoffStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> HandoffStack<T> {
    /// Empty stack.
    pub const fn new() -> Self {
        Self {
            head: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// True when nothing is currently published.
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire).is_null()
    }

    /// Publish `value` (lock-free; a single CAS loop).
    pub fn push(&self, value: T) {
        let node = Box::into_raw(Box::new(Slot {
            value,
            next: ptr::null_mut(),
        }));
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // SAFETY: `node` is not yet shared; we own it until the CAS
            // below succeeds.
            unsafe { (*node).next = head };
            match self
                .head
                .compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }

    /// Atomically detach and return everything published so far, newest
    /// first (one `swap`; never blocks pushers).
    pub fn take_all(&self) -> Vec<T> {
        let mut p = self.head.swap(ptr::null_mut(), Ordering::Acquire);
        let mut out = Vec::new();
        while !p.is_null() {
            // SAFETY: the swap transferred ownership of the whole chain to
            // this call; nobody else can reach these nodes.
            let slot = unsafe { Box::from_raw(p) };
            p = slot.next;
            out.push(slot.value);
        }
        out
    }

    /// Steal one value: detach the whole chain, keep its head, and splice
    /// the remainder back. Used for the spare-arena pool where a thread
    /// wants at most one buffer.
    pub fn steal_one(&self) -> Option<T> {
        let chain = self.head.swap(ptr::null_mut(), Ordering::Acquire);
        if chain.is_null() {
            return None;
        }
        // SAFETY: as in `take_all`, the swap gave us the whole chain.
        let slot = unsafe { Box::from_raw(chain) };
        let rest = slot.next;
        if !rest.is_null() {
            self.reattach(rest);
        }
        Some(slot.value)
    }

    /// Splice an owned chain (starting at `chain`) back onto the shared
    /// head. We own every node in the chain, so writing the tail's `next`
    /// is race-free; only the final head CAS is contended.
    fn reattach(&self, chain: *mut Slot<T>) {
        // Find the owned chain's tail.
        let mut tail = chain;
        // SAFETY: the chain is owned; traversal is safe.
        unsafe {
            while !(*tail).next.is_null() {
                tail = (*tail).next;
            }
        }
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // SAFETY: `tail` is still owned by us until the CAS succeeds.
            unsafe { (*tail).next = head };
            match self
                .head
                .compare_exchange_weak(head, chain, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }
}

impl<T> Drop for HandoffStack<T> {
    fn drop(&mut self) {
        drop(self.take_all());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_take_roundtrip_is_lifo() {
        let s = HandoffStack::new();
        assert!(s.is_empty());
        s.push(1);
        s.push(2);
        s.push(3);
        assert!(!s.is_empty());
        assert_eq!(s.take_all(), vec![3, 2, 1]);
        assert!(s.is_empty());
        assert_eq!(s.take_all(), Vec::<i32>::new());
    }

    #[test]
    fn steal_one_keeps_the_rest() {
        let s = HandoffStack::new();
        s.push("a");
        s.push("b");
        s.push("c");
        assert_eq!(s.steal_one(), Some("c"));
        let mut rest = s.take_all();
        rest.sort_unstable();
        assert_eq!(rest, vec!["a", "b"]);
        assert_eq!(s.steal_one(), None);
    }

    #[test]
    fn concurrent_pushes_all_arrive() {
        let s = Arc::new(HandoffStack::new());
        let threads = 8;
        let per = 500;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for i in 0..per {
                        s.push(t * per + i);
                    }
                });
            }
        });
        let mut all = s.take_all();
        all.sort_unstable();
        assert_eq!(all, (0..threads * per).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_steal_and_push_lose_nothing() {
        let s = Arc::new(HandoffStack::new());
        let total = 2000;
        let stolen = std::thread::scope(|scope| {
            let pusher = {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for i in 0..total {
                        s.push(i);
                    }
                })
            };
            let stealer = {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    let mut got = Vec::new();
                    while got.len() < total / 4 {
                        if let Some(v) = s.steal_one() {
                            got.push(v);
                        }
                    }
                    got
                })
            };
            pusher.join().unwrap();
            stealer.join().unwrap()
        });
        let mut all = s.take_all();
        all.extend(stolen);
        all.sort_unstable();
        assert_eq!(all, (0..total).collect::<Vec<_>>());
    }

    #[test]
    fn drop_releases_remaining_values() {
        let marker = Arc::new(());
        {
            let s = HandoffStack::new();
            for _ in 0..10 {
                s.push(Arc::clone(&marker));
            }
        }
        assert_eq!(Arc::strong_count(&marker), 1, "drop leaked nodes");
    }
}
