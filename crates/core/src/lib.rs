//! `taskprof` — a call-path profiler for tied tasks, reproducing the
//! algorithm of *"Profiling of OpenMP Tasks with Score-P"* (Lorenz,
//! Philippen, Schmidl, Wolf — ICPP 2012).
//!
//! # The problem
//!
//! Task constructs break the two assumptions classic call-path profiling
//! rests on: enter/exit events are properly nested per thread, and work
//! executes where the call path says it does. A thread may interleave
//! fragments of many task instances (suspending at scheduling points), and
//! a task may execute far from where it was created — typically inside a
//! barrier.
//!
//! # The algorithm (paper Fig. 12)
//!
//! * Every *active* task instance gets a private call tree and a frame
//!   stack whose timers stop while the instance is suspended, so the task's
//!   statistics describe the task's own execution only.
//! * The implicit task's tree records a *stub node* under each scheduling
//!   point, accounting the time the thread spent executing task fragments
//!   there — splitting, e.g., barrier time into useful task work and
//!   management/idle time.
//! * On completion an instance tree is merged into a per-construct
//!   aggregate tree beside the main tree (min/max/mean over instances fall
//!   out of the merge), and its nodes are recycled, which keeps memory
//!   bounded by the number of *concurrently* active instances.
//!
//! # Entry points
//!
//! * [`ThreadProfile`] — the algorithm itself, driven by explicit
//!   timestamped events (used directly by tests/replay).
//! * [`ProfMonitor`] — adapter implementing [`pomp::Monitor`] with a clock;
//!   hand it to the `taskrt` runtime for real measurements.
//! * [`replay()`] — deterministic event-stream replay under virtual time.
//! * [`Profile`]/[`ThreadSnapshot`]/[`SnapNode`] — analysis-friendly
//!   snapshots consumed by the `cube` crate.

#![warn(missing_docs)]

mod body;
pub mod calibrate;
pub mod metrics;
pub mod migrate;
pub mod monitor;
pub mod profiler;
pub mod replay;
pub mod shard;
pub mod snapshot;
pub mod tree;

pub use calibrate::{calibrate, Calibration};
pub use metrics::Stats;
pub use migrate::DetachedInstance;
pub use monitor::{
    ConfigError, ProfMonitor, ProfMonitorBuilder, ProfThread, SessionActiveError,
    DEFAULT_PREALLOC_NODES,
};
pub use shard::HandoffStack;
pub use profiler::{AssignPolicy, ThreadProfile};
pub use replay::{replay, Event, Replayer, TeamReplayer};
pub use snapshot::{Profile, SnapNode, ThreadSnapshot};
pub use tree::NodeKind;
pub use taskprof_telemetry::{TelemetryConfig, TelemetryCore, TelemetrySnapshot};
