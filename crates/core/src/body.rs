//! Per-task frame stacks with suspend/resume time accounting.
//!
//! Each *active* task instance (and the implicit task) owns a stack of open
//! region frames. The paper's key accounting rule (Section IV-B3): "time
//! measurements for a task must be stopped/resumed when the task is
//! suspended/resumed", so that a task's tree contains statistics about the
//! execution of the task itself only. A frame therefore accumulates elapsed
//! time in `acc` across pause/resume cycles instead of keeping a single
//! start timestamp.

use crate::tree::NodeId;

/// One open region on a task's call path.
#[derive(Clone, Copy, Debug)]
pub struct Frame {
    /// The call-tree node this frame is timing.
    pub node: NodeId,
    /// Time accumulated in completed running intervals, ns.
    acc: u64,
    /// Start of the current running interval (meaningless while paused).
    since: u64,
}

/// The dynamic execution state of one task: its tree root and open frames.
#[derive(Debug)]
pub struct TaskBody {
    /// Root node of this task's (sub)tree.
    pub root: NodeId,
    stack: Vec<Frame>,
    paused: bool,
}

impl Frame {
    /// The frame's call-tree node.
    pub(crate) fn node(&self) -> NodeId {
        self.node
    }

    /// Accumulated running time (complete while the task is paused).
    pub(crate) fn acc(&self) -> u64 {
        self.acc
    }

    /// Rebuild a paused frame (task migration): `acc` holds the full
    /// accumulated time, `since` is irrelevant until the next resume.
    pub(crate) fn rebuilt_paused(node: NodeId, acc: u64) -> Self {
        Self { node, acc, since: 0 }
    }
}

impl TaskBody {
    /// A body positioned at `root` with no open frames.
    pub fn new(root: NodeId) -> Self {
        Self {
            root,
            stack: Vec::new(),
            paused: false,
        }
    }

    /// The open frames, innermost last.
    pub(crate) fn frames(&self) -> &[Frame] {
        &self.stack
    }

    /// Rebuild a *paused* body from migrated parts.
    pub(crate) fn from_paused_frames(root: NodeId, stack: Vec<Frame>) -> Self {
        Self {
            root,
            stack,
            paused: true,
        }
    }

    /// The node new children are created under: the innermost open frame,
    /// or the root when no frame is open.
    #[inline]
    pub fn current_node(&self) -> NodeId {
        self.stack.last().map_or(self.root, |f| f.node)
    }

    /// Number of open frames.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// True while the owning task is suspended.
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// Open a frame for `node` at time `t`.
    pub fn push(&mut self, node: NodeId, t: u64) {
        debug_assert!(!self.paused, "push on a suspended task");
        self.stack.push(Frame {
            node,
            acc: 0,
            since: t,
        });
    }

    /// Close the innermost frame at time `t`; returns its node and the
    /// inclusive duration *excluding* suspended intervals.
    pub fn pop(&mut self, t: u64) -> (NodeId, u64) {
        debug_assert!(!self.paused, "pop on a suspended task");
        let f = self.stack.pop().expect("exit without matching enter");
        (f.node, f.acc + (t - f.since))
    }

    /// Suspend: stop the timers of all open frames (paper Fig. 12
    /// `TaskSwitch`, "stop time measurement on all open regions").
    pub fn pause(&mut self, t: u64) {
        debug_assert!(!self.paused, "double pause");
        for f in &mut self.stack {
            f.acc += t - f.since;
        }
        self.paused = true;
    }

    /// Resume: restart the timers of all open frames.
    pub fn resume(&mut self, t: u64) {
        debug_assert!(self.paused, "resume without pause");
        for f in &mut self.stack {
            f.since = t;
        }
        self.paused = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{Arena, NodeKind};
    use pomp::RegionId;

    fn arena_with_root() -> (Arena, NodeId) {
        let mut a = Arena::new();
        let r = a.alloc(NodeKind::Region(RegionId(0)), None);
        (a, r)
    }

    #[test]
    fn push_pop_measures_duration() {
        let (mut a, root) = arena_with_root();
        let child = a.child_of(root, NodeKind::Region(RegionId(1)));
        let mut b = TaskBody::new(root);
        assert_eq!(b.current_node(), root);
        b.push(child, 10);
        assert_eq!(b.current_node(), child);
        let (n, d) = b.pop(25);
        assert_eq!(n, child);
        assert_eq!(d, 15);
        assert_eq!(b.current_node(), root);
    }

    #[test]
    fn pause_excludes_suspended_time() {
        let (mut a, root) = arena_with_root();
        let child = a.child_of(root, NodeKind::Region(RegionId(1)));
        let mut b = TaskBody::new(root);
        b.push(child, 0);
        b.pause(10); // ran 10
        b.resume(50); // 40 ns suspended
        let (_, d) = b.pop(65); // ran 15 more
        assert_eq!(d, 25);
    }

    #[test]
    fn pause_covers_whole_stack() {
        let (mut a, root) = arena_with_root();
        let c1 = a.child_of(root, NodeKind::Region(RegionId(1)));
        let c2 = a.child_of(c1, NodeKind::Region(RegionId(2)));
        let mut b = TaskBody::new(root);
        b.push(c1, 0);
        b.push(c2, 5);
        b.pause(10);
        b.resume(100);
        let (_, d2) = b.pop(110);
        assert_eq!(d2, 15); // 5..10 plus 100..110
        let (_, d1) = b.pop(120);
        assert_eq!(d1, 30); // 0..10 plus 100..120
    }

    #[test]
    fn multiple_pause_resume_cycles_accumulate() {
        let (mut a, root) = arena_with_root();
        let c = a.child_of(root, NodeKind::Region(RegionId(1)));
        let mut b = TaskBody::new(root);
        b.push(c, 0);
        for k in 0..5u64 {
            b.pause(k * 100 + 10);
            b.resume((k + 1) * 100);
        }
        // Each cycle runs 10 ns then sleeps 90: intervals [0,10],[100,110],...
        let (_, d) = b.pop(510);
        assert_eq!(d, 5 * 10 + 10);
    }

    #[test]
    fn zero_duration_fragments_are_fine() {
        let (mut a, root) = arena_with_root();
        let c = a.child_of(root, NodeKind::Region(RegionId(1)));
        let mut b = TaskBody::new(root);
        b.push(c, 7);
        b.pause(7);
        b.resume(7);
        let (_, d) = b.pop(7);
        assert_eq!(d, 0);
    }

    #[test]
    #[should_panic(expected = "exit without matching enter")]
    fn pop_on_empty_stack_panics() {
        let (_a, root) = arena_with_root();
        let mut b = TaskBody::new(root);
        b.pop(0);
    }
}
