//! Resilient auto-export of finished profiles into a profile repository.
//!
//! [`MeasurementSession::finish`](crate::MeasurementSession::finish) hands
//! the merged profile to [`export_profile`], which routes it by
//! [`ExportTarget`]:
//!
//! * **Directory** — append into a local `profstore` segment directory.
//!   The store's own crash-safety (CRC-framed records, scan-and-truncate
//!   recovery) applies; nothing else can go wrong short of the disk.
//! * **Server** — ingest over TCP into a `profserve` daemon. The network
//!   and the daemon can both fail, so this arm is governed by an
//!   [`ExportPolicy`]: every transport phase carries a deadline, transient
//!   failures are retried under bounded exponential backoff with
//!   deterministic (seeded) jitter, and when the daemon stays unreachable
//!   past the budget the profile degrades to a local **spool directory**
//!   instead of being dropped. Spooled profiles are re-delivered by the
//!   next successful export from the same policy (drain-on-next-success)
//!   or explicitly via [`drain_spool`] / `taskprof-cli drain`.
//!
//! The contract `finish()` relies on: the export path never blocks
//! (much) past [`ExportPolicy::deadline`], and with a spool configured it
//! never drops a profile — the worst case is a frame file on local disk.
//!
//! Spool files are single CRC-framed `profstore` records
//! (`len | payload | crc32`, the segment frame format without the
//! segment magic), so a truncated or bit-flipped spool file is detected
//! on drain and quarantined with a `.bad` suffix rather than re-sent or
//! silently skipped.

use profserve::{
    ClientError, ClientTimeouts, ErrorKind, IngestReceipt, ProfilePayload, Record, WireProtocol,
};
use profstore::{crc::crc32, decode_record, encode_record, RunMeta};
use simsched::SplitMix64;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use taskprof::Profile;
use taskprof_telemetry::export_counters;

/// Where a finished session's profile is exported on
/// [`MeasurementSession::finish`](crate::MeasurementSession::finish).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExportTarget {
    /// Append directly into a `profstore` segment directory (opened — or
    /// created — on export).
    Directory(PathBuf),
    /// Ingest over TCP into a running `profserve` daemon at this address.
    Server(String),
}

/// Syntactic `host:port` check for the server/directory decision. A
/// plain `SocketAddr` parse is not enough: hostnames (`localhost:7979`)
/// never parse as socket addresses even though [`profserve::Client`]
/// resolves them fine via `ToSocketAddrs` — routing them to a directory
/// would silently create a local store literally named `localhost:7979`.
fn looks_like_host_port(s: &str) -> bool {
    if s.parse::<std::net::SocketAddr>().is_ok() {
        return true;
    }
    if s.contains('/') || s.contains('\\') {
        return false;
    }
    match s.rsplit_once(':') {
        Some((host, port)) => {
            !host.is_empty() && !host.contains(':') && port.parse::<u16>().is_ok()
        }
        None => false,
    }
}

impl From<&str> for ExportTarget {
    /// Anything shaped like `host:port` (socket address or resolvable
    /// hostname, no path separators) exports to a server; anything else
    /// is treated as a store directory. For a directory whose name
    /// happens to look like `host:port`, pick
    /// [`ExportTarget::Directory`] explicitly.
    fn from(s: &str) -> Self {
        if looks_like_host_port(s) {
            ExportTarget::Server(s.to_string())
        } else {
            ExportTarget::Directory(PathBuf::from(s))
        }
    }
}

impl From<PathBuf> for ExportTarget {
    fn from(p: PathBuf) -> Self {
        ExportTarget::Directory(p)
    }
}

impl From<&Path> for ExportTarget {
    fn from(p: &Path) -> Self {
        ExportTarget::Directory(p.to_path_buf())
    }
}

/// Delivery policy for [`ExportTarget::Server`]: deadlines, retry
/// shape, and the optional spool fallback.
///
/// The default is tuned for `finish()` on an interactive run: a 2 s
/// total budget, three attempts with 50 ms base backoff, and **no**
/// spool (an unreachable daemon surfaces as
/// [`ExportError::Client`] exactly as before). Configure a spool
/// directory with [`SessionBuilder::export_spool`](crate::SessionBuilder::export_spool)
/// to turn failures into durable local frames instead.
#[derive(Clone, Debug)]
pub struct ExportPolicy {
    /// Total wall-clock budget for the export (connect + send + retries
    /// + backoff sleeps). `finish()` never blocks much past this.
    pub deadline: Duration,
    /// Per-attempt TCP connect deadline (clamped to the remaining
    /// budget).
    pub connect_timeout: Duration,
    /// Per-attempt read/write deadline (clamped to the remaining
    /// budget).
    pub io_timeout: Duration,
    /// Maximum delivery attempts (at least 1).
    pub max_attempts: u32,
    /// Backoff before retry `n` is `base_backoff * 2^(n-1)` plus jitter
    /// in `[0, base_backoff/2)`, capped by the remaining budget.
    pub base_backoff: Duration,
    /// Seed for the deterministic jitter stream — two exports with the
    /// same seed and failure pattern sleep identical durations.
    pub jitter_seed: u64,
    /// Degrade to this spool directory when the daemon stays
    /// unreachable; `None` (default) means a failed export is reported
    /// as an error instead.
    pub spool_dir: Option<PathBuf>,
    /// Protocol to speak to the daemon. The default
    /// ([`WireProtocol::Auto`]) negotiates TPF1 binary frames and falls
    /// back to JSON lines; spooled frames forward their record payloads
    /// without a text re-encode when the connection is binary.
    pub wire_protocol: WireProtocol,
    /// Shared secret presented in the connection `HELLO` when the
    /// daemon requires authentication (`None` for open daemons).
    pub auth: Option<String>,
}

impl Default for ExportPolicy {
    fn default() -> Self {
        Self {
            deadline: Duration::from_secs(2),
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_secs(1),
            max_attempts: 3,
            base_backoff: Duration::from_millis(50),
            jitter_seed: 0x7a5c_f00d,
            spool_dir: None,
            wire_protocol: WireProtocol::Auto,
            auth: None,
        }
    }
}

impl ExportPolicy {
    /// Policy with a spool fallback at `dir` and defaults elsewhere.
    pub fn with_spool(dir: impl Into<PathBuf>) -> Self {
        Self {
            spool_dir: Some(dir.into()),
            ..Self::default()
        }
    }
}

/// Why an export failed (the measurement itself is unaffected — the
/// profile is still in the report).
#[derive(Debug)]
pub enum ExportError {
    /// Writing into a local store directory failed.
    Store(profstore::StoreError),
    /// Talking to a `profserve` daemon failed (after every configured
    /// attempt, when the target is a server).
    Client(profserve::ClientError),
    /// The daemon was unreachable *and* writing the spool fallback
    /// failed — the profile truly could not be persisted anywhere.
    Spool(std::io::Error),
}

impl std::fmt::Display for ExportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExportError::Store(e) => write!(f, "store export: {e}"),
            ExportError::Client(e) => write!(f, "server export: {e}"),
            ExportError::Spool(e) => write!(f, "spool fallback: {e}"),
        }
    }
}

impl std::error::Error for ExportError {}

/// Acknowledgement of one export that persisted the profile somewhere —
/// in the repository (`run_id` is `Some`) or in the local spool
/// (`spooled` is true and `spool_path` names the frame file).
#[derive(Clone, Debug)]
pub struct ExportReceipt {
    /// Run id the repository assigned; `None` when the profile was
    /// spooled instead (the id is assigned on drain).
    pub run_id: Option<u64>,
    /// Persisted size in bytes (encoded record, or spool frame file).
    pub bytes: u64,
    /// Where the profile went.
    pub target: ExportTarget,
    /// Delivery attempts made (1 = first try succeeded).
    pub attempts: u32,
    /// True when the profile degraded to the local spool.
    pub spooled: bool,
    /// The spool frame file, when `spooled`.
    pub spool_path: Option<PathBuf>,
    /// Previously spooled profiles this export drained to the daemon
    /// (drain-on-next-success).
    pub drained: u64,
}

/// Outcome of draining a spool directory via [`drain_spool`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Frames delivered to the daemon and deleted locally.
    pub delivered: u64,
    /// Frames quarantined with a `.bad` suffix (corrupt, or refused by
    /// the daemon as malformed).
    pub quarantined: u64,
    /// Frames still spooled (daemon unreachable or read-only).
    pub remaining: u64,
}

#[derive(Clone, Debug)]
pub(crate) struct ExportPlan {
    pub(crate) target: ExportTarget,
    pub(crate) benchmark: String,
    pub(crate) threads: u32,
    pub(crate) policy: ExportPolicy,
}

fn wall_clock_ns() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

/// Only transport failures are worth retrying or spooling over: the
/// daemon was never (successfully) reached. A typed server error or a
/// protocol violation means the daemon *did* answer — retrying would
/// re-send a request the server already rejected.
fn is_transport(e: &ClientError) -> bool {
    matches!(e, ClientError::Io(_))
}

/// Timeouts must never be `Some(0)` — `set_read_timeout` rejects a zero
/// duration — so clamp to the remaining budget but keep a floor.
fn clamp_timeout(configured: Duration, remaining: Duration) -> Option<Duration> {
    Some(configured.min(remaining).max(Duration::from_millis(1)))
}

/// One delivery campaign against the daemon: bounded attempts, bounded
/// backoff, everything capped by the policy deadline. Returns the ack
/// and the attempt count, or the last error and the attempt count.
fn deliver_to_server(
    addr: &str,
    record: &Record,
    policy: &ExportPolicy,
) -> Result<(IngestReceipt, u32), (ClientError, u32)> {
    let start = Instant::now();
    let max_attempts = policy.max_attempts.max(1);
    let mut jitter = SplitMix64::new(policy.jitter_seed);
    let mut attempts = 0u32;
    let mut last_err: Option<ClientError> = None;
    while attempts < max_attempts {
        let remaining = policy.deadline.saturating_sub(start.elapsed());
        if attempts > 0 && remaining.is_zero() {
            break;
        }
        attempts += 1;
        if attempts > 1 {
            export_counters().retry(1);
        }
        let timeouts = ClientTimeouts {
            connect: clamp_timeout(policy.connect_timeout, remaining),
            read: clamp_timeout(policy.io_timeout, remaining),
            write: clamp_timeout(policy.io_timeout, remaining),
        };
        let result = profserve::Client::connect_proto_auth(
            addr,
            policy.wire_protocol,
            timeouts,
            policy.auth.as_deref(),
        )
        .and_then(|mut client| client.ingest_record(record));
        match result {
            Ok(receipt) => return Ok((receipt, attempts)),
            Err(e) if is_transport(&e) && attempts < max_attempts => {
                last_err = Some(e);
                let exp = policy
                    .base_backoff
                    .saturating_mul(1u32 << (attempts - 1).min(16));
                let half = policy.base_backoff.as_nanos() as u64 / 2;
                let jitter_ns = if half == 0 {
                    0
                } else {
                    jitter.next_u64() % half
                };
                let backoff = exp + Duration::from_nanos(jitter_ns);
                let room = policy.deadline.saturating_sub(start.elapsed());
                let sleep = backoff.min(room);
                if !sleep.is_zero() {
                    std::thread::sleep(sleep);
                }
            }
            Err(e) => return Err((e, attempts)),
        }
    }
    let err = last_err.unwrap_or_else(|| {
        ClientError::Io(std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            "export deadline exhausted before any attempt completed",
        ))
    });
    Err((err, attempts))
}

/// Process-wide sequence so two sessions spooling in the same
/// nanosecond still get distinct file names.
fn next_spool_seq() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    SEQ.fetch_add(1, Ordering::Relaxed)
}

/// Write one profile as a CRC-framed record into `dir`, atomically
/// (tmp + rename). Returns the frame path.
///
/// The frame's embedded `run_id` is 0 — the repository assigns the real
/// id when the frame is drained; spooled frames are pre-identity.
pub fn spool_profile(
    dir: &Path,
    benchmark: &str,
    threads: u32,
    timestamp_ns: u64,
    profile: &Profile,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let meta = RunMeta {
        run_id: 0,
        benchmark: benchmark.to_string(),
        threads,
        timestamp_ns,
    };
    let payload = encode_record(&meta, profile);
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    let name = format!(
        "spool-{timestamp_ns:020}-{:08}-{:06}.frame",
        std::process::id(),
        next_spool_seq()
    );
    let final_path = dir.join(&name);
    let tmp_path = dir.join(format!("{name}.tmp"));
    std::fs::write(&tmp_path, &frame)?;
    std::fs::rename(&tmp_path, &final_path)?;
    Ok(final_path)
}

/// Parse one spool frame file back into its record, or say why not. The
/// returned payload bytes are the store record payload verbatim, so a
/// binary drain can forward them without re-encoding.
fn parse_spool_frame(bytes: &[u8]) -> Result<(RunMeta, Profile, Vec<u8>), String> {
    if bytes.len() < 8 {
        return Err("frame shorter than header + trailer".to_string());
    }
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    if bytes.len() != len + 8 {
        return Err(format!(
            "frame length {} does not match header ({} + 8)",
            bytes.len(),
            len
        ));
    }
    let payload = &bytes[4..4 + len];
    let stored_crc = u32::from_le_bytes([
        bytes[4 + len],
        bytes[5 + len],
        bytes[6 + len],
        bytes[7 + len],
    ]);
    if crc32(payload) != stored_crc {
        return Err("frame crc mismatch".to_string());
    }
    decode_record(payload)
        .map(|(meta, profile)| (meta, profile, payload.to_vec()))
        .map_err(|e| format!("record decode: {e}"))
}

/// Spool frame files in `dir`, oldest first (names sort by timestamp).
fn list_spool_frames(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut frames: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.extension().map(|x| x == "frame").unwrap_or(false)
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .map(|n| n.starts_with("spool-"))
                    .unwrap_or(false)
        })
        .collect();
    frames.sort();
    Ok(frames)
}

/// Frames per `INGEST_BATCH` during a drain — enough to amortize the
/// round trip, small enough that one batch is never a huge request.
const DRAIN_BATCH: usize = 32;

fn quarantine_frame(path: &Path, report: &mut DrainReport) {
    let bad = path.with_extension("frame.bad");
    let _ = std::fs::rename(path, &bad);
    report.quarantined += 1;
}

/// How many records of a failed batch the daemon stored before halting.
/// The server's mid-batch `read_only` error reports its durable prefix
/// as `"(N of M batch records stored)"`; anything unparsable counts as
/// zero, which only errs toward re-sending (never toward dropping).
fn stored_prefix_from_message(message: &str) -> u64 {
    message
        .rsplit_once(" batch records stored)")
        .and_then(|(head, _)| head.rsplit_once('('))
        .and_then(|(_, tail)| tail.split_once(" of "))
        .and_then(|(n, _)| n.trim().parse::<u64>().ok())
        .unwrap_or(0)
}

/// Deliver every spooled frame in `dir` to the daemon at `addr`, in
/// batches of [`DRAIN_BATCH`] (one acknowledgement per batch — on a
/// binary connection the frames' record payloads are forwarded without a
/// text re-encode).
///
/// Exactly-once discipline: a frame is deleted only *after* the daemon
/// acks it, so a crash mid-drain re-sends at most the un-acked frames
/// and never loses an acked one. When a batch fails mid-way (`ENOSPC`
/// read-only degradation) the daemon reports its durable prefix and
/// exactly those frames are deleted. A batch the daemon refuses outright
/// is replayed frame by frame to isolate the rejects, which are
/// quarantined with a `.bad` suffix — like corrupt frames (truncation,
/// bit flips, undecodable records), which never travel at all. A
/// transport failure or a read-only daemon stops the drain with the rest
/// counted as `remaining`.
pub fn drain_spool(dir: &Path, addr: &str, policy: &ExportPolicy) -> DrainReport {
    let mut report = DrainReport::default();
    let frames = match list_spool_frames(dir) {
        Ok(f) => f,
        Err(_) => return report,
    };
    if frames.is_empty() {
        return report;
    }
    let timeouts = ClientTimeouts {
        connect: Some(policy.connect_timeout.max(Duration::from_millis(1))),
        read: Some(policy.io_timeout.max(Duration::from_millis(1))),
        write: Some(policy.io_timeout.max(Duration::from_millis(1))),
    };
    let mut client = match profserve::Client::connect_proto_auth(
        addr,
        policy.wire_protocol,
        timeouts,
        policy.auth.as_deref(),
    ) {
        Ok(c) => c,
        Err(_) => {
            report.remaining = frames.len() as u64;
            return report;
        }
    };

    // Validate locally first: corrupt frames are quarantined and never
    // put on the wire.
    let mut pending: Vec<(&PathBuf, Record)> = Vec::new();
    for path in &frames {
        let parsed = std::fs::read(path)
            .map_err(|e| e.to_string())
            .and_then(|bytes| parse_spool_frame(&bytes));
        match parsed {
            Ok((meta, _profile, payload)) => pending.push((
                path,
                Record {
                    benchmark: meta.benchmark,
                    threads: meta.threads,
                    timestamp_ns: Some(meta.timestamp_ns),
                    profile: ProfilePayload::Record(payload),
                },
            )),
            Err(_) => quarantine_frame(path, &mut report),
        }
    }

    let total = pending.len();
    let mut next = 0;
    let mut halted = false;
    while next < total && !halted {
        let end = (next + DRAIN_BATCH).min(total);
        let chunk = &pending[next..end];
        let outcome = if chunk.len() == 1 {
            client.ingest_record(&chunk[0].1)
        } else {
            let records: Vec<Record> = chunk.iter().map(|(_, r)| r.clone()).collect();
            client.ingest_batch(&records)
        };
        match outcome {
            Ok(_) => {
                for (path, _) in chunk {
                    let _ = std::fs::remove_file(path);
                    report.delivered += 1;
                }
                next = end;
            }
            Err(ClientError::Server {
                kind: ErrorKind::ReadOnly,
                message,
            }) => {
                // Mid-batch ENOSPC: the daemon stored a durable prefix
                // before degrading; delete exactly that prefix so acked
                // frames are never re-sent as duplicates.
                let stored = stored_prefix_from_message(&message).min(chunk.len() as u64) as usize;
                for (path, _) in &chunk[..stored] {
                    let _ = std::fs::remove_file(path);
                    report.delivered += 1;
                }
                next += stored;
                halted = true;
            }
            Err(ClientError::Server { .. }) => {
                // The daemon refused the whole batch without storing
                // anything; replay frame by frame to isolate the rejects.
                let mut k = next;
                while k < end {
                    let (path, record) = &pending[k];
                    match client.ingest_record(record) {
                        Ok(_) => {
                            let _ = std::fs::remove_file(path);
                            report.delivered += 1;
                            k += 1;
                        }
                        Err(ClientError::Server {
                            kind: ErrorKind::ReadOnly,
                            ..
                        }) => {
                            halted = true;
                            break;
                        }
                        Err(ClientError::Server { .. }) => {
                            // Refused individually; it will be refused
                            // tomorrow too.
                            quarantine_frame(path, &mut report);
                            k += 1;
                        }
                        Err(_) => {
                            halted = true;
                            break;
                        }
                    }
                }
                next = k;
            }
            Err(_) => {
                // Transport gone: keep the chunk and everything after it
                // for a later drain.
                halted = true;
            }
        }
    }
    report.remaining += (total - next) as u64;
    if report.delivered > 0 {
        export_counters().drain(report.delivered);
    }
    report
}

pub(crate) fn export_profile(
    plan: &ExportPlan,
    profile: &Profile,
) -> Result<ExportReceipt, ExportError> {
    match &plan.target {
        ExportTarget::Directory(dir) => {
            let mut store = profstore::ProfileStore::open(dir).map_err(ExportError::Store)?;
            let receipt = store
                .ingest(&plan.benchmark, plan.threads, wall_clock_ns(), profile)
                .map_err(ExportError::Store)?;
            Ok(ExportReceipt {
                run_id: Some(receipt.run_id),
                bytes: receipt.bytes,
                target: plan.target.clone(),
                attempts: 1,
                spooled: false,
                spool_path: None,
                drained: 0,
            })
        }
        ExportTarget::Server(addr) => {
            let timestamp_ns = wall_clock_ns();
            // The compact record payload travels either way: a binary
            // connection forwards it verbatim; a JSON fallback re-renders
            // it as text inside the codec.
            let record =
                Record::from_profile(&plan.benchmark, plan.threads, Some(timestamp_ns), profile);
            match deliver_to_server(addr, &record, &plan.policy) {
                Ok((ack, attempts)) => {
                    let drained = match &plan.policy.spool_dir {
                        Some(dir) if dir.is_dir() => drain_spool(dir, addr, &plan.policy).delivered,
                        _ => 0,
                    };
                    Ok(ExportReceipt {
                        run_id: Some(ack.run_id()),
                        bytes: ack.bytes,
                        target: plan.target.clone(),
                        attempts,
                        spooled: false,
                        spool_path: None,
                        drained,
                    })
                }
                Err((err, attempts)) => match &plan.policy.spool_dir {
                    Some(dir) if is_transport(&err) => {
                        let path = spool_profile(
                            dir,
                            &plan.benchmark,
                            plan.threads,
                            timestamp_ns,
                            profile,
                        )
                        .map_err(ExportError::Spool)?;
                        export_counters().spool();
                        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                        Ok(ExportReceipt {
                            run_id: None,
                            bytes,
                            target: plan.target.clone(),
                            attempts,
                            spooled: true,
                            spool_path: Some(path),
                            drained: 0,
                        })
                    }
                    _ => Err(ExportError::Client(err)),
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_port_routing_still_holds() {
        assert!(matches!(
            ExportTarget::from("localhost:7979"),
            ExportTarget::Server(_)
        ));
        assert!(matches!(
            ExportTarget::from("profiles/store"),
            ExportTarget::Directory(_)
        ));
    }

    #[test]
    fn spool_frame_round_trips() {
        let dir = std::env::temp_dir().join(format!(
            "taskprof-spool-rt-{}-{}",
            std::process::id(),
            next_spool_seq()
        ));
        let profile = Profile::default();
        let path = spool_profile(&dir, "bench", 4, 123, &profile).expect("spool");
        let bytes = std::fs::read(&path).expect("read");
        let (meta, decoded, payload) = parse_spool_frame(&bytes).expect("parse");
        assert!(!payload.is_empty());
        assert_eq!(meta.benchmark, "bench");
        assert_eq!(meta.threads, 4);
        assert_eq!(meta.timestamp_ns, 123);
        assert_eq!(meta.run_id, 0);
        assert_eq!(decoded.num_threads(), profile.num_threads());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_frames_are_detected_not_panicked() {
        assert!(parse_spool_frame(&[]).is_err());
        assert!(parse_spool_frame(&[1, 0, 0, 0, 9]).is_err());
        let dir = std::env::temp_dir().join(format!(
            "taskprof-spool-flip-{}-{}",
            std::process::id(),
            next_spool_seq()
        ));
        let path = spool_profile(&dir, "b", 1, 7, &Profile::default()).expect("spool");
        let mut bytes = std::fs::read(&path).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(
            parse_spool_frame(&bytes).is_err(),
            "bit flip must be caught"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deadline_bounds_the_whole_campaign() {
        // 127.0.0.1:1 refuses instantly; with retries + backoff the
        // campaign must still respect the (tiny) deadline and report a
        // transport error.
        let policy = ExportPolicy {
            deadline: Duration::from_millis(200),
            max_attempts: 50,
            base_backoff: Duration::from_millis(20),
            ..ExportPolicy::default()
        };
        let start = Instant::now();
        let record = Record::from_text("b", 1, Some(0), "");
        let err = deliver_to_server("127.0.0.1:1", &record, &policy);
        assert!(err.is_err());
        let (e, attempts) = err.err().unwrap();
        assert!(is_transport(&e), "got {e}");
        assert!(attempts >= 2, "refused connects should be retried");
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "campaign overran: {:?}",
            start.elapsed()
        );
    }
}
