//! `taskprof-session` — one composable entry point for measurement.
//!
//! A [`MeasurementSession`] bundles everything a profiled run needs — the
//! thread team, the parallel construct, and the monitor stack — behind a
//! builder:
//!
//! ```
//! use taskprof_session::MeasurementSession;
//!
//! let session = MeasurementSession::builder("demo")
//!     .threads(2)
//!     .build()
//!     .unwrap()
//!     .validated();
//! session.run(|_ctx| { /* spawn tasks */ });
//! let report = session.finish();
//! assert_eq!(report.profile.num_threads(), 2);
//! assert!(report.is_clean());
//! ```
//!
//! The monitor stack is assembled *statically*: each combinator
//! ([`MeasurementSession::validated`], [`MeasurementSession::counted`],
//! [`MeasurementSession::filtered`], [`MeasurementSession::observed_by`])
//! changes the session's monitor **type**, so the per-event path
//! monomorphizes — the compiler sees the concrete
//! `ValidatingThread<CountingThread<ProfThread<…>>>` chain and inlines it;
//! there is no `dyn Monitor` dispatch anywhere on the hot path. The
//! [`ProfStack`] trait is how a wrapped stack is walked back down to the
//! sharded [`ProfMonitor`] at [`MeasurementSession::finish`].

#![warn(missing_docs)]

use pomp::{
    ClockSource, CountingMonitor, Diagnostic, EventCounts, FilteredMonitor, Monitor,
    MonotonicClock, RegionFilter, ValidatingMonitor,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use taskprof::{AssignPolicy, ConfigError, ProfMonitor, ProfMonitorBuilder, Profile};
use taskprof_telemetry::{Sampler, TelemetryConfig, TelemetryCore, TelemetrySnapshot};
use taskrt::{ParallelConstruct, ParallelOutcome, TaskCtx, Team};

/// A monitor stack whose innermost layer is the sharded [`ProfMonitor`].
///
/// Implemented by `ProfMonitor` itself and by every wrapper the session
/// combinators produce, so [`MeasurementSession::finish`] can reach the
/// profiler (for the profile) and every validating layer (for
/// diagnostics) regardless of how the stack was composed.
pub trait ProfStack: Monitor {
    /// The clock the innermost profiler measures with.
    type Clock: ClockSource + 'static;

    /// The innermost profiling monitor.
    fn profiler(&self) -> &ProfMonitor<Self::Clock>;

    /// Drain the structured diagnostics of every validating layer in the
    /// stack into `into` (outermost first).
    fn drain_diagnostics(&self, into: &mut Vec<Diagnostic>);
}

impl<C: ClockSource + 'static> ProfStack for ProfMonitor<C> {
    type Clock = C;

    fn profiler(&self) -> &ProfMonitor<C> {
        self
    }

    fn drain_diagnostics(&self, _into: &mut Vec<Diagnostic>) {}
}

impl<M: ProfStack> ProfStack for ValidatingMonitor<M> {
    type Clock = M::Clock;

    fn profiler(&self) -> &ProfMonitor<M::Clock> {
        self.inner().profiler()
    }

    fn drain_diagnostics(&self, into: &mut Vec<Diagnostic>) {
        into.extend(self.take_diagnostics());
        self.inner().drain_diagnostics(into);
    }
}

impl<M: ProfStack> ProfStack for FilteredMonitor<M> {
    type Clock = M::Clock;

    fn profiler(&self) -> &ProfMonitor<M::Clock> {
        self.inner().profiler()
    }

    fn drain_diagnostics(&self, into: &mut Vec<Diagnostic>) {
        self.inner().drain_diagnostics(into);
    }
}

/// A side observer (tracer, counter, …) paired with a profiling stack:
/// the stack lives in the second slot, mirroring `(&observer, &stack)`
/// pair-monitor usage.
impl<A: Monitor, B: ProfStack> ProfStack for (A, B) {
    type Clock = B::Clock;

    fn profiler(&self) -> &ProfMonitor<B::Clock> {
        self.1.profiler()
    }

    fn drain_diagnostics(&self, into: &mut Vec<Diagnostic>) {
        self.1.drain_diagnostics(into);
    }
}

impl<M: ProfStack> ProfStack for &M {
    type Clock = M::Clock;

    fn profiler(&self) -> &ProfMonitor<M::Clock> {
        (**self).profiler()
    }

    fn drain_diagnostics(&self, into: &mut Vec<Diagnostic>) {
        (**self).drain_diagnostics(into);
    }
}

/// A cheap, cloneable handle for polling a session's live telemetry from
/// any thread — including while [`MeasurementSession::run`] is executing
/// on others. Obtain one from [`MeasurementSession::telemetry`] after
/// enabling telemetry on the builder.
#[derive(Clone)]
pub struct SessionTelemetry {
    core: Arc<TelemetryCore>,
    started: Instant,
}

impl std::fmt::Debug for SessionTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionTelemetry")
            .field("elapsed_ns", &self.elapsed_ns())
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

impl SessionTelemetry {
    /// Aggregate the shard counters into one consistent-enough view (see
    /// the `taskprof-telemetry` crate docs for the staleness contract).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.core.snapshot()
    }

    /// Nanoseconds since this handle was created.
    pub fn elapsed_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    /// The configured perturbation sampling period (1-in-N).
    pub fn sample_every(&self) -> u32 {
        self.core.sample_every()
    }

    /// Current counters in the Prometheus text exposition format, ready
    /// to serve from a `/metrics` endpoint.
    pub fn prometheus(&self) -> String {
        taskprof_telemetry::to_prometheus(&self.snapshot())
    }

    /// Current counters as one JSON line, timestamped with
    /// [`SessionTelemetry::elapsed_ns`].
    pub fn jsonl_line(&self) -> String {
        taskprof_telemetry::to_jsonl_line(self.elapsed_ns(), &self.snapshot())
    }

    /// Spawn a background thread snapshotting every `every`; stop it with
    /// [`Sampler::stop`] to collect the series.
    pub fn start_sampler(&self, every: Duration) -> Sampler {
        Sampler::spawn(Arc::clone(&self.core), every)
    }

    /// The shared counter core (for integrations that outlive the
    /// session handle).
    pub fn core(&self) -> Arc<TelemetryCore> {
        Arc::clone(&self.core)
    }
}

pub mod export;

pub use export::{
    drain_spool, spool_profile, DrainReport, ExportError, ExportPolicy, ExportReceipt, ExportTarget,
};
pub use profserve::WireProtocol;

use export::{export_profile, ExportPlan};

/// Everything a finished session measured.
#[derive(Debug)]
pub struct SessionReport {
    /// The merged per-thread profile, sorted by thread id.
    pub profile: Profile,
    /// Structured diagnostics from every validating layer (empty for a
    /// clean event stream).
    pub diagnostics: Vec<Diagnostic>,
    /// Event counters, present when the session was
    /// [`MeasurementSession::counted`].
    pub counts: Option<CountingMonitor>,
    /// Final telemetry counters, present when the session was built with
    /// [`SessionBuilder::telemetry`].
    pub telemetry: Option<TelemetrySnapshot>,
    /// Outcome of the auto-export, present when the session was built with
    /// [`SessionBuilder::export_to`]. A failed export never fails the
    /// measurement — inspect this to find out.
    pub export: Option<Result<ExportReceipt, ExportError>>,
    /// Critical-path (work/span) analysis of the recorded create/join
    /// edges, present when the session was built with
    /// [`SessionBuilder::record_task_edges`].
    pub critpath: Option<critpath::CritPathReport>,
}

impl SessionReport {
    /// True when no validating layer recorded a defect.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The event counters (panics when the session was not `counted()`).
    pub fn counts(&self) -> &EventCounts {
        self.counts
            .as_ref()
            .expect("session was not counted(); no event counts recorded")
            .counts()
    }

    /// The critical-path analysis (panics when the session was not built
    /// with [`SessionBuilder::record_task_edges`]).
    pub fn critpath(&self) -> &critpath::CritPathReport {
        self.critpath
            .as_ref()
            .expect("session was not built with record_task_edges(); no edges recorded")
    }
}

/// A measurement session: team + parallel construct + monitor stack.
///
/// Build one with [`MeasurementSession::builder`], optionally wrap the
/// stack with the combinators, [`MeasurementSession::run`] the parallel
/// region(s), then [`MeasurementSession::finish`] to obtain the
/// [`SessionReport`]. For workloads that drive their own `Team` (e.g.
/// `bots::run_app`), pass [`MeasurementSession::monitor`] as the monitor
/// and still `finish()` here.
pub struct MeasurementSession<M: ProfStack> {
    team: Team,
    construct: ParallelConstruct,
    monitor: M,
    counts: Option<CountingMonitor>,
    export: Option<ExportPlan>,
    sim_spawn_cost: Option<u64>,
}

impl<M: ProfStack> std::fmt::Debug for MeasurementSession<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MeasurementSession")
            .field("threads", &self.team.nthreads())
            .field("counted", &self.counts.is_some())
            .field("profiler", self.monitor.profiler())
            .finish_non_exhaustive()
    }
}

/// Builder for a [`MeasurementSession`]: team shape + profiler settings,
/// validated once in [`SessionBuilder::build`].
pub struct SessionBuilder<C: ClockSource = MonotonicClock> {
    threads: usize,
    unrestricted_taskwait: bool,
    name: String,
    prof: ProfMonitorBuilder<C>,
    policy: Option<Arc<dyn taskrt::SchedulePolicy>>,
    export: Option<ExportTarget>,
    export_policy: ExportPolicy,
    /// Spawn cost the installed simulated scheduler charges per
    /// undeferred creation, so critical-path analysis can carve it back
    /// out of the creator's frame. `None` for real-clock sessions.
    sim_spawn_cost: Option<u64>,
}

impl SessionBuilder<MonotonicClock> {
    fn new(name: &str) -> Self {
        Self {
            threads: 2,
            unrestricted_taskwait: false,
            name: name.to_string(),
            prof: ProfMonitorBuilder::new(),
            policy: None,
            export: None,
            export_policy: ExportPolicy::default(),
            sim_spawn_cost: None,
        }
    }
}

impl<C: ClockSource + 'static> SessionBuilder<C> {
    /// Team size (default 2).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// ABLATION: drop the tied-task scheduling constraint at taskwaits
    /// (see [`Team::unrestricted_taskwait`]).
    pub fn unrestricted_taskwait(mut self) -> Self {
        self.unrestricted_taskwait = true;
        self
    }

    /// Measure with `clock` instead of the real monotonic clock.
    pub fn clock<C2: ClockSource + 'static>(self, clock: C2) -> SessionBuilder<C2> {
        SessionBuilder {
            threads: self.threads,
            unrestricted_taskwait: self.unrestricted_taskwait,
            name: self.name,
            prof: self.prof.clock(clock),
            policy: self.policy,
            export: self.export,
            export_policy: self.export_policy,
            sim_spawn_cost: self.sim_spawn_cost,
        }
    }

    /// Make the whole session deterministic: install a seeded
    /// [`simsched::SimScheduler`] as the team's scheduling policy and its
    /// per-thread virtual clocks as the measurement clock. Two sessions
    /// built with the same seed, threads, and workload produce
    /// byte-identical profiles — see the `simsched` crate for the full
    /// schedule-exploration machinery layered on top of this.
    pub fn deterministic(self, seed: u64) -> SessionBuilder<simsched::SimClock> {
        let sched = Arc::new(simsched::SimScheduler::new(seed));
        let clock = sched.clock().clone();
        let mut b = self.clock(clock);
        b.policy = Some(sched);
        b.sim_spawn_cost = Some(simsched::DEFAULT_SPAWN_COST_NS);
        b
    }

    /// Install an explicit [`taskrt::SchedulePolicy`] on the session's
    /// team (the deterministic scheduler shortcut is
    /// [`SessionBuilder::deterministic`]).
    pub fn schedule_policy(mut self, policy: Arc<dyn taskrt::SchedulePolicy>) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Attribution policy (default [`AssignPolicy::Executing`]).
    pub fn policy(mut self, policy: AssignPolicy) -> Self {
        self.prof = self.prof.policy(policy);
        self
    }

    /// Call-path depth limit per task body.
    pub fn max_depth(mut self, depth: usize) -> Self {
        self.prof = self.prof.max_depth(depth);
        self
    }

    /// Overload-shedding cap on concurrently live instance trees.
    pub fn max_live_trees(mut self, cap: usize) -> Self {
        self.prof = self.prof.max_live_trees(cap);
        self
    }

    /// Arena slots preallocated per thread shard.
    pub fn prealloc_nodes(mut self, nodes: usize) -> Self {
        self.prof = self.prof.prealloc_nodes(nodes);
        self
    }

    /// Enable live telemetry with default settings: lock-free shard
    /// gauges and 1-in-256 perturbation sampling. Poll it with
    /// [`MeasurementSession::telemetry`].
    pub fn telemetry(mut self) -> Self {
        self.prof = self.prof.telemetry();
        self
    }

    /// Enable live telemetry with an explicit configuration.
    pub fn telemetry_config(mut self, config: TelemetryConfig) -> Self {
        self.prof = self.prof.telemetry_config(config);
        self
    }

    /// Record the task create/join edge stream alongside the profile and
    /// run critical-path (work/span) analysis on `finish()`: the report
    /// gains [`SessionReport::critpath`]. Off by default — when off, the
    /// hot path pays one never-taken branch per hook.
    pub fn record_task_edges(mut self) -> Self {
        self.prof = self.prof.record_task_edges();
        self
    }

    /// Auto-export the finished profile into a profile repository: a
    /// `profstore` directory path, or a `host:port` address of a running
    /// `profserve` daemon (a `&str` picks the right one — anything
    /// shaped like `host:port`, hostnames included, goes to the server).
    /// The session name becomes the benchmark key; the outcome lands in
    /// [`SessionReport::export`].
    pub fn export_to(mut self, target: impl Into<ExportTarget>) -> Self {
        self.export = Some(target.into());
        self
    }

    /// Replace the whole server-export [`ExportPolicy`] (deadlines,
    /// retry shape, spool fallback). Only affects
    /// [`ExportTarget::Server`]; directory exports are local appends.
    pub fn export_policy(mut self, policy: ExportPolicy) -> Self {
        self.export_policy = policy;
        self
    }

    /// Total wall-clock budget for the server export on `finish()`
    /// (connects, sends, retries, and backoff sleeps all included).
    pub fn export_deadline(mut self, deadline: Duration) -> Self {
        self.export_policy.deadline = deadline;
        self
    }

    /// Degrade to a local spool directory when the daemon stays
    /// unreachable past the export deadline: the profile lands in `dir`
    /// as a CRC-framed file instead of being dropped, and is delivered
    /// on the next successful export ([`drain_spool`] on success) or by
    /// `taskprof-cli drain`.
    pub fn export_spool(mut self, dir: impl Into<PathBuf>) -> Self {
        self.export_policy.spool_dir = Some(dir.into());
        self
    }

    /// Protocol for server exports: [`WireProtocol::Auto`] (the default)
    /// negotiates TPF1 binary frames and falls back to JSON lines;
    /// `Json`/`Binary` pin one. Only affects [`ExportTarget::Server`].
    pub fn export_protocol(mut self, proto: WireProtocol) -> Self {
        self.export_policy.wire_protocol = proto;
        self
    }

    /// Validate the configuration and assemble the session.
    pub fn build(self) -> Result<MeasurementSession<ProfMonitor<C>>, ConfigError> {
        let mut team = Team::new(self.threads);
        if self.unrestricted_taskwait {
            team = team.unrestricted_taskwait();
        }
        if let Some(policy) = self.policy {
            team = team.with_policy(policy);
        }
        let export = self.export.map(|target| ExportPlan {
            target,
            benchmark: self.name.clone(),
            threads: self.threads as u32,
            policy: self.export_policy.clone(),
        });
        Ok(MeasurementSession {
            team,
            construct: ParallelConstruct::new(&self.name),
            monitor: self.prof.build()?,
            counts: None,
            export,
            sim_spawn_cost: self.sim_spawn_cost,
        })
    }
}

impl MeasurementSession<ProfMonitor<MonotonicClock>> {
    /// Start configuring a session whose parallel construct is registered
    /// under `name`.
    pub fn builder(name: &str) -> SessionBuilder<MonotonicClock> {
        SessionBuilder::new(name)
    }
}

impl<M: ProfStack> MeasurementSession<M> {
    /// Assemble a session from parts — for callers that already own a
    /// monitor stack (the combinators are usually more convenient).
    pub fn from_parts(team: Team, construct: ParallelConstruct, monitor: M) -> Self {
        Self {
            team,
            construct,
            monitor,
            counts: None,
            export: None,
            sim_spawn_cost: None,
        }
    }

    /// The assembled monitor stack — pass this to workloads that drive
    /// their own `Team::parallel` (e.g. `bots::run_app`).
    pub fn monitor(&self) -> &M {
        &self.monitor
    }

    /// The innermost sharded profiler.
    pub fn profiler(&self) -> &ProfMonitor<M::Clock> {
        self.monitor.profiler()
    }

    /// The session's parallel construct.
    pub fn construct(&self) -> &ParallelConstruct {
        &self.construct
    }

    /// The session's team.
    pub fn team(&self) -> &Team {
        &self.team
    }

    /// Live telemetry handle, when the session was built with
    /// [`SessionBuilder::telemetry`]. Clone it into a watcher thread and
    /// poll freely: reads never block the measurement.
    pub fn telemetry(&self) -> Option<SessionTelemetry> {
        self.monitor
            .profiler()
            .telemetry_core()
            .map(|core| SessionTelemetry {
                core,
                started: Instant::now(),
            })
    }

    /// Wrap the stack in a [`ValidatingMonitor`]: the profiler only ever
    /// observes a well-formed event stream; defects become
    /// [`SessionReport::diagnostics`].
    pub fn validated(self) -> MeasurementSession<ValidatingMonitor<M>> {
        MeasurementSession {
            team: self.team,
            construct: self.construct,
            monitor: ValidatingMonitor::new(self.monitor),
            counts: self.counts,
            export: self.export,
            sim_spawn_cost: self.sim_spawn_cost,
        }
    }

    /// Add an event counter to the stack; totals appear in
    /// [`SessionReport::counts`].
    pub fn counted(self) -> MeasurementSession<(CountingMonitor, M)> {
        let counter = CountingMonitor::new();
        MeasurementSession {
            team: self.team,
            construct: self.construct,
            counts: Some(counter.clone()),
            monitor: (counter, self.monitor),
            export: self.export,
            sim_spawn_cost: self.sim_spawn_cost,
        }
    }

    /// Wrap the stack in a [`FilteredMonitor`] suppressing enter/exit for
    /// regions rejected by `filter` (Score-P's runtime filtering).
    pub fn filtered(self, filter: impl RegionFilter) -> MeasurementSession<FilteredMonitor<M>> {
        MeasurementSession {
            team: self.team,
            construct: self.construct,
            monitor: FilteredMonitor::new(self.monitor, filter),
            counts: self.counts,
            export: self.export,
            sim_spawn_cost: self.sim_spawn_cost,
        }
    }

    /// Pair an additional observer (e.g. a tracer) with the stack; it sees
    /// the same event stream, before the profiling layers.
    pub fn observed_by<O: Monitor>(self, observer: O) -> MeasurementSession<(O, M)> {
        MeasurementSession {
            team: self.team,
            construct: self.construct,
            monitor: (observer, self.monitor),
            counts: self.counts,
            export: self.export,
            sim_spawn_cost: self.sim_spawn_cost,
        }
    }

    /// Execute one parallel region under the session's construct: `f` runs
    /// once per team thread as its implicit task. May be called repeatedly;
    /// every region's measurements accumulate into the final report.
    pub fn run<'env, F>(&self, f: F) -> ParallelOutcome
    where
        F: Fn(&TaskCtx<'_, 'env, M>) + Sync + 'env,
    {
        self.team.parallel(&self.monitor, &self.construct, f)
    }

    /// Like [`MeasurementSession::run`] but under a caller-supplied
    /// construct (for programs with several distinct parallel regions).
    pub fn run_in<'env, F>(&self, construct: &ParallelConstruct, f: F) -> ParallelOutcome
    where
        F: Fn(&TaskCtx<'_, 'env, M>) + Sync + 'env,
    {
        self.team.parallel(&self.monitor, construct, f)
    }

    /// Consume the session: drain every layer's diagnostics and the
    /// profiler's collected shards into one [`SessionReport`].
    ///
    /// This is the session-final replacement for calling
    /// `ProfMonitor::take_profile` by hand — consuming `self` guarantees no
    /// region of *this* session is still measuring.
    pub fn finish(self) -> SessionReport {
        let mut diagnostics = Vec::new();
        self.monitor.drain_diagnostics(&mut diagnostics);
        let profile = self
            .monitor
            .profiler()
            .take_profile()
            .expect("a consumed session cannot have regions in flight");
        let telemetry = self
            .monitor
            .profiler()
            .telemetry_core()
            .map(|core| core.snapshot());
        let export = self
            .export
            .as_ref()
            .map(|plan| export_profile(plan, &profile));
        let critpath = if self.monitor.profiler().records_task_edges() {
            let streams = self
                .monitor
                .profiler()
                .take_edge_streams()
                .expect("a consumed session cannot have regions in flight");
            let opts = critpath::DagOptions {
                undeferred_spawn_cost: self.sim_spawn_cost,
            };
            let dag = critpath::TaskDag::from_streams(&streams, self.construct.region, &opts)
                .expect("recorded edge streams assemble into a DAG");
            Some(dag.report())
        } else {
            None
        };
        SessionReport {
            profile,
            diagnostics,
            counts: self.counts,
            telemetry,
            export,
            critpath,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pomp::{RegionId, VirtualClock};
    use taskrt::TaskConstruct;

    #[test]
    fn session_runs_and_finishes() {
        let session = MeasurementSession::builder("session-test")
            .threads(2)
            .build()
            .unwrap();
        let task = TaskConstruct::new("session-test-task");
        session
            .run(|ctx| {
                if ctx.tid() == 0 {
                    for _ in 0..4 {
                        ctx.task(&task, |_| {
                            std::hint::black_box(42);
                        });
                    }
                }
            })
            .unwrap();
        let report = session.finish();
        assert_eq!(report.profile.num_threads(), 2);
        assert!(report.is_clean());
        assert!(report.counts.is_none());
    }

    #[test]
    fn full_stack_counts_and_validates() {
        let session = MeasurementSession::builder("session-full")
            .threads(2)
            .max_depth(32)
            .build()
            .unwrap()
            .counted()
            .validated();
        let task = TaskConstruct::new("session-full-task");
        session
            .run(|ctx| {
                if ctx.tid() == 0 {
                    for _ in 0..8 {
                        ctx.task(&task, |_| {
                            std::hint::black_box(1);
                        });
                    }
                }
            })
            .unwrap();
        let report = session.finish();
        assert!(report.is_clean());
        let (_, _, begins, ends, _, _, threads) = report.counts().snapshot();
        assert_eq!(begins, 8);
        assert_eq!(ends, 8);
        assert_eq!(threads, 2);
        assert_eq!(report.profile.num_threads(), 2);
    }

    #[test]
    fn filtered_stack_suppresses_regions() {
        let noisy = RegionId(u32::MAX - 7);
        let session = MeasurementSession::builder("session-filter")
            .threads(1)
            .build()
            .unwrap()
            .filtered(move |r: RegionId| r != noisy);
        session.run(|_| {}).unwrap();
        let report = session.finish();
        assert_eq!(report.profile.num_threads(), 1);
    }

    #[test]
    fn virtual_clock_session_is_deterministic() {
        let clock = VirtualClock::new();
        let session = MeasurementSession::builder("session-virtual")
            .threads(1)
            .clock(clock.clone())
            .build()
            .unwrap();
        session.run(|_| {}).unwrap();
        clock.set(1000);
        session.run(|_| {}).unwrap();
        let report = session.finish();
        assert_eq!(report.profile.num_threads(), 2, "two regions collected");
    }

    #[test]
    fn deterministic_sessions_reproduce_profiles() {
        fn one(seed: u64) -> Profile {
            let task = TaskConstruct::new("session-det-task");
            let tw = taskrt::taskwait_region("session-det!tw");
            let session = MeasurementSession::builder("session-det")
                .threads(2)
                .deterministic(seed)
                .build()
                .unwrap();
            session
                .run(|ctx| {
                    for _ in 0..3 {
                        ctx.task(&task, |_| {});
                    }
                    ctx.taskwait(tw);
                })
                .unwrap();
            session.finish().profile
        }
        let a = one(7);
        let b = one(7);
        assert_eq!(a.num_threads(), b.num_threads());
        for (ta, tb) in a.threads.iter().zip(&b.threads) {
            assert_eq!(ta.main, tb.main, "tid {} main tree differs", ta.tid);
            assert_eq!(
                ta.task_trees, tb.task_trees,
                "tid {} task trees differ",
                ta.tid
            );
            assert_eq!(ta.max_live_trees, tb.max_live_trees);
        }
    }

    #[test]
    fn record_task_edges_yields_critpath_report() {
        let task = TaskConstruct::new("session-critpath-task");
        let tw = taskrt::taskwait_region("session-critpath!tw");
        let session = MeasurementSession::builder("session-critpath")
            .threads(2)
            .deterministic(5)
            .record_task_edges()
            .build()
            .unwrap();
        session
            .run(|ctx| {
                for _ in 0..3 {
                    ctx.task(&task, |_| {});
                }
                ctx.taskwait(tw);
            })
            .unwrap();
        let report = session.finish();
        let cp = report.critpath();
        assert_eq!(cp.threads, 2);
        assert_eq!(cp.tasks, 6, "3 tasks per implicit task");
        assert!(cp.work_ns > 0, "spawn costs spend virtual time");
        assert!(cp.span_ns <= cp.work_ns);
        assert!(cp.makespan_ns >= cp.span_ns);
        assert!(cp.parallelism >= 1.0);
        assert_eq!(cp.thread_work_ns.len(), 2);
    }

    #[test]
    fn critpath_absent_without_edge_recording() {
        let session = MeasurementSession::builder("session-no-critpath")
            .threads(1)
            .build()
            .unwrap();
        session.run(|_| {}).unwrap();
        assert!(session.finish().critpath.is_none());
    }

    #[test]
    fn export_target_from_str_discriminates() {
        assert_eq!(
            ExportTarget::from("127.0.0.1:7979"),
            ExportTarget::Server("127.0.0.1:7979".to_string())
        );
        // Hostnames don't parse as SocketAddr but must still reach the
        // server — Client::connect resolves them via ToSocketAddrs.
        assert_eq!(
            ExportTarget::from("localhost:7979"),
            ExportTarget::Server("localhost:7979".to_string())
        );
        assert_eq!(
            ExportTarget::from("[::1]:7979"),
            ExportTarget::Server("[::1]:7979".to_string())
        );
        assert_eq!(
            ExportTarget::from("/tmp/profiles"),
            ExportTarget::Directory(PathBuf::from("/tmp/profiles"))
        );
        assert_eq!(
            ExportTarget::from("relative/dir"),
            ExportTarget::Directory(PathBuf::from("relative/dir"))
        );
        // Path separators always mean a directory, ports or not.
        assert_eq!(
            ExportTarget::from("profiles/host:7979"),
            ExportTarget::Directory(PathBuf::from("profiles/host:7979"))
        );
        // A trailing segment that is not a valid port is a directory.
        assert_eq!(
            ExportTarget::from("profiles:latest"),
            ExportTarget::Directory(PathBuf::from("profiles:latest"))
        );
    }

    #[test]
    fn export_to_directory_ingests_on_finish() {
        let dir = std::env::temp_dir().join(format!(
            "session-export-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        for expected_run in 1..=2u64 {
            let session = MeasurementSession::builder("session-export")
                .threads(2)
                .export_to(dir.as_path())
                .build()
                .unwrap();
            session.run(|_| {}).unwrap();
            let report = session.finish();
            let receipt = report
                .export
                .expect("export configured")
                .expect("export succeeds");
            assert_eq!(receipt.run_id, Some(expected_run));
            assert!(receipt.bytes > 0);
            assert!(!receipt.spooled);
            assert_eq!(receipt.attempts, 1);
        }
        let store = profstore::ProfileStore::open(&dir).expect("reopen");
        assert_eq!(store.stats().runs, 2);
        let agg = store.aggregate("session-export", 2).expect("aggregate");
        assert_eq!(agg.runs, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn export_to_server_ingests_on_finish() {
        let dir = std::env::temp_dir().join(format!(
            "session-export-srv-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = profstore::ProfileStore::open(&dir).expect("open");
        let (handle, join) =
            profserve::Server::spawn("127.0.0.1:0", store, profserve::ServeConfig::default())
                .expect("spawn");
        let addr = handle.addr().to_string();

        let session = MeasurementSession::builder("session-export-srv")
            .threads(1)
            .export_to(addr.as_str())
            .build()
            .unwrap();
        session.run(|_| {}).unwrap();
        let report = session.finish();
        let receipt = report
            .export
            .expect("export configured")
            .expect("export succeeds");
        assert!(matches!(receipt.target, ExportTarget::Server(_)));
        assert_eq!(receipt.run_id, Some(1));
        assert_eq!(receipt.attempts, 1);
        assert!(!receipt.spooled);
        assert_eq!(receipt.drained, 0);

        handle.stop();
        join.join().expect("join").expect("run");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_export_does_not_fail_measurement() {
        // Nothing listens on this address: connect must fail, the
        // profile must still be in the report.
        let session = MeasurementSession::builder("session-export-down")
            .threads(1)
            .export_to("127.0.0.1:1")
            .build()
            .unwrap();
        session.run(|_| {}).unwrap();
        let report = session.finish();
        assert_eq!(report.profile.num_threads(), 1);
        match report.export {
            Some(Err(ExportError::Client(_))) => {}
            other => panic!("expected client error, got {other:?}"),
        }
    }

    #[test]
    fn repeated_runs_accumulate() {
        let session = MeasurementSession::builder("session-repeat")
            .threads(1)
            .build()
            .unwrap();
        for _ in 0..3 {
            session.run(|_| {}).unwrap();
        }
        assert_eq!(session.finish().profile.num_threads(), 3);
    }
}
