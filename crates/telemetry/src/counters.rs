//! The lock-free counter core: per-shard slots written by exactly one
//! measurement thread each, aggregated only on read.
//!
//! # Memory ordering
//!
//! Every counter is an `AtomicU64` accessed with `Ordering::Relaxed`.
//! That is sufficient — and the whole point — because telemetry needs
//! *eventual per-counter accuracy*, not a consistent cut across counters:
//!
//! * each slot has a single writer (the owning measurement thread), so
//!   per-counter updates are never lost and each counter read observes a
//!   monotone prefix of its writer's updates;
//! * readers tolerate skew *between* counters (a snapshot may see a task
//!   counted as created but not yet completed — which is also the truth a
//!   moment earlier);
//! * once the session quiesces (threads ended), the thread-end hand-off
//!   in the profiling monitor provides the release/acquire edge (its
//!   snapshot CAS publishes with `Release`), so final counter reads are
//!   exact.
//!
//! # Why plain load+store instead of `fetch_add`
//!
//! Because a slot has exactly one writer, every hot-path update is a
//! relaxed *load + store* pair, not an atomic read-modify-write: an
//! uncontended `lock xadd` still costs ~20 cycles on x86, which would eat
//! the <5% telemetry budget several times over at one-RMW-per-event. The
//! single-writer guarantee is enforced, not assumed: a 64-bit claim
//! bitmask hands each [`ThreadTelemetry`] an exclusive slot
//! (acquire/release on the bitmask at thread begin/end provides the
//! hand-over edge between successive owners of a reused slot). When more
//! than [`MAX_TELEMETRY_SHARDS`] threads are live at once, the overflow
//! handles share one extra slot and fall back to real RMWs there —
//! counters stay exact at any team size; only the fast path is reserved
//! for the common one.

use crate::snapshot::TelemetrySnapshot;
use pomp::EventClass;
use std::cell::Cell;
use std::sync::atomic::{
    AtomicU64,
    Ordering::{Acquire, Relaxed, Release},
};
use std::sync::Arc;

/// Number of exclusive per-thread counter slots. Threads beyond this many
/// *concurrently live* ones share one overflow slot (updated with atomic
/// RMWs): counters stay exact, only the per-slot live-tree gauge and
/// high-water mark blur together for the overflow threads of a > 64-thread
/// team.
pub const MAX_TELEMETRY_SHARDS: usize = 64;

/// Default perturbation sampling period (1-in-N events also time
/// themselves). 256 keeps the sampled clock reads comfortably inside
/// the documented <5% per-event telemetry budget (at 64 the two extra
/// clock reads on every 64th event crept to ~5.5% on fast hardware);
/// the estimator stays unbiased, it just converges a little slower.
pub const DEFAULT_SAMPLE_EVERY: u32 = 256;

const CLASSES: usize = EventClass::COUNT;

/// One thread's counter slot, padded to avoid false sharing between
/// neighbouring writer threads.
#[repr(align(128))]
#[derive(Default)]
struct ShardSlot {
    /// Hook invocations per event class.
    events: [AtomicU64; CLASSES],
    /// Sampled self-timing: sample count per class.
    perturb_samples: [AtomicU64; CLASSES],
    /// Sampled self-timing: summed sampled cost per class, ns.
    perturb_ns: [AtomicU64; CLASSES],
    tasks_created: AtomicU64,
    tasks_completed: AtomicU64,
    tasks_aborted: AtomicU64,
    tasks_shed: AtomicU64,
    /// Task fragments executed (paper Section IV-B4: each resumption of
    /// an explicit task on a thread is one fragment).
    fragments: AtomicU64,
    /// Total time spent executing explicit task fragments, ns — the live
    /// equivalent of the stub-node time in the implicit task's tree.
    stub_time_ns: AtomicU64,
    /// Instance trees currently live on this shard (gauge).
    live_trees: AtomicU64,
    /// High-water mark of `live_trees` (paper Table II, per thread).
    live_trees_hwm: AtomicU64,
}

/// Telemetry configuration, validated by the profiling monitor's builder.
#[derive(Clone, Copy, Debug)]
pub struct TelemetryConfig {
    /// Perturbation sampling period: every `sample_every`-th event also
    /// times itself. Must be ≥ 1 (1 = time every event).
    pub sample_every: u32,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            sample_every: DEFAULT_SAMPLE_EVERY,
        }
    }
}

/// The shared telemetry state of one measurement session. Writers go
/// through [`ThreadTelemetry`] handles; any thread may call
/// [`TelemetryCore::snapshot`] at any time.
pub struct TelemetryCore {
    /// `MAX_TELEMETRY_SHARDS` exclusive slots plus one shared overflow
    /// slot at index `MAX_TELEMETRY_SHARDS`.
    slots: Box<[ShardSlot]>,
    /// Bit `i` set ⇔ exclusive slot `i` is claimed by a live writer.
    claim_mask: AtomicU64,
    sample_every: u32,
    // Region-boundary counters (shared; touched only at thread begin/end
    // and profile collection, never on the per-event path).
    threads_started: AtomicU64,
    threads_finished: AtomicU64,
    snapshots_published: AtomicU64,
    snapshots_collected: AtomicU64,
    arenas_recycled: AtomicU64,
    arenas_allocated: AtomicU64,
    arenas_returned: AtomicU64,
}

impl std::fmt::Debug for TelemetryCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryCore")
            .field("sample_every", &self.sample_every)
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

impl TelemetryCore {
    /// Fresh counters, all zero.
    pub fn new(config: TelemetryConfig) -> Self {
        let slots = (0..=MAX_TELEMETRY_SHARDS)
            .map(|_| ShardSlot::default())
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            slots,
            claim_mask: AtomicU64::new(0),
            sample_every: config.sample_every.max(1),
            threads_started: AtomicU64::new(0),
            threads_finished: AtomicU64::new(0),
            snapshots_published: AtomicU64::new(0),
            snapshots_collected: AtomicU64::new(0),
            arenas_recycled: AtomicU64::new(0),
            arenas_allocated: AtomicU64::new(0),
            arenas_returned: AtomicU64::new(0),
        }
    }

    /// The configured perturbation sampling period.
    pub fn sample_every(&self) -> u32 {
        self.sample_every
    }

    /// Claim an exclusive slot, preferring the team-local `tid`'s bit so
    /// per-slot gauges map stably onto threads. `Acquire` on success pairs
    /// with the `Release` in [`ThreadTelemetry`]'s drop: the new owner
    /// sees every store of the slot's previous owner.
    fn claim_slot(&self, preferred: usize) -> Option<usize> {
        let pref_bit = 1u64 << (preferred % MAX_TELEMETRY_SHARDS);
        let mut mask = self.claim_mask.load(Relaxed);
        loop {
            let free = !mask;
            if free == 0 {
                return None;
            }
            let bit = if free & pref_bit != 0 {
                pref_bit
            } else {
                free & free.wrapping_neg() // lowest free bit
            };
            match self
                .claim_mask
                .compare_exchange_weak(mask, mask | bit, Acquire, Relaxed)
            {
                Ok(_) => return Some(bit.trailing_zeros() as usize),
                Err(seen) => mask = seen,
            }
        }
    }

    /// Writer handle for the measurement thread with team-local id `tid`.
    /// The handle owns an exclusive slot for its lifetime (plain
    /// load+store updates); if all [`MAX_TELEMETRY_SHARDS`] slots are
    /// claimed it shares the overflow slot and updates it with RMWs.
    pub fn thread_handle(self: &Arc<Self>, tid: usize) -> ThreadTelemetry {
        self.threads_started.fetch_add(1, Relaxed);
        let (slot, exclusive) = match self.claim_slot(tid) {
            Some(s) => (s, true),
            None => (MAX_TELEMETRY_SHARDS, false),
        };
        ThreadTelemetry {
            core: Arc::clone(self),
            slot,
            exclusive,
            countdown: Cell::new(self.sample_every),
            in_fragment: Cell::new(false),
            frag_start: Cell::new(0),
        }
    }

    /// A completed per-thread profile snapshot was published onto the
    /// hand-off stack.
    pub fn note_snapshot_published(&self) {
        self.snapshots_published.fetch_add(1, Relaxed);
        self.threads_finished.fetch_add(1, Relaxed);
    }

    /// `n` published snapshots were drained by profile collection.
    pub fn note_snapshots_collected(&self, n: u64) {
        self.snapshots_collected.fetch_add(n, Relaxed);
    }

    /// A thread beginning a region stole a recycled arena from the spare
    /// pool.
    pub fn note_arena_recycled(&self) {
        self.arenas_recycled.fetch_add(1, Relaxed);
    }

    /// The spare pool was empty; a fresh arena was allocated.
    pub fn note_arena_allocated(&self) {
        self.arenas_allocated.fetch_add(1, Relaxed);
    }

    /// A finished thread returned its arena to the spare pool.
    pub fn note_arena_returned(&self) {
        self.arenas_returned.fetch_add(1, Relaxed);
    }

    /// Aggregate every slot into a plain snapshot. Safe from any thread at
    /// any time; during an active region the result is a slightly stale
    /// but per-counter-consistent view (see the module docs).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot::default();
        for slot in self.slots.iter() {
            for (i, e) in slot.events.iter().enumerate() {
                s.events[i] += e.load(Relaxed);
                s.perturb_samples[i] += slot.perturb_samples[i].load(Relaxed);
                s.perturb_ns[i] += slot.perturb_ns[i].load(Relaxed);
            }
            s.tasks_created += slot.tasks_created.load(Relaxed);
            s.tasks_completed += slot.tasks_completed.load(Relaxed);
            s.tasks_aborted += slot.tasks_aborted.load(Relaxed);
            s.tasks_shed += slot.tasks_shed.load(Relaxed);
            s.fragments += slot.fragments.load(Relaxed);
            s.stub_time_ns += slot.stub_time_ns.load(Relaxed);
            s.live_trees += slot.live_trees.load(Relaxed);
            s.live_trees_hwm = s.live_trees_hwm.max(slot.live_trees_hwm.load(Relaxed));
        }
        let started = self.threads_started.load(Relaxed);
        let finished = self.threads_finished.load(Relaxed);
        s.threads_active = started.saturating_sub(finished);
        let published = self.snapshots_published.load(Relaxed);
        let collected = self.snapshots_collected.load(Relaxed);
        s.handoff_depth = published.saturating_sub(collected);
        let returned = self.arenas_returned.load(Relaxed);
        let recycled = self.arenas_recycled.load(Relaxed);
        s.spare_arenas = returned.saturating_sub(recycled);
        s.arenas_recycled = recycled;
        s.arenas_allocated = self.arenas_allocated.load(Relaxed);
        s
    }
}

/// Thread-owned telemetry write handle: every method is a handful of
/// relaxed loads and stores on the thread's own cache-line-padded slot,
/// plus plain `Cell` state for the 1-in-N sampling countdown and fragment
/// timing. Not `Sync`; the profiling monitor hands one to each
/// measurement thread. Dropping the handle releases its slot for reuse.
pub struct ThreadTelemetry {
    core: Arc<TelemetryCore>,
    slot: usize,
    /// `true` while this handle is the slot's only writer (the common
    /// case): updates are plain load+store. The overflow slot is shared
    /// and needs real RMWs.
    exclusive: bool,
    /// Sampling countdown; hitting zero elects the event for self-timing
    /// and reloads the period. A plain cell keeps the steady-state branch
    /// to a decrement + compare.
    countdown: Cell<u32>,
    in_fragment: Cell<bool>,
    frag_start: Cell<u64>,
}

impl Drop for ThreadTelemetry {
    fn drop(&mut self) {
        if self.exclusive {
            // Release the slot; pairs with the Acquire in `claim_slot` so
            // the next owner observes all of this thread's plain stores.
            self.core
                .claim_mask
                .fetch_and(!(1u64 << self.slot), Release);
        }
    }
}

impl ThreadTelemetry {
    #[inline]
    fn slot(&self) -> &ShardSlot {
        // `claim_slot` / the overflow fallback keep the index in bounds;
        // indexing here is branch-predicted away.
        &self.core.slots[self.slot]
    }

    /// Add `n` to a counter in this handle's slot. Exclusive slots take
    /// the single-writer fast path (relaxed load + store, no `lock`
    /// prefix); the shared overflow slot needs the RMW.
    #[inline]
    fn bump(&self, counter: &AtomicU64, n: u64) {
        if self.exclusive {
            counter.store(counter.load(Relaxed).wrapping_add(n), Relaxed);
        } else {
            counter.fetch_add(n, Relaxed);
        }
    }

    /// The shared core (for tests and for wiring collection-side hooks).
    pub fn core(&self) -> &Arc<TelemetryCore> {
        &self.core
    }

    /// Count one event of `class`; returns `true` when this event is
    /// elected for perturbation self-timing (1-in-N). The caller then
    /// reads its clock once more and reports the cost via
    /// [`ThreadTelemetry::record_cost`].
    #[inline]
    pub fn tick(&self, class: EventClass) -> bool {
        self.bump(&self.slot().events[class.index()], 1);
        let c = self.countdown.get();
        if c > 1 {
            self.countdown.set(c - 1);
            false
        } else {
            self.countdown.set(self.core.sample_every);
            true
        }
    }

    /// Record a sampled self-timing of one `class` event, ns.
    #[inline]
    pub fn record_cost(&self, class: EventClass, ns: u64) {
        let s = self.slot();
        self.bump(&s.perturb_samples[class.index()], 1);
        self.bump(&s.perturb_ns[class.index()], ns);
    }

    /// One deferred task instance was created.
    #[inline]
    pub fn task_created(&self) {
        self.bump(&self.slot().tasks_created, 1);
    }

    /// One task instance completed normally.
    #[inline]
    pub fn task_completed(&self) {
        self.bump(&self.slot().tasks_completed, 1);
    }

    /// One task instance aborted (panicked or force-closed).
    #[inline]
    pub fn task_aborted(&self) {
        self.bump(&self.slot().tasks_aborted, 1);
    }

    /// One instance degraded to counting-only by the live-tree cap.
    #[inline]
    pub fn task_shed(&self) {
        self.bump(&self.slot().tasks_shed, 1);
    }

    /// Publish the thread's current live-instance-tree count and fold it
    /// into the high-water mark.
    #[inline]
    pub fn update_live(&self, live: u64) {
        let s = self.slot();
        s.live_trees.store(live, Relaxed);
        if self.exclusive {
            // Single writer: the compare is against our own last store, so
            // a plain conditional store is a race-free max.
            if live > s.live_trees_hwm.load(Relaxed) {
                s.live_trees_hwm.store(live, Relaxed);
            }
        } else {
            s.live_trees_hwm.fetch_max(live, Relaxed);
        }
    }

    /// A task fragment starts executing at time `t` (a `task_begin` or a
    /// switch to an explicit task). Closes any fragment still open — a
    /// nested `task_begin` suspends the outer fragment.
    #[inline]
    pub fn fragment_begin(&self, t: u64) {
        self.fragment_end(t);
        self.bump(&self.slot().fragments, 1);
        self.in_fragment.set(true);
        self.frag_start.set(t);
    }

    /// The current fragment (if any) stops at time `t`; its duration is
    /// added to the live stub-time gauge.
    #[inline]
    pub fn fragment_end(&self, t: u64) {
        if self.in_fragment.get() {
            self.in_fragment.set(false);
            let dur = t.saturating_sub(self.frag_start.get());
            self.bump(&self.slot().stub_time_ns, dur);
        }
    }

    /// The owning measurement thread finished its region at time `t`: the
    /// live gauge drops to zero (the profile force-closes leftovers) and
    /// any open fragment is charged.
    pub fn thread_end(&self, t: u64) {
        self.fragment_end(t);
        self.update_live(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> Arc<TelemetryCore> {
        Arc::new(TelemetryCore::new(TelemetryConfig { sample_every: 4 }))
    }

    #[test]
    fn tick_counts_events_and_elects_one_in_n() {
        let c = core();
        let t = c.thread_handle(0);
        let elected: Vec<bool> = (0..8).map(|_| t.tick(EventClass::Enter)).collect();
        assert_eq!(elected, vec![false, false, false, true, false, false, false, true]);
        let s = c.snapshot();
        assert_eq!(s.events[EventClass::Enter.index()], 8);
        assert_eq!(s.total_events(), 8);
    }

    #[test]
    fn task_lifecycle_counters_aggregate_across_shards() {
        let c = core();
        let a = c.thread_handle(0);
        let b = c.thread_handle(1);
        a.task_created();
        a.task_created();
        b.task_completed();
        b.task_aborted();
        a.task_shed();
        let s = c.snapshot();
        assert_eq!(s.tasks_created, 2);
        assert_eq!(s.tasks_completed, 1);
        assert_eq!(s.tasks_aborted, 1);
        assert_eq!(s.tasks_shed, 1);
        assert_eq!(s.threads_active, 2);
    }

    #[test]
    fn live_gauge_sums_and_hwm_maxes_across_shards() {
        let c = core();
        let a = c.thread_handle(0);
        let b = c.thread_handle(1);
        a.update_live(3);
        b.update_live(5);
        a.update_live(1); // hwm stays 3 on shard 0
        let s = c.snapshot();
        assert_eq!(s.live_trees, 6);
        assert_eq!(s.live_trees_hwm, 5, "max over shards, not sum");
        a.thread_end(0);
        b.thread_end(0);
        assert_eq!(c.snapshot().live_trees, 0);
    }

    #[test]
    fn fragment_timing_accumulates_stub_time() {
        let c = core();
        let t = c.thread_handle(0);
        t.fragment_begin(10);
        t.fragment_end(25); // 15 ns
        t.fragment_begin(30);
        t.fragment_begin(40); // nested begin closes the outer fragment (10)
        t.fragment_end(45); // 5
        t.fragment_end(50); // no open fragment: no-op
        let s = c.snapshot();
        assert_eq!(s.fragments, 3);
        assert_eq!(s.stub_time_ns, 30);
    }

    #[test]
    fn perturbation_samples_record_cost() {
        let c = core();
        let t = c.thread_handle(0);
        t.record_cost(EventClass::TaskSwitch, 120);
        t.record_cost(EventClass::TaskSwitch, 80);
        let s = c.snapshot();
        assert_eq!(s.perturb_samples[EventClass::TaskSwitch.index()], 2);
        assert_eq!(s.perturb_ns[EventClass::TaskSwitch.index()], 200);
        assert_eq!(s.per_event_cost_ns(EventClass::TaskSwitch), Some(100.0));
        assert_eq!(s.per_event_cost_ns(EventClass::Enter), None);
    }

    #[test]
    fn handoff_and_arena_accounting() {
        let c = core();
        c.note_arena_allocated();
        let h = c.thread_handle(0);
        h.thread_end(0);
        c.note_snapshot_published();
        c.note_arena_returned();
        let s = c.snapshot();
        assert_eq!(s.handoff_depth, 1);
        assert_eq!(s.spare_arenas, 1);
        assert_eq!(s.threads_active, 0);
        c.note_snapshots_collected(1);
        c.note_arena_recycled();
        let s = c.snapshot();
        assert_eq!(s.handoff_depth, 0);
        assert_eq!(s.spare_arenas, 0);
        assert_eq!(s.arenas_recycled, 1);
        assert_eq!(s.arenas_allocated, 1);
    }

    #[test]
    fn overflow_handles_share_a_slot_and_stay_exact() {
        let c = core();
        // Claim every exclusive slot...
        let team: Vec<_> = (0..MAX_TELEMETRY_SHARDS).map(|t| c.thread_handle(t)).collect();
        // ...so the next two handles share the RMW overflow slot.
        let x = c.thread_handle(MAX_TELEMETRY_SHARDS);
        let y = c.thread_handle(MAX_TELEMETRY_SHARDS + 1);
        team[0].task_created();
        x.task_created();
        y.task_created();
        x.tick(EventClass::Enter);
        y.tick(EventClass::Enter);
        let s = c.snapshot();
        assert_eq!(s.tasks_created, 3, "overflow writers lose nothing");
        assert_eq!(s.events[EventClass::Enter.index()], 2);
    }

    #[test]
    fn dropped_handles_release_their_slot_for_reuse() {
        let c = core();
        let team: Vec<_> = (0..MAX_TELEMETRY_SHARDS).map(|t| c.thread_handle(t)).collect();
        drop(team);
        // A fresh team claims exclusive slots again (its counters keep
        // accumulating on top of the previous owners' totals).
        let h = c.thread_handle(0);
        h.task_created();
        h.update_live(9);
        let s = c.snapshot();
        assert_eq!(s.tasks_created, 1);
        assert_eq!(s.live_trees_hwm, 9, "reused slot still tracks its max");
    }

    #[test]
    fn concurrent_writers_lose_nothing() {
        let c = Arc::new(TelemetryCore::new(TelemetryConfig::default()));
        let per = 10_000u64;
        let threads = 8usize;
        std::thread::scope(|s| {
            for tid in 0..threads {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    let h = c.thread_handle(tid);
                    for i in 0..per {
                        h.tick(EventClass::Enter);
                        h.task_created();
                        h.update_live(i % 7);
                    }
                    h.thread_end(0);
                });
            }
        });
        let s = c.snapshot();
        assert_eq!(s.events[EventClass::Enter.index()], per * threads as u64);
        assert_eq!(s.tasks_created, per * threads as u64);
        assert_eq!(s.live_trees, 0);
        assert_eq!(s.live_trees_hwm, 6);
    }
}
