//! Telemetry exporters: Prometheus text exposition format and JSON-lines
//! time series. Both directions are implemented by hand (the build is
//! offline; no serde), and both round-trip through the parsers below so
//! scrape endpoints and log shippers can be tested end to end.

use crate::snapshot::TelemetrySnapshot;
use pomp::EventClass;
use std::fmt::Write as _;

/// An export could not be parsed back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportParseError {
    /// 1-based line of the problem.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for ExportParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "telemetry parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ExportParseError {}

fn err(line: usize, message: impl Into<String>) -> ExportParseError {
    ExportParseError {
        line,
        message: message.into(),
    }
}

// ---------------------------------------------------------------------
// Prometheus text exposition format
// ---------------------------------------------------------------------

/// One sample parsed back from the Prometheus text format.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric name, e.g. `taskprof_tasks_created_total`.
    pub name: String,
    /// Label pairs in source order (empty for unlabelled metrics).
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl PromSample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn prom_metric(out: &mut String, name: &str, help: &str, kind: &str, value: impl std::fmt::Display) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    let _ = writeln!(out, "{name} {value}");
}

fn prom_class_metric(
    out: &mut String,
    name: &str,
    help: &str,
    kind: &str,
    value_of: impl Fn(EventClass) -> u64,
) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    for class in EventClass::ALL {
        let _ = writeln!(out, "{name}{{class=\"{}\"}} {}", class.label(), value_of(class));
    }
}

/// Render a snapshot in the Prometheus text exposition format (0.0.4),
/// ready to serve from a `/metrics` endpoint.
pub fn to_prometheus(s: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    prom_class_metric(
        &mut out,
        "taskprof_events_total",
        "Measurement hook invocations by event class.",
        "counter",
        |c| s.events[c.index()],
    );
    prom_metric(
        &mut out,
        "taskprof_tasks_created_total",
        "Deferred task instances created.",
        "counter",
        s.tasks_created,
    );
    prom_metric(
        &mut out,
        "taskprof_tasks_completed_total",
        "Task instances completed normally.",
        "counter",
        s.tasks_completed,
    );
    prom_metric(
        &mut out,
        "taskprof_tasks_aborted_total",
        "Task instances aborted (panicked or force-closed).",
        "counter",
        s.tasks_aborted,
    );
    prom_metric(
        &mut out,
        "taskprof_tasks_shed_total",
        "Task instances degraded to counting-only by the live-tree cap.",
        "counter",
        s.tasks_shed,
    );
    prom_metric(
        &mut out,
        "taskprof_fragments_total",
        "Task fragments executed (explicit-task resumptions).",
        "counter",
        s.fragments,
    );
    prom_metric(
        &mut out,
        "taskprof_stub_time_ns_total",
        "Time spent executing task fragments, ns (live stub-node time).",
        "counter",
        s.stub_time_ns,
    );
    prom_metric(
        &mut out,
        "taskprof_live_instance_trees",
        "Concurrently live task-instance trees, summed over threads.",
        "gauge",
        s.live_trees,
    );
    prom_metric(
        &mut out,
        "taskprof_live_instance_trees_hwm",
        "High-water mark of per-thread live instance trees (paper Table II).",
        "gauge",
        s.live_trees_hwm,
    );
    prom_metric(
        &mut out,
        "taskprof_threads_active",
        "Measurement threads currently between begin and end.",
        "gauge",
        s.threads_active,
    );
    prom_metric(
        &mut out,
        "taskprof_handoff_stack_depth",
        "Finished thread snapshots published but not yet collected.",
        "gauge",
        s.handoff_depth,
    );
    prom_metric(
        &mut out,
        "taskprof_spare_arenas",
        "Recycled arenas parked in the spare pool.",
        "gauge",
        s.spare_arenas,
    );
    prom_metric(
        &mut out,
        "taskprof_arenas_recycled_total",
        "Region starts that stole a recycled arena.",
        "counter",
        s.arenas_recycled,
    );
    prom_metric(
        &mut out,
        "taskprof_arenas_allocated_total",
        "Region starts that allocated a fresh arena.",
        "counter",
        s.arenas_allocated,
    );
    prom_class_metric(
        &mut out,
        "taskprof_perturbation_samples_total",
        "Self-timed events by class (1-in-N perturbation sampling).",
        "counter",
        |c| s.perturb_samples[c.index()],
    );
    prom_class_metric(
        &mut out,
        "taskprof_perturbation_ns_total",
        "Summed self-timed event cost by class, ns.",
        "counter",
        |c| s.perturb_ns[c.index()],
    );
    let _ = writeln!(
        out,
        "# HELP taskprof_estimated_overhead_ns Estimated total measurement perturbation, ns."
    );
    let _ = writeln!(out, "# TYPE taskprof_estimated_overhead_ns gauge");
    let _ = writeln!(out, "taskprof_estimated_overhead_ns {}", s.estimated_overhead_ns());
    out
}

/// Parse Prometheus text exposition format back into samples. Handles
/// `# HELP`/`# TYPE` comments, unlabelled samples, and the single-level
/// `{key="value",...}` label syntax this crate emits.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, ExportParseError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| err(lineno, "expected '<metric> <value>'"))?;
        let value: f64 = value_part
            .parse()
            .map_err(|_| err(lineno, format!("bad sample value '{value_part}'")))?;
        let (name, labels) = match name_part.split_once('{') {
            None => (name_part.to_string(), Vec::new()),
            Some((name, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| err(lineno, "unterminated label set"))?;
                let mut labels = Vec::new();
                for pair in body.split(',').filter(|p| !p.is_empty()) {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| err(lineno, format!("bad label pair '{pair}'")))?;
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| err(lineno, format!("unquoted label value '{v}'")))?;
                    labels.push((k.to_string(), v.to_string()));
                }
                (name.to_string(), labels)
            }
        };
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':') {
            return Err(err(lineno, format!("invalid metric name '{name}'")));
        }
        out.push(PromSample { name, labels, value });
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// JSON lines
// ---------------------------------------------------------------------

/// A scalar snapshot field: JSONL key plus its accessor.
type ScalarField = (&'static str, fn(&TelemetrySnapshot) -> u64);

fn jsonl_keys() -> [ScalarField; 13] {
    [
        ("tasks_created", |s| s.tasks_created),
        ("tasks_completed", |s| s.tasks_completed),
        ("tasks_aborted", |s| s.tasks_aborted),
        ("tasks_shed", |s| s.tasks_shed),
        ("fragments", |s| s.fragments),
        ("stub_time_ns", |s| s.stub_time_ns),
        ("live_trees", |s| s.live_trees),
        ("live_trees_hwm", |s| s.live_trees_hwm),
        ("threads_active", |s| s.threads_active),
        ("handoff_depth", |s| s.handoff_depth),
        ("spare_arenas", |s| s.spare_arenas),
        ("arenas_recycled", |s| s.arenas_recycled),
        ("arenas_allocated", |s| s.arenas_allocated),
    ]
}

/// Render one time-series point as a single JSON line: a flat object of
/// numbers keyed by snake_case metric names, per-class values as
/// `events.<class>` / `perturb_samples.<class>` / `perturb_ns.<class>`.
pub fn to_jsonl_line(t_ns: u64, s: &TelemetrySnapshot) -> String {
    let mut out = String::from("{");
    let _ = write!(out, "\"t_ns\":{t_ns}");
    for (key, get) in jsonl_keys() {
        let _ = write!(out, ",\"{key}\":{}", get(s));
    }
    for class in EventClass::ALL {
        let _ = write!(out, ",\"events.{}\":{}", class.label(), s.events[class.index()]);
    }
    for class in EventClass::ALL {
        let _ = write!(
            out,
            ",\"perturb_samples.{}\":{}",
            class.label(),
            s.perturb_samples[class.index()]
        );
    }
    for class in EventClass::ALL {
        let _ = write!(
            out,
            ",\"perturb_ns.{}\":{}",
            class.label(),
            s.perturb_ns[class.index()]
        );
    }
    out.push('}');
    out
}

/// Parse one JSON line written by [`to_jsonl_line`] back into
/// `(t_ns, snapshot)`. Unknown keys are ignored (forward compatibility);
/// missing keys default to 0.
pub fn parse_jsonl_line(line: &str) -> Result<(u64, TelemetrySnapshot), ExportParseError> {
    let body = line
        .trim()
        .strip_prefix('{')
        .and_then(|l| l.strip_suffix('}'))
        .ok_or_else(|| err(1, "not a JSON object"))?;
    let mut t_ns = 0u64;
    let mut snap = TelemetrySnapshot::default();
    for pair in body.split(',').filter(|p| !p.trim().is_empty()) {
        let (k, v) = pair
            .split_once(':')
            .ok_or_else(|| err(1, format!("bad member '{pair}'")))?;
        let key = k
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| err(1, format!("unquoted key '{k}'")))?;
        let value: u64 = v
            .trim()
            .parse()
            .map_err(|_| err(1, format!("bad value for '{key}': '{}'", v.trim())))?;
        if key == "t_ns" {
            t_ns = value;
            continue;
        }
        match key {
            "tasks_created" => {
                snap.tasks_created = value;
                continue;
            }
            "tasks_completed" => {
                snap.tasks_completed = value;
                continue;
            }
            "tasks_aborted" => {
                snap.tasks_aborted = value;
                continue;
            }
            "tasks_shed" => {
                snap.tasks_shed = value;
                continue;
            }
            "fragments" => {
                snap.fragments = value;
                continue;
            }
            "stub_time_ns" => {
                snap.stub_time_ns = value;
                continue;
            }
            "live_trees" => {
                snap.live_trees = value;
                continue;
            }
            "live_trees_hwm" => {
                snap.live_trees_hwm = value;
                continue;
            }
            "threads_active" => {
                snap.threads_active = value;
                continue;
            }
            "handoff_depth" => {
                snap.handoff_depth = value;
                continue;
            }
            "spare_arenas" => {
                snap.spare_arenas = value;
                continue;
            }
            "arenas_recycled" => {
                snap.arenas_recycled = value;
                continue;
            }
            "arenas_allocated" => {
                snap.arenas_allocated = value;
                continue;
            }
            _ => {}
        }
        if let Some(label) = key.strip_prefix("events.") {
            if let Some(class) = EventClass::from_label(label) {
                snap.events[class.index()] = value;
            }
        } else if let Some(label) = key.strip_prefix("perturb_samples.") {
            if let Some(class) = EventClass::from_label(label) {
                snap.perturb_samples[class.index()] = value;
            }
        } else if let Some(label) = key.strip_prefix("perturb_ns.") {
            if let Some(class) = EventClass::from_label(label) {
                snap.perturb_ns[class.index()] = value;
            }
        }
        // Unknown keys: ignored.
    }
    Ok((t_ns, snap))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot {
            tasks_created: 42,
            tasks_completed: 40,
            tasks_aborted: 1,
            tasks_shed: 3,
            fragments: 57,
            stub_time_ns: 123_456,
            live_trees: 1,
            live_trees_hwm: 9,
            threads_active: 4,
            handoff_depth: 2,
            spare_arenas: 3,
            arenas_recycled: 7,
            arenas_allocated: 4,
            ..TelemetrySnapshot::default()
        };
        for c in EventClass::ALL {
            s.events[c.index()] = 100 + c.index() as u64;
            s.perturb_samples[c.index()] = c.index() as u64;
            s.perturb_ns[c.index()] = 10 * c.index() as u64;
        }
        s
    }

    #[test]
    fn prometheus_round_trips() {
        let s = sample_snapshot();
        let text = to_prometheus(&s);
        let samples = parse_prometheus(&text).expect("own output parses");
        let find = |name: &str| -> f64 {
            samples
                .iter()
                .find(|p| p.name == name && p.labels.is_empty())
                .unwrap_or_else(|| panic!("missing {name}"))
                .value
        };
        assert_eq!(find("taskprof_tasks_created_total"), 42.0);
        assert_eq!(find("taskprof_live_instance_trees_hwm"), 9.0);
        assert_eq!(find("taskprof_spare_arenas"), 3.0);
        let enter = samples
            .iter()
            .find(|p| p.name == "taskprof_events_total" && p.label("class") == Some("enter"))
            .expect("labelled class sample");
        assert_eq!(enter.value, 100.0);
        assert_eq!(
            samples
                .iter()
                .filter(|p| p.name == "taskprof_events_total")
                .count(),
            EventClass::COUNT
        );
        // The derived overhead gauge is present and finite.
        assert!(find("taskprof_estimated_overhead_ns").is_finite());
    }

    #[test]
    fn prometheus_parser_rejects_garbage() {
        assert!(parse_prometheus("metric_without_value").is_err());
        assert!(parse_prometheus("name{unclosed 1").is_err());
        assert!(parse_prometheus("na me 1").is_err());
        assert!(parse_prometheus("ok_metric nope").is_err());
        // Comments and blank lines are fine.
        assert_eq!(parse_prometheus("# TYPE x counter\n\n").unwrap(), vec![]);
    }

    #[test]
    fn jsonl_round_trips() {
        let s = sample_snapshot();
        let line = to_jsonl_line(777, &s);
        assert!(line.starts_with('{') && line.ends_with('}'));
        let (t, back) = parse_jsonl_line(&line).expect("own output parses");
        assert_eq!(t, 777);
        assert_eq!(back, s);
        // Stable: re-serializing the parsed value reproduces the line.
        assert_eq!(to_jsonl_line(777, &back), line);
    }

    #[test]
    fn jsonl_parser_tolerates_unknown_and_missing_keys() {
        let (t, s) = parse_jsonl_line(r#"{"t_ns":5,"tasks_created":2,"future_key":9}"#).unwrap();
        assert_eq!(t, 5);
        assert_eq!(s.tasks_created, 2);
        assert_eq!(s.tasks_completed, 0);
        assert!(parse_jsonl_line("not json").is_err());
        assert!(parse_jsonl_line(r#"{"t_ns":-1}"#).is_err());
    }
}
