//! `taskprof-telemetry` — live introspection of a running measurement.
//!
//! The profiler's analysis metrics (per-construct instance runtimes,
//! fragment counts, the Table II bound on concurrently live instance
//! trees) are normally only observable *post mortem* through the session
//! report. This crate gives the profiler eyes on itself while it runs,
//! without re-introducing locks on the sharded event fast path:
//!
//! * [`TelemetryCore`] — per-shard relaxed-atomic counters and gauges,
//!   aggregated only on read. Each measurement thread writes to its own
//!   cache-line-padded slot; readers sum (or max) across slots. No CAS,
//!   no lock, no fence stronger than `Relaxed` anywhere on the event path
//!   (the high-water mark uses `fetch_max(Relaxed)`, which is a lock-free
//!   RMW, never a lock).
//! * [`ThreadTelemetry`] — the thread-owned write handle the profiling
//!   monitor drives from its hooks: event-class counters, task life-cycle
//!   counters, the live-instance-tree gauge, fragment/stub-time
//!   accounting, and 1-in-N sampled *perturbation accounting* — the
//!   profiler timing its own per-event cost so the estimated measurement
//!   overhead (paper Figs. 13–14) is available live.
//! * [`TelemetrySnapshot`] — a plain aggregated view, cheap to take from
//!   any thread at any time (including mid-measurement: counters are
//!   monotonic, the gauges merely slightly stale).
//! * [`export`] — Prometheus text exposition format and JSON-lines time
//!   series, both with parsers so round-trips are testable.
//! * [`Sampler`] — an optional background thread producing fixed-interval
//!   time-series snapshots.
//! * [`histogram`] — lock-free log2-bucket latency histograms (the
//!   serving daemon's request-tracing substrate), with Prometheus
//!   histogram and JSONL renderings that parse back.

#![warn(missing_docs)]

pub mod counters;
pub mod export;
pub mod export_path;
pub mod histogram;
pub mod sampler;
pub mod service;
pub mod snapshot;

pub use counters::{TelemetryConfig, TelemetryCore, ThreadTelemetry, MAX_TELEMETRY_SHARDS};
pub use export::{
    parse_jsonl_line, parse_prometheus, to_jsonl_line, to_prometheus, ExportParseError, PromSample,
};
pub use histogram::{
    latency_to_jsonl_line, latency_to_prometheus, parse_latency_jsonl_line, HistogramSnapshot,
    LatencyHistogram, HISTOGRAM_BUCKETS,
};
pub use export_path::{
    export_counters, export_to_jsonl_line, export_to_prometheus, ExportCounters, ExportSnapshot,
};
pub use sampler::{Sampler, TimedSnapshot};
pub use service::{service_to_prometheus, ServiceCounters, ServiceSnapshot};
pub use snapshot::TelemetrySnapshot;
