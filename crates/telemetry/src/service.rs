//! Service-level counters for long-running daemons built on the suite
//! (the profile repository server, most prominently).
//!
//! The measurement-path counters in [`crate::counters`] are sharded per
//! measurement thread because they sit on a nanosecond-scale hot path; a
//! network daemon's request path is microseconds at best, so these are
//! plain relaxed atomics — still lock-free, still safe to scrape from any
//! thread at any time, just without the cache-line choreography.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Lock-free counters describing a serving daemon's lifetime totals.
#[derive(Debug, Default)]
pub struct ServiceCounters {
    /// Connections accepted and admitted past the permit gate.
    pub connections: AtomicU64,
    /// Connections rejected because the permit gate was exhausted
    /// (backpressure shedding — the accept loop never blocks).
    pub shed_connections: AtomicU64,
    /// Connections dropped because a read or write exceeded the
    /// per-connection deadline (slow-loris defense).
    pub timeouts: AtomicU64,
    /// Profiles ingested.
    pub ingests: AtomicU64,
    /// Bytes of ingested records appended to the store.
    pub ingest_bytes: AtomicU64,
    /// Query requests served.
    pub queries: AtomicU64,
    /// Requests that returned a typed error (bad request, not found…).
    pub errors: AtomicU64,
    /// Requests whose handler panicked and was isolated.
    pub panics: AtomicU64,
    /// Requests that arrived over the JSON line protocol.
    pub json_requests: AtomicU64,
    /// Requests that arrived over the TPF1 binary protocol.
    pub bin_requests: AtomicU64,
    /// Batched ingest requests (each may carry many profiles; the
    /// per-profile totals still land in `ingests`/`ingest_bytes`).
    pub ingest_batches: AtomicU64,
    /// Live-stream subscriptions accepted (`SUBSCRIBE`).
    pub subscriptions: AtomicU64,
    /// Events pushed to subscribers (snapshots + notifications).
    pub sub_events: AtomicU64,
    /// Events dropped because a subscriber's queue was full (slow
    /// consumers are shed, never allowed to block ingest).
    pub sub_lagged: AtomicU64,
}

/// Point-in-time copy of [`ServiceCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceSnapshot {
    /// Connections admitted.
    pub connections: u64,
    /// Connections shed by backpressure.
    pub shed_connections: u64,
    /// Connections dropped by the per-connection deadline.
    pub timeout_connections: u64,
    /// Profiles ingested.
    pub ingests: u64,
    /// Ingested bytes.
    pub ingest_bytes: u64,
    /// Queries served.
    pub queries: u64,
    /// Typed errors returned.
    pub errors: u64,
    /// Panics isolated.
    pub panics: u64,
    /// Requests served over the JSON line protocol.
    pub json_requests: u64,
    /// Requests served over the TPF1 binary protocol.
    pub bin_requests: u64,
    /// Batched ingest requests served.
    pub ingest_batches: u64,
    /// Live-stream subscriptions accepted.
    pub subscriptions: u64,
    /// Events pushed to subscribers.
    pub sub_events: u64,
    /// Events dropped on slow subscribers.
    pub sub_lagged: u64,
}

impl ServiceCounters {
    /// Fresh zeroed counters behind an `Arc` (handlers clone the arc).
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Bump one counter by `n` (relaxed; totals are monotonic).
    fn bump(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Count an admitted connection.
    pub fn connection(&self) {
        Self::bump(&self.connections, 1);
    }

    /// Count a shed connection.
    pub fn shed(&self) {
        Self::bump(&self.shed_connections, 1);
    }

    /// Count a connection dropped by its read/write deadline.
    pub fn timeout(&self) {
        Self::bump(&self.timeouts, 1);
    }

    /// Count one ingest of `bytes` appended bytes.
    pub fn ingest(&self, bytes: u64) {
        Self::bump(&self.ingests, 1);
        Self::bump(&self.ingest_bytes, bytes);
    }

    /// Count a served query.
    pub fn query(&self) {
        Self::bump(&self.queries, 1);
    }

    /// Count a typed error response.
    pub fn error(&self) {
        Self::bump(&self.errors, 1);
    }

    /// Count an isolated handler panic.
    pub fn panic(&self) {
        Self::bump(&self.panics, 1);
    }

    /// Count a request served over the JSON line protocol.
    pub fn json_request(&self) {
        Self::bump(&self.json_requests, 1);
    }

    /// Count a request served over the TPF1 binary protocol.
    pub fn bin_request(&self) {
        Self::bump(&self.bin_requests, 1);
    }

    /// Count one batched ingest request.
    pub fn ingest_batch(&self) {
        Self::bump(&self.ingest_batches, 1);
    }

    /// Count one accepted subscription.
    pub fn subscription(&self) {
        Self::bump(&self.subscriptions, 1);
    }

    /// Count `n` events pushed to subscribers.
    pub fn sub_events(&self, n: u64) {
        Self::bump(&self.sub_events, n);
    }

    /// Count `n` events dropped on a lagging subscriber.
    pub fn sub_lag(&self, n: u64) {
        Self::bump(&self.sub_lagged, n);
    }

    /// Consistent-enough copy of all counters (each is individually
    /// atomic; cross-counter skew is bounded by in-flight requests).
    pub fn snapshot(&self) -> ServiceSnapshot {
        ServiceSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            shed_connections: self.shed_connections.load(Ordering::Relaxed),
            timeout_connections: self.timeouts.load(Ordering::Relaxed),
            ingests: self.ingests.load(Ordering::Relaxed),
            ingest_bytes: self.ingest_bytes.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            json_requests: self.json_requests.load(Ordering::Relaxed),
            bin_requests: self.bin_requests.load(Ordering::Relaxed),
            ingest_batches: self.ingest_batches.load(Ordering::Relaxed),
            subscriptions: self.subscriptions.load(Ordering::Relaxed),
            sub_events: self.sub_events.load(Ordering::Relaxed),
            sub_lagged: self.sub_lagged.load(Ordering::Relaxed),
        }
    }
}

/// Render a service snapshot in the Prometheus text exposition format,
/// name-spaced `profserve_*` so it can be exposed alongside the
/// measurement metrics without collisions.
pub fn service_to_prometheus(s: &ServiceSnapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut metric = |name: &str, help: &str, value: u64| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    };
    metric(
        "profserve_connections_total",
        "Connections admitted past the permit gate.",
        s.connections,
    );
    metric(
        "profserve_shed_connections_total",
        "Connections rejected by backpressure.",
        s.shed_connections,
    );
    metric(
        "profserve_timeout_connections_total",
        "Connections dropped by the per-connection read/write deadline.",
        s.timeout_connections,
    );
    metric("profserve_ingests_total", "Profiles ingested.", s.ingests);
    metric(
        "profserve_ingest_bytes_total",
        "Bytes appended to the store by ingests.",
        s.ingest_bytes,
    );
    metric("profserve_queries_total", "Query requests served.", s.queries);
    metric(
        "profserve_errors_total",
        "Requests answered with a typed error.",
        s.errors,
    );
    metric(
        "profserve_panics_total",
        "Handler panics isolated by the per-request boundary.",
        s.panics,
    );
    metric(
        "profserve_json_requests_total",
        "Requests served over the JSON line protocol.",
        s.json_requests,
    );
    metric(
        "profserve_bin_requests_total",
        "Requests served over the TPF1 binary protocol.",
        s.bin_requests,
    );
    metric(
        "profserve_ingest_batches_total",
        "Batched ingest requests served.",
        s.ingest_batches,
    );
    metric(
        "profserve_subscriptions_total",
        "Live-stream subscriptions accepted.",
        s.subscriptions,
    );
    metric(
        "profserve_sub_events_total",
        "Events pushed to live subscribers.",
        s.sub_events,
    );
    metric(
        "profserve_sub_lagged_total",
        "Events dropped on slow subscribers.",
        s.sub_lagged,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = ServiceCounters::new();
        c.connection();
        c.connection();
        c.shed();
        c.ingest(100);
        c.ingest(50);
        c.query();
        c.error();
        c.panic();
        c.json_request();
        c.bin_request();
        c.bin_request();
        c.ingest_batch();
        c.subscription();
        c.sub_events(5);
        c.sub_lag(2);
        let s = c.snapshot();
        assert_eq!(s.connections, 2);
        assert_eq!(s.shed_connections, 1);
        assert_eq!(s.ingests, 2);
        assert_eq!(s.ingest_bytes, 150);
        assert_eq!(s.queries, 1);
        assert_eq!(s.errors, 1);
        assert_eq!(s.panics, 1);
        assert_eq!(s.json_requests, 1);
        assert_eq!(s.bin_requests, 2);
        assert_eq!(s.ingest_batches, 1);
        assert_eq!(s.subscriptions, 1);
        assert_eq!(s.sub_events, 5);
        assert_eq!(s.sub_lagged, 2);
    }

    #[test]
    fn concurrent_bumps_lose_nothing() {
        let c = ServiceCounters::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.ingest(3);
                        c.query();
                    }
                });
            }
        });
        let s = c.snapshot();
        assert_eq!(s.ingests, 8000);
        assert_eq!(s.ingest_bytes, 24_000);
        assert_eq!(s.queries, 8000);
    }

    #[test]
    fn prometheus_export_parses_back() {
        let c = ServiceCounters::new();
        c.ingest(42);
        c.shed();
        let text = service_to_prometheus(&c.snapshot());
        let samples = crate::export::parse_prometheus(&text).expect("parse");
        let get = |name: &str| {
            samples
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .value
        };
        assert_eq!(get("profserve_ingests_total") as u64, 1);
        assert_eq!(get("profserve_ingest_bytes_total") as u64, 42);
        assert_eq!(get("profserve_shed_connections_total") as u64, 1);
    }
}
