//! Optional background sampler: a thread that polls [`TelemetryCore`] at
//! a fixed interval and accumulates a time series of snapshots.

use crate::counters::TelemetryCore;
use crate::snapshot::TelemetrySnapshot;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One point of the sampler's time series.
#[derive(Clone, Debug, PartialEq)]
pub struct TimedSnapshot {
    /// Nanoseconds since the sampler started.
    pub elapsed_ns: u64,
    /// The aggregated telemetry at that instant.
    pub snapshot: TelemetrySnapshot,
}

/// A background thread taking fixed-interval telemetry snapshots.
///
/// The sampler only *reads* the relaxed shard slots, so it perturbs the
/// measurement no more than any other poller. Dropping the sampler
/// without calling [`Sampler::stop`] stops the thread and discards the
/// series.
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<Vec<TimedSnapshot>>>,
}

impl Sampler {
    /// Spawn a sampler polling `core` every `every`. Intervals below one
    /// millisecond are clamped up to avoid a busy spin.
    pub fn spawn(core: Arc<TelemetryCore>, every: Duration) -> Sampler {
        let every = every.max(Duration::from_millis(1));
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("taskprof-telemetry-sampler".into())
            .spawn(move || {
                let start = Instant::now();
                let mut series = Vec::new();
                while !stop2.load(Ordering::Acquire) {
                    std::thread::sleep(every);
                    series.push(TimedSnapshot {
                        elapsed_ns: start.elapsed().as_nanos() as u64,
                        snapshot: core.snapshot(),
                    });
                }
                // One final point so short runs still record something.
                series.push(TimedSnapshot {
                    elapsed_ns: start.elapsed().as_nanos() as u64,
                    snapshot: core.snapshot(),
                });
                series
            })
            .expect("spawn telemetry sampler thread");
        Sampler {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop the sampler thread and return the collected series (always at
    /// least one point).
    pub fn stop(mut self) -> Vec<TimedSnapshot> {
        self.stop.store(true, Ordering::Release);
        self.handle
            .take()
            .expect("sampler joined twice")
            .join()
            .unwrap_or_default()
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::TelemetryConfig;
    use pomp::EventClass;

    #[test]
    fn sampler_collects_monotone_series() {
        let core = Arc::new(TelemetryCore::new(TelemetryConfig::default()));
        let sampler = Sampler::spawn(Arc::clone(&core), Duration::from_millis(2));
        let handle = core.thread_handle(0);
        for _ in 0..1000 {
            handle.tick(EventClass::Enter);
            handle.task_created();
        }
        std::thread::sleep(Duration::from_millis(10));
        let series = sampler.stop();
        assert!(!series.is_empty());
        let last = series.last().unwrap();
        assert_eq!(last.snapshot.tasks_created, 1000);
        for w in series.windows(2) {
            assert!(w[1].elapsed_ns >= w[0].elapsed_ns);
            assert!(w[1].snapshot.tasks_created >= w[0].snapshot.tasks_created);
        }
    }

    #[test]
    fn drop_without_stop_terminates_thread() {
        let core = Arc::new(TelemetryCore::new(TelemetryConfig::default()));
        let sampler = Sampler::spawn(core, Duration::from_millis(1));
        drop(sampler); // must not hang
    }
}
