//! Hand-rolled log2-bucket latency histograms for request tracing.
//!
//! The serving daemon wants per-verb/per-protocol latency distributions,
//! not just totals — but it must record them from concurrent handler
//! threads without locks and without a dependency. The classic answer is
//! a power-of-two bucketed histogram: `record(ns)` is a `leading_zeros`
//! plus two relaxed atomic adds, and the snapshot is exact enough for
//! p50/p99 at log2 resolution (each bucket spans one doubling).
//!
//! Bucket `i` covers `[2^i, 2^(i+1))` nanoseconds, except bucket 0 which
//! also absorbs 0 ns, and the last bucket which saturates upward. With
//! [`HISTOGRAM_BUCKETS`] = 32 the top bucket starts at `2^31` ns ≈ 2.1 s
//! — far beyond any sane request deadline, so saturation is theoretical.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets per histogram.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A lock-free latency histogram: relaxed atomic buckets plus count,
/// sum, and max. Recording never blocks and never allocates.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

/// Which bucket a duration lands in.
fn bucket_index(ns: u64) -> usize {
    ((63 - ns.max(1).leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the saturating
/// top bucket).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i + 1 >= HISTOGRAM_BUCKETS {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

impl LatencyHistogram {
    /// Fresh empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one duration.
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Consistent-enough copy (each cell individually atomic; skew is
    /// bounded by recordings in flight during the read).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, cell) in buckets.iter_mut().zip(&self.buckets) {
            *out = cell.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Point-in-time copy of a [`LatencyHistogram`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Durations recorded.
    pub count: u64,
    /// Sum of recorded durations, ns.
    pub sum_ns: u64,
    /// Largest recorded duration, ns.
    pub max_ns: u64,
    /// Per-bucket counts; bucket `i` covers `[2^i, 2^(i+1))` ns.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            count: 0,
            sum_ns: 0,
            max_ns: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean duration (0 while empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// The `q`-quantile (`0.0..=1.0`) at bucket resolution: the upper
    /// bound of the bucket holding the `ceil(q * count)`-th sample,
    /// clamped to the observed maximum. 0 while empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Fold `other` into `self` (for cross-verb or cross-protocol
    /// rollups).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

/// Render labelled histogram series in the Prometheus text exposition
/// format: cumulative `<name>_bucket{...,le="..."}` samples (one per
/// non-empty prefix, plus `+Inf`), then `<name>_sum` / `<name>_count`
/// per series. Output parses back through
/// [`crate::export::parse_prometheus`].
pub fn latency_to_prometheus(
    name: &str,
    help: &str,
    series: &[(Vec<(String, String)>, HistogramSnapshot)],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    for (labels, snap) in series {
        let base: String = labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{v}\","))
            .collect();
        let highest = snap
            .buckets
            .iter()
            .rposition(|&n| n > 0)
            .map(|i| i + 1)
            .unwrap_or(0);
        let mut cumulative = 0u64;
        for (i, &n) in snap.buckets.iter().enumerate().take(highest) {
            cumulative += n;
            let _ = writeln!(
                out,
                "{name}_bucket{{{base}le=\"{}\"}} {cumulative}",
                bucket_upper_bound(i)
            );
        }
        let _ = writeln!(out, "{name}_bucket{{{base}le=\"+Inf\"}} {}", snap.count);
        let trimmed = base.trim_end_matches(',');
        let _ = writeln!(out, "{name}_sum{{{trimmed}}} {}", snap.sum_ns);
        let _ = writeln!(out, "{name}_count{{{trimmed}}} {}", snap.count);
    }
    out
}

/// Render keyed histogram snapshots as one flat JSON line in the same
/// style as [`crate::export::to_jsonl_line`]: every value a plain `u64`,
/// keys `"<key>.count"` / `"<key>.sum_ns"` / `"<key>.max_ns"` /
/// `"<key>.b<i>"` (empty buckets omitted). Keys must not contain `"`.
pub fn latency_to_jsonl_line(t_ns: u64, series: &[(String, HistogramSnapshot)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{");
    let _ = write!(out, "\"t_ns\":{t_ns}");
    for (key, snap) in series {
        let _ = write!(out, ",\"{key}.count\":{}", snap.count);
        let _ = write!(out, ",\"{key}.sum_ns\":{}", snap.sum_ns);
        let _ = write!(out, ",\"{key}.max_ns\":{}", snap.max_ns);
        for (i, &n) in snap.buckets.iter().enumerate() {
            if n > 0 {
                let _ = write!(out, ",\"{key}.b{i}\":{n}");
            }
        }
    }
    out.push('}');
    out
}

/// Parse a line written by [`latency_to_jsonl_line`] back into
/// `(t_ns, series)`. Series come back sorted by key; unknown suffixes
/// are ignored.
pub fn parse_latency_jsonl_line(
    line: &str,
) -> Result<(u64, Vec<(String, HistogramSnapshot)>), crate::export::ExportParseError> {
    let bad = |message: String| crate::export::ExportParseError { line: 1, message };
    let body = line
        .trim()
        .strip_prefix('{')
        .and_then(|l| l.strip_suffix('}'))
        .ok_or_else(|| bad("not a JSON object".into()))?;
    let mut t_ns = 0u64;
    let mut series: std::collections::BTreeMap<String, HistogramSnapshot> =
        std::collections::BTreeMap::new();
    for pair in body.split(',').filter(|p| !p.trim().is_empty()) {
        let (k, v) = pair
            .split_once(':')
            .ok_or_else(|| bad(format!("bad member '{pair}'")))?;
        let key = k
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| bad(format!("unquoted key '{k}'")))?;
        let value: u64 = v
            .trim()
            .parse()
            .map_err(|_| bad(format!("bad value for '{key}': '{}'", v.trim())))?;
        if key == "t_ns" {
            t_ns = value;
            continue;
        }
        let Some((prefix, field)) = key.rsplit_once('.') else {
            continue;
        };
        let snap = series.entry(prefix.to_string()).or_default();
        match field {
            "count" => snap.count = value,
            "sum_ns" => snap.sum_ns = value,
            "max_ns" => snap.max_ns = value,
            _ => {
                if let Some(i) = field.strip_prefix('b').and_then(|i| i.parse::<usize>().ok()) {
                    if i < HISTOGRAM_BUCKETS {
                        snap.buckets[i] = value;
                    }
                }
            }
        }
    }
    Ok((t_ns, series.into_iter().collect()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn buckets_cover_doublings() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), 1);
        assert_eq!(bucket_upper_bound(10), 2047);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn record_and_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.snapshot().quantile_ns(0.5), 0);
        for ns in [100u64, 110, 120, 130, 90_000] {
            h.record(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum_ns, 90_460);
        assert_eq!(s.max_ns, 90_000);
        assert_eq!(s.mean_ns(), 18_092);
        // p50 lands in the [64,128) bucket → upper bound 127.
        assert_eq!(s.quantile_ns(0.5), 127);
        // p99 reaches the outlier's bucket but clamps to the true max.
        assert_eq!(s.quantile_ns(0.99), 90_000);
        assert_eq!(s.quantile_ns(1.0), 90_000);
    }

    #[test]
    fn merge_folds_everything() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(10);
        a.record(20);
        b.record(1_000_000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.sum_ns, 1_000_030);
        assert_eq!(m.max_ns, 1_000_000);
        assert_eq!(m.buckets.iter().sum::<u64>(), 3);
    }

    #[test]
    fn concurrent_records_lose_nothing() {
        let h = Arc::new(LatencyHistogram::new());
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..1000 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 8000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 8000);
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_parses_back() {
        let h = LatencyHistogram::new();
        for ns in [100u64, 200, 3_000] {
            h.record(ns);
        }
        let series = vec![(
            vec![
                ("verb".to_string(), "ingest".to_string()),
                ("proto".to_string(), "json".to_string()),
            ],
            h.snapshot(),
        )];
        let text = latency_to_prometheus(
            "profserve_request_latency_ns",
            "Request latency by verb and protocol.",
            &series,
        );
        let samples = crate::export::parse_prometheus(&text).expect("parses");
        let inf = samples
            .iter()
            .find(|s| s.name == "profserve_request_latency_ns_bucket" && s.label("le") == Some("+Inf"))
            .expect("+Inf bucket");
        assert_eq!(inf.value, 3.0);
        assert_eq!(inf.label("verb"), Some("ingest"));
        assert_eq!(inf.label("proto"), Some("json"));
        let count = samples
            .iter()
            .find(|s| s.name == "profserve_request_latency_ns_count")
            .expect("count");
        assert_eq!(count.value, 3.0);
        let sum = samples
            .iter()
            .find(|s| s.name == "profserve_request_latency_ns_sum")
            .expect("sum");
        assert_eq!(sum.value, 3_300.0);
        // Buckets are cumulative: values never decrease in le order.
        let mut last = 0.0;
        for s in samples
            .iter()
            .filter(|s| s.name.ends_with("_bucket") && s.label("le") != Some("+Inf"))
        {
            assert!(s.value >= last, "non-monotonic buckets:\n{text}");
            last = s.value;
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let h = LatencyHistogram::new();
        for ns in [50u64, 60, 1_000_000] {
            h.record(ns);
        }
        let series = vec![
            ("ingest.json".to_string(), h.snapshot()),
            ("query_top.bin".to_string(), HistogramSnapshot::default()),
        ];
        let line = latency_to_jsonl_line(42, &series);
        let (t, back) = parse_latency_jsonl_line(&line).expect("parses");
        assert_eq!(t, 42);
        assert_eq!(back.len(), 2);
        let ingest = &back.iter().find(|(k, _)| k == "ingest.json").unwrap().1;
        assert_eq!(*ingest, series[0].1);
        assert!(parse_latency_jsonl_line("nope").is_err());
    }
}
