//! Counters for the *client-side* resilient export path: retries against
//! an unreachable daemon, profiles degraded to the local spool, and
//! spooled profiles later drained to the server.
//!
//! These are process-global (one export pipeline per process, shared by
//! every `MeasurementSession` and the CLI's `drain` command) and follow
//! the same relaxed-atomic discipline as [`crate::service`]: the export
//! path is milliseconds-scale, so plain atomics are free.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free totals for the resilient export pipeline.
#[derive(Debug, Default)]
pub struct ExportCounters {
    /// Delivery attempts beyond the first (i.e. retries after a
    /// connect/send failure).
    pub retries: AtomicU64,
    /// Profiles written to the local spool because the daemon stayed
    /// unreachable within the export deadline.
    pub spooled: AtomicU64,
    /// Spooled profiles later delivered to the daemon (by
    /// drain-on-next-success or `taskprof-cli drain`).
    pub drained: AtomicU64,
}

/// Point-in-time copy of [`ExportCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExportSnapshot {
    /// Retry attempts.
    pub retries: u64,
    /// Profiles spooled.
    pub spooled: u64,
    /// Spooled profiles drained.
    pub drained: u64,
}

impl ExportCounters {
    /// Count `n` retry attempts.
    pub fn retry(&self, n: u64) {
        self.retries.fetch_add(n, Ordering::Relaxed);
    }

    /// Count one profile spooled locally.
    pub fn spool(&self) {
        self.spooled.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` spooled profiles drained to the daemon.
    pub fn drain(&self, n: u64) {
        self.drained.fetch_add(n, Ordering::Relaxed);
    }

    /// Copy of the totals.
    pub fn snapshot(&self) -> ExportSnapshot {
        ExportSnapshot {
            retries: self.retries.load(Ordering::Relaxed),
            spooled: self.spooled.load(Ordering::Relaxed),
            drained: self.drained.load(Ordering::Relaxed),
        }
    }
}

/// The process-global export counters.
pub fn export_counters() -> &'static ExportCounters {
    static GLOBAL: ExportCounters = ExportCounters {
        retries: AtomicU64::new(0),
        spooled: AtomicU64::new(0),
        drained: AtomicU64::new(0),
    };
    &GLOBAL
}

/// Render an export snapshot in the Prometheus text exposition format
/// (`taskprof_export_*` namespace).
pub fn export_to_prometheus(s: &ExportSnapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut metric = |name: &str, help: &str, value: u64| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    };
    metric(
        "taskprof_export_retries_total",
        "Export delivery retries after a connect/send failure.",
        s.retries,
    );
    metric(
        "taskprof_export_spooled_total",
        "Profiles degraded to the local spool.",
        s.spooled,
    );
    metric(
        "taskprof_export_drained_total",
        "Spooled profiles later delivered to the daemon.",
        s.drained,
    );
    out
}

/// Render an export snapshot as one JSON-lines record (same style as the
/// measurement-path JSONL exporter).
pub fn export_to_jsonl_line(s: &ExportSnapshot) -> String {
    format!(
        "{{\"export_retries\":{},\"export_spooled\":{},\"export_drained\":{}}}",
        s.retries, s.spooled, s.drained
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = ExportCounters::default();
        c.retry(2);
        c.retry(1);
        c.spool();
        c.drain(3);
        let s = c.snapshot();
        assert_eq!(s.retries, 3);
        assert_eq!(s.spooled, 1);
        assert_eq!(s.drained, 3);
    }

    #[test]
    fn prometheus_export_parses_back() {
        let c = ExportCounters::default();
        c.retry(4);
        c.spool();
        c.spool();
        let text = export_to_prometheus(&c.snapshot());
        let samples = crate::export::parse_prometheus(&text).expect("parse");
        let get = |name: &str| {
            samples
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .value
        };
        assert_eq!(get("taskprof_export_retries_total") as u64, 4);
        assert_eq!(get("taskprof_export_spooled_total") as u64, 2);
        assert_eq!(get("taskprof_export_drained_total") as u64, 0);
    }

    #[test]
    fn jsonl_line_is_one_object() {
        let line = export_to_jsonl_line(&ExportSnapshot {
            retries: 1,
            spooled: 2,
            drained: 3,
        });
        assert!(!line.contains('\n'));
        assert!(line.contains("\"export_spooled\":2"), "{line}");
    }

    #[test]
    fn global_counters_are_shared() {
        let before = export_counters().snapshot().drained;
        export_counters().drain(1);
        assert_eq!(export_counters().snapshot().drained, before + 1);
    }
}
