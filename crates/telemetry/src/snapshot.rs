//! Plain aggregated telemetry values, decoupled from the atomic core.

use pomp::EventClass;

/// One aggregated view of a session's telemetry, taken at some instant.
/// All counters are cumulative since session start; `live_trees`,
/// `threads_active`, `handoff_depth` and `spare_arenas` are gauges.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Hook invocations per [`EventClass`] (indexed by
    /// [`EventClass::index`]).
    pub events: [u64; EventClass::COUNT],
    /// Perturbation sampling: self-timed events per class.
    pub perturb_samples: [u64; EventClass::COUNT],
    /// Perturbation sampling: summed self-timed cost per class, ns.
    pub perturb_ns: [u64; EventClass::COUNT],
    /// Deferred task instances created.
    pub tasks_created: u64,
    /// Task instances completed normally.
    pub tasks_completed: u64,
    /// Task instances aborted (panicked or force-closed).
    pub tasks_aborted: u64,
    /// Task instances degraded to counting-only by the live-tree cap.
    pub tasks_shed: u64,
    /// Task fragments executed (every resumption of an explicit task).
    pub fragments: u64,
    /// Total time spent executing explicit task fragments, ns (the live
    /// stub-node time of the paper's Fig. 5 split).
    pub stub_time_ns: u64,
    /// Instance trees currently live, summed over threads (gauge).
    pub live_trees: u64,
    /// High-water mark of per-thread concurrently live instance trees
    /// (paper Table II; max over threads).
    pub live_trees_hwm: u64,
    /// Measurement threads currently between begin and end (gauge).
    pub threads_active: u64,
    /// Finished per-thread snapshots published but not yet collected
    /// (gauge; depth of the lock-free hand-off stack).
    pub handoff_depth: u64,
    /// Recycled arenas currently parked in the spare pool (gauge).
    pub spare_arenas: u64,
    /// Times a region start found a spare arena to steal.
    pub arenas_recycled: u64,
    /// Times a region start had to allocate a fresh arena.
    pub arenas_allocated: u64,
}

impl TelemetrySnapshot {
    /// Total hook invocations across all event classes.
    pub fn total_events(&self) -> u64 {
        self.events.iter().sum()
    }

    /// Task instances currently in flight: created but neither completed
    /// nor aborted. (Shed instances still complete or abort, so they are
    /// not subtracted.)
    pub fn tasks_in_flight(&self) -> u64 {
        self.tasks_created
            .saturating_sub(self.tasks_completed + self.tasks_aborted)
    }

    /// Mean sampled self-cost of one `class` event, ns (`None` until a
    /// sample of that class landed).
    pub fn per_event_cost_ns(&self, class: EventClass) -> Option<f64> {
        let i = class.index();
        (self.perturb_samples[i] > 0)
            .then(|| self.perturb_ns[i] as f64 / self.perturb_samples[i] as f64)
    }

    /// Estimated total measurement perturbation, ns: for each event class,
    /// the mean sampled self-cost extrapolated to every event of that
    /// class (the live analogue of the paper's Figs. 13–14 overhead
    /// accounting). Classes without samples yet contribute 0.
    pub fn estimated_overhead_ns(&self) -> f64 {
        EventClass::ALL
            .into_iter()
            .map(|c| {
                self.per_event_cost_ns(c)
                    .map_or(0.0, |mean| mean * self.events[c.index()] as f64)
            })
            .sum()
    }

    /// Estimated perturbation as a fraction of `elapsed_ns` of wall time
    /// (`None` when `elapsed_ns` is 0).
    pub fn estimated_overhead_ratio(&self, elapsed_ns: u64) -> Option<f64> {
        (elapsed_ns > 0).then(|| self.estimated_overhead_ns() / elapsed_ns as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_extrapolates_sampled_cost() {
        let mut s = TelemetrySnapshot::default();
        let e = EventClass::Enter.index();
        s.events[e] = 1000;
        s.perturb_samples[e] = 10;
        s.perturb_ns[e] = 500; // mean 50 ns
        let x = EventClass::Exit.index();
        s.events[x] = 100; // no samples: contributes 0
        assert_eq!(s.estimated_overhead_ns(), 50.0 * 1000.0);
        assert_eq!(s.estimated_overhead_ratio(0), None);
        assert!((s.estimated_overhead_ratio(100_000).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tasks_in_flight_saturates() {
        let mut s = TelemetrySnapshot {
            tasks_created: 5,
            tasks_completed: 3,
            tasks_aborted: 1,
            ..TelemetrySnapshot::default()
        };
        assert_eq!(s.tasks_in_flight(), 1);
        s.tasks_completed = 9; // stale-read skew must not underflow
        assert_eq!(s.tasks_in_flight(), 0);
    }
}
