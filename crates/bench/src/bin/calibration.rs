//! Measurement-system self-calibration: per-event costs on this machine
//! and the predicted overhead per task granularity — the model behind
//! the paper's Figs. 13/14 orderings.

use cube::format_ns;
use taskprof::calibrate;

fn main() {
    println!("== measurement self-calibration ==\n");
    let c = calibrate();
    println!("clock read cost        : {:.1} ns", c.clock_read_ns);
    println!("clock resolution bound : {} ns", c.clock_resolution_ns);
    println!("enter/exit pair cost   : {:.1} ns", c.enter_exit_ns);
    println!("task begin/end cycle   : {:.1} ns (instance tree + stub + merge)", c.task_cycle_ns);
    println!();
    println!("predicted profiling overhead by mean task size:");
    println!("  {:>12}  {:>10}", "task size", "overhead");
    for &size in &[500.0, 1_490.0, 8_570.0, 50_000.0, 149_000.0, 1_000_000.0] {
        println!(
            "  {:>12}  {:>9.1}%",
            format_ns(size as u64),
            100.0 * c.overhead_fraction(size)
        );
    }
    println!();
    println!("paper's Table I granularities: fib 1.49µs, floorplan 8.57µs, strassen 149µs —");
    println!("the model predicts exactly the Figs. 13/14 ordering (fib pathological,");
    println!("floorplan tens of percent, strassen ~zero).");
}
