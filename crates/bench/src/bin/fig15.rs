//! Figure 15: runtime of the *uninstrumented* no-cut-off versions vs.
//! thread count, as a percentage of the largest measured value per code —
//! for the codes that also have a cut-off version.
//!
//! Paper reference: runtimes *increase* with threads (task-management
//! contention on tiny tasks), except strassen which scales.

use bench::{banner, print_table, uninstrumented_time, Config};
use bots::{AppId, Variant};
use std::time::Duration;

fn main() {
    let cfg = Config::from_env();
    banner(
        "Fig. 15 — uninstrumented runtime without cut-off, % of per-code max",
        &cfg,
    );
    let apps = [
        AppId::Fib,
        AppId::Floorplan,
        AppId::Health,
        AppId::Nqueens,
        AppId::Strassen,
    ];
    let mut rows = Vec::new();
    for app in apps {
        let times: Vec<Duration> = cfg
            .threads
            .iter()
            .map(|&t| uninstrumented_time(app, t, cfg.scale, Variant::NoCutoff, cfg.reps))
            .collect();
        let max = times.iter().max().copied().unwrap_or_default();
        let mut row = vec![app.name().to_string()];
        for time in &times {
            row.push(format!(
                "{:5.1}% ({:.3}s)",
                100.0 * time.as_secs_f64() / max.as_secs_f64(),
                time.as_secs_f64()
            ));
        }
        rows.push(row);
    }
    let mut headers = vec!["code"];
    let labels: Vec<String> = cfg.threads.iter().map(|t| format!("{t} thr")).collect();
    headers.extend(labels.iter().map(String::as_str));
    print_table(&headers, &rows);
    println!();
    println!("shape check vs paper: tiny-task codes should NOT get faster with threads");
}
