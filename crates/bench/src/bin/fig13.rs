//! Figure 13: runtime overhead of task profiling, optimized (cut-off)
//! versions, vs. the uninstrumented baseline, for 1/2/4/8 threads.
//!
//! Paper reference (Juropa, GCC 4.6.2, medium inputs): alignment /
//! sparselu / strassen ≈ 0 %; nqueens and sort ≈ 6 %; floorplan 6–11 %;
//! fft 10–17 %; health 6–32 % (shrinking with threads); fib ≈ 310 %
//! (pathological: tasks are a single addition).

use bench::{banner, fmt_pct, fmt_secs, instrumented_time, overhead_pct, print_table, Config, uninstrumented_time};
use bots::{Variant, ALL_APPS};

fn main() {
    let cfg = Config::from_env();
    banner(
        "Fig. 13 — profiling overhead, cut-off versions where available",
        &cfg,
    );
    let mut rows = Vec::new();
    for app in ALL_APPS {
        let variant = if app.has_cutoff() {
            Variant::Cutoff
        } else {
            Variant::NoCutoff
        };
        let mut row = vec![format!(
            "{}{}",
            app.name(),
            if app.has_cutoff() { " (cut-off)" } else { "" }
        )];
        for &t in &cfg.threads {
            let base = uninstrumented_time(app, t, cfg.scale, variant, cfg.reps);
            let (instr, _) = instrumented_time(app, t, cfg.scale, variant, cfg.reps);
            row.push(format!(
                "{} ({}s/{}s)",
                fmt_pct(overhead_pct(instr, base)),
                fmt_secs(instr),
                fmt_secs(base)
            ));
        }
        rows.push(row);
    }
    let mut headers = vec!["code"];
    let labels: Vec<String> = cfg.threads.iter().map(|t| format!("{t} thr")).collect();
    headers.extend(labels.iter().map(String::as_str));
    print_table(&headers, &rows);
    println!();
    println!("cells: overhead% (instrumented s / uninstrumented s), min of reps");
}
