//! Table III: exclusive execution times of the `nqueens` regions across
//! thread counts (instrumented, no cut-off).
//!
//! Paper reference: task exclusive time stays ~constant (106–114 s) while
//! taskwait (2.4 s → 102 s), task creation (56 s → 1102 s), and the
//! barrier (0 → 948 s) explode with threads — the signature of task-
//! management contention on too-small tasks.

use bench::{banner, instrumented_time, print_table, Config};
use bots::{AppId, Variant};
use cube::{region_excl_by_name, AggProfile};
use pomp::RegionKind;

fn row_for(label: &str, values: Vec<f64>) -> Vec<String> {
    let mut row = vec![label.to_string()];
    row.extend(values.into_iter().map(|v| format!("{v:.4}s")));
    row
}

fn main() {
    let cfg = Config::from_env();
    banner("Table III — nqueens exclusive times by region (no cut-off)", &cfg);
    let mut profiles: Vec<(usize, AggProfile)> = Vec::new();
    for &t in &cfg.threads {
        let (_, prof) = instrumented_time(AppId::Nqueens, t, cfg.scale, Variant::NoCutoff, cfg.reps);
        profiles.push((t, prof));
    }
    let excl = |name: &str| -> Vec<f64> {
        profiles
            .iter()
            .map(|(_, p)| region_excl_by_name(p, name) as f64 / 1e9)
            .collect()
    };
    // Exclusive barrier time: stub children (task work executed inside the
    // barrier, the Fig. 5 split) are subtracted by the exclusive-time rule.
    let barrier: Vec<f64> = profiles
        .iter()
        .map(|(_, p)| cube::region_excl_by_kind(p, RegionKind::ImplicitBarrier) as f64 / 1e9)
        .collect();
    let rows = vec![
        row_for("task", excl("nqueens")),
        row_for("taskwait", excl("nqueens!taskwait")),
        row_for("create task", excl("nqueens!create")),
        row_for("barrier", barrier),
    ];
    let mut headers = vec!["region"];
    let labels: Vec<String> = profiles.iter().map(|(t, _)| format!("{t} thr")).collect();
    headers.extend(labels.iter().map(String::as_str));
    print_table(&headers, &rows);
    println!();
    println!("shape check vs paper: 'task' ~flat; taskwait / create / barrier grow with threads");
}
