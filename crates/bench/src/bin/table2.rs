//! Table II: maximum number of concurrently executing task instances per
//! thread (the memory bound of the profiling system, Section V-B).
//!
//! Paper reference: never more than 20; in 8 of 14 cases below 5; for
//! recursive codes it reflects the recursion (suspension) depth, and the
//! cut-off versions are much smaller.

use bench::{banner, instrumented_time, print_table, Config};
use bots::{Variant, ALL_APPS};

fn main() {
    let cfg = Config::from_env();
    banner("Table II — max concurrently executing tasks per thread", &cfg);
    let threads = cfg.threads.iter().copied().max().unwrap_or(4);
    let mut rows = Vec::new();
    for app in ALL_APPS {
        let (_, prof) = instrumented_time(app, threads, cfg.scale, Variant::NoCutoff, 1);
        rows.push(vec![app.name().to_string(), prof.max_live_trees.to_string()]);
        if app.has_cutoff() {
            let (_, prof) = instrumented_time(app, threads, cfg.scale, Variant::Cutoff, 1);
            rows.push(vec![
                format!("{} (cut-off)", app.name()),
                prof.max_live_trees.to_string(),
            ]);
        }
    }
    print_table(&["code", "max tasks"], &rows);
    println!();
    println!("paper: alignment 1, fft 19, fib(co) 4, floorplan 20/5, health 4/3,");
    println!("       nqueens 14/3, sort 18, sparselu 2, strassen 8/3  (all ≤ 20)");
}
