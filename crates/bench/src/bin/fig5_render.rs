//! Figure 5: the CUBE call-tree view with stub nodes — rendered as ASCII.
//!
//! Runs fib (cut-off) instrumented and prints the aggregated profile: the
//! implicit tasks' main tree (with the barrier's stub split into task
//! execution vs. management/idle) and the task construct's own tree
//! beside it.

use bench::{banner, instrumented_run, Config};
use bots::{AppId, RunOpts, Variant};
use cube::{render_profile, RenderOpts};

fn main() {
    let cfg = Config::from_env();
    banner("Fig. 5 — profile call-tree view with stub nodes", &cfg);
    let threads = cfg.threads.iter().copied().max().unwrap_or(4);
    let opts = RunOpts::new(threads).scale(cfg.scale).variant(Variant::Cutoff);
    let (_, prof) = instrumented_run(AppId::Fib, &opts);
    let text = render_profile(
        &prof,
        &RenderOpts {
            stats: true,
            ..Default::default()
        },
    );
    println!("{text}");
    println!("reading guide (paper Fig. 5): under the implicit barrier, the stub node's");
    println!("inclusive time is task execution inside the barrier; the barrier's exclusive");
    println!("time is what remains — task management and/or idle time.");
}
