//! Table I: mean task execution time and task count for the no-cut-off
//! versions.
//!
//! Paper reference (medium inputs): fib 1.49 µs / 3.69 G tasks, floorplan
//! 8.57 µs / 73.7 M, health 2.35 µs / 17.5 M, nqueens 1.24 µs / 378 M,
//! strassen 149 µs / 0.96 M. The *ordering* (strassen tasks two orders of
//! magnitude larger, its task count smallest) is the reproduction target;
//! absolute counts are scaled with the inputs.

use bench::{banner, instrumented_time, print_table, Config};
use bots::{AppId, Variant};
use cube::{format_ns, task_stats};

fn main() {
    let cfg = Config::from_env();
    banner("Table I — mean task execution time / number of tasks (no cut-off)", &cfg);
    let apps = [
        AppId::Fib,
        AppId::Floorplan,
        AppId::Health,
        AppId::Nqueens,
        AppId::Strassen,
    ];
    let threads = cfg.threads.first().copied().unwrap_or(1);
    let mut rows = Vec::new();
    for app in apps {
        let (_, prof) = instrumented_time(app, threads, cfg.scale, Variant::NoCutoff, 1);
        // Sum over every task construct of the code (sort/sparselu have
        // several; these five have one each).
        let stats = task_stats(&prof);
        let total_instances: u64 = stats.iter().map(|s| s.instances).sum();
        let total_ns: u64 = stats.iter().map(|s| s.sum_ns).sum();
        let mean = total_ns.checked_div(total_instances).unwrap_or(0);
        rows.push(vec![
            app.name().to_string(),
            format_ns(mean),
            total_instances.to_string(),
        ]);
    }
    print_table(&["code", "mean time", "number of tasks"], &rows);
    println!();
    println!("paper (medium): fib 1.49µs/3.69e9  floorplan 8.57µs/7.37e7  health 2.35µs/1.75e7");
    println!("               nqueens 1.24µs/3.78e8  strassen 149µs/9.6e5");
}
