//! Regenerate `BENCH_overhead.json`: per-event instrumentation overhead on
//! the BOTS fib/nqueens/sort kernels, before (legacy shared-`Arc` + mutex
//! merge) vs. after (sharded lock-free fast path behind
//! `MeasurementSession`).
//!
//! ```text
//! cargo run --release -p bench --bin overhead_json [-- <output-path>]
//! ```
//!
//! Knobs: `BENCH_SCALE` (default small), `BENCH_THREADS` (first entry > 1
//! is used; default 4), `BENCH_REPS` (default 3; minimum time is kept).

use bench::legacy::LegacyProfMonitor;
use bench::{
    count_events, fmt_pct, fmt_secs, legacy_instrumented_time, overhead_pct, print_table,
    uninstrumented_time, Config,
};
use bots::{run_app, AppId, RunOpts, Scale, Variant};
use cube::AggProfile;
use pomp::{registry, Monitor, RegionKind, TaskIdAllocator, ThreadHooks};
use std::time::{Duration, Instant};
use taskprof::{AssignPolicy, Event, ProfMonitor, TeamReplayer};
use taskprof_session::MeasurementSession;

/// The paper's overhead kernels (Figs. 13-14 subset used for the
/// perf-trajectory baseline).
const APPS: [AppId; 3] = [AppId::Fib, AppId::Nqueens, AppId::Sort];

struct Row {
    app: &'static str,
    base: Duration,
    legacy: Duration,
    session: Duration,
    events: u64,
}

/// Below this many events the instrumentation delta is dominated by
/// scheduler and timer noise, so a per-event quotient would be garbage
/// (historically it rendered as a misleading `0.00`). Such apps report
/// `null` and are excluded from the kernel aggregate.
const PER_EVENT_FLOOR: u64 = 10_000;

impl Row {
    fn per_event_ns(&self, instr: Duration) -> Option<f64> {
        if self.events < PER_EVENT_FLOOR {
            return None;
        }
        Some((instr.as_nanos() as f64 - self.base.as_nanos() as f64).max(0.0) / self.events as f64)
    }
}

/// Render an optional per-event figure for the console table.
fn fmt_opt_ns(v: Option<f64>) -> String {
    v.map_or_else(|| "n/a".to_string(), |x| format!("{x:.1}"))
}

/// Render an optional figure as a JSON number or `null`.
fn json_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| format!("{x:.2}"))
}

/// Minimum kernel time over `reps` runs under the sharded session path.
fn session_time(
    app: AppId,
    threads: usize,
    scale: Scale,
    variant: Variant,
    reps: usize,
) -> Duration {
    let opts = RunOpts::new(threads).scale(scale).variant(variant);
    (0..reps)
        .map(|_| {
            let session = MeasurementSession::builder("overhead")
                .threads(threads)
                .build()
                .expect("default session configuration is valid");
            let out = run_app(app, session.monitor(), &opts);
            assert!(out.verified, "{} failed verification", app.name());
            let report = session.finish();
            assert_eq!(report.profile.num_threads(), threads);
            // Profile must be structurally usable, not just collected.
            let agg = AggProfile::from_profile(&report.profile);
            assert!(!agg.task_trees.is_empty(), "{}: no task trees", app.name());
            out.kernel
        })
        .min()
        .expect("reps >= 1")
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Events emitted per iteration of the steady-state loop (one full task
/// life cycle executed inline: create begin/end, begin, enter/exit, end).
const EVENTS_PER_ITER: u64 = 6;

/// One timed chunk of the steady-state loop: full task life cycles driven
/// straight through the `ThreadHooks` interface.
fn drive_chunk<T: ThreadHooks>(
    thread: &T,
    ids: &TaskIdAllocator,
    create: pomp::RegionId,
    task: pomp::RegionId,
    work: pomp::RegionId,
    iters: u64,
) -> Duration {
    let t0 = Instant::now();
    for _ in 0..iters {
        let id = ids.alloc();
        thread.task_create_begin(create, task, id);
        thread.task_create_end(create, id);
        thread.task_begin(task, id);
        thread.enter(work);
        thread.exit(work);
        thread.task_end(task, id);
    }
    t0.elapsed()
}

/// Per-event cost of the two monitors' hot paths, measured directly and
/// *paired*: one thread, legacy and session chunks interleaved inside a
/// single run, so CPU frequency drift and timer-interrupt noise hit both
/// equally instead of landing on whichever happened to run later. This
/// isolates what the sharding changed — no kernel work, no scheduler
/// noise.
fn steady_state_pair<A: Monitor, B: Monitor>(legacy: &A, session: &B, iters: u64) -> (f64, f64) {
    const CHUNKS: u64 = 20;
    let par = pomp::region!("ovh!parallel", RegionKind::Parallel);
    let create = pomp::region!("ovh!create", RegionKind::TaskCreate);
    let task = pomp::region!("ovh_task", RegionKind::Task);
    let work = pomp::region!("ovh_work", RegionKind::Function);
    let ids = TaskIdAllocator::new();
    let per_chunk = (iters / CHUNKS).max(1);

    legacy.parallel_fork(par, 1);
    let lt = legacy.thread_begin(0, 1, par);
    session.parallel_fork(par, 1);
    let st = session.thread_begin(0, 1, par);

    // Warm both arenas / branch predictors before timing.
    drive_chunk(&lt, &ids, create, task, work, per_chunk);
    drive_chunk(&st, &ids, create, task, work, per_chunk);

    let mut legacy_ns = 0u128;
    let mut session_ns = 0u128;
    for _ in 0..CHUNKS {
        legacy_ns += drive_chunk(&lt, &ids, create, task, work, per_chunk).as_nanos();
        session_ns += drive_chunk(&st, &ids, create, task, work, per_chunk).as_nanos();
    }
    legacy.thread_end(0, lt);
    legacy.parallel_join(par);
    session.thread_end(0, st);
    session.parallel_join(par);

    let events = (CHUNKS * per_chunk * EVENTS_PER_ITER) as f64;
    (legacy_ns as f64 / events, session_ns as f64 / events)
}

/// Per-region cost of a full measurement cycle — `thread_begin` (arena
/// setup), a burst of task events, `thread_end` (snapshot hand-off) — on
/// `nthreads` concurrent threads. This is where arena recycling and the
/// lock-free merge replace per-region allocation and the mutex.
fn region_cycle_ns<M: Monitor + Sync>(monitor: &M, regions: u64, nthreads: usize) -> f64 {
    let par = pomp::region!("ovh!parallel", RegionKind::Parallel);
    let create = pomp::region!("ovh!create", RegionKind::TaskCreate);
    let task = pomp::region!("ovh_task", RegionKind::Task);
    let ids = TaskIdAllocator::new();
    let ids = &ids;

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..nthreads {
            s.spawn(move || {
                for _ in 0..regions {
                    monitor.parallel_fork(par, nthreads);
                    let thread = monitor.thread_begin(tid, nthreads, par);
                    for _ in 0..32 {
                        let id = ids.alloc();
                        thread.task_create_begin(create, task, id);
                        thread.task_create_end(create, id);
                        thread.task_begin(task, id);
                        thread.task_end(task, id);
                    }
                    monitor.thread_end(tid, thread);
                    monitor.parallel_join(par);
                }
            });
        }
    });
    t0.elapsed().as_nanos() as f64 / (regions * nthreads as u64) as f64
}

struct MicroResult {
    legacy: f64,
    session: f64,
}

impl MicroResult {
    fn improvement_pct(&self) -> f64 {
        if self.legacy > 0.0 {
            (1.0 - self.session / self.legacy) * 100.0
        } else {
            0.0
        }
    }
}

/// Telemetry's per-event cost, measured the same paired way: one
/// `ProfMonitor` without telemetry vs. one with it, chunks interleaved in
/// a single run. The telemetry tail is a handful of relaxed stores on the
/// thread's own cache line plus a 1-in-N sampled second clock read, so
/// the on/off gap is the release-mode number behind the <5% budget.
fn telemetry_pair(reps: usize) -> MicroResult {
    const ITERS: u64 = 300_000;
    let mut pair = MicroResult {
        legacy: f64::INFINITY,
        session: f64::INFINITY,
    };
    for _ in 0..reps {
        let off = ProfMonitor::new();
        let on = ProfMonitor::builder()
            .telemetry()
            .build()
            .expect("default telemetry configuration is valid");
        let (o, t) = steady_state_pair(&off, &on, ITERS);
        pair.legacy = pair.legacy.min(o);
        pair.session = pair.session.min(t);
        off.take_profile().expect("no region in flight");
        on.take_profile().expect("no region in flight");
    }
    pair
}

fn run_microbenches(reps: usize) -> (MicroResult, MicroResult, MicroResult) {
    const ITERS: u64 = 300_000;
    const REGIONS: u64 = 2_000;
    const THREADS: usize = 4;

    // Interleave legacy/session rep by rep so drift hits both equally;
    // keep the minima.
    let mut steady = MicroResult {
        legacy: f64::INFINITY,
        session: f64::INFINITY,
    };
    let mut machinery = MicroResult {
        legacy: f64::INFINITY,
        session: f64::INFINITY,
    };
    let mut cycle = MicroResult {
        legacy: f64::INFINITY,
        session: f64::INFINITY,
    };
    for _ in 0..reps {
        let lm = LegacyProfMonitor::new();
        let sm = ProfMonitor::new();
        let (l, s) = steady_state_pair(&lm, &sm, ITERS);
        steady.legacy = steady.legacy.min(l);
        steady.session = steady.session.min(s);
        lm.take_profile();
        sm.take_profile().expect("no region in flight");

        // Same loop under a virtual clock (an atomic load on both sides):
        // the hardware clock read — identical before and after — stops
        // masking the machinery the sharding actually changed (shared-Arc
        // chase + RefCell borrow flag vs. flat reader + plain cell).
        let lm = LegacyProfMonitor::with_clock(pomp::VirtualClock::new());
        let sm = ProfMonitor::builder()
            .clock(pomp::VirtualClock::new())
            .build()
            .expect("default limits are valid");
        let (l, s) = steady_state_pair(&lm, &sm, ITERS);
        machinery.legacy = machinery.legacy.min(l);
        machinery.session = machinery.session.min(s);
        lm.take_profile();
        sm.take_profile().expect("no region in flight");

        let m = LegacyProfMonitor::new();
        cycle.legacy = cycle.legacy.min(region_cycle_ns(&m, REGIONS, THREADS));
        m.take_profile();

        let m = ProfMonitor::new();
        cycle.session = cycle.session.min(region_cycle_ns(&m, REGIONS, THREADS));
        m.take_profile().expect("no region in flight");
    }
    (steady, machinery, cycle)
}

struct CritpathBench {
    /// Steady-state ns/event with edge recording off (the default).
    off_ns: f64,
    /// Same loop with `record_task_edges()` on.
    on_ns: f64,
    /// End-to-end fib kernel time, edge recording off.
    app_off: Duration,
    /// End-to-end fib kernel time, edge recording on.
    app_on: Duration,
    /// Events in the end-to-end run.
    app_events: u64,
    /// Task count of the analysis workload.
    tasks: u64,
    /// DAG assembly time for that run's streams, milliseconds.
    build_ms: f64,
    /// `report()` (longest-path solves + flags) on the built DAG, ms.
    report_ms: f64,
    /// One `what_if` re-solve of the weighted DAG, ms.
    whatif_ms: f64,
}

impl CritpathBench {
    fn on_overhead_pct(&self) -> f64 {
        if self.off_ns > 0.0 {
            (self.on_ns / self.off_ns - 1.0) * 100.0
        } else {
            0.0
        }
    }

    /// The budgeted number: what turning edge recording on adds to an
    /// instrumented end-to-end kernel run.
    fn app_overhead_pct(&self) -> f64 {
        let off = self.app_off.as_secs_f64();
        if off > 0.0 {
            (self.app_on.as_secs_f64() / off - 1.0) * 100.0
        } else {
            0.0
        }
    }
}

/// One instrumented fib run with edge recording on or off; returns the
/// kernel time (and drains the streams so reps don't accumulate).
fn edge_app_time(threads: usize, scale: Scale, variant: Variant, record: bool) -> Duration {
    let opts = RunOpts::new(threads).scale(scale).variant(variant);
    let builder = ProfMonitor::builder();
    let builder = if record {
        builder.record_task_edges()
    } else {
        builder
    };
    let monitor = builder.build().expect("default limits are valid");
    let out = run_app(AppId::Fib, &monitor, &opts);
    assert!(out.verified, "fib failed verification");
    monitor.take_profile().expect("no region in flight");
    if record {
        let streams = monitor.take_edge_streams().expect("no region in flight");
        assert!(streams.iter().any(|(_, evs)| !evs.is_empty()));
    }
    out.kernel
}

/// Cost of the causal-profiling subsystem, both halves: what edge
/// recording adds to the hot path (budget <5% on; off is the identical
/// pre-feature path behind one never-taken branch), and what the offline
/// analysis costs on a ~10k-task profile.
fn critpath_bench(reps: usize) -> CritpathBench {
    // Hot path: the steady-state pair loop, edges off vs on. Fewer
    // iterations than the main microbench — the "on" side keeps its
    // event log in memory until thread_end.
    const ITERS: u64 = 100_000;
    let mut off = f64::INFINITY;
    let mut on = f64::INFINITY;
    for _ in 0..reps {
        let plain = ProfMonitor::new();
        let edged = ProfMonitor::builder()
            .record_task_edges()
            .build()
            .expect("default limits are valid");
        let (o, e) = steady_state_pair(&plain, &edged, ITERS);
        off = off.min(o);
        on = on.min(e);
        plain.take_profile().expect("no region in flight");
        edged.take_profile().expect("no region in flight");
        edged.take_edge_streams().expect("no region in flight");
    }

    // The budgeted measurement: an instrumented end-to-end kernel run
    // with the knob on vs off, interleaved rep by rep.
    let threads = 2;
    let (scale, variant) = (Scale::Small, Variant::NoCutoff);
    let mut app_off = Duration::MAX;
    let mut app_on = Duration::MAX;
    // The kernel is short (~16 ms), so noise is a real fraction of a
    // single rep: take more reps than the shared default and keep the
    // min of each side of the interleaved pair.
    for _ in 0..reps.max(9) {
        app_off = app_off.min(edge_app_time(threads, scale, variant, false));
        app_on = app_on.min(edge_app_time(threads, scale, variant, true));
    }
    let app_events = count_events(AppId::Fib, threads, scale, variant);

    // Analysis: a single-producer run with ~10k explicit tasks under the
    // simulated scheduler, assembled and solved offline.
    let workload = simsched::workloads::flat(10_000);
    let run = simsched::run_workload(&workload, &simsched::SimConfig::seeded(2, 42));
    let opts = simsched::whatif::dag_options(&run.config);
    let mut build_ms = f64::INFINITY;
    let mut report_ms = f64::INFINITY;
    let mut whatif_ms = f64::INFINITY;
    let mut tasks = 0;
    for _ in 0..reps {
        let t0 = Instant::now();
        let dag = critpath::TaskDag::from_streams(&run.streams, workload.parallel_region(), &opts)
            .expect("simulated streams form a DAG");
        build_ms = build_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        tasks = dag.tasks();

        let t0 = Instant::now();
        let report = dag.report();
        report_ms = report_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        assert!(report.parallelism >= 1.0);

        let t0 = Instant::now();
        let p = dag.what_if(workload.task_region(), 2);
        whatif_ms = whatif_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        assert!(p.predicted_makespan_ns <= p.baseline_makespan_ns);
    }
    CritpathBench {
        off_ns: off,
        on_ns: on,
        app_off,
        app_on,
        app_events,
        tasks,
        build_ms,
        report_ms,
        whatif_ms,
    }
}

struct IngestThroughput {
    profiles: u64,
    profile_bytes: u64,
    store_profiles_per_sec: f64,
    store_bytes_per_sec: f64,
    server_json_profiles_per_sec: f64,
    server_json_bytes_per_sec: f64,
    server_bin_profiles_per_sec: f64,
    server_bin_bytes_per_sec: f64,
}

impl IngestThroughput {
    /// Binary-over-JSON ingest speedup (the tentpole number).
    fn bin_speedup(&self) -> f64 {
        if self.server_json_profiles_per_sec > 0.0 {
            self.server_bin_profiles_per_sec / self.server_json_profiles_per_sec
        } else {
            0.0
        }
    }
}

/// A mid-sized deterministic profile for the repository benches: two
/// threads, a fan of tasks with nested child work, replayed on a virtual
/// clock so every rep serializes to the same bytes.
fn repository_profile() -> taskprof::Profile {
    let reg = registry();
    let par = reg.register("ovh-ingest!par", RegionKind::Parallel, "bench", 0);
    let task = reg.register("ovh_ingest_task", RegionKind::Task, "bench", 0);
    let child = reg.register("ovh_ingest_child", RegionKind::Task, "bench", 0);
    let ids = TaskIdAllocator::new();
    let mut team = TeamReplayer::new(2, par, AssignPolicy::Executing);
    for tid in 0..2usize {
        for k in 0..8u64 {
            let outer = ids.alloc();
            let inner = ids.alloc();
            team.apply(
                tid,
                Event::TaskBegin {
                    region: task,
                    id: outer,
                },
            )
            .advance(1_000 + k * 37)
            .apply(
                tid,
                Event::TaskEnd {
                    region: task,
                    id: outer,
                },
            )
            .apply(
                tid,
                Event::TaskBegin {
                    region: child,
                    id: inner,
                },
            )
            .advance(500 + k * 11)
            .apply(
                tid,
                Event::TaskEnd {
                    region: child,
                    id: inner,
                },
            );
        }
    }
    team.finish()
}

/// Logical CPUs the host exposes — recorded next to the concurrency
/// numbers, which cannot exceed what the scheduler has to offer.
fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn bench_temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("overhead-json-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Records per binary `INGEST_BATCH` acknowledgement.
const INGEST_BATCH: usize = 64;

/// One end-to-end daemon measurement: spawn a fresh server over a fresh
/// store, run `ingest` against it, return elapsed seconds.
fn serve_secs(
    tag: &str,
    ingest: impl FnOnce(&mut profserve::Client),
    proto: profserve::WireProtocol,
) -> f64 {
    let dir = bench_temp_dir(tag);
    let served = profstore::ProfileStore::open_with(
        &dir,
        profstore::StoreConfig {
            sync_writes: false,
            ..profstore::StoreConfig::default()
        },
    )
    .expect("open bench store");
    let (handle, join) =
        profserve::Server::spawn("127.0.0.1:0", served, profserve::ServeConfig::default())
            .expect("spawn bench server");
    let mut client = profserve::Client::connect_proto(
        &handle.addr().to_string(),
        proto,
        profserve::ClientTimeouts::unbounded(),
    )
    .expect("connect bench client");
    let t0 = Instant::now();
    ingest(&mut client);
    let secs = t0.elapsed().as_secs_f64();
    handle.stop();
    drop(client);
    join.join().expect("server thread").expect("server run");
    let _ = std::fs::remove_dir_all(&dir);
    secs
}

/// Profiles/sec and bytes/sec into the segment log — once straight
/// through `ProfileStore::ingest`, then end-to-end through the TCP
/// daemon on both wire protocols: line-delimited JSON (one response
/// awaited per ingest) and TPF1 binary framing with batched `INGEST`
/// (one acknowledgement per batch).
fn ingest_throughput(reps: usize) -> IngestThroughput {
    const PROFILES: u64 = 200;
    let profile = repository_profile();
    let text = cube::write_profile(&profile);
    let profile_bytes = text.len() as u64;
    // Pre-built outside the timed loops for both protocols: JSON carries
    // the profile as rendered text, binary as the store's record bytes.
    let json_records: Vec<profserve::Record> = (0..PROFILES)
        .map(|k| profserve::Record::from_text("ovh-ingest", 2, Some(k), &text))
        .collect();
    let bin_records: Vec<profserve::Record> = (0..PROFILES)
        .map(|k| profserve::Record::from_profile("ovh-ingest", 2, Some(k), &profile))
        .collect();

    let mut store_secs = f64::INFINITY;
    let mut json_secs = f64::INFINITY;
    let mut bin_secs = f64::INFINITY;
    for _ in 0..reps {
        let dir = bench_temp_dir("store");
        let mut store = profstore::ProfileStore::open_with(
            &dir,
            profstore::StoreConfig {
                sync_writes: false,
                ..profstore::StoreConfig::default()
            },
        )
        .expect("open bench store");
        let t0 = Instant::now();
        for k in 0..PROFILES {
            store
                .ingest("ovh-ingest", 2, k, &profile)
                .expect("bench ingest");
        }
        store_secs = store_secs.min(t0.elapsed().as_secs_f64());
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);

        json_secs = json_secs.min(serve_secs(
            "serve-json",
            |client| {
                for record in &json_records {
                    client
                        .ingest_record(record)
                        .expect("bench ingest over json");
                }
            },
            profserve::WireProtocol::Json,
        ));
        bin_secs = bin_secs.min(serve_secs(
            "serve-bin",
            |client| {
                for chunk in bin_records.chunks(INGEST_BATCH) {
                    client.ingest_batch(chunk).expect("bench ingest over tpf1");
                }
            },
            profserve::WireProtocol::Binary,
        ));
    }

    IngestThroughput {
        profiles: PROFILES,
        profile_bytes,
        store_profiles_per_sec: PROFILES as f64 / store_secs,
        store_bytes_per_sec: (PROFILES * profile_bytes) as f64 / store_secs,
        server_json_profiles_per_sec: PROFILES as f64 / json_secs,
        server_json_bytes_per_sec: (PROFILES * profile_bytes) as f64 / json_secs,
        server_bin_profiles_per_sec: PROFILES as f64 / bin_secs,
        server_bin_bytes_per_sec: (PROFILES * profile_bytes) as f64 / bin_secs,
    }
}

struct ShardedIngest {
    writers: usize,
    shards: u32,
    profiles: u64,
    sequential_profiles_per_sec: f64,
    contended_profiles_per_sec: f64,
    sharded_profiles_per_sec: f64,
}

impl ShardedIngest {
    /// Routed-shards over contended-single-log aggregate speedup under
    /// the same concurrent offered load.
    fn speedup(&self) -> f64 {
        if self.contended_profiles_per_sec > 0.0 {
            self.sharded_profiles_per_sec / self.contended_profiles_per_sec
        } else {
            0.0
        }
    }
}

/// Run `writers` concurrent ingest threads, one benchmark name each,
/// against a sharded repository with `shards` shards; returns elapsed
/// seconds for the whole offered load.
fn concurrent_ingest_secs(
    tag: &str,
    shards: u32,
    names: &[String],
    per_writer: u64,
    profile: &taskprof::Profile,
    config: profstore::StoreConfig,
) -> f64 {
    let dir = bench_temp_dir(tag);
    let store =
        profstore::ShardedStore::open_with(&dir, shards, config).expect("open bench sharded store");
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for name in names {
            let store = &store;
            s.spawn(move || {
                for k in 0..per_writer {
                    store
                        .ingest(name, 2, k, profile)
                        .expect("bench sharded ingest");
                }
            });
        }
    });
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(store.len(), names.len() * per_writer as usize);
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    secs
}

/// Aggregate ingest throughput under a four-writer concurrent load:
/// all writers serializing on one log's lock (a one-shard repository —
/// the single-store behavior) vs. the same load fanned over four shards
/// where each writer appends under its own lock. A sequential
/// single-store pass is included as the uncontended reference. Run ids
/// stay globally unique in every configuration.
fn sharded_ingest_throughput(reps: usize) -> ShardedIngest {
    const SHARDS: u32 = 4;
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 100;
    let profile = repository_profile();
    // Durable appends: an acknowledged replicated ingest means fsync'd,
    // and the fsync wait is exactly what independent shard locks let
    // concurrent writers overlap (even a single-core host overlaps the
    // device flushes; the page-cache path is measured above).
    let config = profstore::StoreConfig {
        sync_writes: true,
        ..profstore::StoreConfig::default()
    };
    // Benchmark names that provably cover all four shards, so the
    // routed writers never contend on one shard's lock.
    let mut names: Vec<String> = Vec::new();
    let mut covered = [false; SHARDS as usize];
    for k in 0u64.. {
        let name = format!("ovh-shard-{k}");
        let route = profstore::ShardedStore::route(&name, 0, SHARDS as usize);
        if !covered[route] {
            covered[route] = true;
            names.push(name);
            if names.len() == WRITERS {
                break;
            }
        }
    }

    let mut sequential_secs = f64::INFINITY;
    let mut contended_secs = f64::INFINITY;
    let mut sharded_secs = f64::INFINITY;
    for _ in 0..reps {
        let dir = bench_temp_dir("seq-agg");
        let mut store = profstore::ProfileStore::open_with(&dir, config).expect("open bench store");
        let t0 = Instant::now();
        for name in &names {
            for k in 0..PER_WRITER {
                store.ingest(name, 2, k, &profile).expect("bench ingest");
            }
        }
        sequential_secs = sequential_secs.min(t0.elapsed().as_secs_f64());
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);

        contended_secs = contended_secs.min(concurrent_ingest_secs(
            "contended-agg",
            1,
            &names,
            PER_WRITER,
            &profile,
            config,
        ));
        sharded_secs = sharded_secs.min(concurrent_ingest_secs(
            "sharded-agg",
            SHARDS,
            &names,
            PER_WRITER,
            &profile,
            config,
        ));
    }

    let profiles = WRITERS as u64 * PER_WRITER;
    ShardedIngest {
        writers: WRITERS,
        shards: SHARDS,
        profiles,
        sequential_profiles_per_sec: profiles as f64 / sequential_secs,
        contended_profiles_per_sec: profiles as f64 / contended_secs,
        sharded_profiles_per_sec: profiles as f64 / sharded_secs,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_overhead.json".to_string());
    let cfg = Config::from_env();
    let threads = cfg.threads.iter().copied().find(|&t| t > 1).unwrap_or(4);
    let variant = Variant::NoCutoff;

    println!("== per-event overhead: legacy (pre-sharding) vs. MeasurementSession ==");
    println!(
        "   scale={:?} threads={} reps={} variant={:?}",
        cfg.scale, threads, cfg.reps, variant
    );
    println!();

    let mut rows = Vec::new();
    for app in APPS {
        // Interleave the three paths rep by rep so drift (thermal, cache,
        // scheduler) hits all of them equally; keep the minimum of each.
        let mut base = Duration::MAX;
        let mut legacy = Duration::MAX;
        let mut session = Duration::MAX;
        for _ in 0..cfg.reps {
            base = base.min(uninstrumented_time(app, threads, cfg.scale, variant, 1));
            legacy = legacy.min(legacy_instrumented_time(
                app, threads, cfg.scale, variant, 1,
            ));
            session = session.min(session_time(app, threads, cfg.scale, variant, 1));
        }
        let events = count_events(app, threads, cfg.scale, variant);
        rows.push(Row {
            app: app.name(),
            base,
            legacy,
            session,
            events,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.to_string(),
                fmt_secs(r.base),
                fmt_secs(r.legacy),
                fmt_secs(r.session),
                fmt_pct(overhead_pct(r.legacy, r.base)),
                fmt_pct(overhead_pct(r.session, r.base)),
                fmt_opt_ns(r.per_event_ns(r.legacy)),
                fmt_opt_ns(r.per_event_ns(r.session)),
            ]
        })
        .collect();
    print_table(
        &[
            "app",
            "base s",
            "legacy s",
            "session s",
            "legacy ovh",
            "session ovh",
            "legacy ns/ev",
            "session ns/ev",
        ],
        &table,
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"per-event instrumentation overhead, BOTS kernels\",\n");
    json.push_str(
        "  \"comparison\": \"legacy = pre-sharding ProfMonitor (shared Arc clock_gettime reads, mutex snapshot merge); session = sharded fast path behind MeasurementSession (per-thread calibrated TSC readers, arena recycling, lock-free snapshot hand-off)\",\n",
    );
    json.push_str(&format!(
        "  \"config\": {{ \"scale\": \"{:?}\", \"threads\": {threads}, \"reps\": {}, \"variant\": \"{variant:?}\" }},\n",
        cfg.scale, cfg.reps
    ));
    json.push_str("  \"apps\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let legacy_pe = r.per_event_ns(r.legacy);
        let session_pe = r.per_event_ns(r.session);
        let improvement = match (legacy_pe, session_pe) {
            (Some(l), Some(s)) if l > 0.0 => Some((1.0 - s / l) * 100.0),
            _ => None,
        };
        json.push_str(&format!(
            "    {{ \"app\": \"{}\", \"events\": {}, \"base_s\": {:.6}, \"legacy_s\": {:.6}, \"session_s\": {:.6}, \"legacy_overhead_pct\": {:.2}, \"session_overhead_pct\": {:.2}, \"legacy_per_event_ns\": {}, \"session_per_event_ns\": {}, \"per_event_improvement_pct\": {} }}{}\n",
            json_escape(r.app),
            r.events,
            r.base.as_secs_f64(),
            r.legacy.as_secs_f64(),
            r.session.as_secs_f64(),
            overhead_pct(r.legacy, r.base),
            overhead_pct(r.session, r.base),
            json_opt(legacy_pe),
            json_opt(session_pe),
            json_opt(improvement),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");

    // Events-weighted aggregate over the kernels: total instrumentation
    // time added over total events. End-to-end numbers carry scheduler /
    // thermal noise; the microbench sections below are the controlled
    // measurement of what the sharding changed. Apps below the per-event
    // floor are excluded — their delta is noise, not signal.
    let counted: Vec<&Row> = rows
        .iter()
        .filter(|r| r.events >= PER_EVENT_FLOOR)
        .collect();
    let excluded: Vec<String> = rows
        .iter()
        .filter(|r| r.events < PER_EVENT_FLOOR)
        .map(|r| format!("\"{}\"", json_escape(r.app)))
        .collect();
    let total_events: u64 = counted.iter().map(|r| r.events).sum();
    let added = |instr: fn(&Row) -> Duration| -> f64 {
        counted
            .iter()
            .map(|r| (instr(r).as_nanos() as f64 - r.base.as_nanos() as f64).max(0.0))
            .sum::<f64>()
    };
    let legacy_agg = added(|r| r.legacy) / total_events.max(1) as f64;
    let session_agg = added(|r| r.session) / total_events.max(1) as f64;
    let agg_improvement = if legacy_agg > 0.0 {
        (1.0 - session_agg / legacy_agg) * 100.0
    } else {
        0.0
    };
    json.push_str(&format!(
        "  \"kernel_aggregate\": {{ \"events\": {total_events}, \"per_event_floor\": {PER_EVENT_FLOOR}, \"excluded_apps\": [{}], \"legacy_per_event_ns\": {legacy_agg:.2}, \"session_per_event_ns\": {session_agg:.2}, \"per_event_improvement_pct\": {agg_improvement:.2} }},\n",
        excluded.join(", ")
    ));

    println!(
        "\n-- hot-path microbenches (direct ThreadHooks driving, min of {} reps) --",
        cfg.reps
    );
    let (steady, machinery, cycle) = run_microbenches(cfg.reps);
    let telemetry = telemetry_pair(cfg.reps);
    let telemetry_overhead_pct = if telemetry.legacy > 0.0 {
        (telemetry.session / telemetry.legacy - 1.0) * 100.0
    } else {
        0.0
    };
    println!(
        "  per event (1 thread)     : legacy {:.1} ns -> session {:.1} ns ({:+.1}%)",
        steady.legacy,
        steady.session,
        steady.improvement_pct()
    );
    println!(
        "  telemetry on vs off      : off {:.1} ns -> on {:.1} ns ({:+.1}%, budget <5%)",
        telemetry.legacy, telemetry.session, telemetry_overhead_pct
    );
    println!(
        "  machinery (virtual clock): legacy {:.1} ns -> session {:.1} ns ({:+.1}%)",
        machinery.legacy,
        machinery.session,
        machinery.improvement_pct()
    );
    println!(
        "  per region cycle (4 thr) : legacy {:.0} ns -> session {:.0} ns ({:+.1}%)",
        cycle.legacy,
        cycle.session,
        cycle.improvement_pct()
    );
    json.push_str(&format!(
        "  \"per_event\": {{ \"description\": \"steady-state cost of one measurement event, single thread, direct hook loop, monotonic clock; telemetry_* pairs the same loop with live telemetry off vs on (relaxed shard counters + 1-in-N sampled self-timing), budget <5%\", \"legacy_ns\": {:.2}, \"session_ns\": {:.2}, \"improvement_pct\": {:.2}, \"telemetry_off_ns\": {:.2}, \"telemetry_on_ns\": {:.2}, \"telemetry_overhead_pct\": {:.2} }},\n",
        steady.legacy,
        steady.session,
        steady.improvement_pct(),
        telemetry.legacy,
        telemetry.session,
        telemetry_overhead_pct
    ));
    json.push_str(&format!(
        "  \"per_event_machinery\": {{ \"description\": \"same loop under a virtual clock (an atomic load on both sides, bypassing the TSC reader): the non-clock hook machinery, expected near parity — the per-event win comes from the calibrated clock read, the per-region win from arena recycling and the lock-free hand-off\", \"legacy_ns\": {:.2}, \"session_ns\": {:.2}, \"improvement_pct\": {:.2} }},\n",
        machinery.legacy,
        machinery.session,
        machinery.improvement_pct()
    ));
    json.push_str(&format!(
        "  \"region_cycle\": {{ \"description\": \"thread_begin + 128 task events + thread_end, 4 concurrent threads: arena recycling and lock-free snapshot hand-off vs per-region allocation and mutex merge\", \"legacy_ns\": {:.2}, \"session_ns\": {:.2}, \"improvement_pct\": {:.2} }},\n",
        cycle.legacy,
        cycle.session,
        cycle.improvement_pct()
    ));

    let critpath = critpath_bench(cfg.reps);
    println!(
        "  edge recording (fib e2e) : off {:.4}s -> on {:.4}s ({:+.1}%, budget <5%; {} events)",
        critpath.app_off.as_secs_f64(),
        critpath.app_on.as_secs_f64(),
        critpath.app_overhead_pct(),
        critpath.app_events
    );
    println!(
        "  edge recording (hot loop): off {:.1} ns -> on {:.1} ns ({:+.1}%, worst case: nothing but hooks)",
        critpath.off_ns,
        critpath.on_ns,
        critpath.on_overhead_pct()
    );
    println!(
        "  critpath analysis        : {} tasks: build {:.1} ms, report {:.1} ms, what-if {:.1} ms",
        critpath.tasks, critpath.build_ms, critpath.report_ms, critpath.whatif_ms
    );
    json.push_str(&format!(
        "  \"critpath_analysis\": {{ \"description\": \"causal-profiling cost, both halves. Recording: app_* is the budgeted number — an instrumented end-to-end fib run with task-edge recording on vs off (on packs one u64-word record per hook into a thread-local log, budget <5%; off is the identical pre-feature hot path behind one never-taken branch, the 0%-when-off claim); hotloop_* is the worst case, a loop of nothing but hooks, dominated by this host's memory write bandwidth. Analysis: offline DAG assembly + work/span report + one what-if re-solve on a ~10k-task single-producer simulated run\", \"app\": \"fib\", \"app_events\": {}, \"app_off_s\": {:.6}, \"app_on_s\": {:.6}, \"app_overhead_pct\": {:.2}, \"hotloop_off_ns\": {:.2}, \"hotloop_on_ns\": {:.2}, \"hotloop_overhead_pct\": {:.2}, \"tasks\": {}, \"dag_build_ms\": {:.2}, \"report_ms\": {:.2}, \"whatif_ms\": {:.2} }},\n",
        critpath.app_events,
        critpath.app_off.as_secs_f64(),
        critpath.app_on.as_secs_f64(),
        critpath.app_overhead_pct(),
        critpath.off_ns,
        critpath.on_ns,
        critpath.on_overhead_pct(),
        critpath.tasks,
        critpath.build_ms,
        critpath.report_ms,
        critpath.whatif_ms
    ));

    let ingest = ingest_throughput(cfg.reps);
    println!(
        "  profile ingest (store)   : {:.0} profiles/s, {:.1} MB/s",
        ingest.store_profiles_per_sec,
        ingest.store_bytes_per_sec / 1e6
    );
    println!(
        "  profile ingest (tcp json): {:.0} profiles/s, {:.1} MB/s",
        ingest.server_json_profiles_per_sec,
        ingest.server_json_bytes_per_sec / 1e6
    );
    println!(
        "  profile ingest (tcp bin) : {:.0} profiles/s, {:.1} MB/s ({:.1}x over json)",
        ingest.server_bin_profiles_per_sec,
        ingest.server_bin_bytes_per_sec / 1e6,
        ingest.bin_speedup()
    );
    json.push_str(&format!(
        "  \"profile_ingest\": {{ \"description\": \"profile repository ingestion: {} identical 2-thread replayed profiles ({} bytes each) appended to the segment log; store = direct ProfileStore::ingest (sync_writes off); server_json = end-to-end through the TCP daemon over line-delimited JSON, one client, response awaited per ingest; server_bin = same daemon over the TPF1 binary framing, {} records per batched INGEST acknowledgement\", \"profiles\": {}, \"profile_bytes\": {}, \"store_profiles_per_sec\": {:.1}, \"store_bytes_per_sec\": {:.0}, \"server_json_profiles_per_sec\": {:.1}, \"server_json_bytes_per_sec\": {:.0}, \"server_bin_profiles_per_sec\": {:.1}, \"server_bin_bytes_per_sec\": {:.0}, \"bin_speedup\": {:.2} }},\n",
        ingest.profiles,
        ingest.profile_bytes,
        INGEST_BATCH,
        ingest.profiles,
        ingest.profile_bytes,
        ingest.store_profiles_per_sec,
        ingest.store_bytes_per_sec,
        ingest.server_json_profiles_per_sec,
        ingest.server_json_bytes_per_sec,
        ingest.server_bin_profiles_per_sec,
        ingest.server_bin_bytes_per_sec,
        ingest.bin_speedup()
    ));

    let sharded = sharded_ingest_throughput(cfg.reps);
    println!(
        "  profile ingest (sharded) : {} writers: 1 shard {:.0} -> {} shards {:.0} profiles/s ({:.1}x; sequential ref {:.0})",
        sharded.writers,
        sharded.contended_profiles_per_sec,
        sharded.shards,
        sharded.sharded_profiles_per_sec,
        sharded.speedup(),
        sharded.sequential_profiles_per_sec
    );
    json.push_str(&format!(
        "  \"sharded_ingest\": {{ \"description\": \"durable aggregate ingest (fsync per append, the acked-replication path) under a {}-writer concurrent load, one benchmark per writer: contended = all writers serializing on a one-shard repository's single log lock (the single-store behavior); sharded = the same load routed over {} shards, each writer appending — and overlapping its device flush — under its own lock; sequential = one thread on a plain single store, the uncontended reference; speedup = sharded over contended and additionally scales with available cores (this host exposes {})\", \"writers\": {}, \"shards\": {}, \"profiles\": {}, \"host_cpus\": {}, \"sequential_profiles_per_sec\": {:.1}, \"contended_profiles_per_sec\": {:.1}, \"sharded_profiles_per_sec\": {:.1}, \"speedup\": {:.2} }}\n",
        sharded.writers,
        sharded.shards,
        host_cpus(),
        sharded.writers,
        sharded.shards,
        sharded.profiles,
        host_cpus(),
        sharded.sequential_profiles_per_sec,
        sharded.contended_profiles_per_sec,
        sharded.sharded_profiles_per_sec,
        sharded.speedup()
    ));
    json.push_str("}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("\nwritten to {out_path}");
}
