//! Section VI case study: using the task profile to diagnose and fix the
//! `nqueens` granularity problem.
//!
//! Reproduces the analysis narrative: (1) the uninstrumented no-cut-off
//! runtime does not improve with threads; (2) the profile shows most task
//! time is spent *creating* child tasks and mean task size is below the
//! creation cost; (3) cutting task creation at recursion level 3 yields a
//! large speedup (paper: 187 s → 11.5 s at 4 threads, speedup 16).

use bench::{banner, fmt_secs, instrumented_run, print_table, uninstrumented_time, Config};
use bots::{AppId, RunOpts, Variant};
use cube::{format_ns, region_excl_by_name, task_stats};

fn main() {
    let cfg = Config::from_env();
    banner("Section VI — nqueens case study", &cfg);

    // Step 1: scaling of the uninstrumented versions.
    println!("step 1: kernel time of the uninstrumented versions");
    let mut rows = Vec::new();
    for variant in [Variant::NoCutoff, Variant::Cutoff] {
        let mut row = vec![format!("{variant:?}")];
        for &t in &cfg.threads {
            let d = uninstrumented_time(AppId::Nqueens, t, cfg.scale, variant, cfg.reps);
            row.push(format!("{}s", fmt_secs(d)));
        }
        rows.push(row);
    }
    let mut headers = vec!["variant"];
    let labels: Vec<String> = cfg.threads.iter().map(|t| format!("{t} thr")).collect();
    headers.extend(labels.iter().map(String::as_str));
    print_table(&headers, &rows);

    // Step 2: profile a 4-thread instrumented run and compare mean task
    // execution time with mean creation time (paper: 0.30 µs vs 0.86 µs).
    let threads = cfg.threads.iter().copied().max().unwrap_or(4);
    println!("\nstep 2: profile of the no-cut-off version on {threads} threads");
    let (_, prof) = instrumented_run(
        AppId::Nqueens,
        &RunOpts::new(threads).scale(cfg.scale).variant(Variant::NoCutoff),
    );
    let stats = &task_stats(&prof)[0];
    let create_excl = region_excl_by_name(&prof, "nqueens!create") as f64;
    let task_excl = region_excl_by_name(&prof, "nqueens") as f64;
    let creations = stats.instances.max(1) as f64;
    println!("  completed task instances : {}", stats.instances);
    println!("  mean inclusive task time : {}", format_ns(stats.mean_ns as u64));
    println!(
        "  mean EXCLUSIVE task time : {} (useful work per task)",
        format_ns((task_excl / creations) as u64)
    );
    println!(
        "  mean task creation time  : {} (exclusive, per created task)",
        format_ns((create_excl / creations) as u64)
    );
    let frac = create_excl / (task_excl + create_excl).max(1.0);
    println!(
        "  creation share of task-side time: {:.0}% (paper: ~3/4 of task time)",
        frac * 100.0
    );

    // Step 3: the fix — cut-off at level 3.
    println!("\nstep 3: apply the cut-off (stop task creation at level 3)");
    let base = uninstrumented_time(AppId::Nqueens, threads, cfg.scale, Variant::NoCutoff, cfg.reps);
    let cut = uninstrumented_time(AppId::Nqueens, threads, cfg.scale, Variant::Cutoff, cfg.reps);
    println!(
        "  {} threads: {}s -> {}s  (speedup {:.1}x; paper: 187s -> 11.5s, 16x)",
        threads,
        fmt_secs(base),
        fmt_secs(cut),
        base.as_secs_f64() / cut.as_secs_f64().max(1e-9)
    );
}
