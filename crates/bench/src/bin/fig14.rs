//! Figure 14: profiling overhead of the *unoptimized* (no cut-off)
//! versions — the stress test with huge numbers of tiny tasks.
//!
//! Paper reference: very large single-thread overheads (fib 527 %) that
//! fall towards (or below) zero as threads are added, because runtime-
//! internal task-management contention shadows the measurement cost.
//! strassen is the exception: always low overhead (its tasks are big).

use bench::{banner, fmt_pct, fmt_secs, instrumented_time, overhead_pct, print_table, Config, uninstrumented_time};
use bots::{Variant, ALL_APPS};

fn main() {
    let cfg = Config::from_env();
    banner("Fig. 14 — profiling overhead, versions without cut-off", &cfg);
    let mut rows = Vec::new();
    for app in ALL_APPS {
        let mut row = vec![app.name().to_string()];
        for &t in &cfg.threads {
            let base = uninstrumented_time(app, t, cfg.scale, Variant::NoCutoff, cfg.reps);
            let (instr, _) = instrumented_time(app, t, cfg.scale, Variant::NoCutoff, cfg.reps);
            row.push(format!(
                "{} ({}s/{}s)",
                fmt_pct(overhead_pct(instr, base)),
                fmt_secs(instr),
                fmt_secs(base)
            ));
        }
        rows.push(row);
    }
    let mut headers = vec!["code"];
    let labels: Vec<String> = cfg.threads.iter().map(|t| format!("{t} thr")).collect();
    headers.extend(labels.iter().map(String::as_str));
    print_table(&headers, &rows);
    println!();
    println!("cells: overhead% (instrumented s / uninstrumented s), min of reps");
}
