//! Ablation: the tied-task scheduling constraint at taskwaits.
//!
//! The runtime normally executes only *descendants* of the waiting task
//! at its taskwait (the OpenMP tied-task scheduling constraint: anything
//! else could require resuming a tied task on the wrong thread and stacks
//! suspended tasks arbitrarily deep). This binary runs nqueens both ways
//! and compares kernel time and — the telling metric — the paper's
//! Table II counter: the maximum number of concurrently live task
//! instances per thread, which bounds both the profiler's and the
//! runtime's memory.

use bots::nqueens::{self};
use cube::AggProfile;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use taskprof::ProfMonitor;
use taskprof_session::{MeasurementSession, SessionBuilder};

fn run_nqueens(
    session: &MeasurementSession<ProfMonitor>,
    n: usize,
) -> (std::time::Duration, u64) {
    let r = nqueens::regions();
    let count = AtomicU64::new(0);
    let count_ref = &count;
    let start = Instant::now();
    session.run_in(&r.par, |ctx| {
        ctx.single(&r.single, |ctx| {
            // Reuse the library's task recursion through the public API.
            nqueens_spawn(ctx, n, 0, vec![0; n], count_ref);
        });
    });
    (start.elapsed(), count.load(Ordering::Relaxed))
}

fn nqueens_spawn<'e, M: pomp::Monitor>(
    ctx: &taskrt::TaskCtx<'_, 'e, M>,
    n: usize,
    row: usize,
    board: Vec<u8>,
    count: &'e AtomicU64,
) {
    if row == n {
        count.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let r = nqueens::regions();
    for col in 0..n as u8 {
        let ok = (0..row).all(|pr| {
            let c = board[pr] as i32;
            let dc = c - col as i32;
            dc != 0 && dc.abs() != (row - pr) as i32
        });
        if ok {
            let mut b2 = board.clone();
            b2[row] = col;
            ctx.task(&r.task, move |ctx| nqueens_spawn(ctx, n, row + 1, b2, count));
        }
    }
    ctx.taskwait(r.tw);
}

fn main() {
    println!("== Ablation — tied-task scheduling constraint at taskwait ==\n");
    let n = 9;
    let threads = 4;
    type Shape = fn(SessionBuilder) -> SessionBuilder;
    let builders: [(&str, Shape); 2] = [
        ("descendants-only (tied TSC, default)", |b| b),
        ("unrestricted (constraint dropped)", |b| {
            b.unrestricted_taskwait()
        }),
    ];
    for (label, shape) in builders {
        let session = shape(MeasurementSession::builder("nqueens-ablation").threads(threads))
            .build()
            .expect("default session configuration is valid");
        let (kernel, solutions) = run_nqueens(&session, n);
        assert_eq!(solutions, nqueens::expected_solutions(n));
        let prof = AggProfile::from_profile(&session.finish().profile);
        println!("{label}:");
        println!("  kernel                        : {kernel:?}");
        println!(
            "  max concurrent tasks / thread : {}  (paper Table II metric)",
            prof.max_live_trees
        );
        println!();
    }
    println!("reading: dropping the constraint permits unrelated tasks to stack on top");
    println!("of suspended ones, so the concurrent-instance bound (which Section V-B's");
    println!("memory argument rests on) can only grow. With LIFO local deques and a");
    println!("single creator the top of the deque is almost always a descendant anyway,");
    println!("so the measured bound often matches; the constraint is what *guarantees*");
    println!("it under adversarial stealing. Correctness is unchanged either way.");
}
