//! Table IV: `nqueens` task statistics per recursion level, via parameter
//! instrumentation (Section VI).
//!
//! Paper reference (n = 14): mean task time decreases monotonically with
//! depth (25.5 µs at level 0 down to 0.33 µs at level 13); the bulk of
//! total time sits in the deep levels (9–13); task counts grow towards a
//! peak near the deepest levels. The conclusion — cutting task creation
//! at level 3 — follows from this table.

use bench::{banner, instrumented_run, print_table, Config};
use bots::{nqueens, AppId, RunOpts, Variant};
use cube::{format_ns, param_table};

fn main() {
    let cfg = Config::from_env();
    banner("Table IV — nqueens inclusive task time per recursion level", &cfg);
    let threads = cfg.threads.iter().copied().max().unwrap_or(4);
    let opts = RunOpts::new(threads)
        .scale(cfg.scale)
        .variant(Variant::NoCutoff)
        .with_depth_param();
    let (_, prof) = instrumented_run(AppId::Nqueens, &opts);
    let task_region = pomp::registry()
        .lookup("nqueens", pomp::RegionKind::Task)
        .expect("nqueens task region");
    let tree = prof
        .task_trees
        .iter()
        .find(|t| t.kind == taskprof::NodeKind::Region(task_region))
        .expect("nqueens task tree");
    let table = param_table(tree, nqueens::depth_param());
    let rows: Vec<Vec<String>> = table
        .iter()
        .map(|(level, stats)| {
            vec![
                level.to_string(),
                format_ns(stats.mean_ns() as u64),
                format!("{:.5}s", stats.sum_ns as f64 / 1e9),
                stats.samples.to_string(),
            ]
        })
        .collect();
    print_table(&["depth level", "mean time", "sum", "number of tasks"], &rows);
    println!();
    println!("shape check vs paper: mean time falls monotonically with depth; most of the");
    println!("total time sits in the deepest few levels; counts peak near the bottom");
}
