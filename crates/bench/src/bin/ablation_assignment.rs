//! Ablation of the node-assignment policy (paper Fig. 3 / Section IV-B2):
//! attribute task execution to the *creating* node vs. the *executing*
//! node.
//!
//! Replays the figure's scenario deterministically and prints both
//! profiles: the creating-node policy yields a negative exclusive time at
//! the creation site and over-attributes the barrier; the executing-node
//! policy (the paper's choice) keeps every exclusive time meaningful.

use cube::{render_profile, AggProfile, RenderOpts};
use pomp::{registry, RegionKind, TaskIdAllocator};
use taskprof::{replay, AssignPolicy, Event, Profile};

fn scenario(policy: AssignPolicy) -> AggProfile {
    let reg = registry();
    let par = reg.register("fig3!parallel", RegionKind::Parallel, file!(), line!());
    let task = reg.register("fig3_task", RegionKind::Task, file!(), line!());
    let create = reg.register("fig3_task!create", RegionKind::TaskCreate, file!(), line!());
    let barrier = reg.register("fig3!ibarrier", RegionKind::ImplicitBarrier, file!(), line!());
    let ids = TaskIdAllocator::new();
    let t1 = ids.alloc();
    // Fig. 3 numbers: parallel start 2, creation 2, task body 5, barrier
    // tail 2.
    let snap = replay(
        par,
        policy,
        [
            Event::Advance(2),
            Event::CreateBegin { create, task_region: task, id: t1 },
            Event::Advance(2),
            Event::CreateEnd { create, id: t1 },
            Event::Enter(barrier),
            Event::TaskBegin { region: task, id: t1 },
            Event::Advance(5),
            Event::TaskEnd { region: task, id: t1 },
            Event::Advance(2),
            Event::Exit(barrier),
        ],
    );
    AggProfile::from_profile(&Profile { threads: vec![snap] })
}

fn main() {
    println!("== Ablation — task attribution policy (paper Fig. 3) ==\n");
    for (policy, name) in [
        (AssignPolicy::Creating, "assign to CREATING node (rejected by the paper)"),
        (AssignPolicy::Executing, "assign to EXECUTING node (the paper's design)"),
    ] {
        println!("--- {name} ---");
        let prof = scenario(policy);
        print!("{}", render_profile(&prof, &RenderOpts::default()));
        let create_excl = cube::region_excl_by_name(&prof, "fig3_task!create");
        let barrier_excl = cube::region_excl_by_kind(&prof, RegionKind::ImplicitBarrier);
        println!(
            "creation-site exclusive: {create_excl} ns   barrier exclusive: {barrier_excl} ns\n"
        );
        match policy {
            AssignPolicy::Creating => {
                assert!(create_excl < 0, "expected the Fig. 3 pathology");
                assert_eq!(barrier_excl, 7, "task time wrongly attributed to barrier");
            }
            AssignPolicy::Executing => {
                assert!(create_excl >= 0);
                assert_eq!(barrier_excl, 2, "only true waiting remains in the barrier");
            }
        }
    }
    println!("conclusion (matches paper): only executing-node attribution produces");
    println!("meaningful exclusive times; creating-node attribution goes negative.");
}
